#!/usr/bin/env bash
# Tier-1 CI: formatting, lints, build and tests for the default
# workspace members. Fully offline — all dependencies are vendored
# path crates, so no registry or network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --release --all-targets -- -D warnings

echo "== pfm-lint (workspace invariants) =="
cargo run -q --release -p pfm-lint -- --workspace
cargo test -q --release -p pfm-lint

echo "== repro --analyze (static analysis of registered use cases) =="
cargo build -q --release -p pfm-bench
"$PWD/target/release/repro" --analyze > /dev/null
# The analyzer must have teeth: a corrupted watch PC must fail, and it
# must be flagged by the watch cross-checks specifically (mismatch
# against the kernel, and a gap in the derived watch set).
corrupt_out="$("$PWD/target/release/pfm-analyze" --corrupt-watch astar 2>&1)" && {
    echo "pfm-analyze failed to flag a corrupted watch PC" >&2
    exit 1
}
echo "$corrupt_out" | grep -q "derived-watch-gap" || {
    echo "corrupted watch PC did not surface as a derived-watch-gap" >&2
    exit 1
}

echo "== repro --derive (derived vs hand-built watchlists) =="
# Interface inference must fully cover every registered component's
# hand-built watchlist (or record a typed divergence) — zero gaps.
"$PWD/target/release/repro" --derive > /dev/null
# The pfm-analyze/2 profile report round-trips through the atomic -o
# writer.
derive_dir="$(mktemp -d)"
"$PWD/target/release/pfm-analyze" --profile all --json -o "$derive_dir/profiles.json" 2>/dev/null
grep -q '"schema":"pfm-analyze/2"' "$derive_dir/profiles.json" || {
    echo "pfm-analyze --profile -o did not write a pfm-analyze/2 report" >&2
    exit 1
}
rm -rf "$derive_dir"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q --release

echo "== functional/detailed equivalence gate (two-speed smoke) =="
# Truncated-budget gate: the functional executor must retire the exact
# committed stream the detailed core retires, for every use case in
# both baseline and PFM modes.
cargo test -q --release -p pfm-sim --test functional_equivalence

echo "== repro --chaos-smoke (graceful degradation under faults) =="
repro_bin="$PWD/target/release/repro"
"$repro_bin" --chaos-smoke --quick --jobs 4 > /dev/null

echo "== repro --bench smoke (simulator MKIPS) =="
# Runs in a temp dir: the smoke's quick-scale JSON must not clobber the
# committed paper-scale BENCH_sim_throughput.json at the repo root.
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$repro_bin" --bench --functional --quick --jobs 4 2>/dev/null | grep -E "MKIPS")
rm -rf "$smoke_dir"

echo "CI OK"
