#!/usr/bin/env bash
# Tier-1 CI: formatting, lints, build and tests for the default
# workspace members. Fully offline — all dependencies are vendored
# path crates, so no registry or network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --release --all-targets -- -D warnings

echo "== pfm-lint (workspace invariants) =="
cargo run -q --release -p pfm-lint -- --workspace
cargo test -q --release -p pfm-lint

echo "== pfm-lint evasion gate (interprocedural teeth) =="
# The seeded evasion corpus, staged as a crate-shaped tree, must fail
# with transitive findings that print their call paths; the clean
# workspace above already proved the zero-noise side.
lint_bin="$PWD/target/release/pfm-lint"
lint_dir="$(mktemp -d)"
mkdir -p "$lint_dir/crates/core/src" "$lint_dir/crates/fabric/src"
cp crates/lint/tests/fixtures/evasion_snapshot_clock.rs \
   crates/lint/tests/fixtures/evasion_store_key_env.rs \
   crates/lint/tests/fixtures/evasion_agent_taint.rs \
   crates/lint/tests/fixtures/evasion_scc_cycle.rs \
   "$lint_dir/crates/core/src/"
cp crates/lint/tests/fixtures/evasion_swap_mutator.rs \
   "$lint_dir/crates/fabric/src/"
evasion_out="$(cd "$lint_dir" && "$lint_bin" crates 2>&1)" && {
    echo "pfm-lint passed the seeded evasion corpus" >&2
    exit 1
}
for want in snapshot-wall-clock store-key-purity agent-taint swap-purity "(path: "; do
    echo "$evasion_out" | grep -qF "$want" || {
        echo "evasion gate missing expected marker: $want" >&2
        echo "$evasion_out" >&2
        exit 1
    }
done
# --json -o writes an atomic, parseable pfm-lint/1 report with paths.
(cd "$lint_dir" && "$lint_bin" --json -o findings.json crates 2>/dev/null) || true
grep -q '"schema":"pfm-lint/1"' "$lint_dir/findings.json" || {
    echo "pfm-lint --json -o did not write a pfm-lint/1 report" >&2
    exit 1
}
python3 -m json.tool "$lint_dir/findings.json" > /dev/null || {
    echo "pfm-lint --json output is not valid JSON" >&2
    exit 1
}
# --graph dumps the call graph in both forms.
"$lint_bin" --graph crates/lint/src/graph.rs | grep -q "fn extract_fns" || {
    echo "pfm-lint --graph text dump missing functions" >&2
    exit 1
}
"$lint_bin" --graph=dot crates/lint/src/graph.rs | grep -q "^digraph" || {
    echo "pfm-lint --graph=dot did not emit a digraph" >&2
    exit 1
}
rm -rf "$lint_dir"

echo "== repro --analyze (static analysis of registered use cases) =="
cargo build -q --release -p pfm-bench
"$PWD/target/release/repro" --analyze > /dev/null
# The analyzer must have teeth: a corrupted watch PC must fail, and it
# must be flagged by the watch cross-checks specifically (mismatch
# against the kernel, and a gap in the derived watch set).
corrupt_out="$("$PWD/target/release/pfm-analyze" --corrupt-watch astar 2>&1)" && {
    echo "pfm-analyze failed to flag a corrupted watch PC" >&2
    exit 1
}
echo "$corrupt_out" | grep -q "derived-watch-gap" || {
    echo "corrupted watch PC did not surface as a derived-watch-gap" >&2
    exit 1
}

echo "== repro --derive (derived vs hand-built watchlists) =="
# Interface inference must fully cover every registered component's
# hand-built watchlist (or record a typed divergence) — zero gaps.
"$PWD/target/release/repro" --derive > /dev/null
# The pfm-analyze/2 profile report round-trips through the atomic -o
# writer.
derive_dir="$(mktemp -d)"
"$PWD/target/release/pfm-analyze" --profile all --json -o "$derive_dir/profiles.json" 2>/dev/null
grep -q '"schema":"pfm-analyze/2"' "$derive_dir/profiles.json" || {
    echo "pfm-analyze --profile -o did not write a pfm-analyze/2 report" >&2
    exit 1
}
rm -rf "$derive_dir"

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q --release

echo "== functional/detailed equivalence gate (two-speed smoke) =="
# Truncated-budget gate: the functional executor must retire the exact
# committed stream the detailed core retires, for every use case in
# both baseline and PFM modes.
cargo test -q --release -p pfm-sim --test functional_equivalence

echo "== repro --chaos-smoke (graceful degradation under faults) =="
repro_bin="$PWD/target/release/repro"
"$repro_bin" --chaos-smoke --quick --jobs 4 > /dev/null

echo "== repro --context-switch (chaos-swap gate) =="
# Mid-swap fault scenarios on the two-tenant plan: every arm —
# fault-free scheduler and all four chaos scenarios — must report a
# commit checksum bit-identical to the no-fabric baseline, and the
# fault-free scheduler must not thrash (only corrupt-signature is
# allowed to swap beyond the phase count).
cs_out="$("$repro_bin" --context-switch --quick --jobs 4 --no-store)"
cs_ok="$(echo "$cs_out" | grep -c "checksum OK" || true)"
cs_bad="$(echo "$cs_out" | grep -c "checksum MISMATCH" || true)"
[ "$cs_bad" -eq 0 ] && [ "$cs_ok" -ge 8 ] || {
    echo "context-switch arms broke checksum parity ($cs_ok OK, $cs_bad mismatched):" >&2
    echo "$cs_out" | grep "checksum" >&2
    exit 1
}
sched_swaps="$(echo "$cs_out" \
    | sed -n 's/^  sched modeled .* swaps \([0-9]*\) .*/\1/p')"
[ -n "$sched_swaps" ] && [ "$sched_swaps" -ge 1 ] && [ "$sched_swaps" -le 16 ] || {
    echo "fault-free scheduler thrash bound violated (swaps=$sched_swaps, want 1..16)" >&2
    exit 1
}

echo "== repro --bench smoke (simulator MKIPS) =="
# Runs in a temp dir: the smoke's quick-scale JSON must not clobber the
# committed paper-scale BENCH_sim_throughput.json at the repo root.
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$repro_bin" --bench --functional --quick --jobs 4 2>/dev/null | grep -E "MKIPS")
rm -rf "$smoke_dir"

echo "== result store warm-cache gate =="
# Same smoke plan twice against a fresh store: the second run must be
# 100% hits with zero simulations, and the assembled stats (everything
# but the wall-clock plan line) must be bit-identical.
store_dir="$(mktemp -d)"
"$repro_bin" fig8 --quick --jobs 4 --store "$store_dir/store" \
    > "$store_dir/cold.out" 2> "$store_dir/cold.log"
"$repro_bin" fig8 --quick --jobs 4 --store "$store_dir/store" \
    > "$store_dir/warm.out" 2> "$store_dir/warm.log"
cold_misses="$(sed -n 's/.*store: [0-9]* hit(s), \([0-9]*\) miss(es).*/\1/p' "$store_dir/cold.out")"
warm_plan="$(grep '^plan:' "$store_dir/warm.out")"
[ -n "$cold_misses" ] && [ "$cold_misses" -gt 0 ] || {
    echo "cold run did not miss the fresh store" >&2
    exit 1
}
echo "$warm_plan" | grep -q "store: $cold_misses hit(s), 0 miss(es)" || {
    echo "warm run was not 100% store hits: $warm_plan" >&2
    exit 1
}
echo "$warm_plan" | grep -q "(0.0s simulated)" || {
    echo "warm run still simulated: $warm_plan" >&2
    exit 1
}
diff <(grep -v '^plan:' "$store_dir/cold.out") \
     <(grep -v '^plan:' "$store_dir/warm.out") || {
    echo "warm-cache stats differ from the cold run" >&2
    exit 1
}

echo "== experiment service gate (--serve / --worker) =="
# A daemon in front of a fresh store must shard a cold request across
# at least two worker processes, answer the repeated request without
# simulating, and return identical assembled stats.
sock="$store_dir/repro.sock"
"$repro_bin" --serve --store "$store_dir/serve-store" --socket "$sock" --jobs 4 \
    > "$store_dir/serve.log" 2>&1 &
serve_pid=$!
# Never leak the daemon: any exit from here on tears it down, and
# every client call plus the shutdown wait is bounded, so a wedged
# daemon fails the gate instead of hanging CI.
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "daemon never bound $sock" >&2; exit 1; }
timeout 120 "$repro_bin" fig8 --quick --connect --socket "$sock" \
    > "$store_dir/serve-cold.out" 2> "$store_dir/serve-cold.log"
timeout 120 "$repro_bin" fig8 --quick --connect --socket "$sock" \
    > "$store_dir/serve-warm.out" 2> "$store_dir/serve-warm.log"
timeout 30 "$repro_bin" --connect --shutdown --socket "$sock" > /dev/null 2>&1
for _ in $(seq 100); do kill -0 "$serve_pid" 2>/dev/null || break; sleep 0.1; done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "daemon did not exit after --shutdown" >&2
    exit 1
fi
wait "$serve_pid"
trap - EXIT
grep -Eq "sharding across ([2-9]|[0-9]{2,}) worker process" "$store_dir/serve-cold.log" || {
    echo "cold request did not shard across >=2 worker processes" >&2
    cat "$store_dir/serve-cold.log" >&2
    exit 1
}
grep -q "0 simulated" "$store_dir/serve-warm.out" || {
    echo "warm serve request still simulated" >&2
    exit 1
}
grep -q "answering entirely from the store" "$store_dir/serve-warm.log" || {
    echo "warm serve request probed past the store" >&2
    exit 1
}
diff <(grep -v '^serve:' "$store_dir/serve-cold.out") \
     <(grep -v '^serve:' "$store_dir/serve-warm.out") || {
    echo "serve stats differ between cold and warm requests" >&2
    exit 1
}
rm -rf "$store_dir"

echo "CI OK"
