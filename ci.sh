#!/usr/bin/env bash
# Tier-1 CI: formatting, lints, build and tests for the default
# workspace members. Fully offline — all dependencies are vendored
# path crates, so no registry or network access is needed.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --release --all-targets -- -D warnings

echo "== pfm-lint (workspace invariants) =="
cargo run -q --release -p pfm-lint -- --workspace
cargo test -q --release -p pfm-lint

echo "== cargo build --release =="
cargo build --release

echo "== cargo test =="
cargo test -q --release

echo "CI OK"
