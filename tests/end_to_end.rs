//! Cross-crate integration tests: full-system runs exercising the ISA,
//! memory hierarchy, branch prediction, out-of-order core, PFM fabric,
//! custom components and workloads together.

use pfm_fabric::{FabricParams, PortPolicy, StallPolicy};
use pfm_sim::{run_baseline, run_pfm, RunConfig};
use pfm_workloads::{astar, AstarParams, AstarVariant};

fn small_astar() -> pfm_workloads::UseCase {
    astar(&AstarParams {
        grid_w: 64,
        grid_h: 64,
        fills: 2,
        ..AstarParams::default()
    })
}

fn rc() -> RunConfig {
    let mut rc = RunConfig::paper_scale();
    rc.max_instrs = 200_000;
    rc
}

#[test]
fn astar_pfm_beats_baseline_and_slashes_mpki() {
    let uc = small_astar();
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    assert!(
        base.stats.mpki() > 20.0,
        "baseline astar must be mispredict-bound, MPKI {}",
        base.stats.mpki()
    );
    assert!(
        pfm.stats.mpki() < 5.0,
        "custom predictor must remove the bottleneck, MPKI {}",
        pfm.stats.mpki()
    );
    assert!(
        pfm.speedup_over(&base) > 50.0,
        "expected a large speedup, got {:.1}%",
        pfm.speedup_over(&base)
    );
}

#[test]
fn architectural_state_is_identical_with_and_without_pfm() {
    // The fabric only intervenes microarchitecturally (§2.4): the
    // memory image after the run must be bit-identical.
    let uc = small_astar();
    let rc = RunConfig {
        max_instrs: u64::MAX,
        max_cycles: 80_000_000,
        ..rc()
    };

    let mut base_core = pfm_core::Core::new(
        rc.core.clone(),
        uc.machine(),
        pfm_mem::Hierarchy::new(rc.hier.clone()),
    );
    base_core
        .run(&mut pfm_core::NoPfm, u64::MAX, rc.max_cycles)
        .unwrap();

    let mut fabric = uc.fabric(FabricParams::paper_default());
    let mut pfm_core_run = pfm_core::Core::new(
        rc.core.clone(),
        uc.machine(),
        pfm_mem::Hierarchy::new(rc.hier.clone()),
    );
    pfm_core_run
        .run(&mut fabric, u64::MAX, rc.max_cycles)
        .unwrap();

    assert!(base_core.finished() && pfm_core_run.finished());
    assert_eq!(base_core.stats().retired, pfm_core_run.stats().retired);
    // Compare the waymap image cell by cell.
    let w = 64 * 64;
    for idx in 0..w {
        let a = base_core
            .machine()
            .mem()
            .read_committed(pfm_workloads::astar::WAYMAP_BASE + 8 * idx, 8);
        let b = pfm_core_run
            .machine()
            .mem()
            .read_committed(pfm_workloads::astar::WAYMAP_BASE + 8 * idx, 8);
        assert_eq!(a, b, "waymap divergence at cell {idx}");
    }
}

#[test]
fn perfect_bp_bounds_the_custom_predictor() {
    let uc = small_astar();
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let perf = run_baseline(&uc, &rc.clone().perfect_bp()).unwrap();
    let pfm = run_pfm(&uc, FabricParams::paper_default().delay(0), &rc).unwrap();
    // The custom predictor may slightly exceed perfect BP thanks to its
    // prefetching side effect (the paper observes exactly this), but
    // not by much.
    assert!(
        pfm.ipc() < perf.ipc() * 1.25,
        "custom {:.3} vs perfBP {:.3}",
        pfm.ipc(),
        perf.ipc()
    );
    assert!(perf.speedup_over(&base) > 0.0);
}

#[test]
fn narrow_fabric_degrades_gracefully() {
    let uc = small_astar();
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let wide = run_pfm(&uc, FabricParams::paper_default().clk_w(4, 4).delay(0), &rc).unwrap();
    let narrow = run_pfm(&uc, FabricParams::paper_default().clk_w(4, 2).delay(0), &rc).unwrap();
    assert!(
        wide.ipc() >= narrow.ipc(),
        "wider component cannot be slower"
    );
    // Both must still beat the baseline comfortably at this scale.
    assert!(narrow.speedup_over(&base) > 10.0);
}

#[test]
fn proceed_and_drop_policy_runs_without_stalling_fetch() {
    let uc = small_astar();
    let rc = rc();
    let mut params = FabricParams::paper_default();
    params.stall_policy = StallPolicy::ProceedAndDrop;
    let r = run_pfm(&uc, params, &rc).unwrap();
    assert_eq!(
        r.stats.fetch_fabric_stall_cycles, 0,
        "the alternative Fetch Agent never stalls fetch"
    );
    assert!(r.stats.retired >= 200_000);
}

#[test]
fn slipstream_variant_lands_between_baseline_and_pfm() {
    let rc = rc();
    let custom = astar(&AstarParams {
        grid_w: 64,
        grid_h: 64,
        fills: 2,
        ..AstarParams::default()
    });
    let slip = astar(&AstarParams {
        grid_w: 64,
        grid_h: 64,
        fills: 2,
        variant: AstarVariant::Slipstream,
        ..AstarParams::default()
    });
    let base = run_baseline(&custom, &rc).unwrap();
    let pfm = run_pfm(&custom, FabricParams::paper_default(), &rc).unwrap();
    let ss = run_pfm(&slip, FabricParams::paper_default(), &rc).unwrap();
    assert!(ss.ipc() > base.ipc(), "pre-execution still helps");
    assert!(
        ss.ipc() < pfm.ipc(),
        "but custom knowledge of the ROI helps much more"
    );
}

#[test]
fn port_policy_sweep_is_flat_for_astar() {
    // Figure 9c: PRF port availability is not an issue.
    let uc = small_astar();
    let rc = rc();
    let mut ipcs = Vec::new();
    for p in [PortPolicy::All, PortPolicy::Ls, PortPolicy::Ls1] {
        let r = run_pfm(&uc, FabricParams::paper_default().port(p), &rc).unwrap();
        ipcs.push(r.ipc());
    }
    let max = ipcs.iter().cloned().fold(f64::MIN, f64::max);
    let min = ipcs.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        (max - min) / max < 0.08,
        "port sensitivity too high: {ipcs:?}"
    );
}

#[test]
fn deterministic_runs() {
    let uc = small_astar();
    let rc = rc();
    let a = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    let b = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    assert_eq!(
        a.stats.cycles, b.stats.cycles,
        "the simulator must be deterministic"
    );
    assert_eq!(a.stats.mispredicts, b.stats.mispredicts);
}
