//! Integration tests for the bfs component and the custom prefetchers.

use pfm_fabric::{FabricParams, PortPolicy};
use pfm_sim::{run_baseline, run_pfm, RunConfig};
use pfm_workloads::graphs::shuffle_labels_fraction;
use pfm_workloads::{bfs, lbm, libquantum, road_graph, BfsParams};

fn rc() -> RunConfig {
    let mut rc = RunConfig::paper_scale();
    rc.max_instrs = 250_000;
    rc
}

fn small_roads() -> pfm_workloads::UseCase {
    let g = shuffle_labels_fraction(&road_graph(200, 200, 100, 7), 3, 0.05);
    bfs(
        &g,
        "roads",
        &BfsParams {
            source: 5,
            start_level: 60,
            ..BfsParams::default()
        },
    )
}

#[test]
fn bfs_component_removes_both_bottlenecks() {
    let uc = small_roads();
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    assert!(
        base.stats.mpki() > 10.0,
        "baseline bfs MPKI {}",
        base.stats.mpki()
    );
    assert!(pfm.stats.mpki() < 5.0, "pfm bfs MPKI {}", pfm.stats.mpki());
    assert!(
        pfm.speedup_over(&base) > 30.0,
        "speedup {:.0}%",
        pfm.speedup_over(&base)
    );
    let f = pfm.fabric.unwrap();
    assert!(
        f.loads_injected > 1_000,
        "the component must run ahead with loads"
    );
}

#[test]
fn bfs_oracles_order_as_in_fig12() {
    let uc = small_roads();
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let pbp = run_baseline(&uc, &rc.clone().perfect_bp()).unwrap();
    let pd = run_baseline(&uc, &rc.clone().perfect_dcache()).unwrap();
    let both = run_baseline(&uc, &rc.clone().perfect_bp().perfect_dcache()).unwrap();
    assert!(pbp.ipc() > base.ipc());
    assert!(pd.ipc() > pbp.ipc(), "memory dominates branches for bfs");
    assert!(
        both.ipc() > pd.ipc(),
        "both bottlenecks must be attacked simultaneously"
    );
}

#[test]
fn libquantum_prefetcher_erases_dram_misses() {
    let uc = libquantum(400_000, 2);
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let p = FabricParams::paper_default()
        .clk_w(4, 1)
        .delay(0)
        .port(PortPolicy::All);
    let pfm = run_pfm(&uc, p, &rc).unwrap();
    assert!(
        base.hier.dram_accesses > 1_000,
        "baseline must miss to DRAM"
    );
    assert!(
        pfm.hier.dram_accesses < base.hier.dram_accesses / 10,
        "prefetcher should erase demand DRAM misses: {} -> {}",
        base.hier.dram_accesses,
        pfm.hier.dram_accesses
    );
    assert!(pfm.speedup_over(&base) > 30.0);
}

#[test]
fn prefetchers_are_resistant_to_c_and_w() {
    // Figure 17's headline property.
    let uc = libquantum(400_000, 2);
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let mut speedups = Vec::new();
    for (c, w) in [(1, 1), (4, 1), (8, 1)] {
        let p = FabricParams::paper_default()
            .clk_w(c, w)
            .delay(0)
            .port(PortPolicy::All);
        let r = run_pfm(&uc, p, &rc).unwrap();
        speedups.push(r.speedup_over(&base));
    }
    for s in &speedups {
        assert!(*s > 30.0, "all C/W configs should help: {speedups:?}");
    }
}

#[test]
fn lbm_cluster_prefetching_works_as_a_set() {
    let uc = lbm(80_000, 9);
    let rc = rc();
    let base = run_baseline(&uc, &rc).unwrap();
    let p = FabricParams::paper_default()
        .clk_w(4, 4)
        .delay(0)
        .port(PortPolicy::All);
    let pfm = run_pfm(&uc, p, &rc).unwrap();
    let f = pfm.fabric.unwrap();
    assert!(
        f.prefetches_injected > 10_000,
        "cluster prefetches must flow"
    );
    assert!(pfm.ipc() > base.ipc());
}

#[test]
fn fabric_loads_never_modify_architectural_state() {
    // §2.4 security: run bfs with PFM, re-run functionally, compare
    // the parent array.
    let g = shuffle_labels_fraction(&road_graph(60, 60, 20, 7), 3, 0.05);
    let uc = bfs(
        &g,
        "roads",
        &BfsParams {
            source: 5,
            ..BfsParams::default()
        },
    );
    let rc = RunConfig {
        max_instrs: u64::MAX,
        max_cycles: 60_000_000,
        ..rc()
    };
    let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    assert!(pfm.stats.retired > 0);
    let mut m = uc.machine();
    m.run(100_000_000).unwrap();
    assert!(m.halted());
    // A second PFM run must reproduce the same retired count (pure
    // microarchitectural intervention, deterministic timing).
    let pfm2 = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    assert_eq!(pfm.stats.retired, pfm2.stats.retired);
}
