//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro --all                # everything, paper order
//! repro fig8 table2 fig18    # a subset
//! repro --quick fig12        # smaller instruction budget
//! ```

use pfm_sim::experiments;
use pfm_sim::RunConfig;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let ids: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(|s| s.as_str()).collect();

    let mut rc = RunConfig::paper_scale();
    if quick {
        rc.max_instrs = 300_000;
    }

    let menu: Vec<(&str, fn(&RunConfig) -> experiments::Experiment)> = vec![
        ("fig2", experiments::fig2),
        ("fig8", experiments::fig8),
        ("table2", experiments::table2),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("fig12", experiments::fig12),
        ("table3", experiments::table3),
        ("fig13", experiments::fig13),
        ("fig14", experiments::fig14),
        ("fig17", experiments::fig17),
        ("table4", |_| experiments::table4()),
        ("fig18", experiments::fig18),
        ("ablations", experiments::ablations),
    ];

    let total = Instant::now();
    for (id, f) in menu {
        if !all && !ids.contains(&id) {
            continue;
        }
        let t = Instant::now();
        let exp = f(&rc);
        println!("{}", exp.render());
        println!("   [{} regenerated in {:.1}s]\n", id, t.elapsed().as_secs_f64());
    }
    println!("total: {:.1}s", total.elapsed().as_secs_f64());
}
