//! Regenerates the paper's tables and figures through the
//! plan → execute → assemble pipeline: all requested experiments are
//! planned up front, identical runs (e.g. the astar baseline shared by
//! six experiments) are deduplicated, and the unique set is simulated
//! across worker threads.
//!
//! ```text
//! repro --all                # everything, paper order
//! repro fig8 table2 fig18    # a subset
//! repro --quick fig12        # smaller instruction budget
//! repro --all --jobs 4       # four worker threads
//! repro --list               # what can be regenerated (+ store hit/miss)
//! repro --bench              # simulator MKIPS throughput benchmark
//! repro --bench --functional # + functional-executor batch and speedup
//! repro --sampled libquantum # sampled run: fast-forward + detailed intervals
//! repro --analyze            # static analysis of every use case
//! repro --derive             # derived-vs-configured watchlist gate
//! repro --chaos              # fault-injection suite (checksum proof)
//! repro --chaos-smoke        # CI-sized chaos subset
//! repro --context-switch     # two tenants time-sharing the fabric slot
//! repro --all --keep-going   # don't stop claiming runs on failure
//! repro --store <dir>        # result store directory (default .pfm-store)
//! repro --no-store           # disable the result store
//! repro --store-stats        # print store contents and exit
//! repro --serve              # experiment-service daemon (Unix socket)
//! repro --connect [ids...]   # send a plan request to a running daemon
//! repro --connect --shutdown # stop the daemon
//! repro --socket <path>      # socket path for --serve/--connect
//! ```
//!
//! Results are cached in a content-addressed store keyed by
//! `(spec content key, code fingerprint)`: a warm invocation serves
//! hits at memory speed and only simulates what the store has never
//! seen. `--serve` puts a daemon in front of the same store, sharding
//! cache-missing runs across `repro --worker` child processes.
//!
//! A failed, panicked or hung run never aborts the process: the
//! executor isolates it, the remaining experiments still assemble, and
//! `repro` prints a failure table and exits non-zero.

use pfm_sim::experiments::{plan_for, ALL_IDS, EXTRA_IDS};
use pfm_sim::store::{find_workspace_root, CodeFingerprint, ResultStore};
use pfm_sim::{run_bench, run_plans, run_sampled, service, ExecOptions, RunConfig, SampledConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Exits with a contextual message on stderr; used for conditions the
/// user cannot distinguish from a hang otherwise (broken pipe aside,
/// any failure here is a bug or an environment problem worth naming).
fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("repro: {context}: {err}");
    std::process::exit(1);
}

/// Resolves an experiment id to its plan, exiting with the planner's
/// typed error when it does not recognise it (ids are validated
/// against `ALL_IDS`/`EXTRA_IDS` before this point, so a miss means
/// the menu and planner disagree).
fn plan_or_exit(id: &str, rc: &RunConfig) -> pfm_sim::plan::ExperimentPlan {
    match plan_for(id, rc) {
        Ok(p) => p,
        Err(e) => fail("cannot plan experiment", e),
    }
}

/// Prints the experiment menu. With a store attached, each
/// experiment's runs are annotated hit/miss against it (at the scale
/// `rc` implies), so the listing shows what an invocation would
/// actually simulate.
fn print_menu(out: &mut impl std::io::Write, store: Option<&ResultStore>, rc: &RunConfig) {
    let mut w = |line: String| {
        if let Err(e) = writeln!(out, "{line}") {
            fail("cannot write experiment menu", e);
        }
    };
    w("available experiments:".to_string());
    for id in ALL_IDS.into_iter().chain(EXTRA_IDS) {
        let plan = plan_or_exit(id, rc);
        match store {
            None => w(format!("  {id:<12} {}", plan.title)),
            Some(store) => {
                let unique = pfm_sim::exec::dedup_specs(plan.specs());
                let hits = unique.iter().filter(|s| store.contains(s.key())).count();
                w(format!(
                    "  {id:<12} {} [{hits}/{} cached]",
                    plan.title,
                    unique.len()
                ));
                for spec in &unique {
                    let status = if store.contains(spec.key()) {
                        "hit "
                    } else {
                        "miss"
                    };
                    w(format!("      {status} {}  {}", spec.name(), spec.key()));
                }
            }
        }
    }
}

/// How the CLI flags resolve to a store.
enum StoreChoice {
    /// `--no-store`.
    Disabled,
    /// Default: `<workspace root>/.pfm-store` when a workspace is
    /// found, silently storeless otherwise.
    Default,
    /// `--store <dir>`.
    Explicit(PathBuf),
}

/// Opens the store the flags ask for. The code fingerprint is baked
/// into the binary at build time (stats-schema version + a digest of
/// the sources it was compiled from), so it needs no workspace at run
/// time — only the *default* store location does.
fn open_store(choice: &StoreChoice) -> Option<Arc<ResultStore>> {
    let dir = match choice {
        StoreChoice::Disabled => return None,
        StoreChoice::Explicit(dir) => dir.clone(),
        StoreChoice::Default => match find_workspace_root() {
            Some(root) => root.join(".pfm-store"),
            None => {
                eprintln!("repro: no workspace root found; running without a result store");
                return None;
            }
        },
    };
    match ResultStore::open(&dir, CodeFingerprint::of_build()) {
        Ok(store) => Some(Arc::new(store)),
        Err(e) => fail(&format!("cannot open result store at {}", dir.display()), e),
    }
}

/// The socket a daemon/client pair agrees on when `--socket` is not
/// given: `repro.sock` inside the store directory (explicit or the
/// workspace default). `None` when no directory can be derived.
fn default_socket(choice: &StoreChoice) -> Option<PathBuf> {
    let dir = match choice {
        StoreChoice::Explicit(dir) => dir.clone(),
        StoreChoice::Default | StoreChoice::Disabled => find_workspace_root()?.join(".pfm-store"),
    };
    Some(dir.join("repro.sock"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker role first: the child must never parse user-facing flags
    // or touch the store — its whole world is the stdin assignment.
    if args.iter().any(|a| a == "--worker") {
        std::process::exit(service::worker_main());
    }

    let mut quick = false;
    let mut all = false;
    let mut list = false;
    let mut bench = false;
    let mut functional = false;
    let mut sampled: Option<String> = None;
    let mut analyze = false;
    let mut derive = false;
    let mut keep_going = false;
    let mut serve = false;
    let mut connect = false;
    let mut shutdown = false;
    let mut store_stats = false;
    let mut store_choice = StoreChoice::Default;
    let mut socket: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut bad_args: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--all" => all = true,
            "--list" => list = true,
            "--bench" => bench = true,
            "--functional" => functional = true,
            "--analyze" => analyze = true,
            "--derive" => derive = true,
            "--keep-going" => keep_going = true,
            "--serve" => serve = true,
            "--connect" => connect = true,
            "--shutdown" => shutdown = true,
            "--store-stats" => store_stats = true,
            "--no-store" => store_choice = StoreChoice::Disabled,
            "--chaos" => ids.push("chaos".to_string()),
            "--chaos-smoke" => ids.push("chaos-smoke".to_string()),
            "--context-switch" => ids.push("context-switch".to_string()),
            "--store" => match it.next() {
                Some(dir) => store_choice = StoreChoice::Explicit(PathBuf::from(dir)),
                None => bad_args.push("--store <dir>".to_string()),
            },
            "--socket" => match it.next() {
                Some(path) => socket = Some(PathBuf::from(path)),
                None => bad_args.push("--socket <path>".to_string()),
            },
            "--sampled" => match it.next() {
                Some(name) => sampled = Some(name),
                None => bad_args.push("--sampled <usecase>".to_string()),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = Some(n),
                None => bad_args.push("--jobs <N>".to_string()),
            },
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    match n.parse() {
                        Ok(n) => jobs = Some(n),
                        Err(_) => bad_args.push(other.to_string()),
                    }
                } else if other.starts_with("--")
                    || !(ALL_IDS.contains(&other) || EXTRA_IDS.contains(&other))
                {
                    bad_args.push(other.to_string());
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }

    let rc_for_menu = service::run_config_for(quick);
    if !bad_args.is_empty() {
        eprintln!("unknown argument(s): {}", bad_args.join(", "));
        eprintln!();
        print_menu(&mut std::io::stderr(), None, &rc_for_menu);
        eprintln!(
            "\nflags: --all --quick --list --bench --functional --sampled <usecase> \
             --analyze --derive --chaos --chaos-smoke --context-switch --keep-going \
             --jobs <N> --store <dir> --no-store --store-stats --serve --connect \
             --shutdown --socket <path>"
        );
        std::process::exit(1);
    }

    // Client role: ship the request to a daemon and stream its answer.
    // The daemon owns the store; the client needs only the socket.
    if connect {
        let sock = socket.clone().unwrap_or_else(|| {
            default_socket(&store_choice)
                .unwrap_or_else(|| fail("--connect needs a socket", "pass --socket <path>"))
        });
        let req = if shutdown {
            service::Request::Shutdown
        } else {
            service::Request::Plan(service::PlanRequest {
                ids: ids.clone(),
                quick,
                jobs: jobs.unwrap_or(0),
            })
        };
        match service::request(&sock, &req) {
            Ok(code) => std::process::exit(code),
            Err(e) => fail(&format!("cannot reach daemon at {}", sock.display()), e),
        }
    }

    let store = open_store(&store_choice);

    if store_stats {
        match &store {
            Some(store) => print!("{}", store.render_stats()),
            None => println!("store: disabled"),
        }
        return;
    }

    // Server role: bind the socket and answer plan requests until a
    // client sends --shutdown.
    if serve {
        let sock = socket.clone().unwrap_or_else(|| {
            default_socket(&store_choice)
                .unwrap_or_else(|| fail("--serve needs a socket", "pass --socket <path>"))
        });
        if let Some(parent) = sock.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                fail("cannot create socket directory", e);
            }
        }
        let opts = service::ServeOptions {
            socket: sock,
            jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
            store,
            worker_exe: None,
        };
        if let Err(e) = service::serve(&opts) {
            fail("experiment service failed", e);
        }
        return;
    }

    if list {
        print_menu(&mut std::io::stdout(), store.as_deref(), &rc_for_menu);
        return;
    }

    // Static analysis gate: cross-check every registered use case's
    // configuration against its assembled kernel (same suite as the
    // `pfm-analyze` binary). Any finding is a failure.
    if analyze {
        let report = pfm_sim::analyze::analyze_all(None);
        let mut total = 0usize;
        for (name, findings) in &report {
            if findings.is_empty() {
                println!("analyze {name}: clean");
            } else {
                total += findings.len();
                println!("analyze {name}: {} finding(s)", findings.len());
                for f in findings {
                    println!("  {f}");
                }
            }
        }
        if total > 0 {
            fail(
                "static analysis found defects",
                format!("{total} finding(s) across {} program(s)", report.len()),
            );
        }
        println!("analyze: {} program(s) clean", report.len());
        return;
    }

    // Interface-inference gate: derive every use case's watch set and
    // stream/branch profile by abstract interpretation and require the
    // configured component watchlists to be fully covered (or carry a
    // typed divergence). Any coverage gap is a failure.
    if derive {
        let report = pfm_sim::analyze::derive_all(None);
        let mut gaps = 0usize;
        for (name, p) in &report {
            println!("derive {name}: {}", p.summary());
            for c in &p.coverage {
                gaps += c.gaps.len();
                for (pc, kind) in &c.gaps {
                    println!("  gap: {} watches {kind} @ {pc:#x} — not derived", c.origin);
                }
            }
        }
        if gaps > 0 {
            fail(
                "interface inference left configured watch entries underived",
                format!("{gaps} coverage gap(s) across {} program(s)", report.len()),
            );
        }
        println!(
            "derive: {} program(s), every configured watch entry derived or explained",
            report.len()
        );
        return;
    }

    if ids.is_empty() && !all {
        all = true;
    }

    let rc = service::run_config_for(quick);

    if bench {
        let opts = ExecOptions {
            jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
            progress: true,
            keep_going,
            store: None, // the benchmark times real simulation
            ..ExecOptions::default()
        };
        let report = run_bench(&rc, &opts, functional);
        println!("{}", report.render());
        const OUT: &str = "BENCH_sim_throughput.json";
        if let Err(e) = std::fs::write(OUT, report.to_json()) {
            fail(&format!("cannot write {OUT}"), e);
        }
        eprintln!("wrote {OUT}");
        return;
    }

    // Sampled mode: functional fast-forward with evenly spaced machine
    // snapshots, then parallel detailed intervals assembled into a mean
    // IPC with a 95% confidence interval.
    if let Some(name) = sampled {
        let factory = pfm_sim::usecases::throughput_suite_factories()
            .into_iter()
            .find(|f| f.name() == name);
        let factory = match factory {
            Some(f) => f,
            None => {
                let known: Vec<String> = pfm_sim::usecases::throughput_suite_factories()
                    .iter()
                    .map(|f| f.name().to_string())
                    .collect();
                fail(
                    "unknown use case for --sampled",
                    format!("`{name}` (known: {})", known.join(", ")),
                )
            }
        };
        let cfg = if quick {
            SampledConfig {
                total_instrs: 2_000_000,
                interval_instrs: 100_000,
                warmup_instrs: 20_000,
                ..SampledConfig::paper_scale()
            }
        } else {
            SampledConfig::paper_scale()
        };
        let opts = ExecOptions {
            jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
            progress: true,
            keep_going,
            store: None, // interval specs are internal to the sampler
            ..ExecOptions::default()
        };
        match run_sampled(&factory, &cfg, &rc, &opts) {
            Ok(report) => print!("{}", report.render()),
            Err(e) => fail("sampled run failed", e),
        }
        return;
    }

    // Paper order regardless of argument order, as before the planner;
    // the chaos family (never part of `--all`) runs after the paper
    // set, in EXTRA_IDS order.
    let plans: Vec<_> = ALL_IDS
        .iter()
        .filter(|id| all || ids.iter().any(|w| w == *id))
        .chain(EXTRA_IDS.iter().filter(|id| ids.iter().any(|w| w == *id)))
        .map(|id| plan_or_exit(id, &rc))
        .collect();

    let opts = ExecOptions {
        jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
        progress: true,
        keep_going,
        store: store.clone(),
        ..ExecOptions::default()
    };
    let unique: usize = {
        let specs: Vec<_> = plans
            .iter()
            .flat_map(|p| p.specs().iter().cloned())
            .collect();
        pfm_sim::exec::dedup_specs(&specs).len()
    };
    eprintln!(
        "planned {} experiment(s), {} unique run(s), {} job(s)",
        plans.len(),
        unique,
        opts.jobs
    );

    let (experiments, report) = run_plans(plans, &opts);
    let mut broken = 0usize;
    for exp in &experiments {
        match exp {
            Ok(exp) => println!("{}", exp.render()),
            Err(e) => {
                broken += 1;
                eprintln!("repro: experiment not assembled: {e}");
            }
        }
    }
    let table = report.failure_table();
    if !table.is_empty() {
        eprintln!("{table}");
    }
    println!("plan: {}", report.summary());
    if broken > 0 || !report.failures.is_empty() || report.skipped > 0 {
        eprintln!(
            "repro: {} of {} experiment(s) incomplete",
            broken,
            experiments.len()
        );
        std::process::exit(1);
    }
}
