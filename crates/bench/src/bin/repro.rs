//! Regenerates the paper's tables and figures through the
//! plan → execute → assemble pipeline: all requested experiments are
//! planned up front, identical runs (e.g. the astar baseline shared by
//! six experiments) are deduplicated, and the unique set is simulated
//! across worker threads.
//!
//! ```text
//! repro --all                # everything, paper order
//! repro fig8 table2 fig18    # a subset
//! repro --quick fig12        # smaller instruction budget
//! repro --all --jobs 4       # four worker threads
//! repro --list               # what can be regenerated
//! repro --bench              # simulator MKIPS throughput benchmark
//! repro --bench --functional # + functional-executor batch and speedup
//! repro --sampled libquantum # sampled run: fast-forward + detailed intervals
//! repro --analyze            # static analysis of every use case
//! repro --derive             # derived-vs-configured watchlist gate
//! repro --chaos              # fault-injection suite (checksum proof)
//! repro --chaos-smoke        # CI-sized chaos subset
//! repro --all --keep-going   # don't stop claiming runs on failure
//! ```
//!
//! A failed, panicked or hung run never aborts the process: the
//! executor isolates it, the remaining experiments still assemble, and
//! `repro` prints a failure table and exits non-zero.

use pfm_sim::experiments::{plan_for, ALL_IDS, EXTRA_IDS};
use pfm_sim::{run_bench, run_plans, run_sampled, ExecOptions, RunConfig, SampledConfig};

/// Exits with a contextual message on stderr; used for conditions the
/// user cannot distinguish from a hang otherwise (broken pipe aside,
/// any failure here is a bug or an environment problem worth naming).
fn fail(context: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("repro: {context}: {err}");
    std::process::exit(1);
}

/// Resolves an experiment id to its plan, exiting with the planner's
/// typed error when it does not recognise it (ids are validated
/// against `ALL_IDS`/`EXTRA_IDS` before this point, so a miss means
/// the menu and planner disagree).
fn plan_or_exit(id: &str, rc: &RunConfig) -> pfm_sim::plan::ExperimentPlan {
    match plan_for(id, rc) {
        Ok(p) => p,
        Err(e) => fail("cannot plan experiment", e),
    }
}

fn print_menu(out: &mut impl std::io::Write) {
    let rc = RunConfig::test_scale();
    if let Err(e) = writeln!(out, "available experiments:") {
        fail("cannot write experiment menu", e);
    }
    for id in ALL_IDS.into_iter().chain(EXTRA_IDS) {
        let plan = plan_or_exit(id, &rc);
        if let Err(e) = writeln!(out, "  {id:<12} {}", plan.title) {
            fail("cannot write experiment menu", e);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut all = false;
    let mut list = false;
    let mut bench = false;
    let mut functional = false;
    let mut sampled: Option<String> = None;
    let mut analyze = false;
    let mut derive = false;
    let mut keep_going = false;
    let mut jobs: Option<usize> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut bad_args: Vec<String> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--all" => all = true,
            "--list" => list = true,
            "--bench" => bench = true,
            "--functional" => functional = true,
            "--analyze" => analyze = true,
            "--derive" => derive = true,
            "--keep-going" => keep_going = true,
            "--chaos" => ids.push("chaos".to_string()),
            "--chaos-smoke" => ids.push("chaos-smoke".to_string()),
            "--sampled" => match it.next() {
                Some(name) => sampled = Some(name),
                None => bad_args.push("--sampled <usecase>".to_string()),
            },
            "--jobs" => match it.next().and_then(|n| n.parse().ok()) {
                Some(n) => jobs = Some(n),
                None => bad_args.push("--jobs <N>".to_string()),
            },
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    match n.parse() {
                        Ok(n) => jobs = Some(n),
                        Err(_) => bad_args.push(other.to_string()),
                    }
                } else if other.starts_with("--")
                    || !(ALL_IDS.contains(&other) || EXTRA_IDS.contains(&other))
                {
                    bad_args.push(other.to_string());
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }

    if !bad_args.is_empty() {
        eprintln!("unknown argument(s): {}", bad_args.join(", "));
        eprintln!();
        print_menu(&mut std::io::stderr());
        eprintln!(
            "\nflags: --all --quick --list --bench --functional --sampled <usecase> \
             --analyze --derive --chaos --chaos-smoke --keep-going --jobs <N>"
        );
        std::process::exit(1);
    }

    if list {
        print_menu(&mut std::io::stdout());
        return;
    }

    // Static analysis gate: cross-check every registered use case's
    // configuration against its assembled kernel (same suite as the
    // `pfm-analyze` binary). Any finding is a failure.
    if analyze {
        let report = pfm_sim::analyze::analyze_all(None);
        let mut total = 0usize;
        for (name, findings) in &report {
            if findings.is_empty() {
                println!("analyze {name}: clean");
            } else {
                total += findings.len();
                println!("analyze {name}: {} finding(s)", findings.len());
                for f in findings {
                    println!("  {f}");
                }
            }
        }
        if total > 0 {
            fail(
                "static analysis found defects",
                format!("{total} finding(s) across {} program(s)", report.len()),
            );
        }
        println!("analyze: {} program(s) clean", report.len());
        return;
    }

    // Interface-inference gate: derive every use case's watch set and
    // stream/branch profile by abstract interpretation and require the
    // configured component watchlists to be fully covered (or carry a
    // typed divergence). Any coverage gap is a failure.
    if derive {
        let report = pfm_sim::analyze::derive_all(None);
        let mut gaps = 0usize;
        for (name, p) in &report {
            println!("derive {name}: {}", p.summary());
            for c in &p.coverage {
                gaps += c.gaps.len();
                for (pc, kind) in &c.gaps {
                    println!("  gap: {} watches {kind} @ {pc:#x} — not derived", c.origin);
                }
            }
        }
        if gaps > 0 {
            fail(
                "interface inference left configured watch entries underived",
                format!("{gaps} coverage gap(s) across {} program(s)", report.len()),
            );
        }
        println!(
            "derive: {} program(s), every configured watch entry derived or explained",
            report.len()
        );
        return;
    }

    if ids.is_empty() && !all {
        all = true;
    }

    let mut rc = RunConfig::paper_scale();
    if quick {
        rc.max_instrs = 300_000;
    }

    if bench {
        let opts = ExecOptions {
            jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
            progress: true,
            keep_going,
        };
        let report = run_bench(&rc, &opts, functional);
        println!("{}", report.render());
        const OUT: &str = "BENCH_sim_throughput.json";
        if let Err(e) = std::fs::write(OUT, report.to_json()) {
            fail(&format!("cannot write {OUT}"), e);
        }
        eprintln!("wrote {OUT}");
        return;
    }

    // Sampled mode: functional fast-forward with evenly spaced machine
    // snapshots, then parallel detailed intervals assembled into a mean
    // IPC with a 95% confidence interval.
    if let Some(name) = sampled {
        let factory = pfm_sim::usecases::throughput_suite_factories()
            .into_iter()
            .find(|f| f.name() == name);
        let factory = match factory {
            Some(f) => f,
            None => {
                let known: Vec<String> = pfm_sim::usecases::throughput_suite_factories()
                    .iter()
                    .map(|f| f.name().to_string())
                    .collect();
                fail(
                    "unknown use case for --sampled",
                    format!("`{name}` (known: {})", known.join(", ")),
                )
            }
        };
        let cfg = if quick {
            SampledConfig {
                total_instrs: 2_000_000,
                interval_instrs: 100_000,
                warmup_instrs: 20_000,
                ..SampledConfig::paper_scale()
            }
        } else {
            SampledConfig::paper_scale()
        };
        let opts = ExecOptions {
            jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
            progress: true,
            keep_going,
        };
        match run_sampled(&factory, &cfg, &rc, &opts) {
            Ok(report) => print!("{}", report.render()),
            Err(e) => fail("sampled run failed", e),
        }
        return;
    }

    // Paper order regardless of argument order, as before the planner;
    // the chaos family (never part of `--all`) runs after the paper
    // set, in EXTRA_IDS order.
    let plans: Vec<_> = ALL_IDS
        .iter()
        .filter(|id| all || ids.iter().any(|w| w == *id))
        .chain(EXTRA_IDS.iter().filter(|id| ids.iter().any(|w| w == *id)))
        .map(|id| plan_or_exit(id, &rc))
        .collect();

    let opts = ExecOptions {
        jobs: jobs.unwrap_or_else(|| ExecOptions::default().jobs),
        progress: true,
        keep_going,
    };
    let unique: usize = {
        let specs: Vec<_> = plans
            .iter()
            .flat_map(|p| p.specs().iter().cloned())
            .collect();
        pfm_sim::exec::dedup_specs(&specs).len()
    };
    eprintln!(
        "planned {} experiment(s), {} unique run(s), {} job(s)",
        plans.len(),
        unique,
        opts.jobs
    );

    let (experiments, report) = run_plans(plans, &opts);
    let mut broken = 0usize;
    for exp in &experiments {
        match exp {
            Ok(exp) => println!("{}", exp.render()),
            Err(e) => {
                broken += 1;
                eprintln!("repro: experiment not assembled: {e}");
            }
        }
    }
    let table = report.failure_table();
    if !table.is_empty() {
        eprintln!("{table}");
    }
    println!("plan: {}", report.summary());
    if broken > 0 || !report.failures.is_empty() || report.skipped > 0 {
        eprintln!(
            "repro: {} of {} experiment(s) incomplete",
            broken,
            experiments.len()
        );
        std::process::exit(1);
    }
}
