//! `pfm-analyze`: static analysis of every registered use case.
//!
//! Builds each use case in the throughput-suite registry, merges its
//! watchlist (custom component + FST + RST), and runs the `pfm-analyze`
//! check suite — CFG construction, dominators/loops, dataflow, and
//! watchlist validation — over the assembled kernel. Exits non-zero if
//! any program has findings.
//!
//! ```text
//! pfm-analyze                    # human-readable report
//! pfm-analyze --json             # machine-readable (schema pfm-analyze/1)
//! pfm-analyze --corrupt-watch astar   # test seam: must fail
//! ```
//!
//! `--corrupt-watch <name>` redirects the named use case's first
//! watchlist entry to a bogus PC before analysis; CI uses it to prove
//! the analyzer has teeth (a clean report under corruption would mean
//! the cross-check is vacuous).

use pfm_analyze::report_to_json;
use pfm_sim::analyze::analyze_all;

fn main() {
    let mut json = false;
    let mut corrupt: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--corrupt-watch" => match it.next() {
                Some(name) => corrupt = Some(name),
                None => {
                    eprintln!("pfm-analyze: --corrupt-watch needs a use-case name");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("pfm-analyze: unknown argument `{other}`");
                eprintln!("usage: pfm-analyze [--json] [--corrupt-watch <usecase>]");
                std::process::exit(2);
            }
        }
    }

    let report = analyze_all(corrupt.as_deref());
    if let Some(name) = &corrupt {
        if !report.iter().any(|(n, _)| n == name) {
            eprintln!("pfm-analyze: no registered use case named `{name}`");
            std::process::exit(2);
        }
    }

    let total: usize = report.iter().map(|(_, f)| f.len()).sum();
    if json {
        println!("{}", report_to_json(&report));
    } else {
        for (name, findings) in &report {
            if findings.is_empty() {
                println!("{name}: clean");
            } else {
                println!("{name}: {} finding(s)", findings.len());
                for f in findings {
                    println!("  {f}");
                }
            }
        }
        println!("analyzed {} program(s), {} finding(s)", report.len(), total);
    }
    if total > 0 {
        std::process::exit(1);
    }
}
