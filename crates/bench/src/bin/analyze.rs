//! `pfm-analyze`: static analysis of every registered use case.
//!
//! Builds each use case in the throughput-suite registry, merges its
//! watchlist (custom component + FST + RST), and runs the `pfm-analyze`
//! check suite — CFG construction, dominators/loops, dataflow, and
//! watchlist validation — over the assembled kernel. Exits non-zero if
//! any program has findings.
//!
//! ```text
//! pfm-analyze                    # human-readable report
//! pfm-analyze --json             # machine-readable (schema pfm-analyze/1)
//! pfm-analyze --json -o out.json # atomic write (temp + rename)
//! pfm-analyze --profile astar    # interface-inference profile (pfm-analyze/2)
//! pfm-analyze --profile all --json -o profiles.json
//! pfm-analyze --corrupt-watch astar   # test seam: must fail
//! ```
//!
//! `--profile <usecase>` runs the abstract-interpretation layer and
//! emits the derived loops/streams/branches/watch profile instead of
//! the finding report; `all` selects every registered use case.
//!
//! `-o <path>` writes the JSON to a temporary file in the target
//! directory and renames it into place, so a reader never observes a
//! truncated report (and implies `--json`).
//!
//! `--corrupt-watch <name>` redirects the named use case's first
//! watchlist entry to a bogus PC before analysis; CI uses it to prove
//! the analyzer has teeth (a clean report under corruption would mean
//! the cross-check is vacuous).

use pfm_analyze::profile::profile_report_to_json;
use pfm_analyze::report_to_json;
use pfm_sim::analyze::{analyze_all, derive_all};

const USAGE: &str =
    "usage: pfm-analyze [--json] [-o <path>] [--profile <usecase>|all] [--corrupt-watch <usecase>]";

/// Writes `data` atomically: a temporary file in the destination's
/// directory, flushed, then renamed over the target, so a concurrent
/// reader sees either the old report or the new one — never a prefix.
fn write_atomic(path: &str, data: &str) {
    let target = std::path::Path::new(path);
    let dir = match target.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => std::path::Path::new("."),
    };
    let stem = target
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("pfm-analyze.json");
    let tmp = dir.join(format!(".{stem}.{}.tmp", std::process::id()));
    if let Err(e) = std::fs::write(&tmp, data) {
        eprintln!("pfm-analyze: cannot write {}: {e}", tmp.display());
        std::process::exit(1);
    }
    if let Err(e) = std::fs::rename(&tmp, target) {
        let _ = std::fs::remove_file(&tmp);
        eprintln!(
            "pfm-analyze: cannot rename {} to {path}: {e}",
            tmp.display()
        );
        std::process::exit(1);
    }
}

/// Prints the JSON to stdout, or atomically to `-o <path>` when given.
fn emit(json_text: &str, out: Option<&str>) {
    match out {
        Some(path) => {
            write_atomic(path, json_text);
            eprintln!("wrote {path}");
        }
        None => println!("{json_text}"),
    }
}

fn main() {
    let mut json = false;
    let mut out: Option<String> = None;
    let mut profile: Option<String> = None;
    let mut corrupt: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "-o" | "--output" => match it.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("pfm-analyze: -o needs a path");
                    std::process::exit(2);
                }
            },
            "--profile" => match it.next() {
                Some(name) => profile = Some(name),
                None => {
                    eprintln!("pfm-analyze: --profile needs a use-case name (or `all`)");
                    std::process::exit(2);
                }
            },
            "--corrupt-watch" => match it.next() {
                Some(name) => corrupt = Some(name),
                None => {
                    eprintln!("pfm-analyze: --corrupt-watch needs a use-case name");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("pfm-analyze: unknown argument `{other}`");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    // `-o` only makes sense for machine-readable output.
    if out.is_some() {
        json = true;
    }

    // Profile mode: the interface-inference report (pfm-analyze/2).
    if let Some(which) = &profile {
        let mut report = derive_all(corrupt.as_deref());
        if let Some(name) = &corrupt {
            if !report.iter().any(|(n, _)| n == name) {
                eprintln!("pfm-analyze: no registered use case named `{name}`");
                std::process::exit(2);
            }
        }
        if which != "all" {
            report.retain(|(n, _)| n == which);
            if report.is_empty() {
                eprintln!("pfm-analyze: no registered use case named `{which}`");
                std::process::exit(2);
            }
        }
        if json {
            emit(&profile_report_to_json(&report), out.as_deref());
        } else {
            for (name, p) in &report {
                println!("{name}: {}", p.summary());
            }
            println!("derived {} program profile(s)", report.len());
        }
        return;
    }

    let report = analyze_all(corrupt.as_deref());
    if let Some(name) = &corrupt {
        if !report.iter().any(|(n, _)| n == name) {
            eprintln!("pfm-analyze: no registered use case named `{name}`");
            std::process::exit(2);
        }
    }

    let total: usize = report.iter().map(|(_, f)| f.len()).sum();
    if json {
        emit(&report_to_json(&report), out.as_deref());
    } else {
        for (name, findings) in &report {
            if findings.is_empty() {
                println!("{name}: clean");
            } else {
                println!("{name}: {} finding(s)", findings.len());
                for f in findings {
                    println!("  {f}");
                }
            }
        }
        println!("analyzed {} program(s), {} finding(s)", report.len(), total);
    }
    if total > 0 {
        std::process::exit(1);
    }
}
