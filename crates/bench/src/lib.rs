//! # pfm-bench — benchmark harness
//!
//! Two halves:
//!
//! * the `repro` binary regenerates every table and figure of the
//!   paper's evaluation (`repro --all`, or `repro fig8 table2 ...`);
//! * the Criterion benches (`cargo bench`) measure the simulator's own
//!   performance (predictor, cache, core and fabric throughput) and
//!   time scaled-down versions of each experiment.

pub use pfm_sim::experiments;
