//! One Criterion bench per paper table/figure: each times a
//! scaled-down regeneration of that experiment (the full-budget runs
//! live in the `repro` binary; `repro --all` prints the actual rows).

use criterion::{criterion_group, criterion_main, Criterion};
use pfm_sim::{experiments, RunConfig};
use std::time::Duration;

fn tiny() -> RunConfig {
    let mut rc = RunConfig::paper_scale();
    rc.max_instrs = 15_000;
    rc
}

macro_rules! fig_bench {
    ($fn_name:ident, $exp:path, $id:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let mut g = c.benchmark_group("figures");
            g.sample_size(10);
            g.warm_up_time(Duration::from_millis(300));
            g.measurement_time(Duration::from_secs(2));
            let rc = tiny();
            g.bench_function($id, |b| {
                b.iter(|| $exp(&rc).expect("experiment runs").rows.len())
            });
            g.finish();
        }
    };
}

fig_bench!(bench_fig2, experiments::fig2, "fig02_slipstream_vs_pfm");
fig_bench!(bench_fig8, experiments::fig8, "fig08_astar_clk_w");
fig_bench!(bench_table2, experiments::table2, "table2_astar_snoop");
fig_bench!(bench_fig9, experiments::fig9, "fig09_astar_dqp");
fig_bench!(bench_fig10, experiments::fig10, "fig10_astar_scope");
fig_bench!(bench_fig12, experiments::fig12, "fig12_bfs_oracles_clk_w");
fig_bench!(bench_table3, experiments::table3, "table3_bfs_snoop");
fig_bench!(bench_fig13, experiments::fig13, "fig13_bfs_dqp");
fig_bench!(bench_fig14, experiments::fig14, "fig14_bfs_window");
fig_bench!(bench_fig17, experiments::fig17, "fig17_prefetchers");
fig_bench!(bench_fig18, experiments::fig18, "fig18_energy");
fig_bench!(
    bench_ablations,
    experiments::ablations,
    "ablations_design_choices"
);

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.bench_function("table4_fpga_estimates", |b| {
        b.iter(|| {
            experiments::table4()
                .expect("table4 has no runs")
                .rows
                .len()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2,
    bench_fig8,
    bench_table2,
    bench_fig9,
    bench_fig10,
    bench_fig12,
    bench_table3,
    bench_fig13,
    bench_fig14,
    bench_fig17,
    bench_table4,
    bench_fig18,
    bench_ablations
);
criterion_main!(benches);
