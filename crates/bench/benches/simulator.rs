//! Microbenchmarks of the simulator's own building blocks: these bound
//! how much paper-scale experimentation a wall-clock budget buys.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pfm_bpred::{Predictor, PredictorKind};
use pfm_core::{Core, CoreConfig, NoPfm};
use pfm_isa::mem::SparseMem;
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, Machine, SpecMemory};
use pfm_mem::cache::{Cache, CacheConfig};
use pfm_mem::{AccessKind, Hierarchy, HierarchyConfig};

fn bench_sparse_mem(c: &mut Criterion) {
    let mut g = c.benchmark_group("sparse_mem");
    g.throughput(Throughput::Elements(1));
    // 1 MiB resident working set, then a strided read mix that stays
    // mostly on one page (the simulator's access pattern) with a page
    // switch every 512 reads.
    let mut m = SparseMem::new();
    for a in (0..1u64 << 20).step_by(8) {
        m.write(a, 8, a);
    }
    let mut i = 0u64;
    g.bench_function("read8_mostly_same_page", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = ((i >> 9) << 12 | (i & 0x1FF) * 8) & ((1 << 20) - 8);
            m.read_cached(addr, 8)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    let mut l1 = Cache::new(CacheConfig::new(32 * 1024, 8, 3));
    let mut i = 0u64;
    g.bench_function("access_strided", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            let addr = (i * 64) & 0xF_FFFF;
            if !l1.access(addr, false) {
                l1.fill(addr, false);
            }
        })
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("tage_scl");
    g.throughput(Throughput::Elements(1));
    let mut p = Predictor::new(PredictorKind::TageScl);
    let mut i = 0u64;
    g.bench_function("predict_train", |b| {
        b.iter(|| {
            i += 1;
            let truth = i.is_multiple_of(3);
            let pred = p.predict(0x1000 + (i % 64) * 4, truth);
            p.train(0x1000 + (i % 64) * 4, truth, &pred);
        })
    });
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(1));
    let mut h = Hierarchy::new(HierarchyConfig::micro21());
    let mut addr = 0u64;
    g.bench_function("load_stream", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xFF_FFFF;
            h.access(addr, AccessKind::Load, addr)
        })
    });
    g.finish();
}

fn bench_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("core");
    g.throughput(Throughput::Elements(10_000));
    g.sample_size(10);
    g.bench_function("alu_loop_10k_instrs", |b| {
        b.iter(|| {
            let mut a = Asm::new(0x1000);
            let top = a.label();
            a.li(T0, 2_000);
            a.bind(top).unwrap();
            a.addi(S0, S0, 1);
            a.addi(S1, S1, 1);
            a.addi(S2, S2, 1);
            a.addi(T0, T0, -1);
            a.bne(T0, X0, top);
            a.halt();
            let m = Machine::new(a.finish().unwrap(), SpecMemory::new());
            let mut core = Core::new(
                CoreConfig::micro21(),
                m,
                Hierarchy::new(HierarchyConfig::micro21()),
            );
            core.run(&mut NoPfm, u64::MAX, 10_000_000).unwrap();
            core.stats().retired
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sparse_mem,
    bench_cache,
    bench_tage,
    bench_hierarchy,
    bench_core
);
criterion_main!(benches);
