//! Single-run driver: wires a [`UseCase`] into the core, optionally
//! attaches the PFM fabric, runs, and collects every statistic the
//! experiments need.

use pfm_bpred::PredictorKind;
use pfm_core::{Core, CoreConfig, NoPfm, SimError, SimStats};
use pfm_fabric::{FabricParams, FabricStats};
use pfm_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use pfm_workloads::UseCase;

/// Run-level configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Stop after this many retired instructions.
    pub max_instrs: u64,
    /// Hard cycle cap (deadlock guard).
    pub max_cycles: u64,
    /// Core configuration.
    pub core: CoreConfig,
    /// Memory hierarchy configuration.
    pub hier: HierarchyConfig,
}

impl RunConfig {
    /// The default experiment budget: 1.5 M retired instructions on the
    /// Table 1 machine (a scaled-down stand-in for the paper's 100 M
    /// SimPoints; every configuration of an experiment shares it, so
    /// relative speedups are comparable).
    pub fn paper_scale() -> RunConfig {
        RunConfig {
            max_instrs: 1_500_000,
            max_cycles: 200_000_000,
            core: CoreConfig::micro21(),
            hier: HierarchyConfig::micro21(),
        }
    }

    /// A small budget for tests.
    pub fn test_scale() -> RunConfig {
        RunConfig {
            max_instrs: 150_000,
            ..RunConfig::paper_scale()
        }
    }

    /// Enables perfect branch prediction.
    pub fn perfect_bp(mut self) -> RunConfig {
        self.core.predictor = PredictorKind::Perfect;
        self
    }

    /// Enables a perfect data cache.
    pub fn perfect_dcache(mut self) -> RunConfig {
        self.hier.perfect_data = true;
        self
    }

    /// Canonical content key covering the budget, the core and the
    /// hierarchy. Two configs with equal keys time identically; the
    /// experiment planner's run deduplication relies on this.
    pub fn key(&self) -> String {
        format!(
            "n{}_c{}_{}_{}",
            self.max_instrs,
            self.max_cycles,
            self.core.key(),
            self.hier.key()
        )
    }
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig::paper_scale()
    }
}

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Use-case name.
    pub name: String,
    /// Core statistics.
    pub stats: SimStats,
    /// Memory hierarchy statistics.
    pub hier: HierarchyStats,
    /// Agent statistics (PFM runs only).
    pub fabric: Option<FabricStats>,
}

impl RunResult {
    /// IPC of this run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Percentage IPC improvement over `base` (the paper's metric;
    /// baseline sits at 0%).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.stats.ipc_improvement_over(&base.stats)
    }
}

/// Runs the use-case on the baseline core (no fabric attached).
///
/// # Errors
/// Propagates simulator errors (functional faults, cycle-limit
/// deadlocks).
pub fn run_baseline(uc: &UseCase, rc: &RunConfig) -> Result<RunResult, SimError> {
    let mut core = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    core.run(&mut NoPfm, rc.max_instrs, rc.max_cycles)?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().clone(),
        hier: *core.hierarchy().stats(),
        fabric: None,
    })
}

/// Runs the use-case with the PFM fabric attached.
///
/// # Errors
/// Propagates simulator errors (functional faults, cycle-limit
/// deadlocks).
pub fn run_pfm(uc: &UseCase, params: FabricParams, rc: &RunConfig) -> Result<RunResult, SimError> {
    let mut fabric = uc.fabric(params);
    let mut core = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    core.run(&mut fabric, rc.max_instrs, rc.max_cycles)?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().clone(),
        hier: *core.hierarchy().stats(),
        fabric: Some(*fabric.stats()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_workloads::{astar, AstarParams};

    #[test]
    fn baseline_and_pfm_agree_architecturally() {
        let p = AstarParams {
            grid_w: 32,
            grid_h: 32,
            fills: 1,
            ..AstarParams::default()
        };
        let uc = astar(&p);
        let rc = RunConfig::test_scale();
        let base = run_baseline(&uc, &rc).unwrap();
        let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
        // Same instruction budget; the PFM run must not break anything.
        assert!(base.stats.retired > 0);
        assert!(pfm.stats.retired > 0);
        assert!(pfm.fabric.is_some());
    }
}
