//! Single-run driver: wires a [`UseCase`] into the core, optionally
//! attaches the PFM fabric (or its chaos-harness fault injector), runs
//! under a forward-progress watchdog, and collects every statistic the
//! experiments need — including the committed architectural checksum
//! the chaos family compares against fault-free runs.

use crate::schedule::{load_cycles_for, ScheduledFabric, Tenant};
use pfm_bpred::PredictorKind;
use pfm_core::{Core, CoreConfig, NoPfm, SimError, SimStats};
use pfm_fabric::{Fabric, FabricParams, FabricStats, FaultPlan, FaultStats};
use pfm_isa::snap::{Dec, Enc, SnapError, FNV_OFFSET, FNV_PRIME};
use pfm_isa::{FastExec, Machine};
use pfm_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use pfm_workloads::{UseCase, UseCaseFactory};

/// Default forward-progress watchdog: abort a run if no instruction
/// commits for this many cycles. Far above any legitimate stall (the
/// fabric's own fetch-stall chicken switch trips at 100 k cycles, DRAM
/// round trips are hundreds), far below the hard cycle cap — so hangs
/// surface in seconds, not after the full 200 M-cycle budget.
pub const DEFAULT_COMMIT_WATCHDOG: u64 = 1_000_000;

/// Run-level configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Stop after this many retired instructions.
    pub max_instrs: u64,
    /// Hard cycle cap (deadlock guard of last resort).
    pub max_cycles: u64,
    /// Forward-progress watchdog: abort with [`RunError::Watchdog`] if
    /// no instruction commits for this many consecutive cycles.
    /// `None` disables it (the hard cap still applies).
    pub commit_watchdog: Option<u64>,
    /// Core configuration.
    pub core: CoreConfig,
    /// Memory hierarchy configuration.
    pub hier: HierarchyConfig,
}

impl RunConfig {
    /// The default experiment budget: 1.5 M retired instructions on the
    /// Table 1 machine (a scaled-down stand-in for the paper's 100 M
    /// SimPoints; every configuration of an experiment shares it, so
    /// relative speedups are comparable).
    pub fn paper_scale() -> RunConfig {
        RunConfig {
            max_instrs: 1_500_000,
            max_cycles: 200_000_000,
            commit_watchdog: Some(DEFAULT_COMMIT_WATCHDOG),
            core: CoreConfig::micro21(),
            hier: HierarchyConfig::micro21(),
        }
    }

    /// A small budget for tests.
    pub fn test_scale() -> RunConfig {
        RunConfig {
            max_instrs: 150_000,
            ..RunConfig::paper_scale()
        }
    }

    /// Enables perfect branch prediction.
    pub fn perfect_bp(mut self) -> RunConfig {
        self.core.predictor = PredictorKind::Perfect;
        self
    }

    /// Enables a perfect data cache.
    pub fn perfect_dcache(mut self) -> RunConfig {
        self.hier.perfect_data = true;
        self
    }

    /// Canonical content key covering the budget, the watchdog, the
    /// core and the hierarchy. Two configs with equal keys time
    /// identically; the experiment planner's run deduplication relies
    /// on this.
    pub fn key(&self) -> String {
        let wd = match self.commit_watchdog {
            Some(n) => format!("wd{n}"),
            None => "wdoff".to_string(),
        };
        format!(
            "n{}_c{}_{}_{}_{}",
            self.max_instrs,
            self.max_cycles,
            wd,
            self.core.key(),
            self.hier.key()
        )
    }
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig::paper_scale()
    }
}

/// A failed simulation run, with enough structure for callers to
/// distinguish "the workload faulted", "the deadlock guard of last
/// resort tripped", and "the forward-progress watchdog caught a hang".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The functional machine faulted (bad PC, etc.).
    Exec(String),
    /// The hard cycle cap elapsed before the workload finished.
    CycleLimit {
        /// The cap that was reached.
        max_cycles: u64,
        /// Instructions retired when it tripped.
        retired: u64,
    },
    /// The forward-progress watchdog fired: no instruction committed
    /// for `stalled_cycles` consecutive cycles.
    Watchdog {
        /// Cycle of the last commit (0 if nothing ever committed).
        last_commit_cycle: u64,
        /// Commit-free cycles elapsed when the watchdog fired.
        stalled_cycles: u64,
        /// Instructions retired when it fired.
        retired: u64,
    },
}

impl RunError {
    /// Whether this failure is a hang (watchdog or cycle cap) rather
    /// than a functional fault. Hangs are what the executor retries at
    /// a raised watchdog cap.
    pub fn is_hang(&self) -> bool {
        matches!(
            self,
            RunError::CycleLimit { .. } | RunError::Watchdog { .. }
        )
    }

    /// Whether this failure is specifically the forward-progress
    /// watchdog (eligible for one retry at a raised cap: a legitimate
    /// but extreme stall looks identical to a hang until given more
    /// rope).
    pub fn is_watchdog(&self) -> bool {
        matches!(self, RunError::Watchdog { .. })
    }

    fn from_sim(e: SimError, retired: u64) -> RunError {
        match e {
            SimError::Exec(e) => RunError::Exec(e.to_string()),
            SimError::CycleLimit(max_cycles) => RunError::CycleLimit {
                max_cycles,
                retired,
            },
            SimError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
            } => RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            },
        }
    }
}

impl RunError {
    /// Serializes the error (tag byte + fields) for the result store
    /// and the worker-process protocol.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            RunError::Exec(msg) => {
                e.u8(0);
                e.str(msg);
            }
            RunError::CycleLimit {
                max_cycles,
                retired,
            } => {
                e.u8(1);
                e.u64(*max_cycles);
                e.u64(*retired);
            }
            RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            } => {
                e.u8(2);
                e.u64(*last_commit_cycle);
                e.u64(*stalled_cycles);
                e.u64(*retired);
            }
        }
    }

    /// Decodes an error serialized by [`RunError::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<RunError, SnapError> {
        match d.u8()? {
            0 => Ok(RunError::Exec(d.str()?.to_string())),
            1 => Ok(RunError::CycleLimit {
                max_cycles: d.u64()?,
                retired: d.u64()?,
            }),
            2 => Ok(RunError::Watchdog {
                last_commit_cycle: d.u64()?,
                stalled_cycles: d.u64()?,
                retired: d.u64()?,
            }),
            _ => Err(SnapError::Corrupt("RunError tag")),
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "functional execution failed: {e}"),
            RunError::CycleLimit {
                max_cycles,
                retired,
            } => write!(
                f,
                "cycle cap {max_cycles} reached after {retired} retired instructions \
                 (possible deadlock)"
            ),
            RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            } => write!(
                f,
                "watchdog: no commit for {stalled_cycles} cycles (last commit at cycle \
                 {last_commit_cycle}, {retired} retired)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// How the fabric slot is managed in a context-switch run.
#[derive(Clone, Debug)]
pub enum CtxMode {
    /// No fabric at all: the pure-core lower bound.
    NoFabric,
    /// Phase-detection scheduler drives the swap protocol.
    Sched {
        /// Oracle arm: swaps skip the drain window and load in one
        /// cycle, isolating the *scheduling-quality* ceiling from the
        /// reconfiguration cost.
        zero_cost: bool,
    },
    /// The slot is pinned to `decoy`'s configuration for the whole run
    /// — the dead-wrong-component arm (no swaps ever happen).
    Pinned {
        /// The pinned (wrong) configuration.
        decoy: UseCaseFactory,
    },
}

impl CtxMode {
    /// Canonical key fragment (spec dedup; `params` is the fabric
    /// configuration, absent for [`CtxMode::NoFabric`]).
    pub(crate) fn key(&self, params: Option<&FabricParams>) -> String {
        let p = params.map(|p| p.key()).unwrap_or_default();
        match self {
            CtxMode::NoFabric => "nofabric".to_string(),
            CtxMode::Sched { zero_cost: true } => format!("sched0|{p}"),
            CtxMode::Sched { zero_cost: false } => format!("sched|{p}"),
            CtxMode::Pinned { decoy } => format!("pin({})|{p}", decoy.key()),
        }
    }
}

/// One tenant's share of a context-switch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant (use-case) name.
    pub name: String,
    /// Instructions the tenant retired across all its slices.
    pub retired: u64,
    /// Core cycles the tenant consumed across all its slices.
    pub cycles: u64,
    /// Committed-stream checksum over the tenant's instruction budget.
    /// The graceful-degradation invariant: bit-identical across every
    /// scheduling mode and mid-swap fault of the same workload pair.
    pub checksum: u64,
    /// Whether the tenant's program ran to completion.
    pub completed: bool,
}

/// One scheduling slice (phase) of a context-switch run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStats {
    /// Tenant that ran the slice.
    pub tenant: String,
    /// Instructions retired in the slice.
    pub retired: u64,
    /// Cycles the slice took.
    pub cycles: u64,
}

/// Everything a context-switch run measures beyond the aggregate
/// [`SimStats`]: per-tenant and per-phase breakdowns plus the
/// scheduler's swap accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtxStats {
    /// Per-tenant totals, in tenant order.
    pub tenants: Vec<TenantStats>,
    /// Per-slice breakdown, in execution order.
    pub phases: Vec<PhaseStats>,
    /// Component swaps the scheduler performed.
    pub swaps: u64,
    /// Core cycles the fabric spent mid-swap (draining + loading).
    pub reconfig_cycles: u64,
    /// Scheduling decisions taken.
    pub decisions: u64,
    /// Decisions perturbed by an armed `corrupt-signature` fault.
    pub corrupted_decisions: u64,
}

impl CtxStats {
    /// Serializes the stats (covered by
    /// [`crate::store::STATS_SCHEMA_VERSION`]).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.tenants.len());
        for t in &self.tenants {
            e.str(&t.name);
            e.u64(t.retired);
            e.u64(t.cycles);
            e.u64(t.checksum);
            e.bool(t.completed);
        }
        e.usize(self.phases.len());
        for p in &self.phases {
            e.str(&p.tenant);
            e.u64(p.retired);
            e.u64(p.cycles);
        }
        e.u64(self.swaps);
        e.u64(self.reconfig_cycles);
        e.u64(self.decisions);
        e.u64(self.corrupted_decisions);
    }

    /// Decodes stats serialized by [`CtxStats::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<CtxStats, SnapError> {
        let mut tenants = Vec::new();
        for _ in 0..d.seq_len()? {
            tenants.push(TenantStats {
                name: d.str()?.to_string(),
                retired: d.u64()?,
                cycles: d.u64()?,
                checksum: d.u64()?,
                completed: d.bool()?,
            });
        }
        let mut phases = Vec::new();
        for _ in 0..d.seq_len()? {
            phases.push(PhaseStats {
                tenant: d.str()?.to_string(),
                retired: d.u64()?,
                cycles: d.u64()?,
            });
        }
        Ok(CtxStats {
            tenants,
            phases,
            swaps: d.u64()?,
            reconfig_cycles: d.u64()?,
            decisions: d.u64()?,
            corrupted_decisions: d.u64()?,
        })
    }

    /// IPC of one tenant (0.0 if it never ran).
    pub fn tenant_ipc(&self, i: usize) -> f64 {
        match self.tenants.get(i) {
            Some(t) if t.cycles > 0 => t.retired as f64 / t.cycles as f64,
            _ => 0.0,
        }
    }
}

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Use-case name.
    pub name: String,
    /// Core statistics.
    pub stats: SimStats,
    /// Memory hierarchy statistics.
    pub hier: HierarchyStats,
    /// Agent statistics (PFM runs only).
    pub fabric: Option<FabricStats>,
    /// Injected-fault counters (chaos runs only).
    pub faults: Option<FaultStats>,
    /// Checksum of the committed instruction stream (PCs, branch
    /// outcomes, register writes, stores), folded over the first
    /// `max_instrs` retired instructions. The graceful-degradation
    /// invariant: bit-identical across fault-free and faulty runs of
    /// the same workload and instruction budget, because fabric
    /// interventions are microarchitectural only.
    pub arch_checksum: u64,
    /// Whether the workload ran to completion (halted) rather than
    /// being cut off by the instruction budget. The bench report
    /// surfaces this so an early-exiting run is never mistaken for a
    /// budget-limited one.
    pub completed: bool,
    /// Context-switch breakdown (multi-tenant runs only): per-tenant
    /// and per-phase statistics plus the scheduler's swap accounting.
    pub ctx: Option<CtxStats>,
}

impl RunResult {
    /// Serializes the full result (all statistics layers) for the
    /// result store and the worker-process protocol. The layout is
    /// covered by [`crate::store::STATS_SCHEMA_VERSION`]: bump that
    /// constant whenever this encoding (or any nested stats codec)
    /// changes shape or meaning.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.stats.snapshot_encode(e);
        self.hier.snapshot_encode(e);
        match &self.fabric {
            Some(f) => {
                e.u8(1);
                f.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        match &self.faults {
            Some(f) => {
                e.u8(1);
                f.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        e.u64(self.arch_checksum);
        e.bool(self.completed);
        match &self.ctx {
            Some(c) => {
                e.u8(1);
                c.snapshot_encode(e);
            }
            None => e.u8(0),
        }
    }

    /// Decodes a result serialized by [`RunResult::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<RunResult, SnapError> {
        let name = d.str()?.to_string();
        let stats = SimStats::snapshot_decode(d)?;
        let hier = HierarchyStats::snapshot_decode(d)?;
        let fabric = match d.u8()? {
            0 => None,
            1 => Some(FabricStats::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("fabric stats tag")),
        };
        let faults = match d.u8()? {
            0 => None,
            1 => Some(FaultStats::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("fault stats tag")),
        };
        let arch_checksum = d.u64()?;
        let completed = d.bool()?;
        let ctx = match d.u8()? {
            0 => None,
            1 => Some(CtxStats::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("ctx stats tag")),
        };
        Ok(RunResult {
            name,
            stats,
            hier,
            fabric,
            faults,
            arch_checksum,
            completed,
            ctx,
        })
    }

    /// IPC of this run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Percentage IPC improvement over `base` (the paper's metric;
    /// baseline sits at 0%).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.stats.ipc_improvement_over(&base.stats)
    }
}

/// Drives `core` under `rc`'s budgets and watchdog, then packages the
/// result (shared by the baseline, PFM and chaos entry points).
fn drive(uc: &UseCase, mut fabric: Option<Fabric>, rc: &RunConfig) -> Result<RunResult, RunError> {
    let mut core = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    let outcome = match fabric.as_mut() {
        Some(f) => core.run_watched(f, rc.max_instrs, rc.max_cycles, rc.commit_watchdog),
        None => core.run_watched(&mut NoPfm, rc.max_instrs, rc.max_cycles, rc.commit_watchdog),
    };
    outcome.map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().clone(),
        hier: *core.hierarchy().stats(),
        faults: fabric.as_ref().and_then(|f| f.component().fault_stats()),
        fabric: fabric.map(|f| *f.stats()),
        arch_checksum: core.commit_checksum(),
        completed: core.finished(),
        ctx: None,
    })
}

/// Runs the use-case on the baseline core (no fabric attached).
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_baseline(uc: &UseCase, rc: &RunConfig) -> Result<RunResult, RunError> {
    drive(uc, None, rc)
}

/// Runs the use-case with the PFM fabric attached.
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_pfm(uc: &UseCase, params: FabricParams, rc: &RunConfig) -> Result<RunResult, RunError> {
    drive(uc, Some(uc.fabric(params)), rc)
}

/// Runs the use-case functionally only, on the pre-decoded fast
/// executor: no timing, no speculation, no memory hierarchy — just the
/// committed architectural stream, at interpreter speed.
///
/// The result's `arch_checksum` is the same commit-stream fold the
/// detailed core computes at retirement over the same `max_instrs`
/// budget, so a functional run validates (and is validated by) its
/// detailed counterparts. Timing statistics are zero by construction;
/// only `retired`, `loads` and `stores` are populated.
///
/// # Errors
/// [`RunError::Exec`] if the program leaves its address space.
pub fn run_functional(uc: &UseCase, rc: &RunConfig) -> Result<RunResult, RunError> {
    let mut fx = FastExec::new(uc.program.clone(), uc.memory.clone());
    fx.run(rc.max_instrs)
        .map_err(|e| RunError::Exec(e.to_string()))?;
    let stats = SimStats {
        retired: fx.retired(),
        loads: fx.loads(),
        stores: fx.stores(),
        ..SimStats::default()
    };
    Ok(RunResult {
        name: uc.name.clone(),
        stats,
        hier: HierarchyStats::default(),
        fabric: None,
        faults: None,
        arch_checksum: fx.commit_checksum(),
        completed: fx.halted(),
        ctx: None,
    })
}

/// Runs one detailed sampling interval: restores the architectural
/// snapshot (captured by the functional fast-forward) into a fresh
/// cold-structure core, retires `warmup` instructions to warm caches,
/// TLB and branch history (their statistics are diffed out), then
/// measures `rc.max_instrs` further retired instructions.
///
/// The returned `stats` cover only the measured window. `hier` covers
/// warm-up plus measurement (cache counters are reported for
/// diagnosis, not assembled into IPC). `arch_checksum` is not
/// comparable across positions and is reported as the core's fold from
/// the restore point.
///
/// # Errors
/// [`RunError::Exec`] if the snapshot fails to decode or the machine
/// faults; watchdog/cycle-cap errors as in the other entry points.
pub fn run_interval(
    uc: &UseCase,
    snapshot: &[u8],
    warmup: u64,
    rc: &RunConfig,
) -> Result<RunResult, RunError> {
    let machine = Machine::restore(uc.program.clone(), snapshot)
        .map_err(|e| RunError::Exec(format!("snapshot restore: {e}")))?;
    let mut core = Core::new(rc.core.clone(), machine, Hierarchy::new(rc.hier.clone()));
    core.run_watched(&mut NoPfm, warmup, rc.max_cycles, rc.commit_watchdog)
        .map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    let warm = core.stats().clone();
    core.run_watched(
        &mut NoPfm,
        warmup.saturating_add(rc.max_instrs),
        rc.max_cycles,
        rc.commit_watchdog,
    )
    .map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().delta_since(&warm),
        hier: *core.hierarchy().stats(),
        fabric: None,
        faults: None,
        arch_checksum: core.commit_checksum(),
        completed: core.finished(),
        ctx: None,
    })
}

/// Runs the use-case with the PFM fabric attached and its component
/// wrapped in the deterministic fault injector (the chaos harness).
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_chaos(
    uc: &UseCase,
    params: FabricParams,
    plan: FaultPlan,
    rc: &RunConfig,
) -> Result<RunResult, RunError> {
    drive(uc, Some(uc.fabric_faulty(params, plan)), rc)
}

/// Slices each tenant's instruction budget into this many alternating
/// scheduling quanta (a A/B/A/B/… round-robin of 2×`CTX_SLICES`
/// slices).
pub const CTX_SLICES: u64 = 4;

/// Runs two tenants time-sharing one fabric slot: `a` and `b` each get
/// half of `rc.max_instrs`, consumed in [`CTX_SLICES`] alternating
/// slices per tenant. The fabric (absent, scheduled, or pinned — see
/// [`CtxMode`]) is shared across the switches; each tenant's program
/// runs on its own core/hierarchy pair, so the *only* coupling between
/// them is the fabric slot — exactly the resource under study.
///
/// `fault` arms a [`FaultScenario::MID_SWAP`](pfm_fabric::FaultScenario)
/// scenario (meaningful for [`CtxMode::Sched`]); whatever it does to
/// the swap timeline, every tenant's committed-stream checksum must be
/// bit-identical to the [`CtxMode::NoFabric`] run of the same pair.
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog from either tenant's core.
pub fn run_context_switch(
    a: &UseCase,
    b: &UseCase,
    mode: &CtxMode,
    params: Option<FabricParams>,
    fault: Option<FaultPlan>,
    rc: &RunConfig,
) -> Result<RunResult, RunError> {
    let budget = (rc.max_instrs / 2).max(1);
    let slice = (budget / CTX_SLICES).max(1);

    let mut core_a = Core::new(
        rc.core.clone(),
        a.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    let mut core_b = Core::new(
        rc.core.clone(),
        b.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    // Sliced runs advance the budget in steps; the checksum must cover
    // the full per-tenant budget regardless of slicing, so every mode
    // folds the exact same committed window.
    core_a.set_checksum_cap(budget);
    core_b.set_checksum_cap(budget);

    let mut sched = match mode {
        CtxMode::NoFabric => None,
        CtxMode::Sched { zero_cost } => {
            let fabric_params = params.unwrap_or_else(FabricParams::paper_default);
            let tenants = vec![
                Tenant::new(a.clone(), load_cycles_for(&a.name)),
                Tenant::new(b.clone(), load_cycles_for(&b.name)),
            ];
            let mut sf = ScheduledFabric::new(tenants, fabric_params, *zero_cost);
            if let Some(plan) = fault {
                sf.arm_faults(plan);
            }
            Some(sf)
        }
        CtxMode::Pinned { decoy } => {
            let fabric_params = params.unwrap_or_else(FabricParams::paper_default);
            let tenants = vec![
                Tenant::new(a.clone(), load_cycles_for(&a.name)),
                Tenant::new(b.clone(), load_cycles_for(&b.name)),
            ];
            let decoy_uc = decoy.build();
            Some(ScheduledFabric::pinned(tenants, &decoy_uc, fabric_params))
        }
    };

    let mut phases = Vec::with_capacity(2 * CTX_SLICES as usize);
    for s in 0..CTX_SLICES {
        let target = if s == CTX_SLICES - 1 {
            budget
        } else {
            slice * (s + 1)
        };
        for t in 0..2usize {
            let (core, uc) = if t == 0 {
                (&mut core_a, a)
            } else {
                (&mut core_b, b)
            };
            let before = core.stats().clone();
            let outcome = match sched.as_mut() {
                Some(sf) => {
                    sf.switch_to(t);
                    core.run_watched_until(sf, target, rc.max_cycles, rc.commit_watchdog)
                }
                None => {
                    core.run_watched_until(&mut NoPfm, target, rc.max_cycles, rc.commit_watchdog)
                }
            };
            outcome.map_err(|e| RunError::from_sim(e, core.stats().retired))?;
            let d = core.stats().delta_since(&before);
            phases.push(PhaseStats {
                tenant: uc.name.clone(),
                retired: d.retired,
                cycles: d.cycles,
            });
        }
    }

    let tenant_stats = |core: &Core, uc: &UseCase| TenantStats {
        name: uc.name.clone(),
        retired: core.stats().retired,
        cycles: core.stats().cycles,
        checksum: core.commit_checksum(),
        completed: core.finished(),
    };
    let tenants = vec![tenant_stats(&core_a, a), tenant_stats(&core_b, b)];
    // The run-level checksum is an order-sensitive fold of the
    // per-tenant commit-stream checksums, so a single u64 still gates
    // the whole pair.
    let mut checksum = FNV_OFFSET;
    for t in &tenants {
        checksum = (checksum ^ t.checksum).wrapping_mul(FNV_PRIME);
    }
    let completed = tenants.iter().all(|t| t.completed);
    let stats = SimStats {
        retired: tenants.iter().map(|t| t.retired).sum(),
        cycles: tenants.iter().map(|t| t.cycles).sum(),
        ..SimStats::default()
    };
    let fabric_stats = sched.as_ref().map(|sf| *sf.stats());
    let ctx = CtxStats {
        tenants,
        phases,
        swaps: fabric_stats.map_or(0, |f| f.swaps),
        reconfig_cycles: fabric_stats.map_or(0, |f| f.reconfig_cycles),
        decisions: sched.as_ref().map_or(0, ScheduledFabric::decisions),
        corrupted_decisions: sched
            .as_ref()
            .map_or(0, ScheduledFabric::corrupted_decisions),
    };
    Ok(RunResult {
        name: format!("ctx({}+{})", a.name, b.name),
        stats,
        // Each tenant runs on its own hierarchy; there is no meaningful
        // single-hierarchy aggregate, so this layer stays zero.
        hier: HierarchyStats::default(),
        fabric: fabric_stats,
        faults: None,
        arch_checksum: checksum,
        completed,
        ctx: Some(ctx),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::FaultScenario;
    use pfm_workloads::{astar, AstarParams};

    #[test]
    fn baseline_and_pfm_agree_architecturally() {
        let p = AstarParams {
            grid_w: 32,
            grid_h: 32,
            fills: 1,
            ..AstarParams::default()
        };
        let uc = astar(&p);
        let rc = RunConfig::test_scale();
        let base = run_baseline(&uc, &rc).unwrap();
        let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
        // Same instruction budget; the PFM run must not break anything.
        assert!(base.stats.retired > 0);
        assert!(pfm.stats.retired > 0);
        assert!(pfm.fabric.is_some());
        assert_eq!(
            base.arch_checksum, pfm.arch_checksum,
            "PFM interventions are microarchitectural only"
        );
    }

    #[test]
    fn chaos_run_reports_fault_stats() {
        let p = AstarParams {
            grid_w: 32,
            grid_h: 32,
            fills: 1,
            ..AstarParams::default()
        };
        let uc = astar(&p);
        let rc = RunConfig::test_scale();
        let plan = FaultPlan::new(FaultScenario::InvertPred, 1).with_rate(1000);
        let r = run_chaos(&uc, FabricParams::paper_default(), plan, &rc).unwrap();
        let f = r.faults.expect("chaos run must report fault stats");
        assert!(f.inverted > 0, "rate-1000 inversion must fire");
    }

    #[test]
    fn run_config_key_covers_the_watchdog() {
        let rc = RunConfig::test_scale();
        let mut off = RunConfig::test_scale();
        off.commit_watchdog = None;
        assert_ne!(rc.key(), off.key());
        assert!(rc.key().contains("wd1000000"));
    }
}
