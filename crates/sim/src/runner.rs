//! Single-run driver: wires a [`UseCase`] into the core, optionally
//! attaches the PFM fabric (or its chaos-harness fault injector), runs
//! under a forward-progress watchdog, and collects every statistic the
//! experiments need — including the committed architectural checksum
//! the chaos family compares against fault-free runs.

use pfm_bpred::PredictorKind;
use pfm_core::{Core, CoreConfig, NoPfm, SimError, SimStats};
use pfm_fabric::{Fabric, FabricParams, FabricStats, FaultPlan, FaultStats};
use pfm_isa::snap::{Dec, Enc, SnapError};
use pfm_isa::{FastExec, Machine};
use pfm_mem::{Hierarchy, HierarchyConfig, HierarchyStats};
use pfm_workloads::UseCase;

/// Default forward-progress watchdog: abort a run if no instruction
/// commits for this many cycles. Far above any legitimate stall (the
/// fabric's own fetch-stall chicken switch trips at 100 k cycles, DRAM
/// round trips are hundreds), far below the hard cycle cap — so hangs
/// surface in seconds, not after the full 200 M-cycle budget.
pub const DEFAULT_COMMIT_WATCHDOG: u64 = 1_000_000;

/// Run-level configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Stop after this many retired instructions.
    pub max_instrs: u64,
    /// Hard cycle cap (deadlock guard of last resort).
    pub max_cycles: u64,
    /// Forward-progress watchdog: abort with [`RunError::Watchdog`] if
    /// no instruction commits for this many consecutive cycles.
    /// `None` disables it (the hard cap still applies).
    pub commit_watchdog: Option<u64>,
    /// Core configuration.
    pub core: CoreConfig,
    /// Memory hierarchy configuration.
    pub hier: HierarchyConfig,
}

impl RunConfig {
    /// The default experiment budget: 1.5 M retired instructions on the
    /// Table 1 machine (a scaled-down stand-in for the paper's 100 M
    /// SimPoints; every configuration of an experiment shares it, so
    /// relative speedups are comparable).
    pub fn paper_scale() -> RunConfig {
        RunConfig {
            max_instrs: 1_500_000,
            max_cycles: 200_000_000,
            commit_watchdog: Some(DEFAULT_COMMIT_WATCHDOG),
            core: CoreConfig::micro21(),
            hier: HierarchyConfig::micro21(),
        }
    }

    /// A small budget for tests.
    pub fn test_scale() -> RunConfig {
        RunConfig {
            max_instrs: 150_000,
            ..RunConfig::paper_scale()
        }
    }

    /// Enables perfect branch prediction.
    pub fn perfect_bp(mut self) -> RunConfig {
        self.core.predictor = PredictorKind::Perfect;
        self
    }

    /// Enables a perfect data cache.
    pub fn perfect_dcache(mut self) -> RunConfig {
        self.hier.perfect_data = true;
        self
    }

    /// Canonical content key covering the budget, the watchdog, the
    /// core and the hierarchy. Two configs with equal keys time
    /// identically; the experiment planner's run deduplication relies
    /// on this.
    pub fn key(&self) -> String {
        let wd = match self.commit_watchdog {
            Some(n) => format!("wd{n}"),
            None => "wdoff".to_string(),
        };
        format!(
            "n{}_c{}_{}_{}_{}",
            self.max_instrs,
            self.max_cycles,
            wd,
            self.core.key(),
            self.hier.key()
        )
    }
}

impl Default for RunConfig {
    fn default() -> RunConfig {
        RunConfig::paper_scale()
    }
}

/// A failed simulation run, with enough structure for callers to
/// distinguish "the workload faulted", "the deadlock guard of last
/// resort tripped", and "the forward-progress watchdog caught a hang".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunError {
    /// The functional machine faulted (bad PC, etc.).
    Exec(String),
    /// The hard cycle cap elapsed before the workload finished.
    CycleLimit {
        /// The cap that was reached.
        max_cycles: u64,
        /// Instructions retired when it tripped.
        retired: u64,
    },
    /// The forward-progress watchdog fired: no instruction committed
    /// for `stalled_cycles` consecutive cycles.
    Watchdog {
        /// Cycle of the last commit (0 if nothing ever committed).
        last_commit_cycle: u64,
        /// Commit-free cycles elapsed when the watchdog fired.
        stalled_cycles: u64,
        /// Instructions retired when it fired.
        retired: u64,
    },
}

impl RunError {
    /// Whether this failure is a hang (watchdog or cycle cap) rather
    /// than a functional fault. Hangs are what the executor retries at
    /// a raised watchdog cap.
    pub fn is_hang(&self) -> bool {
        matches!(
            self,
            RunError::CycleLimit { .. } | RunError::Watchdog { .. }
        )
    }

    /// Whether this failure is specifically the forward-progress
    /// watchdog (eligible for one retry at a raised cap: a legitimate
    /// but extreme stall looks identical to a hang until given more
    /// rope).
    pub fn is_watchdog(&self) -> bool {
        matches!(self, RunError::Watchdog { .. })
    }

    fn from_sim(e: SimError, retired: u64) -> RunError {
        match e {
            SimError::Exec(e) => RunError::Exec(e.to_string()),
            SimError::CycleLimit(max_cycles) => RunError::CycleLimit {
                max_cycles,
                retired,
            },
            SimError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
            } => RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            },
        }
    }
}

impl RunError {
    /// Serializes the error (tag byte + fields) for the result store
    /// and the worker-process protocol.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            RunError::Exec(msg) => {
                e.u8(0);
                e.str(msg);
            }
            RunError::CycleLimit {
                max_cycles,
                retired,
            } => {
                e.u8(1);
                e.u64(*max_cycles);
                e.u64(*retired);
            }
            RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            } => {
                e.u8(2);
                e.u64(*last_commit_cycle);
                e.u64(*stalled_cycles);
                e.u64(*retired);
            }
        }
    }

    /// Decodes an error serialized by [`RunError::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<RunError, SnapError> {
        match d.u8()? {
            0 => Ok(RunError::Exec(d.str()?.to_string())),
            1 => Ok(RunError::CycleLimit {
                max_cycles: d.u64()?,
                retired: d.u64()?,
            }),
            2 => Ok(RunError::Watchdog {
                last_commit_cycle: d.u64()?,
                stalled_cycles: d.u64()?,
                retired: d.u64()?,
            }),
            _ => Err(SnapError::Corrupt("RunError tag")),
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Exec(e) => write!(f, "functional execution failed: {e}"),
            RunError::CycleLimit {
                max_cycles,
                retired,
            } => write!(
                f,
                "cycle cap {max_cycles} reached after {retired} retired instructions \
                 (possible deadlock)"
            ),
            RunError::Watchdog {
                last_commit_cycle,
                stalled_cycles,
                retired,
            } => write!(
                f,
                "watchdog: no commit for {stalled_cycles} cycles (last commit at cycle \
                 {last_commit_cycle}, {retired} retired)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything measured by one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Use-case name.
    pub name: String,
    /// Core statistics.
    pub stats: SimStats,
    /// Memory hierarchy statistics.
    pub hier: HierarchyStats,
    /// Agent statistics (PFM runs only).
    pub fabric: Option<FabricStats>,
    /// Injected-fault counters (chaos runs only).
    pub faults: Option<FaultStats>,
    /// Checksum of the committed instruction stream (PCs, branch
    /// outcomes, register writes, stores), folded over the first
    /// `max_instrs` retired instructions. The graceful-degradation
    /// invariant: bit-identical across fault-free and faulty runs of
    /// the same workload and instruction budget, because fabric
    /// interventions are microarchitectural only.
    pub arch_checksum: u64,
    /// Whether the workload ran to completion (halted) rather than
    /// being cut off by the instruction budget. The bench report
    /// surfaces this so an early-exiting run is never mistaken for a
    /// budget-limited one.
    pub completed: bool,
}

impl RunResult {
    /// Serializes the full result (all statistics layers) for the
    /// result store and the worker-process protocol. The layout is
    /// covered by [`crate::store::STATS_SCHEMA_VERSION`]: bump that
    /// constant whenever this encoding (or any nested stats codec)
    /// changes shape or meaning.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.str(&self.name);
        self.stats.snapshot_encode(e);
        self.hier.snapshot_encode(e);
        match &self.fabric {
            Some(f) => {
                e.u8(1);
                f.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        match &self.faults {
            Some(f) => {
                e.u8(1);
                f.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        e.u64(self.arch_checksum);
        e.bool(self.completed);
    }

    /// Decodes a result serialized by [`RunResult::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<RunResult, SnapError> {
        let name = d.str()?.to_string();
        let stats = SimStats::snapshot_decode(d)?;
        let hier = HierarchyStats::snapshot_decode(d)?;
        let fabric = match d.u8()? {
            0 => None,
            1 => Some(FabricStats::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("fabric stats tag")),
        };
        let faults = match d.u8()? {
            0 => None,
            1 => Some(FaultStats::snapshot_decode(d)?),
            _ => return Err(SnapError::Corrupt("fault stats tag")),
        };
        Ok(RunResult {
            name,
            stats,
            hier,
            fabric,
            faults,
            arch_checksum: d.u64()?,
            completed: d.bool()?,
        })
    }

    /// IPC of this run.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Percentage IPC improvement over `base` (the paper's metric;
    /// baseline sits at 0%).
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.stats.ipc_improvement_over(&base.stats)
    }
}

/// Drives `core` under `rc`'s budgets and watchdog, then packages the
/// result (shared by the baseline, PFM and chaos entry points).
fn drive(uc: &UseCase, mut fabric: Option<Fabric>, rc: &RunConfig) -> Result<RunResult, RunError> {
    let mut core = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    let outcome = match fabric.as_mut() {
        Some(f) => core.run_watched(f, rc.max_instrs, rc.max_cycles, rc.commit_watchdog),
        None => core.run_watched(&mut NoPfm, rc.max_instrs, rc.max_cycles, rc.commit_watchdog),
    };
    outcome.map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().clone(),
        hier: *core.hierarchy().stats(),
        faults: fabric.as_ref().and_then(|f| f.component().fault_stats()),
        fabric: fabric.map(|f| *f.stats()),
        arch_checksum: core.commit_checksum(),
        completed: core.finished(),
    })
}

/// Runs the use-case on the baseline core (no fabric attached).
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_baseline(uc: &UseCase, rc: &RunConfig) -> Result<RunResult, RunError> {
    drive(uc, None, rc)
}

/// Runs the use-case with the PFM fabric attached.
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_pfm(uc: &UseCase, params: FabricParams, rc: &RunConfig) -> Result<RunResult, RunError> {
    drive(uc, Some(uc.fabric(params)), rc)
}

/// Runs the use-case functionally only, on the pre-decoded fast
/// executor: no timing, no speculation, no memory hierarchy — just the
/// committed architectural stream, at interpreter speed.
///
/// The result's `arch_checksum` is the same commit-stream fold the
/// detailed core computes at retirement over the same `max_instrs`
/// budget, so a functional run validates (and is validated by) its
/// detailed counterparts. Timing statistics are zero by construction;
/// only `retired`, `loads` and `stores` are populated.
///
/// # Errors
/// [`RunError::Exec`] if the program leaves its address space.
pub fn run_functional(uc: &UseCase, rc: &RunConfig) -> Result<RunResult, RunError> {
    let mut fx = FastExec::new(uc.program.clone(), uc.memory.clone());
    fx.run(rc.max_instrs)
        .map_err(|e| RunError::Exec(e.to_string()))?;
    let stats = SimStats {
        retired: fx.retired(),
        loads: fx.loads(),
        stores: fx.stores(),
        ..SimStats::default()
    };
    Ok(RunResult {
        name: uc.name.clone(),
        stats,
        hier: HierarchyStats::default(),
        fabric: None,
        faults: None,
        arch_checksum: fx.commit_checksum(),
        completed: fx.halted(),
    })
}

/// Runs one detailed sampling interval: restores the architectural
/// snapshot (captured by the functional fast-forward) into a fresh
/// cold-structure core, retires `warmup` instructions to warm caches,
/// TLB and branch history (their statistics are diffed out), then
/// measures `rc.max_instrs` further retired instructions.
///
/// The returned `stats` cover only the measured window. `hier` covers
/// warm-up plus measurement (cache counters are reported for
/// diagnosis, not assembled into IPC). `arch_checksum` is not
/// comparable across positions and is reported as the core's fold from
/// the restore point.
///
/// # Errors
/// [`RunError::Exec`] if the snapshot fails to decode or the machine
/// faults; watchdog/cycle-cap errors as in the other entry points.
pub fn run_interval(
    uc: &UseCase,
    snapshot: &[u8],
    warmup: u64,
    rc: &RunConfig,
) -> Result<RunResult, RunError> {
    let machine = Machine::restore(uc.program.clone(), snapshot)
        .map_err(|e| RunError::Exec(format!("snapshot restore: {e}")))?;
    let mut core = Core::new(rc.core.clone(), machine, Hierarchy::new(rc.hier.clone()));
    core.run_watched(&mut NoPfm, warmup, rc.max_cycles, rc.commit_watchdog)
        .map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    let warm = core.stats().clone();
    core.run_watched(
        &mut NoPfm,
        warmup.saturating_add(rc.max_instrs),
        rc.max_cycles,
        rc.commit_watchdog,
    )
    .map_err(|e| RunError::from_sim(e, core.stats().retired))?;
    Ok(RunResult {
        name: uc.name.clone(),
        stats: core.stats().delta_since(&warm),
        hier: *core.hierarchy().stats(),
        fabric: None,
        faults: None,
        arch_checksum: core.commit_checksum(),
        completed: core.finished(),
    })
}

/// Runs the use-case with the PFM fabric attached and its component
/// wrapped in the deterministic fault injector (the chaos harness).
///
/// # Errors
/// Returns a structured [`RunError`]: functional fault, cycle cap, or
/// forward-progress watchdog.
pub fn run_chaos(
    uc: &UseCase,
    params: FabricParams,
    plan: FaultPlan,
    rc: &RunConfig,
) -> Result<RunResult, RunError> {
    drive(uc, Some(uc.fabric_faulty(params, plan)), rc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::FaultScenario;
    use pfm_workloads::{astar, AstarParams};

    #[test]
    fn baseline_and_pfm_agree_architecturally() {
        let p = AstarParams {
            grid_w: 32,
            grid_h: 32,
            fills: 1,
            ..AstarParams::default()
        };
        let uc = astar(&p);
        let rc = RunConfig::test_scale();
        let base = run_baseline(&uc, &rc).unwrap();
        let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
        // Same instruction budget; the PFM run must not break anything.
        assert!(base.stats.retired > 0);
        assert!(pfm.stats.retired > 0);
        assert!(pfm.fabric.is_some());
        assert_eq!(
            base.arch_checksum, pfm.arch_checksum,
            "PFM interventions are microarchitectural only"
        );
    }

    #[test]
    fn chaos_run_reports_fault_stats() {
        let p = AstarParams {
            grid_w: 32,
            grid_h: 32,
            fills: 1,
            ..AstarParams::default()
        };
        let uc = astar(&p);
        let rc = RunConfig::test_scale();
        let plan = FaultPlan::new(FaultScenario::InvertPred, 1).with_rate(1000);
        let r = run_chaos(&uc, FabricParams::paper_default(), plan, &rc).unwrap();
        let f = r.faults.expect("chaos run must report fault stats");
        assert!(f.inverted > 0, "rate-1000 inversion must fire");
    }

    #[test]
    fn run_config_key_covers_the_watchdog() {
        let rc = RunConfig::test_scale();
        let mut off = RunConfig::test_scale();
        off.commit_watchdog = None;
        assert_ne!(rc.key(), off.key());
        assert!(rc.key().contains("wd1000000"));
    }
}
