//! One plan per table and figure of the paper's evaluation: each
//! `plan_*` function *describes* the runs the experiment needs (keyed
//! [`RunSpec`](crate::plan::RunSpec)s) plus a pure assembly closure
//! mapping completed runs to printable rows. The executor
//! ([`crate::exec`]) deduplicates runs shared between experiments —
//! the astar baseline, requested by fig2/fig8/fig9/fig10/fig18 and the
//! ablations, is simulated once.
//!
//! The eager `fig*`/`table*` functions are thin wrappers that plan and
//! execute a single experiment serially; `all` executes every plan
//! through the deduplicating executor. Both paths produce identical
//! rows (runs are deterministic, assembly is pure).
//!
//! Speedups follow the paper's convention: percentage IPC improvement
//! over the baseline core, which sits at 0%.

use crate::exec::{self, ExecOptions};
use crate::plan::{ExperimentPlan, PlanError, RunHandle, SpecSet};
use crate::runner::{RunConfig, RunResult};
use crate::usecases;
use pfm_fabric::{FabricParams, FaultPlan, FaultScenario, PortPolicy, StallPolicy};
use pfm_fpga::{power, table4_designs, EnergyModel};
use pfm_workloads::{AstarParams, AstarVariant, UseCaseFactory};

/// One labeled data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Bar/row label (paper notation, e.g. `clk4_w4`).
    pub label: String,
    /// Primary value (usually % IPC improvement).
    pub value: f64,
    /// Free-form extra columns.
    pub extra: String,
}

/// A regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Paper identifier (e.g. `fig8`, `table2`).
    pub id: &'static str,
    /// Title as in the paper.
    pub title: &'static str,
    /// The paper's reported numbers, for side-by-side comparison.
    pub paper: &'static str,
    /// Regenerated rows.
    pub rows: Vec<Row>,
}

impl Experiment {
    /// Renders the experiment as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!(
            "== {} — {} ==\n   (paper: {})\n",
            self.id, self.title, self.paper
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<22} {:>8.1}  {}\n",
                r.label, r.value, r.extra
            ));
        }
        out
    }
}

fn pfm_cfg(c: u64, w: usize) -> FabricParams {
    FabricParams::paper_default()
        .clk_w(c, w)
        .delay(0)
        .queue(32)
        .port(PortPolicy::All)
}

fn speedup_row(label: impl Into<String>, r: &RunResult, base: &RunResult) -> Row {
    Row {
        label: label.into(),
        value: r.speedup_over(base),
        extra: format!("IPC {:.3}  MPKI {:.2}", r.ipc(), r.stats.mpki()),
    }
}

/// Plans and executes a single experiment serially (the eager
/// back-compat path).
///
/// # Errors
/// Returns the [`PlanError`] of a failed run or assembly.
fn run_one(plan: ExperimentPlan) -> Result<Experiment, PlanError> {
    let (runs, _) = exec::execute(plan.specs(), &ExecOptions::serial());
    plan.assemble(&runs)
}

/// Figure 2 plan: speedups of PFM and Slipstream 2.0 on astar and bfs.
pub fn plan_fig2(rc: &RunConfig) -> ExperimentPlan {
    let paper_cfg = FabricParams::paper_default(); // clk4_w4 delay4 queue32 portLS1
    let mut s = SpecSet::default();

    let astar = usecases::astar_custom_factory();
    let base = s.baseline(&astar, rc);
    let pfm = s.pfm(&astar, paper_cfg.clone(), rc);
    let slipstream = usecases::astar_factory(AstarParams {
        variant: AstarVariant::Slipstream,
        ..AstarParams::default()
    });
    let ss = s.pfm(&slipstream, paper_cfg.clone(), rc);

    let bfs = usecases::bfs_roads_factory();
    let bbase = s.baseline(&bfs, rc);
    let bpfm = s.pfm(&bfs, paper_cfg.clone(), rc);
    let bss = s.pfm(&usecases::bfs_roads_slipstream_factory(), paper_cfg, rc);

    ExperimentPlan::new(
        "fig2",
        "Speedups of PFM and Slipstream 2.0",
        "astar: PFM 154%, slipstream 18%; bfs: PFM up to 125%, slipstream smaller",
        s,
        move |runs| {
            Ok(vec![
                speedup_row("astar PFM", pfm.of(runs)?, base.of(runs)?),
                speedup_row("astar Slipstream2.0", ss.of(runs)?, base.of(runs)?),
                speedup_row("bfs PFM", bpfm.of(runs)?, bbase.of(runs)?),
                speedup_row("bfs Slipstream2.0", bss.of(runs)?, bbase.of(runs)?),
            ])
        },
    )
}

/// Figure 8 plan: astar speedup for different C and W parameters.
pub fn plan_fig8(rc: &RunConfig) -> ExperimentPlan {
    let uc = usecases::astar_custom_factory();
    let mut s = SpecSet::default();
    let base = s.baseline(&uc, rc);
    let mut sweep: Vec<(String, RunHandle)> = Vec::new();
    for (c, w) in [(4, 1), (8, 1), (4, 2), (4, 3), (4, 4), (2, 4), (1, 4)] {
        sweep.push((format!("clk{c}_w{w}"), s.pfm(&uc, pfm_cfg(c, w), rc)));
    }
    sweep.push((
        "perfBP".to_string(),
        s.baseline(&uc, &rc.clone().perfect_bp()),
    ));
    ExperimentPlan::new(
        "fig8",
        "astar speedup vs. custom-predictor C and W",
        "clk4_w1/clk8_w1 slowdowns; clk4_w2 99%, clk4_w3 155%, clk4_w4 163%; perfBP 162%",
        s,
        move |runs| {
            let base = base.of(runs)?;
            sweep
                .iter()
                .map(|(label, h)| Ok(speedup_row(label.clone(), h.of(runs)?, base)))
                .collect()
        },
    )
}

fn snoop_rows(r: &RunResult) -> Vec<Row> {
    // pfm-lint: allow(hygiene): snoop rows are only assembled from PFM runs
    let f = r.fabric.expect("pfm run");
    vec![
        Row {
            label: "% retired in RST".into(),
            value: f.rst_hit_pct(),
            extra: String::new(),
        },
        Row {
            label: "% fetched in FST".into(),
            value: f.fst_hit_pct(),
            extra: String::new(),
        },
    ]
}

/// Table 2 plan: astar FST and RST snoop percentages.
pub fn plan_table2(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let r = s.pfm(&usecases::astar_custom_factory(), pfm_cfg(4, 4), rc);
    ExperimentPlan::new(
        "table2",
        "astar: FST and RST snoop percentages",
        "RST 20.3% of retired in ROI; FST 15.5% of fetched in ROI",
        s,
        move |runs| Ok(snoop_rows(r.of(runs)?)),
    )
}

/// Shared D/Q/P sensitivity plan (Figures 9 and 13 differ only in the
/// use-case under test — this helper replaces their former copy-pasted
/// sweep loops).
fn plan_dqp(
    id: &'static str,
    title: &'static str,
    paper: &'static str,
    uc: UseCaseFactory,
    rc: &RunConfig,
) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let base = s.baseline(&uc, rc);
    let mut sweep: Vec<(String, RunHandle)> = Vec::new();
    for d in [0u64, 2, 4, 8] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(d)
            .queue(32)
            .port(PortPolicy::All);
        sweep.push((format!("(a) delay{d}"), s.pfm(&uc, p, rc)));
    }
    for q in [8usize, 16, 32, 64] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(q)
            .port(PortPolicy::All);
        sweep.push((format!("(b) queue{q}"), s.pfm(&uc, p, rc)));
    }
    for pp in [PortPolicy::All, PortPolicy::Ls, PortPolicy::Ls1] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(32)
            .port(pp);
        sweep.push((format!("(c) {}", pp.label()), s.pfm(&uc, p, rc)));
    }
    ExperimentPlan::new(id, title, paper, s, move |runs| {
        let base = base.of(runs)?;
        sweep
            .iter()
            .map(|(label, h)| Ok(speedup_row(label.clone(), h.of(runs)?, base)))
            .collect()
    })
}

/// Figure 9 plan: astar sensitivity to D (delay), Q (queues) and P
/// (ports).
pub fn plan_fig9(rc: &RunConfig) -> ExperimentPlan {
    plan_dqp(
        "fig9",
        "astar speedup vs. D, Q and P",
        "delay8 still 138%; resistant to queue size; ports not an issue (portLS1 154%)",
        usecases::astar_custom_factory(),
        rc,
    )
}

/// Figure 10 plan: astar speedup vs. index_queue entries (speculative
/// scope).
pub fn plan_fig10(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let base = s.baseline(&usecases::astar_custom_factory(), rc);
    let mut sweep: Vec<(String, RunHandle)> = Vec::new();
    for scope in [2usize, 4, 8, 16] {
        let uc = usecases::astar_factory(AstarParams {
            scope,
            ..AstarParams::default()
        });
        sweep.push((
            format!("index_queue {scope}"),
            s.pfm(&uc, FabricParams::paper_default(), rc),
        ));
    }
    ExperimentPlan::new(
        "fig10",
        "astar speedup vs. index_queue entries",
        "8 entries adequate for most of the speedup potential",
        s,
        move |runs| {
            let base = base.of(runs)?;
            sweep
                .iter()
                .map(|(label, h)| Ok(speedup_row(label.clone(), h.of(runs)?, base)))
                .collect()
        },
    )
}

/// Figure 12 plan: bfs oracles and C/W sweep (Roads and Youtube
/// inputs).
pub fn plan_fig12(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    // (label, run, that run's baseline)
    let mut sweep: Vec<(String, RunHandle, RunHandle)> = Vec::new();
    for (uc, tag) in [
        (usecases::bfs_roads_factory(), "roads"),
        (usecases::bfs_youtube_factory(), "youtube"),
    ] {
        let base = s.baseline(&uc, rc);
        let pbp = s.baseline(&uc, &rc.clone().perfect_bp());
        sweep.push((format!("{tag} perfBP"), pbp, base.clone()));
        let pd = s.baseline(&uc, &rc.clone().perfect_dcache());
        sweep.push((format!("{tag} perfD$"), pd, base.clone()));
        let both = s.baseline(&uc, &rc.clone().perfect_bp().perfect_dcache());
        sweep.push((format!("{tag} perfBP+D$"), both, base.clone()));
        for (c, w) in [(4, 1), (4, 2), (4, 4)] {
            let r = s.pfm(&uc, pfm_cfg(c, w), rc);
            sweep.push((format!("{tag} clk{c}_w{w}"), r, base.clone()));
        }
    }
    ExperimentPlan::new(
        "fig12",
        "bfs speedup: oracles and custom component C/W",
        "Roads: perfBP 11%, perfD$ 152%, both 426%, custom up to 125%; clk4_w2 close to clk4_w4",
        s,
        move |runs| {
            sweep
                .iter()
                .map(|(label, h, base)| Ok(speedup_row(label.clone(), h.of(runs)?, base.of(runs)?)))
                .collect()
        },
    )
}

/// Table 3 plan: bfs FST and RST snoop percentages.
pub fn plan_table3(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let r = s.pfm(&usecases::bfs_roads_factory(), pfm_cfg(4, 4), rc);
    ExperimentPlan::new(
        "table3",
        "bfs: FST and RST snoop percentages",
        "RST 31% of retired in ROI; FST 13% of fetched in ROI",
        s,
        move |runs| Ok(snoop_rows(r.of(runs)?)),
    )
}

/// Figure 13 plan: bfs sensitivity to D, Q and P.
pub fn plan_fig13(rc: &RunConfig) -> ExperimentPlan {
    plan_dqp(
        "fig13",
        "bfs speedup vs. D, Q and P",
        "low sensitivity to all three",
        usecases::bfs_roads_factory(),
        rc,
    )
}

/// Figure 14 plan: bfs speedup vs. the component's queue entries.
pub fn plan_fig14(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let base = s.baseline(&usecases::bfs_roads_factory(), rc);
    let mut sweep: Vec<(String, RunHandle)> = Vec::new();
    for window in [16usize, 32, 64, 128] {
        let uc = usecases::bfs_roads_window_factory(window);
        sweep.push((
            format!("{window}-entry queues"),
            s.pfm(&uc, FabricParams::paper_default(), rc),
        ));
    }
    ExperimentPlan::new(
        "fig14",
        "bfs speedup vs. frontier/neighbor queue entries",
        "performance scales with the queue sizes",
        s,
        move |runs| {
            let base = base.of(runs)?;
            sweep
                .iter()
                .map(|(label, h)| Ok(speedup_row(label.clone(), h.of(runs)?, base)))
                .collect()
        },
    )
}

/// Figure 17 plan: custom prefetcher speedups for different C and W.
pub fn plan_fig17(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();
    let mut sweep: Vec<(String, RunHandle, RunHandle)> = Vec::new();
    for uc in usecases::prefetch_suite_factories() {
        let base = s.baseline(&uc, rc);
        for (c, w) in [(1, 1), (4, 1), (4, 4), (8, 4)] {
            let r = s.pfm(&uc, pfm_cfg(c, w), rc);
            sweep.push((format!("{} clk{c}_w{w}", uc.name()), r, base.clone()));
        }
    }
    ExperimentPlan::new(
        "fig17",
        "custom prefetcher speedups vs. C and W",
        "positive speedups, very resistant to C and W",
        s,
        move |runs| {
            sweep
                .iter()
                .map(|(label, h, base)| Ok(speedup_row(label.clone(), h.of(runs)?, base.of(runs)?)))
                .collect()
        },
    )
}

/// Table 4 plan: FPGA resource, frequency and power estimates per
/// design (no simulation runs — the rows come from the FPGA model).
pub fn plan_table4() -> ExperimentPlan {
    ExperimentPlan::new(
        "table4",
        "Hardware overhead using FPGA for RF (value = freq MHz)",
        "astar(4wide) 6249 LUT/3523 FF/500 MHz/251 mW; astar-alt 1064/700/17.5 BRAM/498; prefetchers 150-300 LUT, 628-731 MHz",
        SpecSet::default(),
        |_| {
            Ok(table4_designs()
                .iter()
                .map(|d| {
                    let r = d.resources();
                    let p = power(d);
                    Row {
                        label: d.name.to_string(),
                        value: d.frequency_mhz(),
                        extra: format!(
                            "LUT {:>5}  FF {:>5}  BRAM {:>5.1}  DSP {}  dyn(logic) {:>5.0} mW  dyn(I/O) {:>4.0} mW  static {:>4.0} mW",
                            r.lut, r.ff, r.bram, r.dsp, p.dynamic_logic_mw, p.dynamic_io_mw, p.static_mw
                        ),
                    }
                })
                .collect())
        },
    )
}

/// Figure 18 plan: PFM (core + RF) energy normalized to the baseline
/// core.
pub fn plan_fig18(rc: &RunConfig) -> ExperimentPlan {
    let mut cases: Vec<(UseCaseFactory, FabricParams)> = vec![
        (
            usecases::astar_custom_factory(),
            FabricParams::paper_default(),
        ),
        (
            usecases::astar_factory(AstarParams {
                variant: AstarVariant::Alt,
                ..AstarParams::default()
            }),
            FabricParams::paper_default(),
        ),
    ];
    for uc in [
        usecases::libquantum_factory(),
        usecases::lbm_factory(),
        usecases::bwaves_factory(),
        usecases::milc_factory(),
    ] {
        cases.push((uc, pfm_cfg(4, 1)));
    }

    let mut s = SpecSet::default();
    // (use-case name, fabric clock ratio, baseline run, pfm run)
    let mut sweep: Vec<(String, u64, RunHandle, RunHandle)> = Vec::new();
    for (uc, params) in cases {
        let clk_ratio = params.clk_ratio;
        let base = s.baseline(&uc, rc);
        let pfm = s.pfm(&uc, params, rc);
        sweep.push((uc.name().to_string(), clk_ratio, base, pfm));
    }
    ExperimentPlan::new(
        "fig18",
        "core+RF energy normalized to baseline core (value = ratio)",
        "all designs below 1.0: less misspeculation + shorter runtime",
        s,
        move |runs| {
            let model = EnergyModel::default();
            let designs = table4_designs();
            let design_for = |name: &str| {
                designs
                    .iter()
                    .find(|d| match name {
                        "astar" => d.name == "astar (4wide)",
                        "astar-alt" => d.name == "astar-alt",
                        "libquantum" => d.name == "libq",
                        other => d.name == other,
                    })
                    // pfm-lint: allow(hygiene): sweep names match the design table
                    .expect("design exists")
            };
            sweep
                .iter()
                .map(|(name, clk_ratio, bh, ph)| {
                    let base = bh.of(runs)?;
                    let pfm = ph.of(runs)?;
                    let n = model.normalized_pfm_energy(
                        (&base.stats, &base.hier),
                        (&pfm.stats, &pfm.hier),
                        design_for(name),
                        *clk_ratio,
                    );
                    Ok(Row {
                        label: name.clone(),
                        value: n,
                        extra: format!("speedup +{:.0}%", pfm.speedup_over(base)),
                    })
                })
                .collect()
        },
    )
}

/// Ablations plan: the design choices DESIGN.md calls out — store
/// inference, the missed-load buffer, the fetch stall policy, and the
/// baseline VLDP prefetcher.
pub fn plan_ablations(rc: &RunConfig) -> ExperimentPlan {
    let mut s = SpecSet::default();

    // (1) astar index1_CAM store inference on/off.
    let uc = usecases::astar_custom_factory();
    let base = s.baseline(&uc, rc);
    let on = s.pfm(&uc, FabricParams::paper_default(), rc);
    let no_inf = usecases::astar_factory(AstarParams {
        store_inference: false,
        ..AstarParams::default()
    });
    let off = s.pfm(&no_inf, FabricParams::paper_default(), rc);

    // (2) Load Agent missed-load buffer: shrink it to 2 entries.
    let mut tiny_mlb = FabricParams::paper_default();
    tiny_mlb.mlb_size = 2;
    let tiny = s.pfm(&uc, tiny_mlb, rc);

    // (3) Fetch Agent stall vs proceed-and-drop (§2.4 alternative).
    let mut pd_params = FabricParams::paper_default();
    pd_params.stall_policy = StallPolicy::ProceedAndDrop;
    let pd = s.pfm(&uc, pd_params, rc);

    // (4) VLDP's contribution to the libquantum baseline (the custom
    // prefetcher's win shrinks/grows with the baseline prefetchers).
    let libq = usecases::libquantum_factory();
    let libq_base = s.baseline(&libq, rc);
    let mut no_vldp = rc.clone();
    no_vldp.hier.vldp = false;
    let libq_novldp = s.baseline(&libq, &no_vldp);
    let libq_custom = s.pfm(
        &libq,
        FabricParams::paper_default()
            .clk_w(4, 1)
            .delay(0)
            .port(PortPolicy::All),
        rc,
    );

    ExperimentPlan::new(
        "ablations",
        "design-choice ablations (speedup vs. each row's baseline)",
        "(not in the paper: DESIGN.md ablation list)",
        s,
        move |runs| {
            Ok(vec![
                speedup_row("astar + inference", on.of(runs)?, base.of(runs)?),
                speedup_row("astar - inference", off.of(runs)?, base.of(runs)?),
                speedup_row("astar mlb=2", tiny.of(runs)?, base.of(runs)?),
                speedup_row("astar proceed+drop", pd.of(runs)?, base.of(runs)?),
                speedup_row(
                    "libq baseline -VLDP",
                    libq_novldp.of(runs)?,
                    libq_base.of(runs)?,
                ),
                speedup_row("libq custom pf", libq_custom.of(runs)?, libq_base.of(runs)?),
            ])
        },
    )
}

/// Seed shared by every chaos-family fault plan. Fixed (not
/// wall-clock, not per-invocation) so chaos runs are reproducible
/// bit-for-bit and the executor can dedup the overlap between `chaos`
/// and `chaos-smoke`.
const CHAOS_SEED: u64 = 0xC4A0_5EED;

/// The use-cases the full `chaos` experiment exercises: every workload
/// family in the paper (astar, bfs, and the custom-prefetcher suite).
fn chaos_suite() -> Vec<UseCaseFactory> {
    let mut suite = vec![
        usecases::astar_custom_factory(),
        usecases::bfs_roads_factory(),
    ];
    suite.extend(usecases::prefetch_suite_factories());
    suite
}

/// Shared chaos-family planner: for each use-case, one fault-free PFM
/// run plus one fault-injected run per [`FaultScenario`]. Assembly
/// enforces the paper's §3 graceful-degradation guarantee — a
/// misbehaving reconfigurable component may cost performance but can
/// never corrupt architectural state — by requiring every faulty run's
/// committed checksum to be bit-identical to its fault-free
/// counterpart ([`PlanError::ArchMismatch`] otherwise).
fn plan_chaos_over(
    id: &'static str,
    title: &'static str,
    suite: Vec<UseCaseFactory>,
    rc: &RunConfig,
) -> ExperimentPlan {
    let mut s = SpecSet::default();
    // (row label, scenario name, faulty run, that use-case's fault-free run)
    let mut sweep: Vec<(String, &'static str, RunHandle, RunHandle)> = Vec::new();
    for uc in suite {
        let params = FabricParams::paper_default();
        let clean = s.pfm(&uc, params.clone(), rc);
        for sc in FaultScenario::ALL {
            let h = s.chaos(&uc, params.clone(), FaultPlan::new(sc, CHAOS_SEED), rc);
            sweep.push((
                format!("{} {}", uc.name(), sc.name()),
                sc.name(),
                h,
                clean.clone(),
            ));
        }
    }
    ExperimentPlan::new(
        id,
        title,
        "(not in the paper: graceful-degradation proof — faults may cost performance, never correctness)",
        s,
        move |runs| {
            sweep
                .iter()
                .map(|(label, scenario, fh, ch)| {
                    let faulty = fh.of(runs)?;
                    let clean = ch.of(runs)?;
                    if faulty.arch_checksum != clean.arch_checksum {
                        return Err(PlanError::ArchMismatch {
                            name: label.clone(),
                            scenario,
                            expected: clean.arch_checksum,
                            actual: faulty.arch_checksum,
                        });
                    }
                    let f = faulty.faults.unwrap_or_default();
                    Ok(Row {
                        label: label.clone(),
                        value: faulty.speedup_over(clean),
                        extra: format!(
                            "checksum OK  injected {:>5}  (inv {} garb {} wild {} drop {} delay {} dup {} stuck {} spike {})",
                            f.injected(),
                            f.inverted,
                            f.garbled,
                            f.wild,
                            f.dropped,
                            f.delayed,
                            f.duplicated,
                            f.stuck_ticks,
                            f.spike_ticks,
                        ),
                    })
                })
                .collect()
        },
    )
}

/// Chaos plan: every use-case × every fault scenario, asserting
/// committed architectural state stays bit-identical to the fault-free
/// run (value = % IPC change under faults).
pub fn plan_chaos(rc: &RunConfig) -> ExperimentPlan {
    plan_chaos_over(
        "chaos",
        "graceful degradation under injected fabric faults (value = % IPC change)",
        chaos_suite(),
        rc,
    )
}

/// CI-sized chaos smoke: one use-case (libquantum) × every fault
/// scenario.
pub fn plan_chaos_smoke(rc: &RunConfig) -> ExperimentPlan {
    plan_chaos_over(
        "chaos-smoke",
        "chaos smoke: libquantum × every fault scenario (value = % IPC change)",
        vec![usecases::libquantum_factory()],
        rc,
    )
}

/// Verifies the context-switch graceful-degradation invariant for one
/// arm — every tenant's committed-stream checksum bit-identical to the
/// no-fabric run's — then renders its aggregate row (plus per-phase
/// rows when `phases` is set).
fn ctx_rows(
    label: &str,
    scenario: &'static str,
    r: &RunResult,
    base: &RunResult,
    phases: bool,
) -> Result<Vec<Row>, PlanError> {
    let missing = |key: &str| PlanError::RunFailed {
        key: key.to_string(),
        outcome: "run carries no context-switch statistics".to_string(),
    };
    let ctx = r.ctx.as_ref().ok_or_else(|| missing(&r.name))?;
    let bctx = base.ctx.as_ref().ok_or_else(|| missing(&base.name))?;
    for (t, bt) in ctx.tenants.iter().zip(&bctx.tenants) {
        if t.checksum != bt.checksum {
            return Err(PlanError::ArchMismatch {
                name: format!("{} under {label}", t.name),
                scenario,
                expected: bt.checksum,
                actual: t.checksum,
            });
        }
    }
    let f = r.fabric.unwrap_or_default();
    let per_tenant = ctx
        .tenants
        .iter()
        .enumerate()
        .map(|(i, t)| format!("{} {:.3}", t.name, ctx.tenant_ipc(i)))
        .collect::<Vec<_>>()
        .join("  ");
    let mut rows = vec![Row {
        label: label.to_string(),
        value: r.speedup_over(base),
        extra: format!(
            "checksum OK  IPC {:.3}  {per_tenant}  swaps {}  reconfig {} cycles  decisions {} \
             (aborts {} spike {} stale-leaks {} corrupted {})",
            r.ipc(),
            ctx.swaps,
            ctx.reconfig_cycles,
            ctx.decisions,
            f.swap_abort_restarts,
            f.swap_spike_cycles,
            f.stale_drain_leaks,
            ctx.corrupted_decisions,
        ),
    }];
    if phases {
        for (i, p) in ctx.phases.iter().enumerate() {
            let ipc = if p.cycles > 0 {
                p.retired as f64 / p.cycles as f64
            } else {
                0.0
            };
            rows.push(Row {
                label: format!("  p{i} {}", p.tenant),
                value: ipc,
                extra: format!("phase IPC  retired {}  cycles {}", p.retired, p.cycles),
            });
        }
    }
    Ok(rows)
}

/// Context-switch plan: astar and bfs alternate on one core, sharing a
/// single fabric slot. Four arms bracket the cost of runtime
/// reconfiguration — no fabric at all, scheduled swaps at zero cost
/// (oracle), scheduled swaps at the modeled partial-reconfiguration
/// cost, and a slot pinned to a dead-wrong component — plus one
/// mid-swap chaos arm per [`FaultScenario::MID_SWAP`] scenario at the
/// modeled cost. Assembly enforces per-tenant committed-checksum
/// bit-identity against the no-fabric arm for every other arm
/// ([`PlanError::ArchMismatch`] otherwise): scheduling and mid-swap
/// faults may cost IPC, never correctness.
pub fn plan_context_switch(rc: &RunConfig) -> ExperimentPlan {
    let a = usecases::astar_custom_factory();
    let b = usecases::bfs_roads_factory();
    let decoy = usecases::libquantum_factory();
    let params = FabricParams::paper_default();
    let mut s = SpecSet::default();

    let base = s.context_switch(&a, &b, crate::runner::CtxMode::NoFabric, None, None, rc);
    // (row label, static arm tag, run handle, render per-phase rows)
    let mut arms: Vec<(String, &'static str, RunHandle, bool)> = vec![
        (
            "sched zero-cost".to_string(),
            "sched0",
            s.context_switch(
                &a,
                &b,
                crate::runner::CtxMode::Sched { zero_cost: true },
                Some(params.clone()),
                None,
                rc,
            ),
            true,
        ),
        (
            "sched modeled".to_string(),
            "sched",
            s.context_switch(
                &a,
                &b,
                crate::runner::CtxMode::Sched { zero_cost: false },
                Some(params.clone()),
                None,
                rc,
            ),
            true,
        ),
        (
            "pinned libquantum".to_string(),
            "pinned",
            s.context_switch(
                &a,
                &b,
                crate::runner::CtxMode::Pinned {
                    decoy: decoy.clone(),
                },
                Some(params.clone()),
                None,
                rc,
            ),
            true,
        ),
    ];
    for sc in FaultScenario::MID_SWAP {
        arms.push((
            format!("chaos {}", sc.name()),
            sc.name(),
            s.context_switch(
                &a,
                &b,
                crate::runner::CtxMode::Sched { zero_cost: false },
                Some(params.clone()),
                // Only ~8 swaps happen per run, so the default rate
                // would often draw zero injections; 600‰ makes every
                // mid-swap scenario actually fire while staying
                // seed-deterministic.
                Some(FaultPlan::new(sc, CHAOS_SEED).with_rate(600)),
                rc,
            ),
            false,
        ));
    }

    ExperimentPlan::new(
        "context-switch",
        "astar+bfs time-sharing the fabric slot (value = % IPC vs no-fabric)",
        "(not in the paper: runtime reconfiguration under a phase-detection scheduler)",
        s,
        move |runs| {
            let base_run = base.of(runs)?;
            let mut rows = ctx_rows("no-fabric", "nofabric", base_run, base_run, true)?;
            for (label, tag, h, phases) in &arms {
                rows.extend(ctx_rows(label, tag, h.of(runs)?, base_run, *phases)?);
            }
            Ok(rows)
        },
    )
}

/// Every experiment id `plan_for` knows, in paper order (`ablations`
/// last; it is extra material, not part of [`plans_all`]).
pub const ALL_IDS: [&str; 13] = [
    "fig2",
    "fig8",
    "table2",
    "fig9",
    "fig10",
    "fig12",
    "table3",
    "fig13",
    "fig14",
    "fig17",
    "table4",
    "fig18",
    "ablations",
];

/// Extra (non-paper) experiment ids `plan_for` also knows: the chaos
/// fault-injection family and the multi-tenant context-switch family.
/// Not part of [`ALL_IDS`] so `repro --all` keeps its paper scale;
/// requested explicitly via `repro chaos` / `repro --chaos` /
/// `repro --chaos-smoke` / `repro --context-switch`.
pub const EXTRA_IDS: [&str; 3] = ["chaos", "chaos-smoke", "context-switch"];

/// The plan for one experiment id.
///
/// # Errors
/// [`PlanError::UnknownExperiment`] for an id outside [`ALL_IDS`] and
/// [`EXTRA_IDS`].
pub fn plan_for(id: &str, rc: &RunConfig) -> Result<ExperimentPlan, PlanError> {
    match id {
        "fig2" => Ok(plan_fig2(rc)),
        "fig8" => Ok(plan_fig8(rc)),
        "table2" => Ok(plan_table2(rc)),
        "fig9" => Ok(plan_fig9(rc)),
        "fig10" => Ok(plan_fig10(rc)),
        "fig12" => Ok(plan_fig12(rc)),
        "table3" => Ok(plan_table3(rc)),
        "fig13" => Ok(plan_fig13(rc)),
        "fig14" => Ok(plan_fig14(rc)),
        "fig17" => Ok(plan_fig17(rc)),
        "table4" => Ok(plan_table4()),
        "fig18" => Ok(plan_fig18(rc)),
        "ablations" => Ok(plan_ablations(rc)),
        "chaos" => Ok(plan_chaos(rc)),
        "chaos-smoke" => Ok(plan_chaos_smoke(rc)),
        "context-switch" => Ok(plan_context_switch(rc)),
        _ => Err(PlanError::UnknownExperiment { id: id.to_string() }),
    }
}

/// Plans for every paper experiment, in paper order.
pub fn plans_all(rc: &RunConfig) -> Vec<ExperimentPlan> {
    vec![
        plan_fig2(rc),
        plan_fig8(rc),
        plan_table2(rc),
        plan_fig9(rc),
        plan_fig10(rc),
        plan_fig12(rc),
        plan_table3(rc),
        plan_fig13(rc),
        plan_fig14(rc),
        plan_fig17(rc),
        plan_table4(),
        plan_fig18(rc),
    ]
}

/// Figure 2: speedups of PFM and Slipstream 2.0 on astar and bfs.
///
/// # Errors
/// The [`PlanError`] of a failed run or assembly (likewise for every
/// eager wrapper below).
pub fn fig2(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig2(rc))
}

/// Figure 8: astar speedup for different C and W parameters.
///
/// # Errors
/// See [`fig2`].
pub fn fig8(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig8(rc))
}

/// Table 2: astar FST and RST snoop percentages.
///
/// # Errors
/// See [`fig2`].
pub fn table2(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_table2(rc))
}

/// Figure 9: astar sensitivity to D (delay), Q (queues) and P (ports).
///
/// # Errors
/// See [`fig2`].
pub fn fig9(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig9(rc))
}

/// Figure 10: astar speedup vs. index_queue entries (speculative scope).
///
/// # Errors
/// See [`fig2`].
pub fn fig10(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig10(rc))
}

/// Figure 12: bfs oracles and C/W sweep (Roads and Youtube inputs).
///
/// # Errors
/// See [`fig2`].
pub fn fig12(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig12(rc))
}

/// Table 3: bfs FST and RST snoop percentages.
///
/// # Errors
/// See [`fig2`].
pub fn table3(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_table3(rc))
}

/// Figure 13: bfs sensitivity to D, Q and P.
///
/// # Errors
/// See [`fig2`].
pub fn fig13(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig13(rc))
}

/// Figure 14: bfs speedup vs. the component's queue entries.
///
/// # Errors
/// See [`fig2`].
pub fn fig14(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig14(rc))
}

/// Figure 17: custom prefetcher speedups for different C and W.
///
/// # Errors
/// See [`fig2`].
pub fn fig17(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig17(rc))
}

/// Table 4: FPGA resource, frequency and power estimates per design.
///
/// # Errors
/// See [`fig2`] (table 4 performs no runs, so only assembly can fail).
pub fn table4() -> Result<Experiment, PlanError> {
    run_one(plan_table4())
}

/// Figure 18: PFM (core + RF) energy normalized to the baseline core.
///
/// # Errors
/// See [`fig2`].
pub fn fig18(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_fig18(rc))
}

/// Ablations of the design choices DESIGN.md calls out: store
/// inference, the missed-load buffer, the fetch stall policy, and the
/// baseline VLDP prefetcher.
///
/// # Errors
/// See [`fig2`].
pub fn ablations(rc: &RunConfig) -> Result<Experiment, PlanError> {
    run_one(plan_ablations(rc))
}

/// Every regenerable experiment, in paper order, executed through the
/// deduplicating executor (shared baselines run once). Each experiment
/// assembles independently: one failed run yields `Err` for the
/// experiments that needed it, not a panic for the suite.
pub fn all(rc: &RunConfig) -> Vec<Result<Experiment, PlanError>> {
    let (experiments, _) = exec::run_plans(plans_all(rc), &ExecOptions::default());
    experiments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_renders_all_rows() {
        let t = table4().unwrap();
        assert_eq!(t.rows.len(), 6);
        let s = t.render();
        assert!(s.contains("astar-alt"));
        assert!(s.contains("BRAM"));
    }

    #[test]
    fn table2_snoop_rates_in_paper_ballpark() {
        let rc = RunConfig::test_scale();
        let t = table2(&rc).unwrap();
        let rst = t.rows[0].value;
        let fst = t.rows[1].value;
        assert!(rst > 5.0 && rst < 45.0, "RST {rst}%");
        assert!(fst > 5.0 && fst < 30.0, "FST {fst}%");
    }

    #[test]
    fn shared_astar_baseline_planned_once_across_experiments() {
        // fig2, fig8, fig9 and fig10 all request the astar baseline;
        // the executor must simulate it exactly once. Pure planning
        // assertion — nothing is simulated here.
        let rc = RunConfig::test_scale();
        let plans = [
            plan_fig2(&rc),
            plan_fig8(&rc),
            plan_fig9(&rc),
            plan_fig10(&rc),
            plan_table2(&rc),
        ];
        let specs: Vec<_> = plans
            .iter()
            .flat_map(|p| p.specs().iter().cloned())
            .collect();
        let astar_base_key = {
            let mut probe = crate::plan::SpecSet::default();
            probe
                .baseline(&usecases::astar_custom_factory(), &rc)
                .key()
                .to_string()
        };
        let requested = specs
            .iter()
            .filter(|spec| spec.key() == astar_base_key)
            .count();
        assert!(
            requested >= 4,
            "astar baseline should be requested by ≥4 plans, got {requested}"
        );
        let unique = crate::exec::dedup_specs(&specs);
        let executed = unique
            .iter()
            .filter(|spec| spec.key() == astar_base_key)
            .count();
        assert_eq!(executed, 1, "astar baseline must be simulated exactly once");
        assert!(
            unique.len() < specs.len(),
            "dedup should collapse shared runs"
        );
    }

    #[test]
    fn all_ids_resolve_to_plans() {
        let rc = RunConfig::test_scale();
        for id in ALL_IDS.into_iter().chain(EXTRA_IDS) {
            let plan = plan_for(id, &rc).unwrap();
            assert_eq!(plan.id, id);
        }
        match plan_for("fig99", &rc) {
            Err(PlanError::UnknownExperiment { id }) => assert_eq!(id, "fig99"),
            other => panic!("expected UnknownExperiment, got {other:?}"),
        }
    }

    #[test]
    fn context_switch_plan_has_four_arms_plus_midswap_chaos() {
        // Pure planning assertion — nothing is simulated here.
        let rc = RunConfig::test_scale();
        let plan = plan_context_switch(&rc);
        assert_eq!(plan.id, "context-switch");
        assert_eq!(
            plan.specs().len(),
            4 + pfm_fabric::FaultScenario::MID_SWAP.len(),
            "no-fabric, sched0, sched, pinned, plus one chaos arm per mid-swap scenario"
        );
        let mut keys: Vec<_> = plan.specs().iter().map(|s| s.key().to_string()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), plan.specs().len(), "ctx arms must never dedup");
        assert!(keys.iter().any(|k| k.contains("|nofabric|")));
        assert!(keys.iter().any(|k| k.contains("|sched0|")));
        assert!(keys.iter().any(|k| k.contains("|pin(")));
        assert!(
            keys.iter()
                .filter(|k| k.contains("chaos("))
                .all(|k| k.contains("|sched|")),
            "chaos arms run at the modeled swap cost"
        );
    }

    #[test]
    fn chaos_plans_pair_every_scenario_with_a_shared_clean_run() {
        // Pure planning assertion — nothing is simulated here. The
        // smoke plan covers one use-case: 1 fault-free PFM run plus one
        // chaos run per scenario, all under distinct keys.
        let rc = RunConfig::test_scale();
        let smoke = plan_chaos_smoke(&rc);
        assert_eq!(
            smoke.specs().len(),
            1 + pfm_fabric::FaultScenario::ALL.len()
        );
        let mut keys: Vec<_> = smoke.specs().iter().map(|s| s.key().to_string()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), smoke.specs().len(), "chaos specs never dedup");

        // The full chaos plan shares its fault-free runs (and therefore
        // dedups against a plain PFM run of the same use-case).
        let full = plan_chaos(&rc);
        assert!(full.specs().len() > smoke.specs().len());
        let smoke_clean = smoke
            .specs()
            .iter()
            .find(|s| !s.key().contains("chaos("))
            .map(|s| s.key().to_string())
            .unwrap();
        assert!(
            full.specs().iter().any(|s| s.key() == smoke_clean),
            "smoke's clean run must dedup into the full chaos plan"
        );
    }
}
