//! One function per table and figure of the paper's evaluation: each
//! regenerates the corresponding rows/series (workload, parameter
//! sweep, baselines) and returns them in a printable form.
//!
//! Speedups follow the paper's convention: percentage IPC improvement
//! over the baseline core, which sits at 0%.

use crate::runner::{run_baseline, run_pfm, RunConfig, RunResult};
use crate::usecases;
use pfm_fabric::{FabricParams, PortPolicy};
use pfm_fpga::{power, table4_designs, EnergyModel};
use pfm_workloads::UseCase;

/// One labeled data point.
#[derive(Clone, Debug)]
pub struct Row {
    /// Bar/row label (paper notation, e.g. `clk4_w4`).
    pub label: String,
    /// Primary value (usually % IPC improvement).
    pub value: f64,
    /// Free-form extra columns.
    pub extra: String,
}

/// A regenerated table or figure.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Paper identifier (e.g. `fig8`, `table2`).
    pub id: &'static str,
    /// Title as in the paper.
    pub title: &'static str,
    /// The paper's reported numbers, for side-by-side comparison.
    pub paper: &'static str,
    /// Regenerated rows.
    pub rows: Vec<Row>,
}

impl Experiment {
    /// Renders the experiment as aligned text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n   (paper: {})\n", self.id, self.title, self.paper);
        for r in &self.rows {
            out.push_str(&format!("  {:<22} {:>8.1}  {}\n", r.label, r.value, r.extra));
        }
        out
    }
}

fn pfm_cfg(c: u64, w: usize) -> FabricParams {
    FabricParams::paper_default().clk_w(c, w).delay(0).queue(32).port(PortPolicy::All)
}

fn speedup_row(label: impl Into<String>, r: &RunResult, base: &RunResult) -> Row {
    Row {
        label: label.into(),
        value: r.speedup_over(base),
        extra: format!("IPC {:.3}  MPKI {:.2}", r.ipc(), r.stats.mpki()),
    }
}

fn expect(result: Result<RunResult, pfm_core::SimError>, what: &str) -> RunResult {
    result.unwrap_or_else(|e| panic!("simulation failed for {what}: {e}"))
}

/// Figure 2: speedups of PFM and Slipstream 2.0 on astar and bfs.
pub fn fig2(rc: &RunConfig) -> Experiment {
    let mut rows = Vec::new();
    let paper_cfg = FabricParams::paper_default(); // clk4_w4 delay4 queue32 portLS1

    let astar = usecases::astar_custom();
    let base = expect(run_baseline(&astar, rc), "astar baseline");
    let pfm = expect(run_pfm(&astar, paper_cfg.clone(), rc), "astar pfm");
    rows.push(speedup_row("astar PFM", &pfm, &base));
    let ss = usecases::astar_slipstream();
    let ss_run = expect(run_pfm(&ss, paper_cfg.clone(), rc), "astar slipstream");
    rows.push(speedup_row("astar Slipstream2.0", &ss_run, &base));

    let bfs = usecases::bfs_roads();
    let bbase = expect(run_baseline(&bfs, rc), "bfs baseline");
    let bpfm = expect(run_pfm(&bfs, paper_cfg.clone(), rc), "bfs pfm");
    rows.push(speedup_row("bfs PFM", &bpfm, &bbase));
    let bss = usecases::bfs_roads_slipstream();
    let bss_run = expect(run_pfm(&bss, paper_cfg, rc), "bfs slipstream");
    rows.push(speedup_row("bfs Slipstream2.0", &bss_run, &bbase));

    Experiment {
        id: "fig2",
        title: "Speedups of PFM and Slipstream 2.0",
        paper: "astar: PFM 154%, slipstream 18%; bfs: PFM up to 125%, slipstream smaller",
        rows,
    }
}

/// Figure 8: astar speedup for different C and W parameters.
pub fn fig8(rc: &RunConfig) -> Experiment {
    let uc = usecases::astar_custom();
    let base = expect(run_baseline(&uc, rc), "astar baseline");
    let mut rows = Vec::new();
    for (c, w) in [(4, 1), (8, 1), (4, 2), (4, 3), (4, 4), (2, 4), (1, 4)] {
        let r = expect(run_pfm(&uc, pfm_cfg(c, w), rc), "astar clk/w sweep");
        rows.push(speedup_row(format!("clk{c}_w{w}"), &r, &base));
    }
    let perf = expect(run_baseline(&uc, &rc.clone().perfect_bp()), "astar perfBP");
    rows.push(speedup_row("perfBP", &perf, &base));
    Experiment {
        id: "fig8",
        title: "astar speedup vs. custom-predictor C and W",
        paper: "clk4_w1/clk8_w1 slowdowns; clk4_w2 99%, clk4_w3 155%, clk4_w4 163%; perfBP 162%",
        rows,
    }
}

/// Table 2: astar FST and RST snoop percentages.
pub fn table2(rc: &RunConfig) -> Experiment {
    let uc = usecases::astar_custom();
    let r = expect(run_pfm(&uc, pfm_cfg(4, 4), rc), "astar snoop rates");
    let f = r.fabric.expect("pfm run");
    Experiment {
        id: "table2",
        title: "astar: FST and RST snoop percentages",
        paper: "RST 20.3% of retired in ROI; FST 15.5% of fetched in ROI",
        rows: vec![
            Row { label: "% retired in RST".into(), value: f.rst_hit_pct(), extra: String::new() },
            Row { label: "% fetched in FST".into(), value: f.fst_hit_pct(), extra: String::new() },
        ],
    }
}

/// Figure 9: astar sensitivity to D (delay), Q (queues) and P (ports).
pub fn fig9(rc: &RunConfig) -> Experiment {
    let uc = usecases::astar_custom();
    let base = expect(run_baseline(&uc, rc), "astar baseline");
    let mut rows = Vec::new();
    for d in [0u64, 2, 4, 8] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(d).queue(32).port(PortPolicy::All);
        let r = expect(run_pfm(&uc, p, rc), "astar delay sweep");
        rows.push(speedup_row(format!("(a) delay{d}"), &r, &base));
    }
    for q in [8usize, 16, 32, 64] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(4).queue(q).port(PortPolicy::All);
        let r = expect(run_pfm(&uc, p, rc), "astar queue sweep");
        rows.push(speedup_row(format!("(b) queue{q}"), &r, &base));
    }
    for pp in [PortPolicy::All, PortPolicy::Ls, PortPolicy::Ls1] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(4).queue(32).port(pp);
        let r = expect(run_pfm(&uc, p, rc), "astar port sweep");
        rows.push(speedup_row(format!("(c) {}", pp.label()), &r, &base));
    }
    Experiment {
        id: "fig9",
        title: "astar speedup vs. D, Q and P",
        paper: "delay8 still 138%; resistant to queue size; ports not an issue (portLS1 154%)",
        rows,
    }
}

/// Figure 10: astar speedup vs. index_queue entries (speculative scope).
pub fn fig10(rc: &RunConfig) -> Experiment {
    let mut rows = Vec::new();
    let base = expect(run_baseline(&usecases::astar_custom(), rc), "astar baseline");
    for scope in [2usize, 4, 8, 16] {
        let uc = usecases::astar_with_scope(scope);
        let r = expect(run_pfm(&uc, FabricParams::paper_default(), rc), "astar scope sweep");
        rows.push(speedup_row(format!("index_queue {scope}"), &r, &base));
    }
    Experiment {
        id: "fig10",
        title: "astar speedup vs. index_queue entries",
        paper: "8 entries adequate for most of the speedup potential",
        rows,
    }
}

/// Figure 12: bfs oracles and C/W sweep (Roads and Youtube inputs).
pub fn fig12(rc: &RunConfig) -> Experiment {
    let mut rows = Vec::new();
    for (uc, tag) in [(usecases::bfs_roads(), "roads"), (usecases::bfs_youtube(), "youtube")] {
        let base = expect(run_baseline(&uc, rc), "bfs baseline");
        let pbp = expect(run_baseline(&uc, &rc.clone().perfect_bp()), "bfs perfBP");
        rows.push(speedup_row(format!("{tag} perfBP"), &pbp, &base));
        let pd = expect(run_baseline(&uc, &rc.clone().perfect_dcache()), "bfs perfD$");
        rows.push(speedup_row(format!("{tag} perfD$"), &pd, &base));
        let both =
            expect(run_baseline(&uc, &rc.clone().perfect_bp().perfect_dcache()), "bfs perfBP+D$");
        rows.push(speedup_row(format!("{tag} perfBP+D$"), &both, &base));
        for (c, w) in [(4, 1), (4, 2), (4, 4)] {
            let r = expect(run_pfm(&uc, pfm_cfg(c, w), rc), "bfs clk/w sweep");
            rows.push(speedup_row(format!("{tag} clk{c}_w{w}"), &r, &base));
        }
    }
    Experiment {
        id: "fig12",
        title: "bfs speedup: oracles and custom component C/W",
        paper: "Roads: perfBP 11%, perfD$ 152%, both 426%, custom up to 125%; clk4_w2 close to clk4_w4",
        rows,
    }
}

/// Table 3: bfs FST and RST snoop percentages.
pub fn table3(rc: &RunConfig) -> Experiment {
    let uc = usecases::bfs_roads();
    let r = expect(run_pfm(&uc, pfm_cfg(4, 4), rc), "bfs snoop rates");
    let f = r.fabric.expect("pfm run");
    Experiment {
        id: "table3",
        title: "bfs: FST and RST snoop percentages",
        paper: "RST 31% of retired in ROI; FST 13% of fetched in ROI",
        rows: vec![
            Row { label: "% retired in RST".into(), value: f.rst_hit_pct(), extra: String::new() },
            Row { label: "% fetched in FST".into(), value: f.fst_hit_pct(), extra: String::new() },
        ],
    }
}

/// Figure 13: bfs sensitivity to D, Q and P.
pub fn fig13(rc: &RunConfig) -> Experiment {
    let uc = usecases::bfs_roads();
    let base = expect(run_baseline(&uc, rc), "bfs baseline");
    let mut rows = Vec::new();
    for d in [0u64, 2, 4, 8] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(d).queue(32).port(PortPolicy::All);
        let r = expect(run_pfm(&uc, p, rc), "bfs delay sweep");
        rows.push(speedup_row(format!("(a) delay{d}"), &r, &base));
    }
    for q in [8usize, 16, 32, 64] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(4).queue(q).port(PortPolicy::All);
        let r = expect(run_pfm(&uc, p, rc), "bfs queue sweep");
        rows.push(speedup_row(format!("(b) queue{q}"), &r, &base));
    }
    for pp in [PortPolicy::All, PortPolicy::Ls, PortPolicy::Ls1] {
        let p = FabricParams::paper_default().clk_w(4, 4).delay(4).queue(32).port(pp);
        let r = expect(run_pfm(&uc, p, rc), "bfs port sweep");
        rows.push(speedup_row(format!("(c) {}", pp.label()), &r, &base));
    }
    Experiment {
        id: "fig13",
        title: "bfs speedup vs. D, Q and P",
        paper: "low sensitivity to all three",
        rows,
    }
}

/// Figure 14: bfs speedup vs. the component's queue entries.
pub fn fig14(rc: &RunConfig) -> Experiment {
    let mut rows = Vec::new();
    let base = expect(run_baseline(&usecases::bfs_roads(), rc), "bfs baseline");
    for window in [16usize, 32, 64, 128] {
        let uc = usecases::bfs_roads_with_window(window);
        let r = expect(run_pfm(&uc, FabricParams::paper_default(), rc), "bfs window sweep");
        rows.push(speedup_row(format!("{window}-entry queues"), &r, &base));
    }
    Experiment {
        id: "fig14",
        title: "bfs speedup vs. frontier/neighbor queue entries",
        paper: "performance scales with the queue sizes",
        rows,
    }
}

/// Figure 17: custom prefetcher speedups for different C and W.
pub fn fig17(rc: &RunConfig) -> Experiment {
    let mut rows = Vec::new();
    for uc in usecases::prefetch_suite() {
        let base = expect(run_baseline(&uc, rc), "prefetch baseline");
        for (c, w) in [(1, 1), (4, 1), (4, 4), (8, 4)] {
            let r = expect(run_pfm(&uc, pfm_cfg(c, w), rc), "prefetch clk/w sweep");
            rows.push(speedup_row(format!("{} clk{c}_w{w}", uc.name), &r, &base));
        }
    }
    Experiment {
        id: "fig17",
        title: "custom prefetcher speedups vs. C and W",
        paper: "positive speedups, very resistant to C and W",
        rows,
    }
}

/// Table 4: FPGA resource, frequency and power estimates per design.
pub fn table4() -> Experiment {
    let mut rows = Vec::new();
    for d in table4_designs() {
        let r = d.resources();
        let p = power(&d);
        rows.push(Row {
            label: d.name.to_string(),
            value: d.frequency_mhz(),
            extra: format!(
                "LUT {:>5}  FF {:>5}  BRAM {:>5.1}  DSP {}  dyn(logic) {:>5.0} mW  dyn(I/O) {:>4.0} mW  static {:>4.0} mW",
                r.lut, r.ff, r.bram, r.dsp, p.dynamic_logic_mw, p.dynamic_io_mw, p.static_mw
            ),
        });
    }
    Experiment {
        id: "table4",
        title: "Hardware overhead using FPGA for RF (value = freq MHz)",
        paper: "astar(4wide) 6249 LUT/3523 FF/500 MHz/251 mW; astar-alt 1064/700/17.5 BRAM/498; prefetchers 150-300 LUT, 628-731 MHz",
        rows,
    }
}

/// Figure 18: PFM (core + RF) energy normalized to the baseline core.
pub fn fig18(rc: &RunConfig) -> Experiment {
    let model = EnergyModel::default();
    let designs = table4_designs();
    let design_for = |name: &str| {
        designs
            .iter()
            .find(|d| match name {
                "astar" => d.name == "astar (4wide)",
                "astar-alt" => d.name == "astar-alt",
                "libquantum" => d.name == "libq",
                other => d.name == other,
            })
            .expect("design exists")
    };

    let mut rows = Vec::new();
    let mut cases: Vec<(UseCase, FabricParams)> = vec![
        (usecases::astar_custom(), FabricParams::paper_default()),
        (usecases::astar_alt(), FabricParams::paper_default()),
    ];
    for uc in [usecases::libquantum_scale(), usecases::lbm_scale(), usecases::bwaves_scale(), usecases::milc_scale()] {
        cases.push((uc, pfm_cfg(4, 1)));
    }
    for (uc, params) in cases {
        let clk_ratio = params.clk_ratio;
        let base = expect(run_baseline(&uc, rc), "energy baseline");
        let pfm = expect(run_pfm(&uc, params, rc), "energy pfm");
        let d = design_for(&uc.name);
        let n = model.normalized_pfm_energy(
            (&base.stats, &base.hier),
            (&pfm.stats, &pfm.hier),
            d,
            clk_ratio,
        );
        rows.push(Row {
            label: uc.name.clone(),
            value: n,
            extra: format!("speedup +{:.0}%", pfm.speedup_over(&base)),
        });
    }
    Experiment {
        id: "fig18",
        title: "core+RF energy normalized to baseline core (value = ratio)",
        paper: "all designs below 1.0: less misspeculation + shorter runtime",
        rows,
    }
}

/// Every regenerable experiment, in paper order.
pub fn all(rc: &RunConfig) -> Vec<Experiment> {
    vec![
        fig2(rc),
        fig8(rc),
        table2(rc),
        fig9(rc),
        fig10(rc),
        fig12(rc),
        table3(rc),
        fig13(rc),
        fig14(rc),
        fig17(rc),
        table4(),
        fig18(rc),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_renders_all_rows() {
        let t = table4();
        assert_eq!(t.rows.len(), 6);
        let s = t.render();
        assert!(s.contains("astar-alt"));
        assert!(s.contains("BRAM"));
    }

    #[test]
    fn table2_snoop_rates_in_paper_ballpark() {
        let rc = RunConfig::test_scale();
        let t = table2(&rc);
        let rst = t.rows[0].value;
        let fst = t.rows[1].value;
        assert!(rst > 5.0 && rst < 45.0, "RST {rst}%");
        assert!(fst > 5.0 && fst < 30.0, "FST {fst}%");
    }
}

/// Ablations of the design choices DESIGN.md calls out: store
/// inference, the missed-load buffer, the fetch stall policy, and the
/// baseline VLDP prefetcher.
pub fn ablations(rc: &RunConfig) -> Experiment {
    use pfm_fabric::StallPolicy;
    use pfm_workloads::{astar, AstarParams};

    let mut rows = Vec::new();

    // (1) astar index1_CAM store inference on/off.
    let uc = usecases::astar_custom();
    let base = expect(run_baseline(&uc, rc), "ablation baseline");
    let on = expect(run_pfm(&uc, FabricParams::paper_default(), rc), "inference on");
    rows.push(speedup_row("astar + inference", &on, &base));
    let no_inf = astar(&AstarParams { store_inference: false, ..AstarParams::default() });
    let off = expect(run_pfm(&no_inf, FabricParams::paper_default(), rc), "inference off");
    rows.push(speedup_row("astar - inference", &off, &base));

    // (2) Load Agent missed-load buffer: shrink it to 2 entries.
    let mut tiny_mlb = FabricParams::paper_default();
    tiny_mlb.mlb_size = 2;
    let r = expect(run_pfm(&uc, tiny_mlb, rc), "tiny MLB");
    rows.push(speedup_row("astar mlb=2", &r, &base));

    // (3) Fetch Agent stall vs proceed-and-drop (§2.4 alternative).
    let mut pd = FabricParams::paper_default();
    pd.stall_policy = StallPolicy::ProceedAndDrop;
    let r = expect(run_pfm(&uc, pd, rc), "proceed-and-drop");
    rows.push(speedup_row("astar proceed+drop", &r, &base));

    // (4) VLDP's contribution to the libquantum baseline (the custom
    // prefetcher's win shrinks/grows with the baseline prefetchers).
    let libq = usecases::libquantum_scale();
    let libq_base = expect(run_baseline(&libq, rc), "libq baseline");
    let mut no_vldp = rc.clone();
    no_vldp.hier.vldp = false;
    let r = expect(run_baseline(&libq, &no_vldp), "libq no vldp");
    rows.push(speedup_row("libq baseline -VLDP", &r, &libq_base));
    let r = expect(
        run_pfm(&libq, FabricParams::paper_default().clk_w(4, 1).delay(0).port(PortPolicy::All), rc),
        "libq custom",
    );
    rows.push(speedup_row("libq custom pf", &r, &libq_base));

    Experiment {
        id: "ablations",
        title: "design-choice ablations (speedup vs. each row's baseline)",
        paper: "(not in the paper: DESIGN.md ablation list)",
        rows,
    }
}
