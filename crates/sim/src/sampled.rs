//! Sampled detailed simulation: functional fast-forward to evenly
//! spaced checkpoint positions, cycle-simulate a bounded detailed
//! interval at each (in parallel, through the deduplicating executor),
//! and assemble a whole-program IPC estimate with per-interval
//! variance and a confidence interval.
//!
//! This is the two-speed payoff: a 20 M-instruction workload that
//! would take minutes of detailed simulation is characterized in
//! seconds — one functional pass at interpreter speed plus
//! `N` short detailed windows that together cover a few percent of the
//! instruction stream. The methodology is deliberately SimPoint-shaped
//! (the paper evaluates on 100 M-instruction SimPoints): systematic
//! sampling with detailed warm-up, rather than phase classification.
//!
//! Each interval restores the *architectural* snapshot captured by the
//! fast-forward and starts with cold caches, TLB and branch history;
//! the first `warmup_instrs` retired instructions warm those
//! structures and their statistics are diffed out
//! ([`pfm_core::SimStats::delta_since`]) before the measured window
//! begins.

use crate::exec::{execute, ExecOptions};
use crate::plan::{PlanError, RunSpec};
use crate::runner::{RunConfig, RunError};
use pfm_isa::FastExec;
use pfm_workloads::UseCaseFactory;
use std::sync::Arc;
use std::time::Instant;

/// Sampling-run shape: how far to fast-forward, how many detailed
/// intervals to scatter over that stream, and how large each is.
#[derive(Clone, Debug)]
pub struct SampledConfig {
    /// Functional instruction horizon: checkpoints are spread evenly
    /// over the first `total_instrs` retired instructions (or the
    /// whole program, if it halts earlier).
    pub total_instrs: u64,
    /// Number of detailed intervals (checkpoint positions).
    pub intervals: u32,
    /// Measured retired instructions per detailed interval.
    pub interval_instrs: u64,
    /// Detailed warm-up instructions retired (and diffed out) before
    /// each interval's measurement starts.
    pub warmup_instrs: u64,
}

impl SampledConfig {
    /// The acceptance-scale configuration: a 20 M-instruction stream
    /// sampled by 8 detailed intervals of 500 k instructions, each
    /// after a 100 k-instruction warm-up (so detailed simulation
    /// covers 24 % of the stream and the remaining 76 % runs at
    /// functional speed).
    pub fn paper_scale() -> SampledConfig {
        SampledConfig {
            total_instrs: 20_000_000,
            intervals: 8,
            interval_instrs: 500_000,
            warmup_instrs: 100_000,
        }
    }

    /// A small shape for tests.
    pub fn test_scale() -> SampledConfig {
        SampledConfig {
            total_instrs: 400_000,
            intervals: 4,
            interval_instrs: 20_000,
            warmup_instrs: 5_000,
        }
    }
}

impl Default for SampledConfig {
    fn default() -> SampledConfig {
        SampledConfig::paper_scale()
    }
}

/// A failed sampled run.
#[derive(Clone, Debug)]
pub enum SampledError {
    /// The functional fast-forward faulted.
    Exec(RunError),
    /// A detailed interval failed (hang, fault, panic).
    Interval(PlanError),
    /// The configuration is degenerate (zero intervals or zero-length
    /// windows).
    Config(&'static str),
}

impl std::fmt::Display for SampledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampledError::Exec(e) => write!(f, "functional fast-forward failed: {e}"),
            SampledError::Interval(e) => write!(f, "detailed interval failed: {e}"),
            SampledError::Config(msg) => write!(f, "bad sampled configuration: {msg}"),
        }
    }
}

impl std::error::Error for SampledError {}

/// One measured detailed interval.
#[derive(Clone, Debug)]
pub struct IntervalRow {
    /// Retired-instruction position of the snapshot this interval
    /// started from.
    pub position: u64,
    /// Instructions retired in the measured window (after warm-up).
    pub retired: u64,
    /// Cycles elapsed in the measured window.
    pub cycles: u64,
    /// Whether the workload halted inside this interval.
    pub completed: bool,
}

impl IntervalRow {
    /// IPC of the measured window.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }
}

/// The assembled result of a sampled run.
#[derive(Clone, Debug)]
pub struct SampledReport {
    /// Use-case name.
    pub name: String,
    /// Instructions retired by the functional fast-forward (the
    /// sampled stream's length; less than the configured horizon if
    /// the workload halted early).
    pub functional_instrs: u64,
    /// Whether the workload ran to completion during the fast-forward.
    pub functional_completed: bool,
    /// Per-interval measurements, in stream order.
    pub rows: Vec<IntervalRow>,
    /// Wall-clock seconds for the whole sampled run (fast-forward +
    /// parallel detailed intervals).
    pub wall_seconds: f64,
}

impl SampledReport {
    /// Mean of the per-interval IPCs (the sampled whole-program IPC
    /// estimate).
    pub fn mean_ipc(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(IntervalRow::ipc).sum::<f64>() / self.rows.len() as f64
    }

    /// Unbiased sample variance of the per-interval IPCs.
    pub fn ipc_variance(&self) -> f64 {
        let n = self.rows.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_ipc();
        self.rows
            .iter()
            .map(|r| {
                let d = r.ipc() - mean;
                d * d
            })
            .sum::<f64>()
            / (n - 1) as f64
    }

    /// Half-width of the normal-approximation 95 % confidence interval
    /// on the mean IPC: `1.96 * sqrt(s^2 / n)`.
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.rows.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * (self.ipc_variance() / n as f64).sqrt()
    }

    /// Total detailed instructions measured across intervals.
    pub fn detailed_instrs(&self) -> u64 {
        self.rows.iter().map(|r| r.retired).sum()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut s = format!(
            "sampled run: {} — {} functional instrs{}, {} detailed interval(s)\n",
            self.name,
            self.functional_instrs,
            if self.functional_completed {
                " (ran to completion)"
            } else {
                ""
            },
            self.rows.len()
        );
        s.push_str(&format!(
            "{:>12}  {:>10}  {:>10}  {:>6}  {:>9}\n",
            "position", "retired", "cycles", "ipc", "completed"
        ));
        for r in &self.rows {
            s.push_str(&format!(
                "{:>12}  {:>10}  {:>10}  {:>6.3}  {:>9}\n",
                r.position,
                r.retired,
                r.cycles,
                r.ipc(),
                if r.completed { "yes" } else { "no" }
            ));
        }
        s.push_str(&format!(
            "mean IPC {:.4} ± {:.4} (95% CI over {} intervals), {:.1}s wall\n",
            self.mean_ipc(),
            self.ci95_half_width(),
            self.rows.len(),
            self.wall_seconds
        ));
        s
    }
}

/// Runs `factory`'s use-case in sampled mode: one functional
/// fast-forward capturing a machine snapshot at each of
/// `cfg.intervals` evenly spaced positions, then `cfg.intervals`
/// detailed interval simulations executed in parallel through the
/// deduplicating executor, assembled into a mean IPC with a 95 %
/// confidence interval.
///
/// `rc` supplies the detailed machine (core + hierarchy) and the
/// hang guards; its `max_instrs` is overridden per interval.
///
/// # Errors
/// [`SampledError::Config`] for degenerate shapes,
/// [`SampledError::Exec`] if the functional pass faults, and
/// [`SampledError::Interval`] if any detailed interval fails.
pub fn run_sampled(
    factory: &UseCaseFactory,
    cfg: &SampledConfig,
    rc: &RunConfig,
    opts: &ExecOptions,
) -> Result<SampledReport, SampledError> {
    if cfg.intervals == 0 {
        return Err(SampledError::Config("intervals must be at least 1"));
    }
    if cfg.interval_instrs == 0 || cfg.total_instrs == 0 {
        return Err(SampledError::Config("instruction budgets must be non-zero"));
    }
    // pfm-lint: allow(determinism): feeds the wall-clock report only, never results
    let started = Instant::now();

    // Functional fast-forward, snapshotting at each checkpoint
    // position: k * (total / N) for k in 0..N. Position 0 samples the
    // program's cold start; the stride places the last checkpoint one
    // stride before the horizon so its interval has stream to measure.
    let uc = factory.build();
    let stride = (cfg.total_instrs / u64::from(cfg.intervals)).max(1);
    let mut fx = FastExec::new(uc.program.clone(), uc.memory.clone());
    let mut checkpoints: Vec<(u64, Arc<Vec<u8>>)> = Vec::new();
    for k in 0..u64::from(cfg.intervals) {
        let target = k * stride;
        if target > fx.retired() {
            fx.run(target - fx.retired())
                .map_err(|e| SampledError::Exec(RunError::Exec(e.to_string())))?;
        }
        if fx.retired() < target && fx.halted() {
            break; // program ended before this checkpoint
        }
        checkpoints.push((fx.retired(), Arc::new(fx.snapshot())));
    }
    // Finish the functional pass to the horizon so the report states
    // how much stream the sample represents.
    if fx.retired() < cfg.total_instrs {
        fx.run(cfg.total_instrs - fx.retired())
            .map_err(|e| SampledError::Exec(RunError::Exec(e.to_string())))?;
    }

    // Detailed intervals, in parallel through the executor. Each spec
    // carries its snapshot by Arc; the content hash in the key keeps
    // distinct machine states from ever deduplicating.
    let interval_rc = RunConfig {
        max_instrs: cfg.interval_instrs,
        ..rc.clone()
    };
    let specs: Vec<RunSpec> = checkpoints
        .iter()
        .map(|(pos, snap)| {
            RunSpec::interval(
                factory.clone(),
                Arc::clone(snap),
                *pos,
                cfg.warmup_instrs,
                &interval_rc,
            )
        })
        .collect();
    let (runs, _report) = execute(&specs, opts);

    let mut rows = Vec::with_capacity(specs.len());
    for ((pos, _), spec) in checkpoints.iter().zip(&specs) {
        let r = runs.get(spec.key()).map_err(SampledError::Interval)?;
        rows.push(IntervalRow {
            position: *pos,
            retired: r.stats.retired,
            cycles: r.stats.cycles,
            completed: r.completed,
        });
    }

    Ok(SampledReport {
        name: uc.name.clone(),
        functional_instrs: fx.retired(),
        functional_completed: fx.halted(),
        rows,
        wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecases;

    #[test]
    fn sampled_astar_assembles_intervals_with_ci() {
        let cfg = SampledConfig::test_scale();
        let rc = RunConfig::test_scale();
        let rep = run_sampled(
            &usecases::astar_custom_factory(),
            &cfg,
            &rc,
            &ExecOptions::serial(),
        )
        .expect("sampled run");
        assert_eq!(rep.rows.len(), cfg.intervals as usize);
        assert_eq!(rep.rows[0].position, 0, "first interval samples cold start");
        for w in rep.rows.windows(2) {
            assert!(w[0].position < w[1].position, "positions ascend");
        }
        for r in &rep.rows {
            // Superscalar commit can overshoot the warm-up and the
            // measurement targets by up to width-1 instructions each.
            let slack = rc.core.retire_width as u64;
            assert!(
                r.retired + slack >= cfg.interval_instrs
                    && r.retired <= cfg.interval_instrs + slack,
                "retired {} not within {slack} of {}",
                r.retired,
                cfg.interval_instrs
            );
            assert!(r.cycles > 0);
            assert!(r.ipc() > 0.0);
        }
        assert!(rep.mean_ipc() > 0.0);
        assert!(rep.ci95_half_width() >= 0.0);
        assert!(rep.functional_instrs >= cfg.total_instrs.min(rep.functional_instrs));
        let rendered = rep.render();
        assert!(rendered.contains("mean IPC"), "render: {rendered}");
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let cfg = SampledConfig {
            total_instrs: 100_000,
            intervals: 2,
            interval_instrs: 10_000,
            warmup_instrs: 2_000,
        };
        let rc = RunConfig::test_scale();
        let f = usecases::libquantum_factory();
        let a = run_sampled(&f, &cfg, &rc, &ExecOptions::serial()).unwrap();
        let b = run_sampled(&f, &cfg, &rc, &ExecOptions::serial()).unwrap();
        assert_eq!(a.rows.len(), b.rows.len());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.retired, y.retired);
            assert_eq!(x.cycles, y.cycles, "interval timing must be reproducible");
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let rc = RunConfig::test_scale();
        let f = usecases::astar_custom_factory();
        let zero_n = SampledConfig {
            intervals: 0,
            ..SampledConfig::test_scale()
        };
        assert!(matches!(
            run_sampled(&f, &zero_n, &rc, &ExecOptions::serial()),
            Err(SampledError::Config(_))
        ));
        let zero_i = SampledConfig {
            interval_instrs: 0,
            ..SampledConfig::test_scale()
        };
        assert!(matches!(
            run_sampled(&f, &zero_i, &rc, &ExecOptions::serial()),
            Err(SampledError::Config(_))
        ));
    }
}
