//! Content-addressed on-disk result store: the cache tier in front of
//! the executor's compute tier.
//!
//! Every [`crate::plan::RunSpec`] has a canonical content key covering
//! *all* of its inputs (use-case parameters, core and hierarchy
//! configuration, fabric parameters, fault plan, instruction budget).
//! Two specs with equal keys simulate the exact same thing — which is
//! precisely the property a persistent cache needs: results are stored
//! under `(spec key, code fingerprint)` and invalidation is **by
//! construction**, never by guesswork. Change a sweep parameter and
//! the key changes; change the simulator and the fingerprint changes;
//! nothing stale can ever be served.
//!
//! The [`CodeFingerprint`] half of the address salts every entry with
//! * [`STATS_SCHEMA_VERSION`] — bumped by hand whenever the serialized
//!   [`crate::runner::RunResult`] layout changes shape or meaning, and
//! * a workspace **source digest** — an FNV-1a fold over every `.rs`
//!   file under `src/`, `crates/` and `vendor/` (sorted by path, so
//!   the digest is a pure function of the tree), **baked in at build
//!   time** by this crate's build script ([`BAKED_SOURCE_DIGEST`]).
//!   Baking matters: the digest must describe the sources the running
//!   binary was *built from*, not whatever the tree contains at run
//!   time — a stale binary walking an edited tree would label old-code
//!   results with the new tree's digest, the exact stale hit this
//!   scheme exists to rule out. Any edit that could affect simulation
//!   semantics re-bakes the digest on the next build, so results
//!   computed by older code become unreachable, not wrong.
//!
//! On-disk layout (all little-endian, dependency-free, built on the
//! [`pfm_isa::snap`] codec):
//!
//! * `store.log` — append-only record log. A fixed header, then one
//!   checksummed frame per completed run (see [`write_frame`]):
//!   `magic, payload_len, fnv64(payload), payload`. The payload is
//!   `fingerprint, spec key, serialized RunOutcome`. Records are
//!   appended with a single `write` on an `O_APPEND` handle, so
//!   concurrent executors sharing a store directory interleave at
//!   record granularity, never mid-record.
//! * `store.idx` — side index mapping record hash → log offset, with a
//!   whole-file checksum and the log length it covers. The index is a
//!   pure accelerator: it is rebuilt (atomically, temp + rename) at
//!   open whenever it is missing, corrupt, or stale, and every record
//!   it points at is still checksum-verified before use. Deleting it
//!   costs one log scan, nothing more.
//!
//! Durability policy: *ignore and rebuild*. A truncated tail record
//! (crash mid-append), a corrupted checksum, or a missing/garbled
//! index never panic and never serve bad bytes — the damaged region is
//! skipped (resynchronizing on the record magic) and the index is
//! rebuilt from what survives.

use crate::plan::RunOutcome;
use pfm_isa::snap::{content_key, Dec, Enc, SnapError, FNV_OFFSET, FNV_PRIME};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Version of the serialized [`crate::runner::RunResult`] /
/// [`RunOutcome`] layout. Part of every [`CodeFingerprint`]; bump on
/// any change to the stats codecs so old records stop matching instead
/// of decoding wrongly.
pub const STATS_SCHEMA_VERSION: u32 = 2;

/// Version of the store's on-disk container format (log header,
/// frame layout, index layout). Records from other container versions
/// are never read.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Source digest of the workspace tree this crate was compiled from,
/// computed by the build script (`build.rs`, mirroring
/// [`source_digest`]) and baked in as a constant. It travels with the
/// binary: however stale the binary and however edited the tree, the
/// fingerprint always names the code that actually produced the
/// results.
pub const BAKED_SOURCE_DIGEST: u64 = include!(concat!(env!("OUT_DIR"), "/source_digest.rs"));

/// Log file header magic (`PFMSTORE` as little-endian u64).
const LOG_MAGIC: u64 = u64::from_le_bytes(*b"PFMSTORE");
/// Index file header magic (`PFMSTIDX` as little-endian u64).
const IDX_MAGIC: u64 = u64::from_le_bytes(*b"PFMSTIDX");
/// Per-frame magic (`PFRM` as little-endian u32); the resync anchor
/// when scanning past a damaged region.
const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"PFRM");

/// Log header: magic + container version.
const LOG_HEADER_LEN: u64 = 12;
/// Frame header: magic (u32) + payload length (u32) + checksum (u64).
const FRAME_HEADER_LEN: usize = 16;

/// Sanity cap on a single frame payload. A valid record is a few
/// hundred bytes; anything claiming more than this is treated as
/// corruption (and bounds allocation on garbage input).
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

// ---------------------------------------------------------------------
// Frames (shared by the log and the worker-process stdio protocol)
// ---------------------------------------------------------------------

/// Appends one checksummed frame (`magic, len, fnv64, payload`) to
/// `buf`. The whole frame is assembled in memory so callers can emit
/// it with a single `write` (atomic record-granularity interleaving on
/// `O_APPEND` files and pipes).
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&content_key(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one checksummed frame to `w` with a single `write_all`.
///
/// # Errors
/// Propagates the underlying IO error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&frame_bytes(payload))
}

/// Reads one checksummed frame from a stream. Returns `Ok(None)` on a
/// clean EOF at a frame boundary.
///
/// # Errors
/// `InvalidData` on a bad magic, an oversized length, a checksum
/// mismatch, or a mid-frame EOF; other IO errors are propagated.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        let n = r.read(&mut header[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(bad_data("frame truncated mid-header"));
        }
        got += n;
    }
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&header[8..16]);
    let checksum = u64::from_le_bytes(sum);
    if magic != FRAME_MAGIC {
        return Err(bad_data("frame magic mismatch"));
    }
    if len > MAX_FRAME_LEN {
        return Err(bad_data("frame length implausible"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)
        .map_err(|_| bad_data("frame truncated mid-payload"))?;
    if content_key(&payload) != checksum {
        return Err(bad_data("frame checksum mismatch"));
    }
    Ok(Some(payload))
}

fn bad_data(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

// ---------------------------------------------------------------------
// Code fingerprint
// ---------------------------------------------------------------------

/// The code half of a store address: which simulator produced a
/// result. Two builds with equal fingerprints decode each other's
/// records; any semantics-affecting source change produces a new
/// fingerprint and orphans (never corrupts) old entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodeFingerprint {
    /// [`STATS_SCHEMA_VERSION`] at write time.
    pub stats_schema: u32,
    /// Workspace source digest ([`source_digest`]).
    pub source_digest: u64,
}

impl CodeFingerprint {
    /// The fingerprint of the sources this binary was built from: the
    /// current stats-schema version plus the build-script-baked
    /// [`BAKED_SOURCE_DIGEST`]. This is the fingerprint every CLI role
    /// uses — deliberately *not* a run-time walk of the tree, which
    /// would let a stale binary cache old-code results under an edited
    /// tree's digest.
    pub fn of_build() -> CodeFingerprint {
        CodeFingerprint {
            stats_schema: STATS_SCHEMA_VERSION,
            source_digest: BAKED_SOURCE_DIGEST,
        }
    }

    /// A fixed fingerprint for tests (current schema, caller-chosen
    /// digest).
    pub fn fixed(source_digest: u64) -> CodeFingerprint {
        CodeFingerprint {
            stats_schema: STATS_SCHEMA_VERSION,
            source_digest,
        }
    }

    fn encode(&self, e: &mut Enc) {
        e.u32(self.stats_schema);
        e.u64(self.source_digest);
    }

    fn decode(d: &mut Dec<'_>) -> Result<CodeFingerprint, SnapError> {
        Ok(CodeFingerprint {
            stats_schema: d.u32()?,
            source_digest: d.u64()?,
        })
    }
}

/// Locates the enclosing cargo workspace: walks up from the running
/// executable's directory, then from the current directory, looking
/// for a `Cargo.toml` that declares `[workspace]`. Returns `None` when
/// neither ancestry contains one (e.g. an installed binary run far
/// from any checkout) — callers should then run storeless rather than
/// guess.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut starts: Vec<PathBuf> = Vec::new();
    if let Ok(exe) = std::env::current_exe() {
        if let Some(dir) = exe.parent() {
            starts.push(dir.to_path_buf());
        }
    }
    if let Ok(cwd) = std::env::current_dir() {
        starts.push(cwd);
    }
    for start in starts {
        let mut dir: Option<&Path> = Some(&start);
        while let Some(d) = dir {
            if let Ok(text) = std::fs::read_to_string(d.join("Cargo.toml")) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
            dir = d.parent();
        }
    }
    None
}

/// FNV-1a digest of every `.rs` source under the workspace's `src/`,
/// `crates/` and `vendor/` trees, folded in sorted-path order so the
/// digest is a pure function of file contents — never of directory
/// enumeration order, environment, or time. This is deliberately
/// conservative: editing *any* source (even a test) re-keys the store;
/// a wasted cold run is cheap, a stale hit is not.
///
/// The build script (`build.rs`) mirrors this fold to produce
/// [`BAKED_SOURCE_DIGEST`]; the `baked_digest_matches_tree_digest`
/// test pins the two implementations together.
///
/// # Errors
/// Propagates IO errors from the directory walk.
pub fn source_digest(root: &Path) -> std::io::Result<u64> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["src", "crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    // Sort by the path string relative to the root so the digest is
    // identical regardless of where the checkout lives.
    let mut keyed: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .map(|r| r.to_string_lossy().into_owned())
                .unwrap_or_else(|_| p.to_string_lossy().into_owned());
            (rel, p)
        })
        .collect();
    keyed.sort();
    let mut h = FNV_OFFSET;
    let fold_bytes = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
        *h ^= bytes.len() as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    };
    for (rel, path) in keyed {
        let contents = std::fs::read(&path)?;
        fold_bytes(&mut h, rel.as_bytes());
        fold_bytes(&mut h, &contents);
    }
    Ok(h)
}

/// Recursively collects `.rs` files, skipping `target` build
/// directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if ty.is_file() && path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The 64-bit address a record is indexed under: an FNV-1a fold of the
/// spec key salted with the code fingerprint. Pure function of its two
/// arguments — no clocks, no environment, no iteration order.
pub fn store_key_hash(spec_key: &str, fp: &CodeFingerprint) -> u64 {
    let mut h = FNV_OFFSET;
    let fold = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(FNV_PRIME);
    };
    fold(&mut h, fp.stats_schema as u64);
    fold(&mut h, fp.source_digest);
    fold(&mut h, content_key(spec_key.as_bytes()));
    h
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// One parsed record location (index entry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct IdxEntry {
    /// [`store_key_hash`] of the record's (spec key, fingerprint).
    key_hash: u64,
    /// Byte offset of the frame in `store.log`.
    offset: u64,
    /// Frame payload length.
    payload_len: u32,
}

/// What `open` found on disk (for logging/`--store-stats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Records readable in the log (any fingerprint).
    pub records: usize,
    /// Records matching the current fingerprint (servable).
    pub matching: usize,
    /// Bytes in the log, including the header.
    pub log_bytes: u64,
    /// Damaged regions skipped while scanning (each one truncated or
    /// checksum-corrupt).
    pub skipped: usize,
    /// The side index was usable as-is (no rebuild needed).
    pub index_valid: bool,
    /// The side index was rebuilt (missing, corrupt, or stale).
    pub index_rebuilt: bool,
    /// The log's header was damaged or from another container version;
    /// the old file was rotated aside to `store.log.damaged` and a
    /// fresh log started (appending after a bad header would make
    /// every new record permanently unreadable).
    pub log_rotated: bool,
}

struct Inner {
    /// Append handle to `store.log` (`O_APPEND`).
    log: File,
    /// Servable results: spec key → serialized [`RunOutcome`] payload
    /// suffix. BTreeMap so every listing is deterministically ordered.
    map: BTreeMap<String, Vec<u8>>,
}

/// A content-addressed result store rooted at one directory. Safe to
/// share across executor threads (`&self` API, internal locking) and
/// across *processes* (append-only log; each process sees records
/// written before its `open`, plus everything it wrote itself).
pub struct ResultStore {
    dir: PathBuf,
    fingerprint: CodeFingerprint,
    open_report: OpenReport,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("dir", &self.dir)
            .field("fingerprint", &self.fingerprint)
            .field("open_report", &self.open_report)
            .finish()
    }
}

impl ResultStore {
    /// Opens (creating if necessary) the store at `dir` for the given
    /// code fingerprint: loads every servable record into memory,
    /// skipping damaged regions, and rebuilds the side index
    /// atomically when it is missing, corrupt, or stale.
    ///
    /// # Errors
    /// Propagates real IO failures (permissions, disk). Corruption is
    /// not an error — damaged records are ignored and reported in
    /// [`ResultStore::open_report`].
    pub fn open(dir: &Path, fingerprint: CodeFingerprint) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let log_path = dir.join("store.log");
        let idx_path = dir.join("store.idx");

        // Create the log with its header on first touch.
        if !log_path.exists() {
            write_log_header(&log_path)?;
        }
        let mut bytes = std::fs::read(&log_path)?;
        let mut report = OpenReport {
            log_bytes: bytes.len() as u64,
            ..OpenReport::default()
        };

        // A log whose header is damaged (or from another container
        // version) cannot safely take appends: every record written
        // after the bad header would be unreadable on all future
        // opens. Rotate the damaged file aside (preserving its bytes
        // for post-mortem) and start a fresh log.
        let header_ok = bytes.len() >= LOG_HEADER_LEN as usize
            && bytes[0..8] == LOG_MAGIC.to_le_bytes()
            && bytes[8..12] == STORE_FORMAT_VERSION.to_le_bytes();
        if !header_ok {
            std::fs::rename(&log_path, dir.join("store.log.damaged"))?;
            write_log_header(&log_path)?;
            bytes = std::fs::read(&log_path)?;
            report.log_rotated = true;
            report.log_bytes = bytes.len() as u64;
        }

        let mut entries: Vec<IdxEntry> = Vec::new();
        let mut map: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        {
            // Try the side index first: if it verifies and covers the
            // whole log, records can be located without a scan. Every
            // record it points at is still individually verified.
            let mut index_used = false;
            if let Some(idx) = load_index(&idx_path, bytes.len() as u64) {
                let mut all_verified = true;
                let mut loaded: Vec<(IdxEntry, Option<ParsedRecord>)> =
                    Vec::with_capacity(idx.len());
                for en in &idx {
                    match verify_record(&bytes, en.offset, en.payload_len) {
                        Some(parsed) => loaded.push((*en, Some(parsed))),
                        None => {
                            all_verified = false;
                            break;
                        }
                    }
                }
                if all_verified {
                    index_used = true;
                    report.index_valid = true;
                    for (en, parsed) in loaded {
                        entries.push(en);
                        report.records += 1;
                        if let Some((key, fp, outcome)) = parsed {
                            if fp == fingerprint {
                                report.matching += 1;
                                map.insert(key, outcome);
                            }
                        }
                    }
                }
            }
            if !index_used {
                // Full scan: parse frames from the header on, resyncing
                // on the frame magic after any damage.
                scan_log(
                    &bytes,
                    LOG_HEADER_LEN,
                    &fingerprint,
                    &mut entries,
                    &mut map,
                    &mut report,
                );
                // Rebuild the index to cover everything we could read.
                if write_index(&idx_path, bytes.len() as u64, &entries).is_ok() {
                    report.index_rebuilt = true;
                }
            }
        }

        let log = OpenOptions::new().append(true).open(&log_path)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            fingerprint,
            open_report: report,
            inner: Mutex::new(Inner { log, map }),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The fingerprint this store serves.
    pub fn fingerprint(&self) -> CodeFingerprint {
        self.fingerprint
    }

    /// What `open` found (record counts, damage, index state).
    pub fn open_report(&self) -> OpenReport {
        self.open_report
    }

    /// Whether a servable result exists for `spec_key` (used by the
    /// store-aware `repro --list`).
    pub fn contains(&self, spec_key: &str) -> bool {
        self.lock().map.contains_key(spec_key)
    }

    /// Number of servable results.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no servable results exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached outcome for `spec_key`, if present and decodable.
    /// A record that fails to decode (impossible under an honest
    /// fingerprint, since the schema version is part of it) is treated
    /// as a miss, never served.
    pub fn get(&self, spec_key: &str) -> Option<RunOutcome> {
        let payload = self.lock().map.get(spec_key).cloned()?;
        let mut d = Dec::new(&payload);
        let outcome = RunOutcome::snapshot_decode(&mut d).ok()?;
        d.finish().ok()?;
        Some(outcome)
    }

    /// Appends `outcome` under `spec_key` (single `O_APPEND` write, so
    /// concurrent executors never interleave mid-record) and makes it
    /// immediately servable from this handle.
    ///
    /// # Errors
    /// Propagates the underlying IO error; the in-memory map is only
    /// updated after a successful append.
    pub fn put(&self, spec_key: &str, outcome: &RunOutcome) -> std::io::Result<()> {
        let mut e = Enc::new();
        self.fingerprint.encode(&mut e);
        e.str(spec_key);
        let mut out_enc = Enc::new();
        outcome.snapshot_encode(&mut out_enc);
        let outcome_bytes = out_enc.finish();
        e.bytes(&outcome_bytes);
        let frame = frame_bytes(&e.finish());
        let mut inner = self.lock();
        inner.log.write_all(&frame)?;
        inner.map.insert(spec_key.to_string(), outcome_bytes);
        Ok(())
    }

    /// Servable spec keys, sorted (deterministic listing for
    /// `--store-stats`).
    pub fn keys(&self) -> Vec<String> {
        self.lock().map.keys().cloned().collect()
    }

    /// Human-readable store summary for `repro --store-stats`.
    pub fn render_stats(&self) -> String {
        let r = self.open_report;
        let mut out = String::new();
        out.push_str(&format!("store: {}\n", self.dir.display()));
        out.push_str(&format!(
            "  fingerprint: schema v{}, source digest {:016x}\n",
            self.fingerprint.stats_schema, self.fingerprint.source_digest
        ));
        out.push_str(&format!(
            "  log: {} bytes, {} record(s), {} damaged region(s) skipped\n",
            r.log_bytes, r.records, r.skipped
        ));
        if r.log_rotated {
            out.push_str("  note: damaged/foreign log rotated to store.log.damaged\n");
        }
        out.push_str(&format!(
            "  index: {}\n",
            if r.index_valid {
                "valid"
            } else if r.index_rebuilt {
                "rebuilt"
            } else {
                "unavailable"
            }
        ));
        out.push_str(&format!(
            "  servable under this fingerprint: {} result(s)\n",
            self.len()
        ));
        for key in self.keys() {
            let line = match self.get(&key) {
                Some(outcome) => format!("  {:9} {key}\n", outcome_tag(&outcome)),
                None => format!("  {:9} {key}\n", "undecodable"),
            };
            out.push_str(&line);
        }
        out
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned mutex only means another thread panicked mid-put;
        // the map is a cache and the log append was a single write, so
        // continuing is safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Short status word for a stored outcome (`--store-stats` listing).
fn outcome_tag(outcome: &RunOutcome) -> &'static str {
    match outcome {
        RunOutcome::Ok(_) => "ok",
        RunOutcome::Failed(_) => "failed",
        RunOutcome::Panicked(_) => "panicked",
        RunOutcome::TimedOut { .. } => "timed-out",
    }
}

/// A decoded log record: `(spec key, fingerprint, outcome payload)`.
type ParsedRecord = (String, CodeFingerprint, Vec<u8>);

/// Parses and verifies the frame at `offset`; returns the decoded
/// record on success.
fn verify_record(bytes: &[u8], offset: u64, expect_len: u32) -> Option<ParsedRecord> {
    let start = usize::try_from(offset).ok()?;
    let header = bytes.get(start..start + FRAME_HEADER_LEN)?;
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&header[8..16]);
    let checksum = u64::from_le_bytes(sum);
    if magic != FRAME_MAGIC || len != expect_len || len > MAX_FRAME_LEN {
        return None;
    }
    let payload = bytes.get(start + FRAME_HEADER_LEN..start + FRAME_HEADER_LEN + len as usize)?;
    if content_key(payload) != checksum {
        return None;
    }
    let mut d = Dec::new(payload);
    let fp = CodeFingerprint::decode(&mut d).ok()?;
    let key = d.str().ok()?.to_string();
    let outcome = payload[payload.len() - d.remaining()..].to_vec();
    Some((key, fp, outcome))
}

/// Scans log frames from `from`, resyncing on the frame magic after
/// damage; fills `entries` (all readable records) and `map` (records
/// matching `fingerprint`, last write wins).
fn scan_log(
    bytes: &[u8],
    from: u64,
    fingerprint: &CodeFingerprint,
    entries: &mut Vec<IdxEntry>,
    map: &mut BTreeMap<String, Vec<u8>>,
    report: &mut OpenReport,
) {
    let mut pos = from as usize;
    let mut in_damage = false;
    while pos + FRAME_HEADER_LEN <= bytes.len() {
        let magic =
            u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let len = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let parsed = if magic == FRAME_MAGIC {
            verify_record(bytes, pos as u64, len)
        } else {
            None
        };
        match parsed {
            Some((key, fp, outcome)) => {
                if in_damage {
                    in_damage = false;
                }
                entries.push(IdxEntry {
                    key_hash: store_key_hash(&key, &fp),
                    offset: pos as u64,
                    payload_len: len,
                });
                report.records += 1;
                if fp == *fingerprint {
                    report.matching += 1;
                    map.insert(key, outcome);
                }
                pos += FRAME_HEADER_LEN + len as usize;
            }
            None => {
                // Damaged or foreign bytes: advance to the next magic
                // occurrence (count each contiguous damaged region
                // once).
                if !in_damage {
                    report.skipped += 1;
                    in_damage = true;
                }
                pos += 1;
                while pos + 4 <= bytes.len() && bytes[pos..pos + 4] != FRAME_MAGIC.to_le_bytes() {
                    pos += 1;
                }
                if pos + 4 > bytes.len() {
                    break;
                }
            }
        }
    }
    // A trailing partial frame header (crash mid-append) is damage too.
    if pos < bytes.len() && !in_damage {
        report.skipped += 1;
    }
}

/// Writes a fresh log file containing only the header.
fn write_log_header(path: &Path) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(LOG_HEADER_LEN as usize);
    header.extend_from_slice(&LOG_MAGIC.to_le_bytes());
    header.extend_from_slice(&STORE_FORMAT_VERSION.to_le_bytes());
    std::fs::write(path, header)
}

/// Loads and fully verifies the side index; `None` means missing,
/// corrupt, from another format version, or covering more log than
/// exists (each of which demands a rescan).
fn load_index(path: &Path, log_len: u64) -> Option<Vec<IdxEntry>> {
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 36 {
        return None;
    }
    let body = &bytes[..bytes.len() - 8];
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[bytes.len() - 8..]);
    if content_key(body) != u64::from_le_bytes(sum) {
        return None;
    }
    let mut d = Dec::new(body);
    if d.u64().ok()? != IDX_MAGIC || d.u32().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    let covered = d.u64().ok()?;
    if covered != log_len {
        // Stale (appends since the rebuild) or impossible (log was
        // truncated); both demand a rescan.
        return None;
    }
    let count = d.seq_len().ok()?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(IdxEntry {
            key_hash: d.u64().ok()?,
            offset: d.u64().ok()?,
            payload_len: d.u32().ok()?,
        });
    }
    d.finish().ok()?;
    Some(entries)
}

/// Atomically (temp + rename) writes the side index covering
/// `covered_len` bytes of log.
fn write_index(path: &Path, covered_len: u64, entries: &[IdxEntry]) -> std::io::Result<()> {
    let mut e = Enc::new();
    e.u64(IDX_MAGIC);
    e.u32(STORE_FORMAT_VERSION);
    e.u64(covered_len);
    e.usize(entries.len());
    for en in entries {
        e.u64(en.key_hash);
        e.u64(en.offset);
        e.u32(en.payload_len);
    }
    let mut body = e.finish();
    let sum = content_key(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    let tmp = path.with_extension(format!("idx.tmp.{}", std::process::id()));
    std::fs::write(&tmp, &body)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RunOutcome;
    use crate::runner::{RunError, RunResult};
    use pfm_core::SimStats;
    use pfm_mem::HierarchyStats;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique-per-test temp dir without wall clocks or RNG.
    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pfm-store-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_result(name: &str, retired: u64) -> RunResult {
        RunResult {
            name: name.to_string(),
            stats: SimStats {
                cycles: retired * 2,
                retired,
                loads: retired / 3,
                stores: retired / 7,
                ..SimStats::default()
            },
            hier: HierarchyStats {
                l1d_hits: 11,
                dram_accesses: 3,
                ..HierarchyStats::default()
            },
            fabric: None,
            faults: None,
            arch_checksum: 0xdead_beef_cafe_f00d ^ retired,
            completed: retired.is_multiple_of(2),
            ctx: None,
        }
    }

    fn assert_same_ok(a: &RunOutcome, b: &RunOutcome) {
        let (a, b) = (a.as_ok().unwrap(), b.as_ok().unwrap());
        assert_eq!(a.name, b.name);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.hier, b.hier);
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.arch_checksum, b.arch_checksum);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn outcome_codec_roundtrips_every_variant() {
        let outcomes = vec![
            RunOutcome::Ok(sample_result("astar", 1_000)),
            RunOutcome::Failed(RunError::Exec("bad pc".to_string())),
            RunOutcome::Panicked("boom".to_string()),
            RunOutcome::TimedOut {
                error: RunError::Watchdog {
                    last_commit_cycle: 10,
                    stalled_cycles: 99,
                    retired: 5,
                },
                retries: 1,
            },
            RunOutcome::Failed(RunError::CycleLimit {
                max_cycles: 7,
                retired: 3,
            }),
        ];
        for outcome in &outcomes {
            let mut e = Enc::new();
            outcome.snapshot_encode(&mut e);
            let bytes = e.finish();
            let mut d = Dec::new(&bytes);
            let back = RunOutcome::snapshot_decode(&mut d).unwrap();
            d.finish().unwrap();
            match (outcome, &back) {
                (RunOutcome::Ok(_), RunOutcome::Ok(_)) => assert_same_ok(outcome, &back),
                _ => assert_eq!(outcome.describe(), back.describe()),
            }
        }
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let dir = temp_dir("roundtrip");
        let fp = CodeFingerprint::fixed(42);
        let store = ResultStore::open(&dir, fp).unwrap();
        assert!(store.is_empty());
        assert!(store.get("k1").is_none());

        let ok = RunOutcome::Ok(sample_result("astar", 1_000));
        store.put("k1", &ok).unwrap();
        let fail = RunOutcome::Panicked("kaput".to_string());
        store.put("k2", &fail).unwrap();
        assert_eq!(store.len(), 2);
        assert_same_ok(&store.get("k1").unwrap(), &ok);
        assert!(matches!(
            store.get("k2").unwrap(),
            RunOutcome::Panicked(ref m) if m == "kaput"
        ));

        drop(store);
        let store = ResultStore::open(&dir, fp).unwrap();
        assert_eq!(store.len(), 2);
        assert_same_ok(&store.get("k1").unwrap(), &ok);
        let report = store.open_report();
        assert_eq!(report.records, 2);
        assert_eq!(report.matching, 2);
        assert_eq!(report.skipped, 0);
        assert!(report.index_rebuilt, "first reopen rebuilds the index");

        // Third open: the index now covers the whole log and is used
        // as-is.
        drop(store);
        let store = ResultStore::open(&dir, fp).unwrap();
        assert!(store.open_report().index_valid);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn different_fingerprint_never_serves_and_last_write_wins() {
        let dir = temp_dir("fp");
        let old = ResultStore::open(&dir, CodeFingerprint::fixed(1)).unwrap();
        old.put("k", &RunOutcome::Ok(sample_result("astar", 10)))
            .unwrap();
        drop(old);

        // A new fingerprint sees the record in the log but cannot be
        // served from it.
        let new = ResultStore::open(&dir, CodeFingerprint::fixed(2)).unwrap();
        assert_eq!(new.open_report().records, 1);
        assert_eq!(new.open_report().matching, 0);
        assert!(new.get("k").is_none());
        new.put("k", &RunOutcome::Ok(sample_result("astar", 20)))
            .unwrap();
        drop(new);

        // Each fingerprint still resolves to its own record.
        let old = ResultStore::open(&dir, CodeFingerprint::fixed(1)).unwrap();
        assert_eq!(old.get("k").unwrap().as_ok().unwrap().stats.retired, 10);
        let new = ResultStore::open(&dir, CodeFingerprint::fixed(2)).unwrap();
        assert_eq!(new.get("k").unwrap().as_ok().unwrap().stats.retired, 20);

        // Same fingerprint, same key, appended twice: last write wins.
        new.put("k", &RunOutcome::Ok(sample_result("astar", 30)))
            .unwrap();
        drop(new);
        let new = ResultStore::open(&dir, CodeFingerprint::fixed(2)).unwrap();
        assert_eq!(new.get("k").unwrap().as_ok().unwrap().stats.retired, 30);
    }

    #[test]
    fn store_key_hash_separates_keys_and_fingerprints() {
        let fp1 = CodeFingerprint::fixed(1);
        let fp2 = CodeFingerprint::fixed(2);
        assert_eq!(store_key_hash("a", &fp1), store_key_hash("a", &fp1));
        assert_ne!(store_key_hash("a", &fp1), store_key_hash("b", &fp1));
        assert_ne!(store_key_hash("a", &fp1), store_key_hash("a", &fp2));
        let schema_skew = CodeFingerprint {
            stats_schema: STATS_SCHEMA_VERSION + 1,
            source_digest: 1,
        };
        assert_ne!(store_key_hash("a", &fp1), store_key_hash("a", &schema_skew));
    }

    #[test]
    fn source_digest_is_deterministic_and_content_sensitive() {
        let root = temp_dir("digest");
        std::fs::create_dir_all(root.join("src")).unwrap();
        std::fs::create_dir_all(root.join("crates/x/src")).unwrap();
        std::fs::write(root.join("src/lib.rs"), "pub fn a() {}\n").unwrap();
        std::fs::write(root.join("crates/x/src/lib.rs"), "pub fn b() {}\n").unwrap();
        let d1 = source_digest(&root).unwrap();
        let d2 = source_digest(&root).unwrap();
        assert_eq!(d1, d2, "digest must be a pure function of the tree");

        std::fs::write(root.join("crates/x/src/lib.rs"), "pub fn b() { }\n").unwrap();
        let d3 = source_digest(&root).unwrap();
        assert_ne!(d1, d3, "an edited source must re-key the store");

        // Non-.rs files do not contribute.
        std::fs::write(root.join("src/notes.md"), "hello").unwrap();
        assert_eq!(d3, source_digest(&root).unwrap());
    }

    /// Fills a store with three records and returns (dir, fp, the
    /// outcomes by key) for the durability tests.
    fn seeded_store(tag: &str) -> (PathBuf, CodeFingerprint) {
        let dir = temp_dir(tag);
        let fp = CodeFingerprint::fixed(77);
        let store = ResultStore::open(&dir, fp).unwrap();
        store
            .put("k1", &RunOutcome::Ok(sample_result("astar", 100)))
            .unwrap();
        store
            .put("k2", &RunOutcome::Ok(sample_result("lbm", 200)))
            .unwrap();
        store
            .put("k3", &RunOutcome::Ok(sample_result("milc", 300)))
            .unwrap();
        (dir, fp)
    }

    #[test]
    fn truncated_tail_record_degrades_to_ignore_and_rebuild() {
        let (dir, fp) = seeded_store("trunc");
        // Chop the last record mid-payload: a crash mid-append.
        let log = dir.join("store.log");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 7]).unwrap();
        // Stale index now covers more log than exists — must also be
        // ignored and rebuilt.
        let store = ResultStore::open(&dir, fp).unwrap();
        let report = store.open_report();
        assert_eq!(report.records, 2, "intact prefix survives");
        assert_eq!(report.skipped, 1, "the torn tail is one damaged region");
        assert!(report.index_rebuilt);
        assert_eq!(store.get("k1").unwrap().as_ok().unwrap().stats.retired, 100);
        assert_eq!(store.get("k2").unwrap().as_ok().unwrap().stats.retired, 200);
        assert!(store.get("k3").is_none(), "the torn record is never served");

        // The store still accepts appends and heals on the next open.
        store
            .put("k3", &RunOutcome::Ok(sample_result("milc", 301)))
            .unwrap();
        drop(store);
        let store = ResultStore::open(&dir, fp).unwrap();
        assert_eq!(store.get("k3").unwrap().as_ok().unwrap().stats.retired, 301);
    }

    #[test]
    fn corrupted_checksum_skips_only_the_damaged_record() {
        let (dir, fp) = seeded_store("corrupt");
        let log = dir.join("store.log");
        let mut bytes = std::fs::read(&log).unwrap();
        // Flip a byte inside the second record's payload (first record
        // starts right after the header; find the second frame magic).
        let magic = FRAME_MAGIC.to_le_bytes();
        let first = (LOG_HEADER_LEN as usize..bytes.len())
            .find(|&i| bytes[i..].starts_with(&magic))
            .unwrap();
        let second = (first + 1..bytes.len())
            .find(|&i| bytes[i..].starts_with(&magic))
            .unwrap();
        bytes[second + FRAME_HEADER_LEN + 4] ^= 0xff;
        std::fs::write(&log, &bytes).unwrap();
        // Invalidate the index so the scan path is exercised.
        std::fs::remove_file(dir.join("store.idx")).unwrap();

        let store = ResultStore::open(&dir, fp).unwrap();
        let report = store.open_report();
        assert_eq!(report.skipped, 1);
        assert!(store.get("k1").is_some());
        assert!(store.get("k2").is_none(), "bad bytes are never served");
        assert!(
            store.get("k3").is_some(),
            "resync recovers the record after the damage"
        );
    }

    #[test]
    fn missing_or_garbled_index_is_rebuilt_from_the_log() {
        let (dir, fp) = seeded_store("noidx");
        let idx = dir.join("store.idx");

        // Missing index.
        std::fs::remove_file(&idx).unwrap();
        let store = ResultStore::open(&dir, fp).unwrap();
        assert_eq!(store.len(), 3);
        assert!(store.open_report().index_rebuilt);
        drop(store);

        // Garbled index (checksum cannot match).
        let mut bytes = std::fs::read(&idx).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&idx, &bytes).unwrap();
        let store = ResultStore::open(&dir, fp).unwrap();
        assert_eq!(store.len(), 3, "a bad index costs a rescan, nothing else");
        assert!(store.open_report().index_rebuilt);
        drop(store);

        // And the rebuilt index verifies again.
        let store = ResultStore::open(&dir, fp).unwrap();
        assert!(store.open_report().index_valid);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn damaged_header_rotates_the_log_and_starts_fresh() {
        let (dir, fp) = seeded_store("header");
        let log = dir.join("store.log");
        let mut bytes = std::fs::read(&log).unwrap();
        bytes[0] ^= 0xff; // corrupt the log magic
        std::fs::write(&log, &bytes).unwrap();

        // The damaged file is rotated aside, not appended after: an
        // append landing behind a bad header would be silently
        // unreadable on every future open.
        let store = ResultStore::open(&dir, fp).unwrap();
        let report = store.open_report();
        assert!(report.log_rotated, "bad header must be surfaced");
        assert_eq!(report.records, 0);
        assert!(store.is_empty());
        assert!(
            dir.join("store.log.damaged").exists(),
            "damaged bytes are preserved for post-mortem"
        );
        assert!(store.render_stats().contains("rotated"));

        // Appends now land after a fresh, valid header and survive
        // reopen.
        store
            .put("k1", &RunOutcome::Ok(sample_result("astar", 100)))
            .unwrap();
        drop(store);
        let store = ResultStore::open(&dir, fp).unwrap();
        assert!(!store.open_report().log_rotated);
        assert_eq!(store.get("k1").unwrap().as_ok().unwrap().stats.retired, 100);
    }

    #[test]
    fn baked_digest_matches_tree_digest() {
        // The build script's fold (build.rs) must mirror
        // `source_digest` exactly; silent divergence would decouple
        // the baked fingerprint from the sources it claims to name.
        let root = find_workspace_root().expect("tests run inside the workspace");
        assert_eq!(BAKED_SOURCE_DIGEST, source_digest(&root).unwrap());
    }

    #[test]
    fn index_pointing_at_tampered_log_falls_back_to_scan() {
        // The index verifies, but a record it points at was modified
        // after the rebuild (same length, flipped byte): per-record
        // verification must catch it and fall back to a full scan.
        let (dir, fp) = seeded_store("tamper");
        // Ensure a valid index covering the log exists.
        drop(ResultStore::open(&dir, fp).unwrap());
        let log = dir.join("store.log");
        let mut bytes = std::fs::read(&log).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0xff; // inside the last record's payload
        std::fs::write(&log, &bytes).unwrap();

        let store = ResultStore::open(&dir, fp).unwrap();
        let report = store.open_report();
        assert!(
            !report.index_valid,
            "tampered record invalidates the index path"
        );
        assert_eq!(report.records, 2);
        assert_eq!(report.skipped, 1);
        assert!(store.get("k3").is_none());
        assert!(store.get("k1").is_some());
    }

    #[test]
    fn frame_stream_roundtrip_and_corruption() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"omega").unwrap();
        let mut r = std::io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"omega");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");

        // Flip one payload byte: checksum mismatch, typed error.
        let mut bad = buf.clone();
        bad[FRAME_HEADER_LEN] ^= 0xff;
        assert!(read_frame(&mut std::io::Cursor::new(bad)).is_err());

        // Truncate mid-payload: typed error, not a hang or panic.
        let cut = &buf[..FRAME_HEADER_LEN + 2];
        assert!(read_frame(&mut std::io::Cursor::new(cut.to_vec())).is_err());
    }
}
