//! # pfm-sim — full-system integration and experiment driver
//!
//! Wires the functional machine, the cycle-level core, the memory
//! hierarchy, and the PFM fabric together ([`runner`]), instantiates
//! the paper's workloads at experiment scale ([`usecases`]), and
//! regenerates every table and figure of the evaluation as
//! plan → execute → assemble: [`experiments`] builds declarative
//! [`plan::ExperimentPlan`]s, and [`exec`] deduplicates and runs them
//! across worker threads.
//!
//! ## Example
//!
//! ```no_run
//! use pfm_sim::{run_baseline, run_pfm, RunConfig};
//! use pfm_fabric::FabricParams;
//!
//! let uc = pfm_sim::usecases::astar_custom();
//! let rc = RunConfig::paper_scale();
//! let base = run_baseline(&uc, &rc).unwrap();
//! let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
//! println!("astar PFM speedup: +{:.0}%", pfm.speedup_over(&base));
//! ```

#![warn(missing_docs)]

pub mod analyze;
pub mod bench;
pub mod exec;
pub mod experiments;
pub mod plan;
pub mod runner;
pub mod sampled;
pub mod schedule;
pub mod service;
pub mod store;
pub mod usecases;

pub use bench::{run_bench, BenchReport, BenchRow};
pub use exec::{run_plans, ExecOptions, ExecReport, FailureReport};
pub use experiments::{Experiment, Row};
pub use plan::{ExperimentPlan, PlanError, RunOutcome, RunSet, RunSpec};
pub use runner::{
    run_baseline, run_chaos, run_context_switch, run_functional, run_pfm, CtxMode, CtxStats,
    RunConfig, RunError, RunResult, DEFAULT_COMMIT_WATCHDOG,
};
pub use sampled::{run_sampled, IntervalRow, SampledConfig, SampledError, SampledReport};
pub use schedule::{ScheduledFabric, Tenant};
pub use store::{CodeFingerprint, ResultStore, STATS_SCHEMA_VERSION};
