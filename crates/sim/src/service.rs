//! Multi-process experiment service: a local Unix-socket daemon that
//! answers plan requests from the result store and shards the
//! cache-missing remainder across **worker processes**.
//!
//! Three roles share one binary (`repro`):
//!
//! * **server** ([`serve`]) — binds the socket, holds the
//!   [`ResultStore`] handle, and for each request probes the store,
//!   spawns `repro --worker` children for the misses, streams per-run
//!   progress back to the client, appends fresh results to the store,
//!   and finally sends the assembled experiment output. A fully-warm
//!   request is answered without simulating at all.
//! * **worker** ([`worker_main`]) — a spawned child process. It reads
//!   one assignment frame from stdin (experiment ids + the content
//!   keys it owns), re-plans those ids deterministically (planning is
//!   pure, so every process derives identical [`RunSpec`]s from the
//!   same ids), executes its assigned subset, and writes one framed
//!   [`RunOutcome`] per run to stdout. Process isolation is strictly
//!   stronger than the in-process `catch_unwind` executor: even an
//!   abort or a stack overflow only costs the runs assigned to that
//!   worker, which surface as [`RunOutcome::Panicked`].
//! * **client** ([`request`]) — connects, sends one request frame,
//!   prints streamed progress to stderr and experiment output to
//!   stdout, and exits with the code the server reports.
//!
//! Every message on the socket and on the worker pipes is a
//! checksummed frame ([`crate::store::write_frame`]) — the same
//! container the store's record log uses — so a torn pipe or a
//! crashed peer produces a typed error, never a misparse. Specs are
//! never serialized; only experiment *ids* and content *keys* cross
//! process boundaries, and the worker re-derives the specs from the
//! same deterministic planner the server used.

use crate::exec::{dedup_specs, run_isolated};
use crate::experiments::{plan_for, ALL_IDS};
use crate::plan::{ExperimentPlan, RunOutcome, RunSet, RunSpec};
use crate::runner::RunConfig;
use crate::store::{read_frame, write_frame, ResultStore};
use pfm_isa::snap::{Dec, Enc};
use std::collections::BTreeSet;
use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};

/// Instruction budget used by `--quick` everywhere (CLI, server,
/// worker). One constant so all three roles plan identical specs.
pub const QUICK_MAX_INSTRS: u64 = 300_000;

/// The run configuration every role derives from the `quick` flag.
/// Workers re-plan from `(ids, quick)` alone, so this mapping must be
/// a pure function.
pub fn run_config_for(quick: bool) -> RunConfig {
    let mut rc = RunConfig::paper_scale();
    if quick {
        rc.max_instrs = QUICK_MAX_INSTRS;
    }
    rc
}

/// One plan request: which experiments, at which scale, with how much
/// worker parallelism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanRequest {
    /// Experiment ids; empty means the full paper set (`--all`).
    pub ids: Vec<String>,
    /// Use the `--quick` instruction budget.
    pub quick: bool,
    /// Maximum worker processes to shard misses across.
    pub jobs: usize,
}

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Plan, execute (store-first), assemble, stream back.
    Plan(PlanRequest),
    /// Stop the daemon after acknowledging.
    Shutdown,
}

impl Request {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            Request::Plan(p) => {
                e.u8(0);
                e.bool(p.quick);
                e.usize(p.jobs);
                e.usize(p.ids.len());
                for id in &p.ids {
                    e.str(id);
                }
            }
            Request::Shutdown => e.u8(1),
        }
        e.finish()
    }

    fn decode(bytes: &[u8]) -> std::io::Result<Request> {
        let mut d = Dec::new(bytes);
        let req = match d.u8().map_err(snap_io)? {
            0 => {
                let quick = d.bool().map_err(snap_io)?;
                let jobs = d.usize().map_err(snap_io)?;
                let n = d.seq_len().map_err(snap_io)?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(d.str().map_err(snap_io)?.to_string());
                }
                Request::Plan(PlanRequest { ids, quick, jobs })
            }
            1 => Request::Shutdown,
            _ => return Err(bad("request tag")),
        };
        d.finish().map_err(snap_io)?;
        Ok(req)
    }
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerMsg {
    /// Progress line; the client prints it to stderr.
    Progress(String),
    /// Output text; the client prints it to stdout.
    Output(String),
    /// The request is complete; exit with this code.
    Done {
        /// Process exit code for the client.
        exit_code: u8,
    },
    /// The request could not be served at all.
    Error(String),
}

impl ServerMsg {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            ServerMsg::Progress(s) => {
                e.u8(0);
                e.str(s);
            }
            ServerMsg::Output(s) => {
                e.u8(1);
                e.str(s);
            }
            ServerMsg::Done { exit_code } => {
                e.u8(2);
                e.u8(*exit_code);
            }
            ServerMsg::Error(s) => {
                e.u8(3);
                e.str(s);
            }
        }
        e.finish()
    }

    fn decode(bytes: &[u8]) -> std::io::Result<ServerMsg> {
        let mut d = Dec::new(bytes);
        let msg = match d.u8().map_err(snap_io)? {
            0 => ServerMsg::Progress(d.str().map_err(snap_io)?.to_string()),
            1 => ServerMsg::Output(d.str().map_err(snap_io)?.to_string()),
            2 => ServerMsg::Done {
                exit_code: d.u8().map_err(snap_io)?,
            },
            3 => ServerMsg::Error(d.str().map_err(snap_io)?.to_string()),
            _ => return Err(bad("server message tag")),
        };
        d.finish().map_err(snap_io)?;
        Ok(msg)
    }
}

/// A worker → server message (over the child's stdout pipe).
enum WorkerMsg {
    /// Progress line to forward to the client.
    Progress(String),
    /// One finished run (boxed: an outcome is ~500 bytes of stats).
    Result {
        key: String,
        outcome: Box<RunOutcome>,
    },
}

impl WorkerMsg {
    fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WorkerMsg::Progress(s) => {
                e.u8(0);
                e.str(s);
            }
            WorkerMsg::Result { key, outcome } => {
                e.u8(1);
                e.str(key);
                outcome.snapshot_encode(&mut e);
            }
        }
        e.finish()
    }

    fn decode(bytes: &[u8]) -> std::io::Result<WorkerMsg> {
        let mut d = Dec::new(bytes);
        let msg = match d.u8().map_err(snap_io)? {
            0 => WorkerMsg::Progress(d.str().map_err(snap_io)?.to_string()),
            1 => WorkerMsg::Result {
                key: d.str().map_err(snap_io)?.to_string(),
                outcome: Box::new(RunOutcome::snapshot_decode(&mut d).map_err(snap_io)?),
            },
            _ => return Err(bad("worker message tag")),
        };
        d.finish().map_err(snap_io)?;
        Ok(msg)
    }
}

fn snap_io(e: pfm_isa::snap::SnapError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

fn bad(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

/// Plans `ids` (empty = full paper set) at the scale `quick` implies
/// and returns the plans plus the deduplicated unique spec set.
///
/// # Errors
/// The planner's error for an unknown id.
pub fn plan_ids(
    ids: &[String],
    quick: bool,
) -> Result<(Vec<ExperimentPlan>, Vec<RunSpec>), crate::plan::PlanError> {
    let rc = run_config_for(quick);
    let ids: Vec<&str> = if ids.is_empty() {
        ALL_IDS.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };
    let mut plans = Vec::with_capacity(ids.len());
    for id in ids {
        plans.push(plan_for(id, &rc)?);
    }
    let specs: Vec<RunSpec> = plans
        .iter()
        .flat_map(|p| p.specs().iter().cloned())
        .collect();
    let unique = dedup_specs(&specs);
    Ok((plans, unique))
}

// ---------------------------------------------------------------------
// Worker role
// ---------------------------------------------------------------------

/// Entry point for `repro --worker`: reads one assignment frame from
/// stdin (`quick`, experiment ids, assigned content keys), re-plans
/// the ids, executes the assigned subset serially, and writes one
/// framed outcome per run to stdout. Returns the process exit code.
pub fn worker_main() -> i32 {
    let mut stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let frame = match read_frame(&mut stdin) {
        Ok(Some(f)) => f,
        Ok(None) => {
            eprintln!("repro --worker: no assignment frame on stdin");
            return 2;
        }
        Err(e) => {
            eprintln!("repro --worker: bad assignment frame: {e}");
            return 2;
        }
    };
    let (quick, ids, keys) = match decode_assignment(&frame) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro --worker: bad assignment: {e}");
            return 2;
        }
    };
    let (_, unique) = match plan_ids(&ids, quick) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("repro --worker: cannot plan: {e}");
            return 2;
        }
    };
    let assigned: BTreeSet<&str> = keys.iter().map(|k| k.as_str()).collect();
    for spec in unique.iter().filter(|s| assigned.contains(s.key())) {
        let (outcome, _) = run_isolated(spec);
        let progress = WorkerMsg::Progress(format!(
            "{} {} ({})",
            spec.name(),
            outcome_word(&outcome),
            spec.key()
        ));
        let result = WorkerMsg::Result {
            key: spec.key().to_string(),
            outcome: Box::new(outcome),
        };
        for msg in [progress, result] {
            if write_frame(&mut stdout, &msg.encode()).is_err() {
                // The server went away; nothing useful left to do.
                return 3;
            }
        }
        if stdout.flush().is_err() {
            return 3;
        }
    }
    0
}

fn outcome_word(outcome: &RunOutcome) -> &'static str {
    if outcome.is_ok() {
        "ok"
    } else {
        "FAILED"
    }
}

fn encode_assignment(quick: bool, ids: &[String], keys: &[String]) -> Vec<u8> {
    let mut e = Enc::new();
    e.bool(quick);
    e.usize(ids.len());
    for id in ids {
        e.str(id);
    }
    e.usize(keys.len());
    for k in keys {
        e.str(k);
    }
    e.finish()
}

fn decode_assignment(bytes: &[u8]) -> std::io::Result<(bool, Vec<String>, Vec<String>)> {
    let mut d = Dec::new(bytes);
    let quick = d.bool().map_err(snap_io)?;
    let n = d.seq_len().map_err(snap_io)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(d.str().map_err(snap_io)?.to_string());
    }
    let n = d.seq_len().map_err(snap_io)?;
    let mut keys = Vec::with_capacity(n);
    for _ in 0..n {
        keys.push(d.str().map_err(snap_io)?.to_string());
    }
    d.finish().map_err(snap_io)?;
    Ok((quick, ids, keys))
}

// ---------------------------------------------------------------------
// Server role
// ---------------------------------------------------------------------

/// Daemon configuration.
pub struct ServeOptions {
    /// Unix socket path to bind.
    pub socket: PathBuf,
    /// Default worker-process cap when a request asks for 0 jobs.
    pub jobs: usize,
    /// The store every request probes first (and fresh results are
    /// appended to). Without one the daemon still works — everything
    /// is a miss.
    pub store: Option<Arc<ResultStore>>,
    /// Command to spawn for workers (the `repro` binary). `None`
    /// resolves `std::env::current_exe()` at spawn time.
    pub worker_exe: Option<PathBuf>,
}

/// Runs the daemon: accepts connections serially until a client sends
/// [`Request::Shutdown`]. Each plan request is answered store-first,
/// with misses sharded round-robin across worker processes.
///
/// # Errors
/// Socket bind/accept failures. Per-connection errors are logged to
/// stderr and do not stop the daemon.
pub fn serve(opts: &ServeOptions) -> std::io::Result<()> {
    // A stale socket file from a dead daemon would make bind fail —
    // but a *live* daemon's socket must not be stolen (unlinking it
    // would strand that daemon's clients, and its shutdown would then
    // delete ours). Probe with a connect: only an unanswered socket
    // is stale and safe to remove.
    if opts.socket.exists() {
        match UnixStream::connect(&opts.socket) {
            Ok(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on {}", opts.socket.display()),
                ));
            }
            Err(_) => std::fs::remove_file(&opts.socket)?,
        }
    }
    let listener = UnixListener::bind(&opts.socket)?;
    eprintln!("repro --serve: listening on {}", opts.socket.display());
    if let Some(store) = &opts.store {
        eprintln!(
            "repro --serve: store {} ({} cached result(s))",
            store.dir().display(),
            store.len()
        );
    }
    let mut shutdown = false;
    while !shutdown {
        let (stream, _) = listener.accept()?;
        match handle_connection(stream, opts) {
            Ok(done) => shutdown = done,
            Err(e) => eprintln!("repro --serve: connection failed: {e}"),
        }
    }
    let _ = std::fs::remove_file(&opts.socket);
    eprintln!("repro --serve: shut down");
    Ok(())
}

/// Serves one connection; `Ok(true)` means the client asked the
/// daemon to shut down.
fn handle_connection(stream: UnixStream, opts: &ServeOptions) -> std::io::Result<bool> {
    let mut reader = stream.try_clone()?;
    let writer = Arc::new(Mutex::new(stream));
    let Some(frame) = read_frame(&mut reader)? else {
        return Ok(false); // client connected and vanished
    };
    let req = match Request::decode(&frame) {
        Ok(r) => r,
        Err(e) => {
            send(&writer, &ServerMsg::Error(format!("bad request: {e}")))?;
            return Ok(false);
        }
    };
    match req {
        Request::Shutdown => {
            send(&writer, &ServerMsg::Done { exit_code: 0 })?;
            Ok(true)
        }
        Request::Plan(plan) => {
            handle_plan(&writer, &plan, opts)?;
            Ok(false)
        }
    }
}

fn send(writer: &Arc<Mutex<UnixStream>>, msg: &ServerMsg) -> std::io::Result<()> {
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    write_frame(&mut *w, &msg.encode())?;
    w.flush()
}

/// Answers one plan request: store probe, worker shard, store append,
/// assemble, stream.
fn handle_plan(
    writer: &Arc<Mutex<UnixStream>>,
    req: &PlanRequest,
    opts: &ServeOptions,
) -> std::io::Result<()> {
    let (plans, unique) = match plan_ids(&req.ids, req.quick) {
        Ok(p) => p,
        Err(e) => {
            send(writer, &ServerMsg::Error(format!("cannot plan: {e}")))?;
            return Ok(());
        }
    };

    // Store probe: hits resolve now, misses go to worker processes.
    let mut runs = RunSet::default();
    let mut misses: Vec<&RunSpec> = Vec::new();
    for spec in &unique {
        match opts.store.as_deref().and_then(|s| s.get(spec.key())) {
            Some(outcome) => runs.insert(spec.key().to_string(), outcome),
            None => misses.push(spec),
        }
    }
    let hits = unique.len() - misses.len();
    let jobs = if req.jobs == 0 { opts.jobs } else { req.jobs };
    let workers = jobs.max(1).min(misses.len());
    send(
        writer,
        &ServerMsg::Progress(format!(
            "serve: {} experiment(s), {} unique run(s): {hits} store hit(s), {} miss(es){}",
            plans.len(),
            unique.len(),
            misses.len(),
            if misses.is_empty() {
                " — answering entirely from the store".to_string()
            } else {
                format!(", sharding across {workers} worker process(es)")
            }
        )),
    )?;

    // Shard misses round-robin and run the worker fleet. Keys (not
    // specs) cross the process boundary; workers re-plan from ids.
    let mut simulated = 0usize;
    if !misses.is_empty() {
        let mut shards: Vec<Vec<String>> = vec![Vec::new(); workers];
        for (i, spec) in misses.iter().enumerate() {
            shards[i % workers].push(spec.key().to_string());
        }
        let exe = match &opts.worker_exe {
            Some(p) => p.clone(),
            None => std::env::current_exe()?,
        };
        let assignment_ids = req.ids.clone();
        let outcomes: Mutex<WorkerHarvest> = Mutex::new(WorkerHarvest::default());
        std::thread::scope(|scope| {
            for (widx, shard) in shards.iter().enumerate() {
                let exe = &exe;
                let ids = &assignment_ids;
                let outcomes = &outcomes;
                let writer = Arc::clone(writer);
                let quick = req.quick;
                scope.spawn(move || {
                    let got = run_worker(exe, quick, ids, shard, widx, &writer);
                    let mut all = outcomes.lock().unwrap_or_else(|e| e.into_inner());
                    all.reported.extend(got.reported);
                    all.synthesized.extend(got.synthesized);
                });
            }
        });
        let collected = outcomes.into_inner().unwrap_or_else(|e| e.into_inner());
        simulated = collected.reported.len();
        // Only outcomes a worker actually reported over the protocol
        // are cached: those are deterministic properties of
        // (spec, code). Synthesized entries stand in for environmental
        // failures (spawn failure, torn pipe, a killed worker) — they
        // go to the client but never into the store, or one transient
        // crash would poison every future warm run under this key.
        for (key, outcome) in collected.reported {
            if let Some(store) = opts.store.as_deref() {
                if let Err(e) = store.put(&key, &outcome) {
                    eprintln!("repro --serve: store append failed for {key}: {e}");
                }
            }
            runs.insert(key, outcome);
        }
        for (key, outcome) in collected.synthesized {
            runs.insert(key, outcome);
        }
    }

    // Assemble and stream. Partial failures render like local repro:
    // assembled experiments print, broken ones report their error.
    let mut broken = 0usize;
    let mut failed = 0usize;
    for plan in plans {
        match plan.assemble(&runs) {
            Ok(exp) => send(writer, &ServerMsg::Output(exp.render()))?,
            Err(e) => {
                broken += 1;
                send(
                    writer,
                    &ServerMsg::Progress(format!("experiment not assembled: {e}")),
                )?;
            }
        }
    }
    for spec in &unique {
        if let Some(outcome) = runs.outcome(spec.key()) {
            if !outcome.is_ok() {
                failed += 1;
            }
        }
    }
    send(
        writer,
        &ServerMsg::Output(format!(
            "serve: {} unique run(s), {hits} hit(s), {simulated} simulated, {failed} failed",
            unique.len()
        )),
    )?;
    let exit_code = u8::from(broken > 0 || failed > 0);
    send(writer, &ServerMsg::Done { exit_code })
}

/// What one worker child produced, split by provenance: `reported`
/// outcomes arrived over the stdio protocol (deterministic properties
/// of the run, safe to cache), while `synthesized` entries were
/// fabricated by the server for keys the worker never answered
/// (environmental failures — safe to serve, never to cache).
#[derive(Default)]
struct WorkerHarvest {
    reported: Vec<(String, RunOutcome)>,
    synthesized: Vec<(String, RunOutcome)>,
}

/// Spawns one worker child, feeds it its assignment, forwards its
/// progress to the client, and returns its results. A worker that
/// dies mid-shard yields a synthesized [`RunOutcome::Panicked`] for
/// every assigned key it never reported — process death is just
/// another row in the outcome table.
fn run_worker(
    exe: &Path,
    quick: bool,
    ids: &[String],
    keys: &[String],
    widx: usize,
    writer: &Arc<Mutex<UnixStream>>,
) -> WorkerHarvest {
    let mut results = WorkerHarvest::default();
    let fail_rest = |results: &mut WorkerHarvest, why: String| {
        let have: BTreeSet<&str> = results
            .reported
            .iter()
            .chain(&results.synthesized)
            .map(|(k, _)| k.as_str())
            .collect();
        let missing: Vec<String> = keys
            .iter()
            .filter(|k| !have.contains(k.as_str()))
            .cloned()
            .collect();
        for key in missing {
            results
                .synthesized
                .push((key, RunOutcome::Panicked(why.clone())));
        }
    };

    let child = Command::new(exe)
        .arg("--worker")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(e) => {
            fail_rest(&mut results, format!("worker {widx} failed to spawn: {e}"));
            return results;
        }
    };

    // Feed the assignment and close stdin so the worker sees EOF.
    if let Some(mut stdin) = child.stdin.take() {
        if write_frame(&mut stdin, &encode_assignment(quick, ids, keys)).is_err() {
            let _ = child.kill();
            let _ = child.wait();
            fail_rest(
                &mut results,
                format!("worker {widx} rejected its assignment"),
            );
            return results;
        }
    }

    if let Some(mut stdout) = child.stdout.take() {
        loop {
            match read_frame(&mut stdout) {
                Ok(Some(frame)) => match WorkerMsg::decode(&frame) {
                    Ok(WorkerMsg::Progress(line)) => {
                        let _ = send(
                            writer,
                            &ServerMsg::Progress(format!("[worker {widx}] {line}")),
                        );
                    }
                    Ok(WorkerMsg::Result { key, outcome }) => {
                        results.reported.push((key, *outcome));
                    }
                    Err(e) => {
                        fail_rest(
                            &mut results,
                            format!("worker {widx} sent an undecodable frame: {e}"),
                        );
                        let _ = child.kill();
                        break;
                    }
                },
                Ok(None) => break, // clean EOF
                Err(e) => {
                    fail_rest(
                        &mut results,
                        format!("worker {widx} pipe broke mid-frame: {e}"),
                    );
                    let _ = child.kill();
                    break;
                }
            }
        }
    }

    match child.wait() {
        Ok(status) if status.success() => {
            fail_rest(
                &mut results,
                format!("worker {widx} exited cleanly without reporting"),
            );
        }
        Ok(status) => {
            fail_rest(&mut results, format!("worker {widx} died: {status}"));
        }
        Err(e) => {
            fail_rest(&mut results, format!("worker {widx} unwaitable: {e}"));
        }
    }
    results
}

// ---------------------------------------------------------------------
// Client role
// ---------------------------------------------------------------------

/// Sends one request to a running daemon and streams the response:
/// progress to stderr, output to stdout. Returns the exit code the
/// server reported.
///
/// # Errors
/// Connection or protocol failures (a refused socket, a torn stream).
pub fn request(socket: &Path, req: &Request) -> std::io::Result<i32> {
    let mut stream = UnixStream::connect(socket)?;
    write_frame(&mut stream, &req.encode())?;
    stream.flush()?;
    loop {
        let Some(frame) = read_frame(&mut stream)? else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the stream before Done",
            ));
        };
        match ServerMsg::decode(&frame)? {
            ServerMsg::Progress(line) => eprintln!("{line}"),
            ServerMsg::Output(text) => println!("{text}"),
            ServerMsg::Error(e) => {
                eprintln!("repro: server error: {e}");
                return Ok(1);
            }
            ServerMsg::Done { exit_code } => return Ok(i32::from(exit_code)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_codec_roundtrips() {
        let reqs = vec![
            Request::Plan(PlanRequest {
                ids: vec!["fig8".to_string(), "table2".to_string()],
                quick: true,
                jobs: 4,
            }),
            Request::Plan(PlanRequest {
                ids: Vec::new(),
                quick: false,
                jobs: 0,
            }),
            Request::Shutdown,
        ];
        for req in reqs {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
        assert!(Request::decode(&[9]).is_err());
    }

    #[test]
    fn server_msg_codec_roundtrips() {
        let msgs = vec![
            ServerMsg::Progress("p".to_string()),
            ServerMsg::Output("o".to_string()),
            ServerMsg::Done { exit_code: 1 },
            ServerMsg::Error("e".to_string()),
        ];
        for msg in msgs {
            let bytes = msg.encode();
            assert_eq!(ServerMsg::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn assignment_codec_roundtrips() {
        let ids = vec!["fig8".to_string()];
        let keys = vec!["a|b|c".to_string(), "d|e|f".to_string()];
        let bytes = encode_assignment(true, &ids, &keys);
        let (quick, got_ids, got_keys) = decode_assignment(&bytes).unwrap();
        assert!(quick);
        assert_eq!(got_ids, ids);
        assert_eq!(got_keys, keys);
    }

    #[test]
    fn plan_ids_empty_means_full_paper_set() {
        let (plans, unique) = plan_ids(&[], true).unwrap();
        assert_eq!(plans.len(), ALL_IDS.len());
        assert!(!unique.is_empty());
        // Re-planning is deterministic: the worker sees exactly the
        // keys the server sharded.
        let (_, again) = plan_ids(&[], true).unwrap();
        let a: Vec<&str> = unique.iter().map(|s| s.key()).collect();
        let b: Vec<&str> = again.iter().map(|s| s.key()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn plan_ids_rejects_unknown_experiments() {
        assert!(plan_ids(&["not-a-real-id".to_string()], true).is_err());
    }
}
