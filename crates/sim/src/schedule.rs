//! Multi-tenant runtime scheduling of the reconfigurable fabric.
//!
//! The paper configures the fabric once, before the workload starts.
//! This module models the post-fabrication consequence of that design:
//! a fabric is a *slot*, and when several workloads time-share one core
//! the slot must be re-targeted at run time. [`ScheduledFabric`] wraps
//! one [`Fabric`] shared by every tenant and drives the swap protocol
//! ([`Fabric::begin_swap`]) from a phase detector:
//!
//! * **Phase signature.** A sliding window of the last
//!   [`PHASE_WINDOW`] retired PCs is scored against each tenant's watch
//!   set (its FST ∪ RST addresses) every [`DECIDE_EVERY`] retires. The
//!   tenant whose configuration would have snooped the most of the
//!   recent stream is the phase's owner.
//! * **Hysteresis.** A challenger must win [`HYSTERESIS`] consecutive
//!   decisions before a swap is requested, so prediction noise (or a
//!   corrupted signature) cannot thrash the slot: every swap costs a
//!   drain window plus a partial-reconfiguration load
//!   (`pfm_fpga::reconfig_cycles`).
//! * **ROI context.** A swap evicts the armed ROI context together
//!   with the outgoing bitstream: the incoming tenant's Agents stay
//!   inert until its next `begin_roi` retires, which realigns core and
//!   component through the normal SquashYounger protocol. (Workloads
//!   mark their natural phase boundaries — astar's fill starts, bfs's
//!   level tops — as re-arm points, so a swapped-in tenant recovers
//!   within one phase rather than one whole run.)
//!
//! Scheduling decisions and mid-swap faults change *when* the Agents
//! intervene, never what the core commits: the committed-stream
//! checksum of every tenant is bit-identical across scheduling modes
//! (the context-switch experiment's graceful-degradation gate).

use pfm_core::{
    FabricLoad, FabricLoadResult, FetchOverride, PfmHooks, RetireDirective, RetireInfo, SquashKind,
};
use pfm_fabric::{
    CustomComponent, Fabric, FabricIo, FabricParams, FabricStats, FaultPlan, FaultRng,
    FaultScenario, Residency,
};
use pfm_fpga::{designs, reconfig_cycles};
use pfm_workloads::UseCase;
use std::collections::{BTreeSet, VecDeque};

/// Retired-PC sliding window the phase signature is computed over.
pub const PHASE_WINDOW: usize = 64;

/// Retires between scheduling decisions.
pub const DECIDE_EVERY: u64 = 256;

/// Consecutive decisions a challenger tenant must win before the
/// scheduler swaps the slot to it.
pub const HYSTERESIS: u32 = 3;

/// Placeholder occupying the slot while no tenant is resident.
struct IdleComponent;

impl CustomComponent for IdleComponent {
    fn tick(&mut self, _io: &mut FabricIo<'_>) {}
    fn name(&self) -> &'static str {
        "idle"
    }
}

/// Partial-reconfiguration load latency (core cycles) for a tenant,
/// derived from the FPGA resource model: tenants whose names map to a
/// known design use its resource estimate, anything else pays the
/// astar (4wide) cost (the largest Table 4 design — a conservative
/// default).
pub fn load_cycles_for(name: &str) -> u64 {
    let design = match name {
        n if n.starts_with("bfs") => designs::bfs(),
        n if n.starts_with("libquantum") => designs::libquantum(),
        n if n.starts_with("astar-alt") => designs::astar_alt(),
        _ => designs::astar_4wide(),
    };
    reconfig_cycles(&design.resources())
}

/// One workload competing for the fabric slot: its configuration
/// bitstream (snoop tables + component factory, carried by the
/// [`UseCase`]) plus the modeled cost of loading it.
pub struct Tenant {
    uc: UseCase,
    /// FST ∪ RST addresses — the PCs this tenant's configuration would
    /// snoop, and therefore the alphabet of its phase signature.
    watch: BTreeSet<u64>,
    /// Partial-reconfiguration load window in core cycles.
    load_cycles: u64,
}

impl Tenant {
    /// Wraps a use-case as a schedulable tenant with an explicit load
    /// cost (use [`load_cycles_for`] for the resource-derived value, or
    /// `1` for the zero-cost oracle arm).
    pub fn new(uc: UseCase, load_cycles: u64) -> Tenant {
        let mut watch: BTreeSet<u64> = uc.fst.iter().copied().collect();
        watch.extend(uc.rst.keys().copied());
        Tenant {
            uc,
            watch,
            load_cycles: load_cycles.max(1),
        }
    }

    /// Tenant display name (the use-case's).
    pub fn name(&self) -> &str {
        &self.uc.name
    }
}

/// A [`PfmHooks`] adapter sharing one fabric slot between tenants.
///
/// The wrapped cores each count cycles from zero, so the adapter keeps
/// a single monotonic global cycle (advanced once per `begin_cycle`)
/// and forwards *that* to the fabric — the fabric's delay pipes and RF
/// clock phase never see time run backwards at a slice switch. All
/// in-flight fabric transients are flushed at slice boundaries
/// ([`Fabric::flush_transients`]), exactly as the swap protocol's drain
/// does.
pub struct ScheduledFabric {
    fabric: Fabric,
    tenants: Vec<Tenant>,
    /// Tenant whose configuration occupies the slot (valid whenever
    /// `slot_filled`).
    resident: usize,
    slot_filled: bool,
    /// Tenant whose program is currently running on the core.
    active: usize,
    /// Pinned slots never re-decide (the dead-wrong-component arm).
    pinned: bool,
    /// Zero-cost oracle swaps: skip the drain window, load in 1 cycle.
    zero_cost: bool,
    window: VecDeque<u64>,
    since_decision: u64,
    /// Challenger streak: (tenant index, consecutive decisions won).
    streak: (usize, u32),
    global_cycle: u64,
    decisions: u64,
    corrupted_decisions: u64,
    /// `corrupt-signature` fault state (scheduler-level; the fabric
    /// handles the other mid-swap scenarios).
    corrupt: Option<(FaultPlan, FaultRng)>,
}

impl ScheduledFabric {
    /// A scheduled slot over `tenants`, initially empty: the first
    /// phase decision loads the first winner (an `Empty → Loading`
    /// transition, no drain).
    pub fn new(tenants: Vec<Tenant>, params: FabricParams, zero_cost: bool) -> ScheduledFabric {
        assert!(!tenants.is_empty(), "a scheduled fabric needs tenants");
        let mut fabric = Fabric::new(
            params,
            BTreeSet::new(),
            std::collections::BTreeMap::new(),
            Box::new(IdleComponent),
        );
        fabric.unload();
        ScheduledFabric {
            fabric,
            tenants,
            resident: 0,
            slot_filled: false,
            active: 0,
            pinned: false,
            zero_cost,
            window: VecDeque::with_capacity(PHASE_WINDOW),
            since_decision: 0,
            streak: (0, 0),
            global_cycle: 0,
            decisions: 0,
            corrupted_decisions: 0,
            corrupt: None,
        }
    }

    /// A pinned slot: `decoy`'s configuration is made resident up
    /// front and the scheduler never re-decides — the
    /// dead-wrong-component arm of the context-switch experiment.
    pub fn pinned(tenants: Vec<Tenant>, decoy: &UseCase, params: FabricParams) -> ScheduledFabric {
        let mut sf = ScheduledFabric::new(tenants, params, false);
        sf.fabric = Fabric::new(
            sf.fabric.params().clone(),
            decoy.fst.clone(),
            decoy.rst.clone(),
            decoy.component(),
        );
        sf.pinned = true;
        sf.slot_filled = true;
        sf
    }

    /// Arms a mid-swap fault scenario. `corrupt-signature` perturbs
    /// the scheduler's own decisions; the fabric-level scenarios
    /// (abort, load spike, stale drain) are forwarded to
    /// [`Fabric::set_swap_faults`].
    pub fn arm_faults(&mut self, plan: FaultPlan) {
        if plan.scenario == FaultScenario::CorruptSignature {
            let rng = FaultRng::new(plan.seed);
            self.corrupt = Some((plan, rng));
        } else {
            self.fabric.set_swap_faults(plan);
        }
    }

    /// Declares a context switch: tenant `t`'s program runs on the
    /// core from now on. Flushes in-flight fabric transients (the
    /// packets reference the outgoing program's speculation) and resets
    /// the phase window — the new phase argues for itself.
    pub fn switch_to(&mut self, t: usize) {
        self.active = t;
        self.fabric.flush_transients();
        self.window.clear();
        self.since_decision = 0;
        self.streak = (self.resident, 0);
    }

    /// The shared fabric's statistics (swaps, reconfiguration cycles,
    /// snoop counters).
    pub fn stats(&self) -> &FabricStats {
        self.fabric.stats()
    }

    /// Scheduling decisions taken.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Decisions whose signature was corrupted by an armed
    /// `corrupt-signature` fault.
    pub fn corrupted_decisions(&self) -> u64 {
        self.corrupted_decisions
    }

    /// Current residency of the underlying fabric.
    pub fn residency(&self) -> Residency {
        self.fabric.residency()
    }

    /// Scores the window against every tenant's watch set and swaps if
    /// a challenger has deserved the slot for [`HYSTERESIS`] straight
    /// decisions.
    fn decide(&mut self) {
        self.decisions += 1;
        let mut best = 0usize;
        let mut best_score = 0u32;
        for (i, t) in self.tenants.iter().enumerate() {
            let score = self.window.iter().filter(|pc| t.watch.contains(pc)).count() as u32;
            if score > best_score {
                best = i;
                best_score = score;
            }
        }
        let mut winner = if best_score == 0 {
            // Nothing snooped recently: the incumbent keeps the slot.
            if self.slot_filled {
                self.resident
            } else {
                best
            }
        } else {
            best
        };
        if let Some((plan, rng)) = self.corrupt.as_mut() {
            if rng.chance(plan.rate) {
                winner = (winner + 1) % self.tenants.len();
                self.corrupted_decisions += 1;
            }
        }
        if self.slot_filled && winner == self.resident {
            self.streak = (winner, 0);
            return;
        }
        if self.streak.0 == winner {
            self.streak.1 = self.streak.1.saturating_add(1);
        } else {
            self.streak = (winner, 1);
        }
        if self.streak.1 >= HYSTERESIS && self.request_swap(winner) {
            self.resident = winner;
            self.slot_filled = true;
            self.streak = (winner, 0);
        }
    }

    fn request_swap(&mut self, t: usize) -> bool {
        let tenant = &self.tenants[t];
        let load = if self.zero_cost {
            1
        } else {
            tenant.load_cycles
        };
        if self.zero_cost {
            // Oracle arm: drop whatever is mid-flight and reload
            // instantly, so swaps are effectively free.
            self.fabric.unload();
        }
        self.fabric.begin_swap(
            tenant.uc.fst.clone(),
            tenant.uc.rst.clone(),
            tenant.uc.component(),
            load,
        )
    }
}

impl PfmHooks for ScheduledFabric {
    fn begin_cycle(&mut self, _cycle: u64, lane_busy: [bool; pfm_core::NUM_LANES]) {
        self.global_cycle += 1;
        self.fabric.begin_cycle(self.global_cycle, lane_busy);
    }

    fn end_cycle(&mut self, _cycle: u64) {
        self.fabric.end_cycle(self.global_cycle);
    }

    fn fetch_inst(&mut self, seq: u64, pc: u64, is_cond_branch: bool) -> FetchOverride {
        self.fabric.fetch_inst(seq, pc, is_cond_branch)
    }

    fn on_retire(&mut self, info: &RetireInfo<'_>) -> RetireDirective {
        if self.window.len() == PHASE_WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(info.pc);
        if !self.pinned {
            self.since_decision += 1;
            if self.since_decision >= DECIDE_EVERY {
                self.since_decision = 0;
                self.decide();
            }
        }
        self.fabric.on_retire(info)
    }

    fn retire_stalled(&mut self) -> bool {
        self.fabric.retire_stalled()
    }

    fn on_squash(&mut self, kind: SquashKind, boundary: u64, _cycle: u64) {
        self.fabric.on_squash(kind, boundary, self.global_cycle);
    }

    fn pop_load(&mut self) -> Option<FabricLoad> {
        self.fabric.pop_load()
    }

    fn load_result(&mut self, id: u64, result: FabricLoadResult, _cycle: u64) {
        self.fabric.load_result(id, result, self.global_cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecases;

    fn tenants() -> Vec<Tenant> {
        vec![
            Tenant::new(usecases::astar_custom(), 100),
            Tenant::new(usecases::bfs_roads(), 100),
        ]
    }

    #[test]
    fn load_cycles_map_to_design_sizes() {
        let astar = load_cycles_for("astar");
        let bfs = load_cycles_for("bfs-roads");
        let libq = load_cycles_for("libquantum");
        assert!(astar > bfs, "astar (4wide) outweighs the bfs design");
        assert!(bfs > libq, "bfs outweighs the tiny libq prefetcher");
        assert!(libq > 2_048, "every load pays the setup cost");
    }

    #[test]
    fn scheduler_starts_empty_and_pinned_starts_resident() {
        let sf = ScheduledFabric::new(tenants(), FabricParams::paper_default(), false);
        assert_eq!(sf.residency(), Residency::Empty);
        let decoy = usecases::libquantum_scale();
        let pinned = ScheduledFabric::pinned(tenants(), &decoy, FabricParams::paper_default());
        assert_eq!(pinned.residency(), Residency::Resident);
        assert!(pinned.pinned);
    }

    #[test]
    fn hysteresis_requires_consecutive_winning_decisions() {
        let mut sf = ScheduledFabric::new(tenants(), FabricParams::paper_default(), true);
        // Fill the window with tenant 0's watched PCs.
        let pc = *sf.tenants[0].watch.iter().next().expect("astar watch set");
        for _ in 0..PHASE_WINDOW {
            sf.window.push_back(pc);
        }
        sf.decide();
        sf.decide();
        assert_eq!(sf.stats().swaps, 0, "two wins are below hysteresis");
        sf.decide();
        assert_eq!(sf.stats().swaps, 1, "third consecutive win swaps");
        assert!(sf.slot_filled);
        assert_eq!(sf.resident, 0);
        // Once resident, further wins by the incumbent change nothing.
        sf.decide();
        assert_eq!(sf.stats().swaps, 1);
        assert_eq!(sf.decisions(), 4);
    }

    #[test]
    fn corrupt_signature_perturbs_decisions_deterministically() {
        let run = || {
            let mut sf = ScheduledFabric::new(tenants(), FabricParams::paper_default(), true);
            sf.arm_faults(
                FaultPlan::new(FaultScenario::CorruptSignature, 0xC4A0_5EED).with_rate(1000),
            );
            let pc = *sf.tenants[0].watch.iter().next().unwrap();
            for _ in 0..PHASE_WINDOW {
                sf.window.push_back(pc);
            }
            for _ in 0..6 {
                sf.decide();
            }
            (sf.corrupted_decisions(), sf.resident, sf.stats().swaps)
        };
        let (corrupted, resident, swaps) = run();
        assert!(corrupted > 0, "rate-1000 corruption must fire");
        assert_eq!(
            resident, 1,
            "corrupted signature steers the slot to the wrong tenant"
        );
        assert!(swaps >= 1);
        assert_eq!(
            run(),
            (corrupted, resident, swaps),
            "seed-keyed determinism"
        );
    }
}
