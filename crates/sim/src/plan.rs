//! Declarative run plans: experiments *describe* the simulation runs
//! they need and how to turn completed runs into rows; the executor
//! ([`crate::exec`]) decides what actually gets simulated, once, and
//! on how many threads.
//!
//! The architecture is plan → execute → assemble:
//!
//! 1. **Plan.** Each experiment builds an [`ExperimentPlan`]: a list
//!    of keyed [`RunSpec`]s (use-case factory + run configuration +
//!    optional fabric parameters + optional fault plan) plus a pure
//!    assembly closure.
//! 2. **Execute.** The executor collects the specs of every requested
//!    experiment, deduplicates them by [`RunSpec::key`] (the shared
//!    astar baseline is requested by six experiments but simulated
//!    once), and runs the unique set across worker threads, isolating
//!    each run behind `catch_unwind` and recording a typed
//!    [`RunOutcome`].
//! 3. **Assemble.** Each plan's closure maps the completed
//!    [`RunResult`]s to [`Row`]s — no simulation happens here, so
//!    assembly is cheap, deterministic, and order-independent. Lookup
//!    failures are typed [`PlanError`]s, not panics, so one failed run
//!    fails its experiments, never the whole suite.
//!
//! Dedup correctness rests on the canonical content keys introduced
//! across the stack: `UseCaseFactory::key` (pfm-workloads),
//! `CoreConfig::key` (pfm-core), `HierarchyConfig::key` (pfm-mem),
//! `FabricParams::key` (pfm-fabric) and `FaultPlan::key` (chaos runs)
//! each cover *every* field of their layer, so equal keys imply
//! behaviourally identical runs.

use crate::experiments::{Experiment, Row};
use crate::runner::{
    run_baseline, run_chaos, run_context_switch, run_functional, run_interval, run_pfm, CtxMode,
    RunConfig, RunError, RunResult,
};
use pfm_fabric::{FabricParams, FaultPlan};
use pfm_isa::snap::{content_key, Dec, Enc};
use pfm_workloads::UseCaseFactory;
use std::collections::HashMap;
use std::sync::Arc;

/// A typed planning/assembly failure. Everything the old panicking
/// paths could hit is representable here, so `repro` can report and
/// exit non-zero instead of aborting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// No experiment with this id exists.
    UnknownExperiment {
        /// The requested id.
        id: String,
    },
    /// An assembly closure asked for a run that was never executed
    /// (not planned, or abandoned after an earlier failure without
    /// `--keep-going`).
    MissingRun {
        /// The requested run key.
        key: String,
    },
    /// An assembly closure asked for a run that was executed but did
    /// not produce a result.
    RunFailed {
        /// The requested run key.
        key: String,
        /// Human-readable outcome (failure, panic, timeout).
        outcome: String,
    },
    /// A chaos run's committed architectural checksum differed from
    /// its fault-free counterpart — the graceful-degradation invariant
    /// is broken.
    ArchMismatch {
        /// Use-case name.
        name: String,
        /// Fault scenario injected.
        scenario: &'static str,
        /// Checksum of the fault-free run.
        expected: u64,
        /// Checksum of the faulty run.
        actual: u64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownExperiment { id } => write!(f, "unknown experiment id `{id}`"),
            PlanError::MissingRun { key } => {
                write!(f, "run `{key}` was not part of the executed plan")
            }
            PlanError::RunFailed { key, outcome } => {
                write!(f, "run `{key}` did not complete: {outcome}")
            }
            PlanError::ArchMismatch {
                name,
                scenario,
                expected,
                actual,
            } => write!(
                f,
                "ARCHITECTURAL STATE CORRUPTED: {name} under {scenario} committed checksum \
                 {actual:#018x}, fault-free run committed {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Which execution speed a [`RunSpec`] runs at. Detailed specs
/// cycle-simulate on the out-of-order core; functional specs retire the
/// same committed stream on the pre-decoded fast executor; interval
/// specs restore an architectural snapshot and cycle-simulate a
/// bounded detailed window (the sampled-run building block).
#[derive(Clone, Debug)]
enum Flavor {
    /// Full detailed simulation from reset (baseline/PFM/chaos).
    Detailed,
    /// Functional-only execution on [`pfm_isa::FastExec`].
    Functional,
    /// Detailed simulation of one sampling interval, started from an
    /// architectural snapshot.
    Interval {
        /// Machine snapshot captured by the functional fast-forward.
        /// Shared (`Arc`) so cloning specs across executor threads does
        /// not copy megabytes of memory pages.
        snapshot: Arc<Vec<u8>>,
        /// Detailed warm-up instructions retired (and diffed out)
        /// before measurement starts.
        warmup: u64,
    },
    /// Two tenants time-sharing one fabric slot: the spec's use-case
    /// and `second` alternate on the core while the slot is managed
    /// per `mode` (the spec's fabric params configure the shared slot,
    /// its fault plan arms a mid-swap scenario).
    ContextSwitch {
        /// The second tenant.
        second: UseCaseFactory,
        /// How the shared slot is managed.
        mode: CtxMode,
    },
}

/// One fully-specified, deduplicatable simulation run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    usecase: UseCaseFactory,
    rc: RunConfig,
    fabric: Option<FabricParams>,
    fault: Option<FaultPlan>,
    flavor: Flavor,
    key: String,
}

impl RunSpec {
    /// A baseline run (no fabric attached).
    pub fn baseline(usecase: UseCaseFactory, rc: &RunConfig) -> RunSpec {
        let key = format!("{}|baseline|{}", usecase.key(), rc.key());
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: None,
            fault: None,
            flavor: Flavor::Detailed,
            key,
        }
    }

    /// A functional-only run: the same use-case and instruction budget,
    /// retired on the pre-decoded fast executor instead of the detailed
    /// core. Produces the same committed-stream checksum as its
    /// detailed counterparts, at interpreter speed.
    pub fn functional(usecase: UseCaseFactory, rc: &RunConfig) -> RunSpec {
        let key = format!("{}|functional|{}", usecase.key(), rc.key());
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: None,
            fault: None,
            flavor: Flavor::Functional,
            key,
        }
    }

    /// A detailed sampling interval: restore `snapshot` (captured at
    /// retired-instruction `position` by the functional fast-forward),
    /// retire `warmup` instructions to warm microarchitectural state,
    /// then measure `rc.max_instrs` further instructions on the
    /// baseline core. The snapshot's content hash is folded into the
    /// key, so intervals at the same position of *different* workload
    /// states never dedup.
    pub fn interval(
        usecase: UseCaseFactory,
        snapshot: Arc<Vec<u8>>,
        position: u64,
        warmup: u64,
        rc: &RunConfig,
    ) -> RunSpec {
        let key = format!(
            "{}|interval@{position}+w{warmup}|snap{:016x}|{}",
            usecase.key(),
            content_key(&snapshot),
            rc.key()
        );
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: None,
            fault: None,
            flavor: Flavor::Interval { snapshot, warmup },
            key,
        }
    }

    /// A PFM run with the given fabric parameters.
    pub fn pfm(usecase: UseCaseFactory, params: FabricParams, rc: &RunConfig) -> RunSpec {
        let key = format!("{}|{}|{}", usecase.key(), params.key(), rc.key());
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: Some(params),
            fault: None,
            flavor: Flavor::Detailed,
            key,
        }
    }

    /// A chaos run: PFM with the component wrapped in the deterministic
    /// fault injector. The fault plan is part of the key, so chaos runs
    /// never dedup against fault-free runs (and distinct scenarios,
    /// seeds and rates never dedup against each other).
    pub fn chaos(
        usecase: UseCaseFactory,
        params: FabricParams,
        plan: FaultPlan,
        rc: &RunConfig,
    ) -> RunSpec {
        let key = format!(
            "{}|{}|{}|{}",
            usecase.key(),
            params.key(),
            rc.key(),
            plan.key()
        );
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: Some(params),
            fault: Some(plan),
            flavor: Flavor::Detailed,
            key,
        }
    }

    /// A context-switch run: this use-case and `second` alternate on
    /// one core, sharing a single fabric slot managed per `mode`.
    /// `params` configures the shared slot (`None` only for
    /// [`CtxMode::NoFabric`]); `fault` arms a seed-keyed mid-swap
    /// scenario. Mode, params and fault plan are all part of the key,
    /// so arms of the experiment never dedup against each other.
    pub fn context_switch(
        usecase: UseCaseFactory,
        second: UseCaseFactory,
        mode: CtxMode,
        params: Option<FabricParams>,
        fault: Option<FaultPlan>,
        rc: &RunConfig,
    ) -> RunSpec {
        let mut key = format!(
            "ctx({}+{})|{}|{}",
            usecase.key(),
            second.key(),
            mode.key(params.as_ref()),
            rc.key()
        );
        if let Some(plan) = fault {
            key.push_str(&format!("|{}", plan.key()));
        }
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: params,
            fault,
            flavor: Flavor::ContextSwitch { second, mode },
            key,
        }
    }

    /// Stable content key: two specs with equal keys simulate the
    /// exact same thing (and are executed once).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Display name of the underlying use-case.
    pub fn name(&self) -> &str {
        self.usecase.name()
    }

    /// The configured forward-progress watchdog, scaled by `factor`
    /// (the executor's raised retry cap).
    pub(crate) fn raised_watchdog(&self, factor: u64) -> Option<u64> {
        self.rc.commit_watchdog.map(|w| w.saturating_mul(factor))
    }

    /// Builds the use-case and performs the run. Deterministic:
    /// calling this any number of times, on any thread, yields
    /// identical statistics.
    ///
    /// # Errors
    /// Returns the structured [`RunError`] (functional fault, cycle
    /// cap, or forward-progress watchdog).
    pub fn execute(&self) -> Result<RunResult, RunError> {
        self.execute_with_watchdog(self.rc.commit_watchdog)
    }

    /// [`RunSpec::execute`] with the forward-progress watchdog
    /// overridden (the executor's bounded-retry seam).
    pub(crate) fn execute_with_watchdog(
        &self,
        commit_watchdog: Option<u64>,
    ) -> Result<RunResult, RunError> {
        let uc = self.usecase.build();
        let mut rc = self.rc.clone();
        rc.commit_watchdog = commit_watchdog;
        match &self.flavor {
            Flavor::Functional => return run_functional(&uc, &rc),
            Flavor::Interval { snapshot, warmup } => {
                return run_interval(&uc, snapshot, *warmup, &rc)
            }
            Flavor::ContextSwitch { second, mode } => {
                let b = second.build();
                return run_context_switch(&uc, &b, mode, self.fabric.clone(), self.fault, &rc);
            }
            Flavor::Detailed => {}
        }
        match (&self.fabric, self.fault) {
            (None, _) => run_baseline(&uc, &rc),
            (Some(params), None) => run_pfm(&uc, params.clone(), &rc),
            (Some(params), Some(plan)) => run_chaos(&uc, params.clone(), plan, &rc),
        }
    }
}

/// How one executed run ended. The executor's outcome lattice:
/// `Ok` ⊐ `Failed` (structured simulator error) ⊐ `TimedOut` (hang
/// caught by watchdog/cap, after bounded retry) ⊐ `Panicked` (caught
/// unwind — the run died, the suite did not).
// Ok(RunResult) dwarfs the error variants, but it is also the
// overwhelmingly common case — boxing every successful result to
// shrink the rare failures would be a pessimization.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// The run completed and produced statistics.
    Ok(RunResult),
    /// The run failed with a structured, non-hang simulator error.
    Failed(RunError),
    /// The run panicked; the payload message was captured.
    Panicked(String),
    /// The run hung (forward-progress watchdog or cycle cap), possibly
    /// after a retry at a raised watchdog cap.
    TimedOut {
        /// The final hang error.
        error: RunError,
        /// Retries performed before giving up.
        retries: u32,
    },
}

impl RunOutcome {
    /// Whether the outcome reflects the *environment* rather than the
    /// spec: a hang verdict depends on the watchdog budget and retry
    /// factor in effect (a slower machine or tighter cap trips where
    /// another would finish), and a panic payload can describe a local
    /// condition of the host process. Environmental outcomes must
    /// never be persisted to the result store — a warm re-run has to
    /// re-simulate and reach its own verdict. `Ok` and structured
    /// `Failed` are deterministic facts about the spec and cache fine.
    pub fn is_environmental(&self) -> bool {
        matches!(self, RunOutcome::Panicked(_) | RunOutcome::TimedOut { .. })
    }

    /// Serializes the outcome (tag byte + payload) for the result
    /// store and the worker-process protocol. Deterministic failures
    /// serialize too: a structured simulator error replays identically
    /// and is as cacheable as a success.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        match self {
            RunOutcome::Ok(r) => {
                e.u8(0);
                r.snapshot_encode(e);
            }
            RunOutcome::Failed(err) => {
                e.u8(1);
                err.snapshot_encode(e);
            }
            RunOutcome::Panicked(msg) => {
                e.u8(2);
                e.str(msg);
            }
            RunOutcome::TimedOut { error, retries } => {
                e.u8(3);
                error.snapshot_encode(e);
                e.u32(*retries);
            }
        }
    }

    /// Decodes an outcome serialized by [`RunOutcome::snapshot_encode`].
    ///
    /// # Errors
    /// [`pfm_isa::snap::SnapError`] on a truncated or corrupt stream.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<RunOutcome, pfm_isa::snap::SnapError> {
        match d.u8()? {
            0 => Ok(RunOutcome::Ok(RunResult::snapshot_decode(d)?)),
            1 => Ok(RunOutcome::Failed(RunError::snapshot_decode(d)?)),
            2 => Ok(RunOutcome::Panicked(d.str()?.to_string())),
            3 => Ok(RunOutcome::TimedOut {
                error: RunError::snapshot_decode(d)?,
                retries: d.u32()?,
            }),
            _ => Err(pfm_isa::snap::SnapError::Corrupt("RunOutcome tag")),
        }
    }

    /// The completed result, if the run succeeded.
    pub fn as_ok(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the run completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Ok(_))
    }

    /// One-line human-readable description (failure tables, errors).
    pub fn describe(&self) -> String {
        match self {
            RunOutcome::Ok(_) => "ok".to_string(),
            RunOutcome::Failed(e) => format!("failed: {e}"),
            RunOutcome::Panicked(msg) => format!("panicked: {msg}"),
            RunOutcome::TimedOut { error, retries } => {
                format!("timed out ({retries} retry(ies)): {error}")
            }
        }
    }
}

/// Executed runs, indexed by [`RunSpec::key`]. Holds the full
/// [`RunOutcome`] of every run the executor touched, successful or
/// not.
#[derive(Debug, Default)]
pub struct RunSet {
    runs: HashMap<String, RunOutcome>,
}

impl RunSet {
    pub(crate) fn insert(&mut self, key: String, outcome: RunOutcome) {
        self.runs.insert(key, outcome);
    }

    /// The completed run for `key`.
    ///
    /// # Errors
    /// [`PlanError::MissingRun`] if the run was never executed,
    /// [`PlanError::RunFailed`] if it was executed but did not produce
    /// a result.
    pub fn get(&self, key: &str) -> Result<&RunResult, PlanError> {
        match self.runs.get(key) {
            Some(RunOutcome::Ok(r)) => Ok(r),
            Some(outcome) => Err(PlanError::RunFailed {
                key: key.to_string(),
                outcome: outcome.describe(),
            }),
            None => Err(PlanError::MissingRun {
                key: key.to_string(),
            }),
        }
    }

    /// The raw outcome for `key`, if the executor touched it.
    pub fn outcome(&self, key: &str) -> Option<&RunOutcome> {
        self.runs.get(key)
    }

    /// Number of executed runs (any outcome).
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs executed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Handle to one requested run, returned while building a plan's spec
/// list and redeemed inside its assembly closure.
#[derive(Clone, Debug)]
pub struct RunHandle(String);

impl RunHandle {
    /// The completed run this handle refers to.
    ///
    /// # Errors
    /// See [`RunSet::get`].
    pub fn of<'a>(&self, runs: &'a RunSet) -> Result<&'a RunResult, PlanError> {
        runs.get(&self.0)
    }

    /// The underlying spec key.
    pub fn key(&self) -> &str {
        &self.0
    }
}

/// Accumulates the runs an experiment needs while handing back
/// [`RunHandle`]s for its assembly closure.
#[derive(Debug, Default)]
pub struct SpecSet {
    specs: Vec<RunSpec>,
}

impl SpecSet {
    /// Requests a baseline run.
    pub fn baseline(&mut self, uc: &UseCaseFactory, rc: &RunConfig) -> RunHandle {
        self.push(RunSpec::baseline(uc.clone(), rc))
    }

    /// Requests a PFM run.
    pub fn pfm(&mut self, uc: &UseCaseFactory, params: FabricParams, rc: &RunConfig) -> RunHandle {
        self.push(RunSpec::pfm(uc.clone(), params, rc))
    }

    /// Requests a chaos (fault-injected PFM) run.
    pub fn chaos(
        &mut self,
        uc: &UseCaseFactory,
        params: FabricParams,
        plan: FaultPlan,
        rc: &RunConfig,
    ) -> RunHandle {
        self.push(RunSpec::chaos(uc.clone(), params, plan, rc))
    }

    /// Requests a context-switch run (two tenants sharing a fabric
    /// slot).
    pub fn context_switch(
        &mut self,
        a: &UseCaseFactory,
        b: &UseCaseFactory,
        mode: CtxMode,
        params: Option<FabricParams>,
        fault: Option<FaultPlan>,
        rc: &RunConfig,
    ) -> RunHandle {
        self.push(RunSpec::context_switch(
            a.clone(),
            b.clone(),
            mode,
            params,
            fault,
            rc,
        ))
    }

    fn push(&mut self, spec: RunSpec) -> RunHandle {
        let handle = RunHandle(spec.key().to_string());
        self.specs.push(spec);
        handle
    }

    /// The accumulated specs.
    pub fn into_specs(self) -> Vec<RunSpec> {
        self.specs
    }
}

type AssembleFn = Box<dyn FnOnce(&RunSet) -> Result<Vec<Row>, PlanError> + Send>;

/// A planned (not yet executed) experiment: requested runs + pure
/// assembly.
pub struct ExperimentPlan {
    /// Paper identifier (e.g. `fig8`, `table2`).
    pub id: &'static str,
    /// Title as in the paper.
    pub title: &'static str,
    /// The paper's reported numbers, for side-by-side comparison.
    pub paper: &'static str,
    specs: Vec<RunSpec>,
    assemble: AssembleFn,
}

impl ExperimentPlan {
    /// Bundles a plan from its requested runs and assembly closure.
    pub fn new(
        id: &'static str,
        title: &'static str,
        paper: &'static str,
        specs: SpecSet,
        assemble: impl FnOnce(&RunSet) -> Result<Vec<Row>, PlanError> + Send + 'static,
    ) -> ExperimentPlan {
        ExperimentPlan {
            id,
            title,
            paper,
            specs: specs.into_specs(),
            assemble: Box::new(assemble),
        }
    }

    /// The runs this experiment needs (possibly overlapping other
    /// plans' — the executor deduplicates).
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Maps completed runs to the final experiment. Pure: no
    /// simulation happens here.
    ///
    /// # Errors
    /// Returns the assembly closure's [`PlanError`] if a needed run is
    /// missing, failed, or violated the chaos invariant.
    pub fn assemble(self, runs: &RunSet) -> Result<Experiment, PlanError> {
        Ok(Experiment {
            id: self.id,
            title: self.title,
            paper: self.paper,
            rows: (self.assemble)(runs)?,
        })
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("id", &self.id)
            .field("specs", &self.specs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecases;
    use pfm_fabric::FaultScenario;

    #[test]
    fn identical_specs_share_keys_and_distinct_specs_do_not() {
        let rc = RunConfig::test_scale();
        let uc = usecases::astar_custom_factory();
        let a = RunSpec::baseline(uc.clone(), &rc);
        let b = RunSpec::baseline(usecases::astar_custom_factory(), &rc);
        assert_eq!(a.key(), b.key());

        let pfm = RunSpec::pfm(uc.clone(), FabricParams::paper_default(), &rc);
        assert_ne!(a.key(), pfm.key());

        // Non-label fabric fields must be visible in the key.
        let mut tiny_mlb = FabricParams::paper_default();
        tiny_mlb.mlb_size = 2;
        let tiny = RunSpec::pfm(uc.clone(), tiny_mlb, &rc);
        assert_ne!(pfm.key(), tiny.key());

        // Run-config deltas must be visible in the key.
        let perf = RunSpec::baseline(uc, &rc.clone().perfect_bp());
        assert_ne!(a.key(), perf.key());
    }

    #[test]
    fn fault_plans_are_visible_in_spec_keys() {
        let rc = RunConfig::test_scale();
        let uc = usecases::astar_custom_factory();
        let params = FabricParams::paper_default();
        let pfm = RunSpec::pfm(uc.clone(), params.clone(), &rc);
        let mut keys = vec![pfm.key().to_string()];
        for sc in FaultScenario::ALL {
            let plan = FaultPlan::new(sc, 7);
            keys.push(
                RunSpec::chaos(uc.clone(), params.clone(), plan, &rc)
                    .key()
                    .to_string(),
            );
            let reseeded = FaultPlan::new(sc, 8);
            keys.push(
                RunSpec::chaos(uc.clone(), params.clone(), reseeded, &rc)
                    .key()
                    .to_string(),
            );
        }
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "chaos specs must never dedup");
    }

    #[test]
    fn runset_reports_missing_and_failed_runs_as_typed_errors() {
        let mut runs = RunSet::default();
        match runs.get("nope") {
            Err(PlanError::MissingRun { key }) => assert_eq!(key, "nope"),
            other => panic!("expected MissingRun, got {other:?}"),
        }
        runs.insert(
            "hung".to_string(),
            RunOutcome::TimedOut {
                error: crate::runner::RunError::Watchdog {
                    last_commit_cycle: 10,
                    stalled_cycles: 500,
                    retired: 3,
                },
                retries: 1,
            },
        );
        match runs.get("hung") {
            Err(PlanError::RunFailed { key, outcome }) => {
                assert_eq!(key, "hung");
                assert!(outcome.contains("watchdog"), "outcome: {outcome}");
            }
            other => panic!("expected RunFailed, got {other:?}"),
        }
    }
}
