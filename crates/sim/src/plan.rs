//! Declarative run plans: experiments *describe* the simulation runs
//! they need and how to turn completed runs into rows; the executor
//! ([`crate::exec`]) decides what actually gets simulated, once, and
//! on how many threads.
//!
//! The architecture is plan → execute → assemble:
//!
//! 1. **Plan.** Each experiment builds an [`ExperimentPlan`]: a list
//!    of keyed [`RunSpec`]s (use-case factory + run configuration +
//!    optional fabric parameters) plus a pure assembly closure.
//! 2. **Execute.** The executor collects the specs of every requested
//!    experiment, deduplicates them by [`RunSpec::key`] (the shared
//!    astar baseline is requested by six experiments but simulated
//!    once), and runs the unique set across worker threads.
//! 3. **Assemble.** Each plan's closure maps the completed
//!    [`RunResult`]s to [`Row`]s — no simulation happens here, so
//!    assembly is cheap, deterministic, and order-independent.
//!
//! Dedup correctness rests on the canonical content keys introduced
//! across the stack: `UseCaseFactory::key` (pfm-workloads),
//! `CoreConfig::key` (pfm-core), `HierarchyConfig::key` (pfm-mem) and
//! `FabricParams::key` (pfm-fabric) each cover *every* field of their
//! layer, so equal keys imply behaviourally identical runs.

use crate::experiments::{Experiment, Row};
use crate::runner::{run_baseline, run_pfm, RunConfig, RunResult};
use pfm_core::SimError;
use pfm_fabric::FabricParams;
use pfm_workloads::UseCaseFactory;
use std::collections::HashMap;

/// One fully-specified, deduplicatable simulation run.
#[derive(Clone, Debug)]
pub struct RunSpec {
    usecase: UseCaseFactory,
    rc: RunConfig,
    fabric: Option<FabricParams>,
    key: String,
}

impl RunSpec {
    /// A baseline run (no fabric attached).
    pub fn baseline(usecase: UseCaseFactory, rc: &RunConfig) -> RunSpec {
        let key = format!("{}|baseline|{}", usecase.key(), rc.key());
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: None,
            key,
        }
    }

    /// A PFM run with the given fabric parameters.
    pub fn pfm(usecase: UseCaseFactory, params: FabricParams, rc: &RunConfig) -> RunSpec {
        let key = format!("{}|{}|{}", usecase.key(), params.key(), rc.key());
        RunSpec {
            usecase,
            rc: rc.clone(),
            fabric: Some(params),
            key,
        }
    }

    /// Stable content key: two specs with equal keys simulate the
    /// exact same thing (and are executed once).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Display name of the underlying use-case.
    pub fn name(&self) -> &str {
        self.usecase.name()
    }

    /// Builds the use-case and performs the run. Deterministic:
    /// calling this any number of times, on any thread, yields
    /// identical statistics.
    ///
    /// # Errors
    /// Propagates simulator errors (functional faults, cycle-limit
    /// deadlocks).
    pub fn execute(&self) -> Result<RunResult, SimError> {
        let uc = self.usecase.build();
        match &self.fabric {
            None => run_baseline(&uc, &self.rc),
            Some(params) => run_pfm(&uc, params.clone(), &self.rc),
        }
    }
}

/// Completed runs, indexed by [`RunSpec::key`].
#[derive(Debug, Default)]
pub struct RunSet {
    runs: HashMap<String, Result<RunResult, String>>,
}

impl RunSet {
    pub(crate) fn insert(&mut self, key: String, result: Result<RunResult, SimError>) {
        self.runs.insert(key, result.map_err(|e| e.to_string()));
    }

    /// The completed run for `key`.
    ///
    /// # Panics
    /// Panics if the run is missing from the executed set or failed —
    /// both are programming errors in an experiment plan, exactly as a
    /// failed eager run was before the planner existed.
    pub fn get(&self, key: &str) -> &RunResult {
        match self.runs.get(key) {
            Some(Ok(r)) => r,
            Some(Err(e)) => panic!("simulation failed for {key}: {e}"),
            None => panic!("run {key} was not part of the executed plan"),
        }
    }

    /// Number of completed (or failed) runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether no runs completed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }
}

/// Handle to one requested run, returned while building a plan's spec
/// list and redeemed inside its assembly closure.
#[derive(Clone, Debug)]
pub struct RunHandle(String);

impl RunHandle {
    /// The completed run this handle refers to.
    ///
    /// # Panics
    /// Panics if the run is missing or failed (see [`RunSet::get`]).
    pub fn of<'a>(&self, runs: &'a RunSet) -> &'a RunResult {
        runs.get(&self.0)
    }

    /// The underlying spec key.
    pub fn key(&self) -> &str {
        &self.0
    }
}

/// Accumulates the runs an experiment needs while handing back
/// [`RunHandle`]s for its assembly closure.
#[derive(Debug, Default)]
pub struct SpecSet {
    specs: Vec<RunSpec>,
}

impl SpecSet {
    /// Requests a baseline run.
    pub fn baseline(&mut self, uc: &UseCaseFactory, rc: &RunConfig) -> RunHandle {
        self.push(RunSpec::baseline(uc.clone(), rc))
    }

    /// Requests a PFM run.
    pub fn pfm(&mut self, uc: &UseCaseFactory, params: FabricParams, rc: &RunConfig) -> RunHandle {
        self.push(RunSpec::pfm(uc.clone(), params, rc))
    }

    fn push(&mut self, spec: RunSpec) -> RunHandle {
        let handle = RunHandle(spec.key().to_string());
        self.specs.push(spec);
        handle
    }

    /// The accumulated specs.
    pub fn into_specs(self) -> Vec<RunSpec> {
        self.specs
    }
}

type AssembleFn = Box<dyn FnOnce(&RunSet) -> Vec<Row> + Send>;

/// A planned (not yet executed) experiment: requested runs + pure
/// assembly.
pub struct ExperimentPlan {
    /// Paper identifier (e.g. `fig8`, `table2`).
    pub id: &'static str,
    /// Title as in the paper.
    pub title: &'static str,
    /// The paper's reported numbers, for side-by-side comparison.
    pub paper: &'static str,
    specs: Vec<RunSpec>,
    assemble: AssembleFn,
}

impl ExperimentPlan {
    /// Bundles a plan from its requested runs and assembly closure.
    pub fn new(
        id: &'static str,
        title: &'static str,
        paper: &'static str,
        specs: SpecSet,
        assemble: impl FnOnce(&RunSet) -> Vec<Row> + Send + 'static,
    ) -> ExperimentPlan {
        ExperimentPlan {
            id,
            title,
            paper,
            specs: specs.into_specs(),
            assemble: Box::new(assemble),
        }
    }

    /// The runs this experiment needs (possibly overlapping other
    /// plans' — the executor deduplicates).
    pub fn specs(&self) -> &[RunSpec] {
        &self.specs
    }

    /// Maps completed runs to the final experiment. Pure: no
    /// simulation happens here.
    ///
    /// # Panics
    /// Panics if `runs` is missing one of the plan's specs or that run
    /// failed.
    pub fn assemble(self, runs: &RunSet) -> Experiment {
        Experiment {
            id: self.id,
            title: self.title,
            paper: self.paper,
            rows: (self.assemble)(runs),
        }
    }
}

impl std::fmt::Debug for ExperimentPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentPlan")
            .field("id", &self.id)
            .field("specs", &self.specs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecases;

    #[test]
    fn identical_specs_share_keys_and_distinct_specs_do_not() {
        let rc = RunConfig::test_scale();
        let uc = usecases::astar_custom_factory();
        let a = RunSpec::baseline(uc.clone(), &rc);
        let b = RunSpec::baseline(usecases::astar_custom_factory(), &rc);
        assert_eq!(a.key(), b.key());

        let pfm = RunSpec::pfm(uc.clone(), FabricParams::paper_default(), &rc);
        assert_ne!(a.key(), pfm.key());

        // Non-label fabric fields must be visible in the key.
        let mut tiny_mlb = FabricParams::paper_default();
        tiny_mlb.mlb_size = 2;
        let tiny = RunSpec::pfm(uc.clone(), tiny_mlb, &rc);
        assert_ne!(pfm.key(), tiny.key());

        // Run-config deltas must be visible in the key.
        let perf = RunSpec::baseline(uc, &rc.clone().perfect_bp());
        assert_ne!(a.key(), perf.key());
    }

    #[test]
    #[should_panic(expected = "was not part of the executed plan")]
    fn runset_panics_on_missing_key() {
        RunSet::default().get("nope");
    }
}
