//! Deduplicating parallel executor for [`RunSpec`]s.
//!
//! The executor is the "execute" stage of plan → execute → assemble:
//! it collapses the requested specs to the unique set by content key
//! (first-seen order), then drains that set across scoped worker
//! threads. Every run is independent and internally deterministic, so
//! results are identical for any `--jobs` value — the worker count
//! only changes wall-clock time.

use crate::experiments::Experiment;
use crate::plan::{ExperimentPlan, RunSet, RunSpec};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Executor knobs.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Worker threads. Values are clamped to at least 1.
    pub jobs: usize,
    /// Emit per-run progress lines on stderr.
    pub progress: bool,
}

impl ExecOptions {
    /// Serial, quiet execution (the back-compat path for single
    /// experiments).
    pub fn serial() -> ExecOptions {
        ExecOptions {
            jobs: 1,
            progress: false,
        }
    }
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecOptions {
            jobs,
            progress: false,
        }
    }
}

/// Timing of one executed (unique) run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Content key of the run.
    pub key: String,
    /// Use-case name.
    pub name: String,
    /// Simulation time in seconds.
    pub seconds: f64,
}

/// What the executor did: dedup factor and per-run timings.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Runs requested across all plans (before dedup).
    pub requested: usize,
    /// Unique runs actually simulated.
    pub unique: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-run timings, in plan (first-seen) order.
    pub runs: Vec<RunReport>,
}

impl ExecReport {
    /// Runs skipped because an identical run was already planned.
    pub fn deduped(&self) -> usize {
        self.requested - self.unique
    }

    /// Total simulation seconds across all runs (≥ wall-clock when
    /// workers overlap).
    pub fn sim_seconds(&self) -> f64 {
        // fold, not sum(): an empty sum() is -0.0, which renders as
        // "-0.0s" for run-less plans like table4.
        self.runs
            .iter()
            .map(|r| r.seconds)
            .fold(0.0, |acc, s| acc + s)
    }

    /// One-line summary, e.g. for `repro`.
    pub fn summary(&self) -> String {
        format!(
            "{} runs requested, {} unique ({} deduped), {} job(s), {:.1}s wall ({:.1}s simulated)",
            self.requested,
            self.unique,
            self.deduped(),
            self.jobs,
            self.wall_seconds,
            self.sim_seconds()
        )
    }
}

/// Collapses `specs` to the unique set by content key, preserving
/// first-seen order.
pub fn dedup_specs(specs: &[RunSpec]) -> Vec<RunSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut unique = Vec::new();
    for spec in specs {
        if seen.insert(spec.key().to_string()) {
            unique.push(spec.clone());
        }
    }
    unique
}

/// Executes the unique subset of `specs` and returns the completed
/// runs plus a report.
///
/// Work is distributed over `opts.jobs` scoped threads by an atomic
/// work index; each unique spec is executed exactly once. Determinism
/// is per-run, so the schedule cannot affect any statistic.
pub fn execute(specs: &[RunSpec], opts: &ExecOptions) -> (RunSet, ExecReport) {
    let unique = dedup_specs(specs);
    let jobs = opts.jobs.max(1).min(unique.len().max(1));
    let total = unique.len();
    // pfm-lint: allow(determinism): feeds the wall-clock report only, never results
    let started = Instant::now();

    // One pre-allocated slot per unique run; each is written exactly
    // once by whichever worker claims that index.
    let slots: Vec<OnceLock<(Result<crate::runner::RunResult, pfm_core::SimError>, f64)>> =
        (0..total).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= total {
                    break;
                }
                let spec = &unique[idx];
                // pfm-lint: allow(determinism): feeds the wall-clock report only, never results
                let t0 = Instant::now();
                let result = spec.execute();
                let secs = t0.elapsed().as_secs_f64();
                if opts.progress {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "  [{n}/{total}] {} ({:.1}s)  {}",
                        spec.name(),
                        secs,
                        spec.key()
                    );
                }
                slots[idx]
                    .set((result, secs))
                    // pfm-lint: allow(hygiene): each idx is claimed by exactly one worker
                    .expect("run slot written twice");
            });
        }
    });

    let mut runs = RunSet::default();
    let mut reports = Vec::with_capacity(total);
    for (spec, slot) in unique.iter().zip(slots) {
        // pfm-lint: allow(hygiene): every slot was filled by the scoped workers
        let (result, seconds) = slot.into_inner().expect("run slot never written");
        reports.push(RunReport {
            key: spec.key().to_string(),
            name: spec.name().to_string(),
            seconds,
        });
        runs.insert(spec.key().to_string(), result);
    }

    let report = ExecReport {
        requested: specs.len(),
        unique: total,
        jobs,
        wall_seconds: started.elapsed().as_secs_f64(),
        runs: reports,
    };
    (runs, report)
}

/// Plans → finished experiments: gathers every plan's specs, executes
/// the deduplicated union, and assembles each experiment from the
/// shared [`RunSet`].
pub fn run_plans(plans: Vec<ExperimentPlan>, opts: &ExecOptions) -> (Vec<Experiment>, ExecReport) {
    let specs: Vec<RunSpec> = plans
        .iter()
        .flat_map(|p| p.specs().iter().cloned())
        .collect();
    let (runs, report) = execute(&specs, opts);
    let experiments = plans.into_iter().map(|p| p.assemble(&runs)).collect();
    (experiments, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use crate::usecases;

    fn tiny_rc() -> RunConfig {
        RunConfig {
            max_instrs: 20_000,
            ..RunConfig::test_scale()
        }
    }

    #[test]
    fn executor_dedups_identical_specs() {
        let rc = tiny_rc();
        let uc = usecases::libquantum_factory();
        let spec = RunSpec::baseline(uc, &rc);
        let specs = vec![spec.clone(), spec.clone(), spec];
        let (runs, report) = execute(&specs, &ExecOptions::serial());
        assert_eq!(report.requested, 3);
        assert_eq!(report.unique, 1);
        assert_eq!(report.deduped(), 2);
        assert_eq!(runs.len(), 1);
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let rc = tiny_rc();
        let spec = RunSpec::pfm(
            usecases::libquantum_factory(),
            pfm_fabric::FabricParams::paper_default(),
            &rc,
        );
        let a = spec.execute().unwrap();
        let b = spec.execute().unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.hier, b.hier);
        assert_eq!(a.fabric, b.fabric);
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let rc = tiny_rc();
        let specs = vec![
            RunSpec::baseline(usecases::libquantum_factory(), &rc),
            RunSpec::pfm(
                usecases::libquantum_factory(),
                pfm_fabric::FabricParams::paper_default(),
                &rc,
            ),
            RunSpec::baseline(usecases::lbm_factory(), &rc),
        ];
        let (serial, _) = execute(&specs, &ExecOptions::serial());
        let (parallel, report) = execute(
            &specs,
            &ExecOptions {
                jobs: 3,
                progress: false,
            },
        );
        assert_eq!(report.unique, 3);
        for spec in &specs {
            let a = serial.get(spec.key());
            let b = parallel.get(spec.key());
            assert_eq!(a.stats, b.stats, "core stats diverged for {}", spec.key());
            assert_eq!(
                a.hier,
                b.hier,
                "hierarchy stats diverged for {}",
                spec.key()
            );
            assert_eq!(
                a.fabric,
                b.fabric,
                "fabric stats diverged for {}",
                spec.key()
            );
        }
    }
}
