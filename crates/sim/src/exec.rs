//! Deduplicating, panic-isolating parallel executor for [`RunSpec`]s.
//!
//! The executor is the "execute" stage of plan → execute → assemble:
//! it collapses the requested specs to the unique set by content key
//! (first-seen order), then drains that set across scoped worker
//! threads. Every run is independent and internally deterministic, so
//! results are identical for any `--jobs` value — the worker count
//! only changes wall-clock time.
//!
//! Hardening (the chaos harness depends on all three):
//! * every run executes behind `catch_unwind`, so a panicking
//!   component or workload factory produces a [`RunOutcome::Panicked`]
//!   entry instead of killing the suite;
//! * a run that trips the forward-progress watchdog is retried once at
//!   a raised cap (an extreme-but-legitimate stall looks identical to
//!   a hang until given more rope), then recorded as
//!   [`RunOutcome::TimedOut`];
//! * after the first failure, workers stop claiming new runs unless
//!   [`ExecOptions::keep_going`] is set; abandoned runs surface as
//!   [`crate::plan::PlanError::MissingRun`] at assembly time, and the
//!   [`ExecReport`] carries a failure table either way.

use crate::experiments::Experiment;
use crate::plan::{ExperimentPlan, PlanError, RunOutcome, RunSet, RunSpec};
use crate::store::ResultStore;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Default watchdog multiplier for the executor's single bounded retry
/// of a watchdog-failed run (overridable per execution via
/// [`ExecOptions::retry_watchdog_factor`]).
pub const RETRY_WATCHDOG_FACTOR: u64 = 32;

/// Executor knobs.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    /// Worker threads. Values are clamped to at least 1.
    pub jobs: usize,
    /// Emit per-run progress lines on stderr.
    pub progress: bool,
    /// Keep claiming new runs after a failure (the `--keep-going`
    /// behavior). When false, in-flight runs finish but no new runs
    /// start once any run fails.
    pub keep_going: bool,
    /// Content-addressed result store. When set, every unique spec is
    /// probed before simulation — hits are served from the store at
    /// memory speed, misses simulate and are appended for next time.
    /// Caching is invisible to results: a hit carries the exact
    /// outcome the simulation produced when it was recorded, and runs
    /// are deterministic, so warm and cold runs assemble bit-identical
    /// statistics.
    pub store: Option<Arc<ResultStore>>,
    /// Watchdog multiplier for the single bounded retry of a
    /// watchdog-failed run. Values are clamped to at least 1 (a
    /// factor of 1 retries at the original cap, i.e. effectively
    /// disables the raised-cap rescue).
    pub retry_watchdog_factor: u64,
}

impl ExecOptions {
    /// Serial, quiet execution (the back-compat path for single
    /// experiments).
    pub fn serial() -> ExecOptions {
        ExecOptions {
            jobs: 1,
            progress: false,
            keep_going: false,
            store: None,
            retry_watchdog_factor: RETRY_WATCHDOG_FACTOR,
        }
    }

    /// This options set with the given store attached.
    pub fn with_store(mut self, store: Arc<ResultStore>) -> ExecOptions {
        self.store = Some(store);
        self
    }
}

impl Default for ExecOptions {
    fn default() -> ExecOptions {
        let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
        ExecOptions {
            jobs,
            progress: false,
            keep_going: false,
            store: None,
            retry_watchdog_factor: RETRY_WATCHDOG_FACTOR,
        }
    }
}

/// Timing of one executed (unique) run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Content key of the run.
    pub key: String,
    /// Use-case name.
    pub name: String,
    /// Simulation time in seconds (including any retry).
    pub seconds: f64,
}

/// One failed run, for the report table.
#[derive(Clone, Debug)]
pub struct FailureReport {
    /// Content key of the run.
    pub key: String,
    /// Use-case name.
    pub name: String,
    /// Human-readable outcome ([`RunOutcome::describe`]).
    pub outcome: String,
    /// Watchdog retries performed.
    pub retries: u32,
}

/// What the executor did: dedup factor, per-run timings, failures.
#[derive(Clone, Debug, Default)]
pub struct ExecReport {
    /// Runs requested across all plans (before dedup).
    pub requested: usize,
    /// Unique runs actually simulated.
    pub unique: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// End-to-end wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-run timings for executed runs, in plan (first-seen) order.
    pub runs: Vec<RunReport>,
    /// Runs that did not complete, in plan order.
    pub failures: Vec<FailureReport>,
    /// Unique runs never started (abandoned after a failure without
    /// `keep_going`).
    pub skipped: usize,
    /// Watchdog retries performed across all runs.
    pub retried: usize,
    /// A result store was attached for this execution.
    pub store_enabled: bool,
    /// Unique runs served from the result store without simulating.
    pub store_hits: usize,
    /// Unique runs that missed the store and had to simulate.
    pub store_misses: usize,
    /// Store appends that failed (results were still computed and
    /// used; only the cache write was lost).
    pub store_errors: usize,
}

impl ExecReport {
    /// Runs skipped because an identical run was already planned.
    pub fn deduped(&self) -> usize {
        self.requested - self.unique
    }

    /// Total simulation seconds across all runs (≥ wall-clock when
    /// workers overlap).
    pub fn sim_seconds(&self) -> f64 {
        // fold, not sum(): an empty sum() is -0.0, which renders as
        // "-0.0s" for run-less plans like table4.
        self.runs
            .iter()
            .map(|r| r.seconds)
            .fold(0.0, |acc, s| acc + s)
    }

    /// One-line summary, e.g. for `repro`.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} runs requested, {} unique ({} deduped), {} job(s), {:.1}s wall ({:.1}s simulated)",
            self.requested,
            self.unique,
            self.deduped(),
            self.jobs,
            self.wall_seconds,
            self.sim_seconds()
        );
        if self.store_enabled {
            s.push_str(&format!(
                "; store: {} hit(s), {} miss(es)",
                self.store_hits, self.store_misses
            ));
            if self.store_errors > 0 {
                s.push_str(&format!(", {} append error(s)", self.store_errors));
            }
        }
        if self.retried > 0 {
            s.push_str(&format!(
                "; {} watchdog retr{} across {} run(s)",
                self.retried,
                if self.retried == 1 { "y" } else { "ies" },
                self.unique
            ));
        }
        if !self.failures.is_empty() || self.skipped > 0 {
            s.push_str(&format!(
                "; {} FAILED, {} skipped",
                self.failures.len(),
                self.skipped,
            ));
        }
        s
    }

    /// Multi-line failure table (empty string when everything passed).
    pub fn failure_table(&self) -> String {
        if self.failures.is_empty() {
            return String::new();
        }
        let mut out = String::from("failed runs:\n");
        for f in &self.failures {
            let retry = if f.retries > 0 {
                format!(" [retried {}x]", f.retries)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  {:<22} {}{}\n      key: {}\n",
                f.name, f.outcome, retry, f.key
            ));
        }
        out.push_str(&format!(
            "  {} failed / {} executed / {} skipped",
            self.failures.len(),
            self.runs.len(),
            self.skipped
        ));
        out
    }
}

/// Collapses `specs` to the unique set by content key, preserving
/// first-seen order.
pub fn dedup_specs(specs: &[RunSpec]) -> Vec<RunSpec> {
    let mut seen = std::collections::HashSet::new();
    let mut unique = Vec::new();
    for spec in specs {
        if seen.insert(spec.key().to_string()) {
            unique.push(spec.clone());
        }
    }
    unique
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Executes one spec in isolation at the default retry factor (the
/// worker-process entry point, which has no [`ExecOptions`]).
pub(crate) fn run_isolated(spec: &RunSpec) -> (RunOutcome, u32) {
    run_isolated_with(spec, RETRY_WATCHDOG_FACTOR)
}

/// Executes one spec in isolation: panics are caught, and a
/// watchdog-tripped run gets one retry at a cap raised by `factor`.
/// Returns the outcome and the number of retries performed.
pub(crate) fn run_isolated_with(spec: &RunSpec, factor: u64) -> (RunOutcome, u32) {
    match catch_unwind(AssertUnwindSafe(|| spec.execute())) {
        Err(payload) => (RunOutcome::Panicked(panic_message(payload)), 0),
        Ok(Ok(r)) => (RunOutcome::Ok(r), 0),
        Ok(Err(e)) if e.is_watchdog() => {
            let raised = spec.raised_watchdog(factor.max(1));
            match catch_unwind(AssertUnwindSafe(|| spec.execute_with_watchdog(raised))) {
                Err(payload) => (RunOutcome::Panicked(panic_message(payload)), 1),
                Ok(Ok(r)) => (RunOutcome::Ok(r), 1),
                Ok(Err(e2)) if e2.is_hang() => (
                    RunOutcome::TimedOut {
                        error: e2,
                        retries: 1,
                    },
                    1,
                ),
                Ok(Err(e2)) => (RunOutcome::Failed(e2), 1),
            }
        }
        Ok(Err(e)) if e.is_hang() => (
            RunOutcome::TimedOut {
                error: e,
                retries: 0,
            },
            0,
        ),
        Ok(Err(e)) => (RunOutcome::Failed(e), 0),
    }
}

/// Executes the unique subset of `specs` and returns the outcomes
/// plus a report.
///
/// Work is distributed over `opts.jobs` scoped threads by an atomic
/// work index; each unique spec is executed exactly once. Determinism
/// is per-run, so the schedule cannot affect any statistic. A failing
/// run never takes the process down: it is recorded as its
/// [`RunOutcome`] and (without [`ExecOptions::keep_going`]) stops
/// workers from claiming further runs.
pub fn execute(specs: &[RunSpec], opts: &ExecOptions) -> (RunSet, ExecReport) {
    let unique = dedup_specs(specs);
    let total = unique.len();
    // pfm-lint: allow(determinism): feeds the wall-clock report only, never results
    let started = Instant::now();

    // Probe the result store first: hits resolve at memory speed and
    // never occupy a worker; only the missing indices are scheduled.
    // A hit carries the exact outcome recorded when the run was first
    // simulated, so warm and cold executions are bit-identical.
    type Slot = OnceLock<(RunOutcome, u32, f64)>;
    let slots: Vec<Slot> = (0..total).map(|_| OnceLock::new()).collect();
    let mut pending: Vec<usize> = Vec::with_capacity(total);
    let mut store_hits = 0;
    for (idx, spec) in unique.iter().enumerate() {
        let cached = opts.store.as_deref().and_then(|s| s.get(spec.key()));
        match cached {
            Some(outcome) => {
                store_hits += 1;
                if opts.progress {
                    eprintln!("  [cache] {} (hit)  {}", spec.name(), spec.key());
                }
                slots[idx]
                    .set((outcome, 0, 0.0))
                    // pfm-lint: allow(hygiene): idx is visited exactly once here
                    .expect("run slot written twice");
            }
            None => pending.push(idx),
        }
    }
    let store_misses = pending.len();
    let jobs = opts.jobs.max(1).min(pending.len().max(1));

    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let store_errors = AtomicUsize::new(0);
    // A cached failure fails the execution exactly like a fresh one:
    // without keep_going, no new simulations start.
    let cached_failure = slots
        .iter()
        .filter_map(|s| s.get())
        .any(|(outcome, _, _)| !outcome.is_ok());
    let abort = AtomicBool::new(cached_failure);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if !opts.keep_going && abort.load(Ordering::Relaxed) {
                    break;
                }
                let at = next.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(at) else {
                    break;
                };
                let spec = &unique[idx];
                // pfm-lint: allow(determinism): feeds the wall-clock report only, never results
                let t0 = Instant::now();
                let (outcome, retries) = run_isolated_with(spec, opts.retry_watchdog_factor);
                let secs = t0.elapsed().as_secs_f64();
                if !outcome.is_ok() {
                    abort.store(true, Ordering::Relaxed);
                }
                if let Some(store) = opts.store.as_deref() {
                    // Deterministic outcomes (success or structured
                    // failure) are cacheable; a lost append only costs
                    // a future re-simulation. Environmental outcomes
                    // (TimedOut, a local panic) are NOT persisted:
                    // caching a watchdog verdict would make one slow
                    // machine's budget permanent for every warm run
                    // after it.
                    if !outcome.is_environmental() && store.put(spec.key(), &outcome).is_err() {
                        store_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                if opts.progress {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let status = if outcome.is_ok() { "" } else { "FAIL " };
                    eprintln!(
                        "  [{n}/{}] {status}{} ({:.1}s)  {}",
                        pending.len(),
                        spec.name(),
                        secs,
                        spec.key()
                    );
                }
                slots[idx]
                    .set((outcome, retries, secs))
                    // pfm-lint: allow(hygiene): each idx is claimed by exactly one worker
                    .expect("run slot written twice");
            });
        }
    });

    let mut runs = RunSet::default();
    let mut reports = Vec::with_capacity(total);
    let mut failures = Vec::new();
    let mut skipped = 0;
    let mut retried = 0;
    let simulated: std::collections::HashSet<usize> = pending.iter().copied().collect();
    for (idx, (spec, slot)) in unique.iter().zip(slots).enumerate() {
        let Some((outcome, retries, seconds)) = slot.into_inner() else {
            skipped += 1; // abandoned after an earlier failure
            continue;
        };
        retried += retries as usize;
        // Only simulated runs carry a timing row; hits are free.
        if simulated.contains(&idx) {
            reports.push(RunReport {
                key: spec.key().to_string(),
                name: spec.name().to_string(),
                seconds,
            });
        }
        if !outcome.is_ok() {
            failures.push(FailureReport {
                key: spec.key().to_string(),
                name: spec.name().to_string(),
                outcome: outcome.describe(),
                retries,
            });
        }
        runs.insert(spec.key().to_string(), outcome);
    }

    let report = ExecReport {
        requested: specs.len(),
        unique: total,
        jobs,
        wall_seconds: started.elapsed().as_secs_f64(),
        runs: reports,
        failures,
        skipped,
        retried,
        store_enabled: opts.store.is_some(),
        store_hits,
        store_misses,
        store_errors: store_errors.into_inner(),
    };
    (runs, report)
}

/// Plans → assembled experiments: gathers every plan's specs, executes
/// the deduplicated union, and assembles each experiment from the
/// shared [`RunSet`]. An experiment whose runs failed (or were
/// abandoned) assembles to its [`PlanError`]; the others still
/// assemble — partial results survive individual failures.
pub fn run_plans(
    plans: Vec<ExperimentPlan>,
    opts: &ExecOptions,
) -> (Vec<Result<Experiment, PlanError>>, ExecReport) {
    let specs: Vec<RunSpec> = plans
        .iter()
        .flat_map(|p| p.specs().iter().cloned())
        .collect();
    let (runs, report) = execute(&specs, opts);
    let experiments = plans.into_iter().map(|p| p.assemble(&runs)).collect();
    (experiments, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RunConfig;
    use crate::store::CodeFingerprint;
    use crate::usecases;
    use std::sync::atomic::AtomicU64;

    fn tiny_rc() -> RunConfig {
        RunConfig {
            max_instrs: 20_000,
            ..RunConfig::test_scale()
        }
    }

    #[test]
    fn executor_dedups_identical_specs() {
        let rc = tiny_rc();
        let uc = usecases::libquantum_factory();
        let spec = RunSpec::baseline(uc, &rc);
        let specs = vec![spec.clone(), spec.clone(), spec];
        let (runs, report) = execute(&specs, &ExecOptions::serial());
        assert_eq!(report.requested, 3);
        assert_eq!(report.unique, 1);
        assert_eq!(report.deduped(), 2);
        assert_eq!(runs.len(), 1);
        assert!(report.failures.is_empty());
        assert!(report.failure_table().is_empty());
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let rc = tiny_rc();
        let spec = RunSpec::pfm(
            usecases::libquantum_factory(),
            pfm_fabric::FabricParams::paper_default(),
            &rc,
        );
        let a = spec.execute().unwrap();
        let b = spec.execute().unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.hier, b.hier);
        assert_eq!(a.fabric, b.fabric);
        assert_eq!(a.arch_checksum, b.arch_checksum);
    }

    #[test]
    fn parallel_and_serial_execution_agree() {
        let rc = tiny_rc();
        let specs = vec![
            RunSpec::baseline(usecases::libquantum_factory(), &rc),
            RunSpec::pfm(
                usecases::libquantum_factory(),
                pfm_fabric::FabricParams::paper_default(),
                &rc,
            ),
            RunSpec::baseline(usecases::lbm_factory(), &rc),
        ];
        let (serial, _) = execute(&specs, &ExecOptions::serial());
        let (parallel, report) = execute(
            &specs,
            &ExecOptions {
                jobs: 3,
                ..ExecOptions::serial()
            },
        );
        assert_eq!(report.unique, 3);
        for spec in &specs {
            let a = serial.get(spec.key()).unwrap();
            let b = parallel.get(spec.key()).unwrap();
            assert_eq!(a.stats, b.stats, "core stats diverged for {}", spec.key());
            assert_eq!(
                a.hier,
                b.hier,
                "hierarchy stats diverged for {}",
                spec.key()
            );
            assert_eq!(
                a.fabric,
                b.fabric,
                "fabric stats diverged for {}",
                spec.key()
            );
        }
    }

    fn temp_store_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pfm-exec-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_store_serves_identical_results_without_simulating() {
        let rc = tiny_rc();
        let specs = vec![
            RunSpec::baseline(usecases::libquantum_factory(), &rc),
            RunSpec::pfm(
                usecases::libquantum_factory(),
                pfm_fabric::FabricParams::paper_default(),
                &rc,
            ),
        ];
        let dir = temp_store_dir("warm");
        let store = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(7)).unwrap());
        let opts = ExecOptions::serial().with_store(Arc::clone(&store));

        // Cold: everything misses, simulates, and is appended.
        let (cold, cold_report) = execute(&specs, &opts);
        assert_eq!(cold_report.store_hits, 0);
        assert_eq!(cold_report.store_misses, 2);
        assert_eq!(cold_report.store_errors, 0);
        assert_eq!(cold_report.runs.len(), 2);
        assert_eq!(store.len(), 2);

        // Warm, through a fresh handle (forces the on-disk path):
        // everything hits, nothing simulates, stats are bit-identical.
        let store2 = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(7)).unwrap());
        let opts2 = ExecOptions::serial().with_store(store2);
        let (warm, warm_report) = execute(&specs, &opts2);
        assert_eq!(warm_report.store_hits, 2);
        assert_eq!(warm_report.store_misses, 0);
        assert!(
            warm_report.runs.is_empty(),
            "hits must not produce timing rows"
        );
        for spec in &specs {
            let a = cold.get(spec.key()).unwrap();
            let b = warm.get(spec.key()).unwrap();
            assert_eq!(a.stats, b.stats);
            assert_eq!(a.hier, b.hier);
            assert_eq!(a.fabric, b.fabric);
            assert_eq!(a.arch_checksum, b.arch_checksum);
            assert_eq!(a.completed, b.completed);
        }
        let summary = warm_report.summary();
        assert!(
            summary.contains("store: 2 hit(s), 0 miss(es)"),
            "summary must carry hit/miss accounting: {summary}"
        );
    }

    #[test]
    fn stale_fingerprint_forces_resimulation() {
        let rc = tiny_rc();
        let specs = vec![RunSpec::baseline(usecases::libquantum_factory(), &rc)];
        let dir = temp_store_dir("stale");
        let store = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(1)).unwrap());
        let (_, r1) = execute(&specs, &ExecOptions::serial().with_store(store));
        assert_eq!(r1.store_misses, 1);

        // Same store dir, different code fingerprint: the old record
        // must not be served.
        let store = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(2)).unwrap());
        let (_, r2) = execute(&specs, &ExecOptions::serial().with_store(store));
        assert_eq!(r2.store_hits, 0);
        assert_eq!(r2.store_misses, 1);
    }

    #[test]
    fn concurrent_executors_share_one_store_without_losing_records() {
        // Two executors, each with its own handle on the same store
        // directory, run overlapping spec sets in parallel. Every
        // record must survive append interleaving: a fresh handle
        // afterwards sees all keys with intact payloads.
        let rc = tiny_rc();
        let dir = temp_store_dir("concurrent");
        let specs_a = vec![
            RunSpec::baseline(usecases::libquantum_factory(), &rc),
            RunSpec::baseline(usecases::lbm_factory(), &rc),
        ];
        let specs_b = vec![
            RunSpec::baseline(usecases::libquantum_factory(), &rc),
            RunSpec::pfm(
                usecases::lbm_factory(),
                pfm_fabric::FabricParams::paper_default(),
                &rc,
            ),
        ];
        let fp = CodeFingerprint::fixed(9);
        std::thread::scope(|scope| {
            for specs in [&specs_a, &specs_b] {
                let dir = &dir;
                scope.spawn(move || {
                    let store = Arc::new(ResultStore::open(dir, fp).unwrap());
                    let opts = ExecOptions {
                        jobs: 2,
                        ..ExecOptions::serial()
                    }
                    .with_store(store);
                    execute(specs, &opts);
                });
            }
        });

        let store = ResultStore::open(&dir, fp).unwrap();
        let report = store.open_report();
        assert_eq!(report.skipped, 0, "no interleaved/damaged records");
        // 3 unique keys across both executors; the shared key may have
        // been written by both (duplicate appends are fine — identical
        // payloads, last write wins).
        assert_eq!(store.len(), 3);
        for spec in specs_a.iter().chain(&specs_b) {
            assert!(
                store.get(spec.key()).is_some(),
                "lost record for {}",
                spec.key()
            );
        }
    }
}
