//! Standard experiment-scale use-case instances (the equivalents of
//! the paper's §3 benchmark selections).

use pfm_workloads::graphs::{powerlaw_graph, road_graph, shuffle_labels_fraction};
use pfm_workloads::{
    astar, bfs, bwaves, lbm, leslie, libquantum, milc, AstarParams, AstarVariant, BfsParams,
    BfsVariant, UseCase,
};
use std::sync::OnceLock;

/// astar with the default experiment-scale grid and the load-based
/// custom predictor.
pub fn astar_custom() -> UseCase {
    astar(&AstarParams::default())
}

/// astar with a specific index_queue scope (Figure 10).
pub fn astar_with_scope(scope: usize) -> UseCase {
    astar(&AstarParams { scope, ..AstarParams::default() })
}

/// astar with the slipstream-style restricted pre-execution (§1.1).
pub fn astar_slipstream() -> UseCase {
    astar(&AstarParams { variant: AstarVariant::Slipstream, ..AstarParams::default() })
}

/// astar with the table-mimicking astar-alt design (§5).
pub fn astar_alt() -> UseCase {
    astar(&AstarParams { variant: AstarVariant::Alt, ..AstarParams::default() })
}

fn roads_graph() -> &'static pfm_workloads::Csr {
    static G: OnceLock<pfm_workloads::Csr> = OnceLock::new();
    G.get_or_init(|| shuffle_labels_fraction(&road_graph(1000, 1000, 2000, 7), 11, 0.05))
}

fn roads_params() -> BfsParams {
    BfsParams { source: 5, start_level: 400, ..BfsParams::default() }
}

/// bfs on the road-network-like input ("Roads" in §4.2), measured in
/// steady state past the setup phase.
pub fn bfs_roads() -> UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| bfs(roads_graph(), "roads", &roads_params())).clone()
}

/// bfs on Roads with a specific component window size (Figure 14).
pub fn bfs_roads_with_window(window: usize) -> UseCase {
    bfs(roads_graph(), "roads", &BfsParams { window, ..roads_params() })
}

/// bfs on Roads with slipstream-style pre-execution (Figure 2).
pub fn bfs_roads_slipstream() -> UseCase {
    bfs(roads_graph(), "roads", &BfsParams { variant: BfsVariant::Slipstream, ..roads_params() })
}

/// bfs on the power-law input ("Youtube" in §4.2).
pub fn bfs_youtube() -> UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| {
        let g = powerlaw_graph(300_000, 3, 13);
        bfs(&g, "youtube", &BfsParams { source: 0, start_level: 2, ..BfsParams::default() })
    })
    .clone()
}

/// libquantum at experiment scale (24 MB node array).
pub fn libquantum_scale() -> UseCase {
    libquantum(1_500_000, 4)
}

/// bwaves at experiment scale (the scattered stream spans ~7 MB and
/// crosses a page nearly every iteration).
pub fn bwaves_scale() -> UseCase {
    bwaves(96, 96, 256)
}

/// lbm at experiment scale (9 planes of 2 MB).
pub fn lbm_scale() -> UseCase {
    lbm(262_144, 9)
}

/// milc at experiment scale (4 streams of 8 MB).
pub fn milc_scale() -> UseCase {
    milc(524_288, 4)
}

/// leslie at experiment scale (3 ROIs over padded 2-D arrays).
pub fn leslie_scale() -> UseCase {
    leslie(192, 192)
}

/// All five custom-prefetcher use-cases, in Figure 17 order.
pub fn prefetch_suite() -> Vec<UseCase> {
    vec![libquantum_scale(), bwaves_scale(), lbm_scale(), milc_scale(), leslie_scale()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_named_usecases() {
        assert_eq!(astar_custom().name, "astar");
        assert_eq!(astar_slipstream().name, "astar-slipstream");
        assert_eq!(astar_alt().name, "astar-alt");
        assert_eq!(libquantum_scale().name, "libquantum");
        let suite = prefetch_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[4].name, "leslie");
    }
}
