//! Standard experiment-scale use-case instances (the equivalents of
//! the paper's §3 benchmark selections), plus keyed [`UseCaseFactory`]
//! constructors for the experiment planner (use-cases are built lazily
//! inside the executor's worker threads; the `OnceLock` caches below
//! make every rebuild after the first cheap, from any thread).

use pfm_workloads::graphs::{powerlaw_graph, road_graph, shuffle_labels_fraction};
use pfm_workloads::{
    astar, bfs, bwaves, lbm, leslie, libquantum, milc, AstarParams, AstarVariant, BfsParams,
    BfsVariant, UseCase, UseCaseFactory,
};
use std::sync::OnceLock;

/// astar with the default experiment-scale grid and the load-based
/// custom predictor.
pub fn astar_custom() -> UseCase {
    astar(&AstarParams::default())
}

/// astar with a specific index_queue scope (Figure 10).
pub fn astar_with_scope(scope: usize) -> UseCase {
    astar(&AstarParams {
        scope,
        ..AstarParams::default()
    })
}

/// astar with the slipstream-style restricted pre-execution (§1.1).
pub fn astar_slipstream() -> UseCase {
    astar(&AstarParams {
        variant: AstarVariant::Slipstream,
        ..AstarParams::default()
    })
}

/// astar with the table-mimicking astar-alt design (§5).
pub fn astar_alt() -> UseCase {
    astar(&AstarParams {
        variant: AstarVariant::Alt,
        ..AstarParams::default()
    })
}

fn roads_graph() -> &'static pfm_workloads::Csr {
    static G: OnceLock<pfm_workloads::Csr> = OnceLock::new();
    G.get_or_init(|| shuffle_labels_fraction(&road_graph(1000, 1000, 2000, 7), 11, 0.05))
}

fn roads_params() -> BfsParams {
    BfsParams {
        source: 5,
        start_level: 400,
        ..BfsParams::default()
    }
}

/// bfs on the road-network-like input ("Roads" in §4.2), measured in
/// steady state past the setup phase.
pub fn bfs_roads() -> UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| bfs(roads_graph(), "roads", &roads_params()))
        .clone()
}

/// bfs on Roads with a specific component window size (Figure 14).
pub fn bfs_roads_with_window(window: usize) -> UseCase {
    bfs(
        roads_graph(),
        "roads",
        &BfsParams {
            window,
            ..roads_params()
        },
    )
}

/// bfs on Roads with slipstream-style pre-execution (Figure 2).
pub fn bfs_roads_slipstream() -> UseCase {
    bfs(
        roads_graph(),
        "roads",
        &BfsParams {
            variant: BfsVariant::Slipstream,
            ..roads_params()
        },
    )
}

/// bfs on the power-law input ("Youtube" in §4.2).
pub fn bfs_youtube() -> UseCase {
    static UC: OnceLock<UseCase> = OnceLock::new();
    UC.get_or_init(|| {
        let g = powerlaw_graph(300_000, 3, 13);
        bfs(
            &g,
            "youtube",
            &BfsParams {
                source: 0,
                start_level: 2,
                ..BfsParams::default()
            },
        )
    })
    .clone()
}

/// libquantum at experiment scale (24 MB node array).
pub fn libquantum_scale() -> UseCase {
    libquantum(1_500_000, 4)
}

/// bwaves at experiment scale (the scattered stream spans ~7 MB and
/// crosses a page nearly every iteration).
pub fn bwaves_scale() -> UseCase {
    bwaves(96, 96, 256)
}

/// lbm at experiment scale (9 planes of 2 MB).
pub fn lbm_scale() -> UseCase {
    lbm(262_144, 9)
}

/// milc at experiment scale (4 streams of 8 MB).
pub fn milc_scale() -> UseCase {
    milc(524_288, 4)
}

/// leslie at experiment scale (3 ROIs over padded 2-D arrays).
pub fn leslie_scale() -> UseCase {
    leslie(192, 192)
}

/// All five custom-prefetcher use-cases, in Figure 17 order.
pub fn prefetch_suite() -> Vec<UseCase> {
    vec![
        libquantum_scale(),
        bwaves_scale(),
        lbm_scale(),
        milc_scale(),
        leslie_scale(),
    ]
}

// ---------------------------------------------------------------------------
// Keyed factories (the planner's currency). Each factory's key is the
// canonical content key of the parameters it bakes in, so the executor
// can deduplicate identical runs requested by different experiments.
// ---------------------------------------------------------------------------

/// Identity tag of the cached "Roads" input graph (construction
/// parameters pinned in [`bfs_roads`]).
const ROADS_TAG: &str = "roads(1000x1000+2000,seed7,shuf11@0.05)";

/// Identity tag of the cached "Youtube" input graph.
const YOUTUBE_TAG: &str = "youtube(pl300000m3,seed13)";

/// Factory for an astar use-case with explicit parameters.
pub fn astar_factory(params: AstarParams) -> UseCaseFactory {
    let name = match params.variant {
        AstarVariant::Custom => "astar",
        AstarVariant::Slipstream => "astar-slipstream",
        AstarVariant::Alt => "astar-alt",
    };
    UseCaseFactory::new(name, params.key(), move || astar(&params))
}

/// Factory for [`astar_custom`].
pub fn astar_custom_factory() -> UseCaseFactory {
    UseCaseFactory::new("astar", AstarParams::default().key(), || {
        static UC: OnceLock<UseCase> = OnceLock::new();
        UC.get_or_init(astar_custom).clone()
    })
}

/// Factory for [`bfs_roads`].
pub fn bfs_roads_factory() -> UseCaseFactory {
    UseCaseFactory::new("bfs-roads", roads_params().key(ROADS_TAG), bfs_roads)
}

/// Factory for bfs on Roads with a specific component window
/// (Figure 14).
pub fn bfs_roads_window_factory(window: usize) -> UseCaseFactory {
    let params = BfsParams {
        window,
        ..roads_params()
    };
    UseCaseFactory::new("bfs-roads", params.key(ROADS_TAG), move || {
        bfs(roads_graph(), "roads", &params)
    })
}

/// Factory for [`bfs_roads_slipstream`].
pub fn bfs_roads_slipstream_factory() -> UseCaseFactory {
    let params = BfsParams {
        variant: BfsVariant::Slipstream,
        ..roads_params()
    };
    UseCaseFactory::new(
        "bfs-roads-slipstream",
        params.key(ROADS_TAG),
        bfs_roads_slipstream,
    )
}

/// Factory for [`bfs_youtube`].
pub fn bfs_youtube_factory() -> UseCaseFactory {
    let params = BfsParams {
        source: 0,
        start_level: 2,
        ..BfsParams::default()
    };
    UseCaseFactory::new("bfs-youtube", params.key(YOUTUBE_TAG), bfs_youtube)
}

/// Factory for [`libquantum_scale`].
pub fn libquantum_factory() -> UseCaseFactory {
    UseCaseFactory::new("libquantum", "libquantum[n1500000_c4]", libquantum_scale)
}

/// Factory for [`bwaves_scale`].
pub fn bwaves_factory() -> UseCaseFactory {
    UseCaseFactory::new("bwaves", "bwaves[96x96x256]", bwaves_scale)
}

/// Factory for [`lbm_scale`].
pub fn lbm_factory() -> UseCaseFactory {
    UseCaseFactory::new("lbm", "lbm[n262144_p9]", lbm_scale)
}

/// Factory for [`milc_scale`].
pub fn milc_factory() -> UseCaseFactory {
    UseCaseFactory::new("milc", "milc[n524288_s4]", milc_scale)
}

/// Factory for [`leslie_scale`].
pub fn leslie_factory() -> UseCaseFactory {
    UseCaseFactory::new("leslie", "leslie[192x192]", leslie_scale)
}

/// Factories for the five custom-prefetcher use-cases, in Figure 17
/// order.
pub fn prefetch_suite_factories() -> Vec<UseCaseFactory> {
    vec![
        libquantum_factory(),
        bwaves_factory(),
        lbm_factory(),
        milc_factory(),
        leslie_factory(),
    ]
}

/// Every distinct use-case the experiment suite simulates, one factory
/// each. This is the workload mix behind both the golden-stats
/// regression test and the `repro --bench` throughput harness, so the
/// two measure exactly the code paths the experiments exercise.
pub fn throughput_suite_factories() -> Vec<UseCaseFactory> {
    vec![
        astar_custom_factory(),
        astar_factory(AstarParams {
            variant: AstarVariant::Slipstream,
            ..AstarParams::default()
        }),
        astar_factory(AstarParams {
            variant: AstarVariant::Alt,
            ..AstarParams::default()
        }),
        bfs_roads_factory(),
        bfs_roads_slipstream_factory(),
        bfs_youtube_factory(),
        libquantum_factory(),
        bwaves_factory(),
        lbm_factory(),
        milc_factory(),
        leslie_factory(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_named_usecases() {
        assert_eq!(astar_custom().name, "astar");
        assert_eq!(astar_slipstream().name, "astar-slipstream");
        assert_eq!(astar_alt().name, "astar-alt");
        assert_eq!(libquantum_scale().name, "libquantum");
        let suite = prefetch_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[4].name, "leslie");
    }
}
