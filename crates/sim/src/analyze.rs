//! Static analysis of registered use cases: merges every PC the
//! configuration bitstream watches — the custom component's own
//! [`watchlist`](pfm_fabric::CustomComponent::watchlist), the Fetch
//! Snoop Table, and the Retire Snoop Table — into one
//! [`WatchEntry`] list and runs the `pfm-analyze` check suite over the
//! assembled kernel and its initial memory image.
//!
//! This is the CI teeth behind the watchlist contract: `repro
//! --analyze` (and the `pfm-analyze` binary) call [`analyze_usecase`]
//! for every factory in
//! [`usecases::throughput_suite_factories`](crate::usecases::throughput_suite_factories)
//! and fail on any finding, so a kernel edit that silently strands a
//! snoop PC breaks the build instead of the results.

use pfm_analyze::{Analysis, WatchEntry};
use pfm_fabric::{ObserveKind, WatchKind};
use pfm_workloads::UseCase;

/// The merged watchlist of one use case, each entry tagged with the
/// origin that claims it (`component <name>`, `fst`, or `rst`).
pub fn watchlist_for(uc: &UseCase) -> Vec<WatchEntry> {
    let component = uc.component();
    let mut watch: Vec<WatchEntry> = component
        .watchlist()
        .into_iter()
        .map(|(pc, kind)| WatchEntry {
            pc,
            kind,
            origin: format!("component {}", component.name()),
        })
        .collect();
    // Every FST entry redirects fetch on a predicted-taken branch, so
    // it must name a conditional branch.
    watch.extend(uc.fst.iter().map(|&pc| WatchEntry {
        pc,
        kind: WatchKind::CondBranch,
        origin: "fst".to_string(),
    }));
    // RST observations constrain the retiring instruction's shape;
    // pure ROI markers (no observation) place no shape constraint and
    // are covered by the component/FST entries that share the PC.
    watch.extend(uc.rst.iter().filter_map(|(&pc, entry)| {
        let kind = match entry.observe? {
            ObserveKind::DestValue => WatchKind::DestValue,
            ObserveKind::StoreValue => WatchKind::Store,
            ObserveKind::BranchOutcome => WatchKind::CondBranch,
        };
        Some(WatchEntry {
            pc,
            kind,
            origin: "rst".to_string(),
        })
    }));
    watch
}

/// Runs the full `pfm-analyze` suite over one use case with an
/// explicit watchlist. This is the test seam: corrupting one entry
/// before calling it must surface as a `watch-mismatch` finding.
pub fn analyze_usecase_with(uc: &UseCase, watch: &[WatchEntry]) -> Analysis {
    let data_pages = uc.memory.committed().resident_page_addrs();
    pfm_analyze::analyze(&uc.program, watch, &data_pages)
}

/// Runs the full `pfm-analyze` suite over one use case: kernel CFG +
/// dataflow checks plus validation of the merged watchlist against
/// the assembled program.
pub fn analyze_usecase(uc: &UseCase) -> Analysis {
    analyze_usecase_with(uc, &watchlist_for(uc))
}

/// Analyzes every registered use case (the throughput-suite registry)
/// and returns `(name, findings)` per program — the shape
/// [`pfm_analyze::report_to_json`] renders. `corrupt_watch` is the
/// acceptance-test seam: for the named use case the first watchlist
/// entry's PC is redirected to an address outside any kernel, which
/// must surface as a `watch-mismatch` finding.
pub fn analyze_all(corrupt_watch: Option<&str>) -> Vec<(String, Vec<pfm_analyze::Finding>)> {
    let mut report = Vec::new();
    for factory in crate::usecases::throughput_suite_factories() {
        let uc = factory.build();
        let mut watch = watchlist_for(&uc);
        if corrupt_watch == Some(uc.name.as_str()) {
            if let Some(entry) = watch.first_mut() {
                entry.pc = 0xdead_0000;
            }
        }
        let analysis = analyze_usecase_with(&uc, &watch);
        report.push((uc.name.clone(), analysis.findings));
    }
    report
}

/// Derives the interface-inference profile (`pfm-analyze/2`) for every
/// registered use case and returns `(name, profile)` per program — the
/// shape [`pfm_analyze::profile_report_to_json`] renders. The same
/// `corrupt_watch` seam as [`analyze_all`]: the redirected PC cannot be
/// matched by any derived watch entry, so the named use case's coverage
/// records a gap (and `derived-watch-gap` fires through the check
/// suite).
pub fn derive_all(
    corrupt_watch: Option<&str>,
) -> Vec<(String, pfm_analyze::profile::ProgramProfile)> {
    let mut report = Vec::new();
    for factory in crate::usecases::throughput_suite_factories() {
        let uc = factory.build();
        let mut watch = watchlist_for(&uc);
        if corrupt_watch == Some(uc.name.as_str()) {
            if let Some(entry) = watch.first_mut() {
                entry.pc = 0xdead_0000;
            }
        }
        let analysis = analyze_usecase_with(&uc, &watch);
        report.push((uc.name.clone(), analysis.profile));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::usecases;

    /// The headline acceptance test: every registered use case's
    /// configuration is consistent with its assembled kernel.
    #[test]
    fn all_registered_use_cases_analyze_clean() {
        for factory in usecases::throughput_suite_factories() {
            let uc = factory.build();
            let analysis = analyze_usecase(&uc);
            assert!(
                analysis.findings.is_empty(),
                "{}: static analysis found defects:\n  {}",
                uc.name,
                analysis
                    .findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n  ")
            );
        }
    }

    /// Corrupting one watch PC must produce a finding that names the
    /// PC and the expected kind — the analyzer actually cross-checks
    /// the watchlist rather than rubber-stamping it.
    #[test]
    fn corrupted_watch_pc_is_detected() {
        let uc = usecases::astar_custom();
        let mut watch = watchlist_for(&uc);
        assert!(!watch.is_empty(), "astar must watch something");
        let victim = &mut watch[0];
        victim.pc = 0xdead_0000;
        let expected_kind = victim.kind;
        let origin = victim.origin.clone();
        let analysis = analyze_usecase_with(&uc, &watch);
        let f = analysis
            .findings
            .iter()
            .find(|f| f.check == "watch-mismatch")
            .expect("the corrupted entry is flagged");
        assert_eq!(f.pc, Some(0xdead_0000));
        assert_eq!(f.origin, origin);
        assert!(f.message.contains("0xdead0000"), "{}", f.message);
        assert!(
            f.message.contains(&expected_kind.to_string()),
            "{}",
            f.message
        );
    }

    /// The merged watchlist covers all three origins for a use case
    /// that exercises them.
    #[test]
    fn watchlist_merges_component_fst_and_rst() {
        let uc = usecases::astar_custom();
        let watch = watchlist_for(&uc);
        let has = |p: &str| watch.iter().any(|w| w.origin.starts_with(p));
        assert!(has("component "), "component watchlist present");
        assert!(has("fst"), "FST entries present");
        assert!(has("rst"), "RST entries present");
    }
}
