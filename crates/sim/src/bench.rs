//! Simulator-throughput benchmark harness (`repro --bench`).
//!
//! Runs the full use-case suite — every distinct workload the
//! experiment plans simulate, in both baseline and PFM modes — and
//! reports simulation speed as MKIPS (million retired instructions per
//! host-second). This bounds how much paper-scale experimentation a
//! wall-clock budget buys, and makes hot-loop regressions visible as a
//! number rather than a vague "repro feels slow".
//!
//! Throughput is *host* timing and therefore not deterministic; the
//! harness reuses the executor's wall-clock plumbing and never touches
//! simulated statistics, so it cannot perturb results (the golden-stats
//! test pins those separately).

use crate::exec::{execute, ExecOptions};
use crate::plan::RunSpec;
use crate::runner::RunConfig;
use crate::usecases;

/// Throughput of one (use-case, mode) run.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Use-case name, e.g. `astar`.
    pub name: String,
    /// `baseline` or `pfm`.
    pub mode: &'static str,
    /// Instructions retired by the run.
    pub retired: u64,
    /// Host seconds the run took.
    pub seconds: f64,
}

impl BenchRow {
    /// Million retired instructions per host-second.
    pub fn mkips(&self) -> f64 {
        self.retired as f64 / self.seconds.max(1e-9) / 1e6
    }
}

/// A completed throughput benchmark.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-run throughput, suite order (baseline then pfm per
    /// use-case).
    pub rows: Vec<BenchRow>,
    /// End-to-end wall-clock seconds for the whole suite.
    pub wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Instruction budget per run.
    pub max_instrs: u64,
}

impl BenchReport {
    /// Total instructions retired across the suite.
    pub fn total_retired(&self) -> u64 {
        self.rows.iter().map(|r| r.retired).sum()
    }

    /// Suite-level MKIPS: total retired over *wall* seconds, so worker
    /// overlap counts (this is the number that predicts `repro --all`
    /// turnaround).
    pub fn aggregate_mkips(&self) -> f64 {
        self.total_retired() as f64 / self.wall_seconds.max(1e-9) / 1e6
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulator throughput ({} instrs/run, {} job(s))\n",
            self.max_instrs, self.jobs
        ));
        out.push_str(&format!(
            "{:<22} {:<9} {:>12} {:>9} {:>8}\n",
            "use case", "mode", "retired", "seconds", "MKIPS"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<22} {:<9} {:>12} {:>9.3} {:>8.2}\n",
                r.name,
                r.mode,
                r.retired,
                r.seconds,
                r.mkips()
            ));
        }
        out.push_str(&format!(
            "total: {} instrs in {:.2}s wall = {:.2} MKIPS aggregate",
            self.total_retired(),
            self.wall_seconds,
            self.aggregate_mkips()
        ));
        out
    }

    /// JSON document for `BENCH_sim_throughput.json` (hand-rolled — the
    /// workspace deliberately has no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"max_instrs\": {},\n", self.max_instrs));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"wall_seconds\": {:.6},\n", self.wall_seconds));
        out.push_str(&format!("  \"total_retired\": {},\n", self.total_retired()));
        out.push_str(&format!(
            "  \"aggregate_mkips\": {:.4},\n",
            self.aggregate_mkips()
        ));
        out.push_str("  \"runs\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"mode\": \"{}\", \"retired\": {}, \
                 \"seconds\": {:.6}, \"mkips\": {:.4}}}{}\n",
                json_string(&r.name),
                r.mode,
                r.retired,
                r.seconds,
                r.mkips(),
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers today;
/// this keeps the writer correct if that ever changes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Runs the throughput suite: one baseline and one PFM run per
/// use-case in [`usecases::throughput_suite_factories`], executed by
/// the normal deduplicating executor.
pub fn run_bench(rc: &RunConfig, opts: &ExecOptions) -> BenchReport {
    let mut specs = Vec::new();
    let mut modes: Vec<&'static str> = Vec::new();
    for uc in usecases::throughput_suite_factories() {
        specs.push(RunSpec::baseline(uc.clone(), rc));
        modes.push("baseline");
        specs.push(RunSpec::pfm(
            uc,
            pfm_fabric::FabricParams::paper_default(),
            rc,
        ));
        modes.push("pfm");
    }
    let (runs, report) = execute(&specs, opts);

    // The suite has no duplicate specs, so executor report order ==
    // spec order; pair timings with results by key anyway. A run that
    // failed has no throughput — it is dropped from the table (the
    // executor's failure report covers it).
    let rows = report
        .runs
        .iter()
        .zip(&modes)
        .filter_map(|(r, mode)| {
            let result = runs.get(&r.key).ok()?;
            Some(BenchRow {
                name: r.name.clone(),
                mode,
                retired: result.stats.retired,
                seconds: r.seconds,
            })
        })
        .collect();

    BenchReport {
        rows,
        wall_seconds: report.wall_seconds,
        jobs: report.jobs,
        max_instrs: rc.max_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_covers_suite_and_reports_positive_throughput() {
        let rc = RunConfig {
            max_instrs: 5_000,
            ..RunConfig::test_scale()
        };
        let report = run_bench(&rc, &ExecOptions::serial());
        assert_eq!(
            report.rows.len(),
            2 * usecases::throughput_suite_factories().len()
        );
        for row in &report.rows {
            assert!(row.retired > 0, "{} retired nothing", row.name);
            assert!(row.mkips() > 0.0);
        }
        assert!(report.aggregate_mkips() > 0.0);
        assert!(report.total_retired() >= 5_000 * report.rows.len() as u64 / 2);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = BenchReport {
            rows: vec![BenchRow {
                name: "astar".to_string(),
                mode: "baseline",
                retired: 1000,
                seconds: 0.5,
            }],
            wall_seconds: 0.5,
            jobs: 1,
            max_instrs: 1000,
        };
        let j = report.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"name\": \"astar\""));
        assert!(j.contains("\"aggregate_mkips\": 0.0020"));
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
