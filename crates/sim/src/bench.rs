//! Simulator-throughput benchmark harness (`repro --bench`).
//!
//! Runs the full use-case suite — every distinct workload the
//! experiment plans simulate, in both baseline and PFM modes — and
//! reports simulation speed as MKIPS (million retired instructions per
//! host-second). This bounds how much paper-scale experimentation a
//! wall-clock budget buys, and makes hot-loop regressions visible as a
//! number rather than a vague "repro feels slow".
//!
//! With `--functional`, a second separately-timed batch retires the
//! same suite on the pre-decoded functional executor and the report
//! adds per-use-case functional MKIPS plus the aggregate speedup ratio
//! — the number the two-speed design is judged by.
//!
//! Throughput is *host* timing and therefore not deterministic; the
//! harness reuses the executor's wall-clock plumbing and never touches
//! simulated statistics, so it cannot perturb results (the golden-stats
//! test pins those separately).

use crate::exec::{execute, ExecOptions};
use crate::plan::RunSpec;
use crate::runner::RunConfig;
use crate::usecases;

/// Throughput of one (use-case, mode) run.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Use-case name, e.g. `astar`.
    pub name: String,
    /// `baseline`, `pfm` or `functional`.
    pub mode: &'static str,
    /// Instructions retired by the run.
    pub retired: u64,
    /// Host seconds the run took.
    pub seconds: f64,
    /// Whether the workload ran to completion (halted) rather than
    /// being cut off by the instruction budget — a run that exits
    /// early reports honest but incomparable throughput, so the table
    /// marks it instead of letting it masquerade as budget-limited.
    pub completed: bool,
}

impl BenchRow {
    /// Million retired instructions per host-second.
    pub fn mkips(&self) -> f64 {
        self.retired as f64 / self.seconds.max(1e-9) / 1e6
    }
}

/// A completed throughput benchmark.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Per-run detailed throughput, suite order (baseline then pfm per
    /// use-case).
    pub rows: Vec<BenchRow>,
    /// Per-use-case functional throughput (empty unless the functional
    /// batch was requested). Timed as a separate batch, so its wall
    /// clock never overlaps the detailed rows'.
    pub functional_rows: Vec<BenchRow>,
    /// End-to-end wall-clock seconds for the detailed suite.
    pub wall_seconds: f64,
    /// End-to-end wall-clock seconds for the functional batch (0 if
    /// not requested).
    pub functional_wall_seconds: f64,
    /// Worker threads used.
    pub jobs: usize,
    /// Instruction budget per run.
    pub max_instrs: u64,
}

impl BenchReport {
    /// Total instructions retired across the detailed suite.
    pub fn total_retired(&self) -> u64 {
        self.rows.iter().map(|r| r.retired).sum()
    }

    /// Suite-level detailed MKIPS: total retired over *wall* seconds,
    /// so worker overlap counts (this is the number that predicts
    /// `repro --all` turnaround).
    pub fn aggregate_mkips(&self) -> f64 {
        self.total_retired() as f64 / self.wall_seconds.max(1e-9) / 1e6
    }

    /// Total instructions retired by the functional batch.
    pub fn functional_total_retired(&self) -> u64 {
        self.functional_rows.iter().map(|r| r.retired).sum()
    }

    /// Aggregate MKIPS of the functional batch.
    pub fn functional_aggregate_mkips(&self) -> f64 {
        self.functional_total_retired() as f64 / self.functional_wall_seconds.max(1e-9) / 1e6
    }

    /// Functional-over-detailed aggregate throughput ratio (the
    /// two-speed acceptance number; 0 if no functional batch ran).
    pub fn functional_speedup(&self) -> f64 {
        if self.functional_rows.is_empty() {
            return 0.0;
        }
        self.functional_aggregate_mkips() / self.aggregate_mkips().max(1e-12)
    }

    /// Human-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulator throughput ({} instrs/run, {} job(s))\n",
            self.max_instrs, self.jobs
        ));
        out.push_str(&format!(
            "{:<22} {:<10} {:>12} {:>9} {:>9} {:>9}\n",
            "use case", "mode", "retired", "seconds", "MKIPS", "completed"
        ));
        for r in self.rows.iter().chain(&self.functional_rows) {
            out.push_str(&format!(
                "{:<22} {:<10} {:>12} {:>9.3} {:>9.2} {:>9}\n",
                r.name,
                r.mode,
                r.retired,
                r.seconds,
                r.mkips(),
                if r.completed { "yes" } else { "no" }
            ));
        }
        out.push_str(&format!(
            "total: {} instrs in {:.2}s wall = {:.2} MKIPS aggregate",
            self.total_retired(),
            self.wall_seconds,
            self.aggregate_mkips()
        ));
        if !self.functional_rows.is_empty() {
            out.push_str(&format!(
                "\nfunctional: {} instrs in {:.2}s wall = {:.2} MKIPS ({:.1}x detailed)",
                self.functional_total_retired(),
                self.functional_wall_seconds,
                self.functional_aggregate_mkips(),
                self.functional_speedup()
            ));
        }
        out
    }

    /// JSON document for `BENCH_sim_throughput.json` (hand-rolled — the
    /// workspace deliberately has no serialization dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"max_instrs\": {},\n", self.max_instrs));
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"wall_seconds\": {:.6},\n", self.wall_seconds));
        out.push_str(&format!("  \"total_retired\": {},\n", self.total_retired()));
        out.push_str(&format!(
            "  \"aggregate_mkips\": {:.4},\n",
            self.aggregate_mkips()
        ));
        if !self.functional_rows.is_empty() {
            out.push_str(&format!(
                "  \"functional_wall_seconds\": {:.6},\n",
                self.functional_wall_seconds
            ));
            out.push_str(&format!(
                "  \"functional_total_retired\": {},\n",
                self.functional_total_retired()
            ));
            out.push_str(&format!(
                "  \"functional_aggregate_mkips\": {:.4},\n",
                self.functional_aggregate_mkips()
            ));
            out.push_str(&format!(
                "  \"functional_speedup\": {:.2},\n",
                self.functional_speedup()
            ));
        }
        out.push_str("  \"runs\": [\n");
        let all: Vec<&BenchRow> = self.rows.iter().chain(&self.functional_rows).collect();
        for (i, r) in all.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"mode\": \"{}\", \"retired\": {}, \
                 \"seconds\": {:.6}, \"mkips\": {:.4}, \"completed\": {}}}{}\n",
                json_string(&r.name),
                r.mode,
                r.retired,
                r.seconds,
                r.mkips(),
                r.completed,
                if i + 1 < all.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers today;
/// this keeps the writer correct if that ever changes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Collects one batch of specs into bench rows, pairing executor
/// timings with results by key. A run that failed has no throughput —
/// it is dropped from the table (the executor's failure report covers
/// it).
fn run_batch(
    specs: &[RunSpec],
    modes: &[&'static str],
    opts: &ExecOptions,
) -> (Vec<BenchRow>, f64) {
    let (runs, report) = execute(specs, opts);
    let rows = report
        .runs
        .iter()
        .zip(modes)
        .filter_map(|(r, mode)| {
            let result = runs.get(&r.key).ok()?;
            Some(BenchRow {
                name: r.name.clone(),
                mode,
                retired: result.stats.retired,
                seconds: r.seconds,
                completed: result.completed,
            })
        })
        .collect();
    (rows, report.wall_seconds)
}

/// Runs the throughput suite: one baseline and one PFM run per
/// use-case in [`usecases::throughput_suite_factories`], executed by
/// the normal deduplicating executor. With `functional`, a second
/// separately-timed batch retires the same suite on the functional
/// executor (one run per use-case — fabric interventions are
/// microarchitectural, so baseline and PFM share a committed stream).
pub fn run_bench(rc: &RunConfig, opts: &ExecOptions, functional: bool) -> BenchReport {
    // The benchmark times real simulation. A result store would serve
    // rows as zero-second cache hits and drop them from the timing
    // table, so the suite always runs storeless whatever the caller's
    // options say.
    let opts = ExecOptions {
        store: None,
        ..opts.clone()
    };
    let opts = &opts;
    let mut specs = Vec::new();
    let mut modes: Vec<&'static str> = Vec::new();
    for uc in usecases::throughput_suite_factories() {
        specs.push(RunSpec::baseline(uc.clone(), rc));
        modes.push("baseline");
        specs.push(RunSpec::pfm(
            uc,
            pfm_fabric::FabricParams::paper_default(),
            rc,
        ));
        modes.push("pfm");
    }
    let (rows, wall_seconds) = run_batch(&specs, &modes, opts);

    let (functional_rows, functional_wall_seconds) = if functional {
        let fspecs: Vec<RunSpec> = usecases::throughput_suite_factories()
            .into_iter()
            .map(|uc| RunSpec::functional(uc, rc))
            .collect();
        let fmodes = vec!["functional"; fspecs.len()];
        run_batch(&fspecs, &fmodes, opts)
    } else {
        (Vec::new(), 0.0)
    };

    BenchReport {
        rows,
        functional_rows,
        wall_seconds,
        functional_wall_seconds,
        jobs: opts.jobs.max(1),
        max_instrs: rc.max_instrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_covers_suite_and_reports_positive_throughput() {
        let rc = RunConfig {
            max_instrs: 5_000,
            ..RunConfig::test_scale()
        };
        let report = run_bench(&rc, &ExecOptions::serial(), false);
        assert_eq!(
            report.rows.len(),
            2 * usecases::throughput_suite_factories().len()
        );
        assert!(report.functional_rows.is_empty());
        for row in &report.rows {
            assert!(row.retired > 0, "{} retired nothing", row.name);
            assert!(row.mkips() > 0.0);
            assert!(!row.completed, "5k instrs cannot finish {}", row.name);
        }
        assert!(report.aggregate_mkips() > 0.0);
        assert!(report.total_retired() >= 5_000 * report.rows.len() as u64 / 2);
    }

    #[test]
    fn completed_flag_tracks_kernel_halt_not_budget() {
        // leslie halts at ~1.22M retired instructions — the only suite
        // kernel that finishes under the paper budget. Its row must
        // report completed at a budget above the halt point and
        // not-completed below it (regression: the shipped JSON once
        // showed every row as not-completed because it was generated
        // at quick scale).
        let uc = usecases::leslie_factory();
        let over = RunSpec::functional(
            uc.clone(),
            &RunConfig {
                max_instrs: 1_500_000,
                ..RunConfig::test_scale()
            },
        )
        .execute()
        .unwrap();
        assert!(over.completed, "leslie halts under a 1.5M budget");
        assert!(over.stats.retired < 1_500_000);

        let under = RunSpec::functional(
            uc,
            &RunConfig {
                max_instrs: 300_000,
                ..RunConfig::test_scale()
            },
        )
        .execute()
        .unwrap();
        assert!(!under.completed, "300k instrs cannot finish leslie");
        assert!(under.stats.retired >= 300_000);
    }

    #[test]
    fn bench_ignores_an_attached_result_store() {
        // Cache hits have no timing, so the benchmark must strip the
        // store: a second run against the same options still produces
        // a full, honestly-timed table.
        let rc = RunConfig {
            max_instrs: 2_000,
            ..RunConfig::test_scale()
        };
        let dir = std::env::temp_dir().join(format!("pfm-bench-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = std::sync::Arc::new(
            crate::store::ResultStore::open(&dir, crate::store::CodeFingerprint::fixed(3)).unwrap(),
        );
        let opts = ExecOptions::serial().with_store(store.clone());
        let first = run_bench(&rc, &opts, false);
        let second = run_bench(&rc, &opts, false);
        assert_eq!(first.rows.len(), second.rows.len());
        assert!(!second.rows.is_empty());
        assert!(store.is_empty(), "bench must never write the store");
    }

    #[test]
    fn functional_batch_adds_rows_and_speedup() {
        let rc = RunConfig {
            max_instrs: 5_000,
            ..RunConfig::test_scale()
        };
        let report = run_bench(&rc, &ExecOptions::serial(), true);
        let n = usecases::throughput_suite_factories().len();
        assert_eq!(report.functional_rows.len(), n);
        for row in &report.functional_rows {
            assert_eq!(row.mode, "functional");
            assert!(row.retired > 0);
        }
        assert!(report.functional_aggregate_mkips() > 0.0);
        assert!(report.functional_speedup() > 0.0);
        let j = report.to_json();
        assert!(j.contains("\"functional_aggregate_mkips\""));
        assert!(j.contains("\"functional_speedup\""));
        assert!(j.contains("\"mode\": \"functional\""));
        assert!(report.render().contains("functional:"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let report = BenchReport {
            rows: vec![BenchRow {
                name: "astar".to_string(),
                mode: "baseline",
                retired: 1000,
                seconds: 0.5,
                completed: false,
            }],
            functional_rows: Vec::new(),
            wall_seconds: 0.5,
            functional_wall_seconds: 0.0,
            jobs: 1,
            max_instrs: 1000,
        };
        let j = report.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"name\": \"astar\""));
        assert!(j.contains("\"aggregate_mkips\": 0.0020"));
        assert!(j.contains("\"completed\": false"));
        assert!(
            !j.contains("functional_speedup"),
            "no functional keys without a functional batch"
        );
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\u000ay\"");
    }
}
