use pfm_fabric::{FabricParams, PortPolicy};
use pfm_sim::{run_baseline, run_pfm, RunConfig};
use pfm_workloads::{astar, AstarParams, AstarVariant};

fn main() {
    let uc = astar(&AstarParams::default());
    let mut rc = RunConfig::paper_scale();
    rc.max_instrs = 800_000;
    let base = run_baseline(&uc, &rc).unwrap();
    println!(
        "baseline IPC {:.3} MPKI {:.1}",
        base.ipc(),
        base.stats.mpki()
    );
    for d in [0u64, 2, 4, 8] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(d)
            .queue(32)
            .port(PortPolicy::All);
        let r = run_pfm(&uc, p, &rc).unwrap();
        println!("delay{d}: +{:.0}%", r.speedup_over(&base));
    }
    for q in [8usize, 16, 32, 64] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(q)
            .port(PortPolicy::All);
        let r = run_pfm(&uc, p, &rc).unwrap();
        println!("queue{q}: +{:.0}%", r.speedup_over(&base));
    }
    for (pp, name) in [
        (PortPolicy::All, "ALL"),
        (PortPolicy::Ls, "LS"),
        (PortPolicy::Ls1, "LS1"),
    ] {
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(32)
            .port(pp);
        let r = run_pfm(&uc, p, &rc).unwrap();
        println!("port{name}: +{:.0}%", r.speedup_over(&base));
    }
    for scope in [2usize, 4, 8, 16] {
        let ap = AstarParams {
            scope,
            ..AstarParams::default()
        };
        let uc2 = astar(&ap);
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(32)
            .port(PortPolicy::Ls1);
        let r = run_pfm(&uc2, p, &rc).unwrap();
        println!("scope{scope}: +{:.0}%", r.speedup_over(&base));
    }
    // slipstream + alt variants (Fig 2 / Table 4 datapoints)
    for v in [AstarVariant::Slipstream, AstarVariant::Alt] {
        let ap = AstarParams {
            variant: v,
            ..AstarParams::default()
        };
        let uc2 = astar(&ap);
        let p = FabricParams::paper_default()
            .clk_w(4, 4)
            .delay(4)
            .queue(32)
            .port(PortPolicy::Ls1);
        let r = run_pfm(&uc2, p, &rc).unwrap();
        println!(
            "{:?}: +{:.0}% MPKI {:.2}",
            v,
            r.speedup_over(&base),
            r.stats.mpki()
        );
    }
}
