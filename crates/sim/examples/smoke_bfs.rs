use pfm_fabric::FabricParams;
use pfm_sim::{run_baseline, run_pfm, RunConfig};
use pfm_workloads::graphs::shuffle_labels_fraction;
use pfm_workloads::{bfs, road_graph, BfsParams};
use std::time::Instant;

fn main() {
    let t = Instant::now();
    let g = shuffle_labels_fraction(&road_graph(1000, 1000, 2000, 7), 11, 0.05);
    println!(
        "graph built: {} nodes {} edges ({:.1}s)",
        g.num_nodes(),
        g.num_edges(),
        t.elapsed().as_secs_f64()
    );
    let t = Instant::now();
    let bp = BfsParams {
        start_level: 400,
        source: 5,
        ..BfsParams::default()
    };
    let uc = bfs(&g, "roads", &bp);
    println!("usecase built ({:.1}s)", t.elapsed().as_secs_f64());
    let mut rc = RunConfig::paper_scale();
    rc.max_instrs = 800_000;
    let base = run_baseline(&uc, &rc).unwrap();
    println!(
        "baseline IPC {:.3} MPKI {:.1} dram {} l1d_miss {}",
        base.ipc(),
        base.stats.mpki(),
        base.hier.dram_accesses,
        base.hier.l1d_misses
    );
    let pbp = run_baseline(&uc, &rc.clone().perfect_bp()).unwrap();
    println!("perfBP:  +{:.0}%", pbp.speedup_over(&base));
    let pd = run_baseline(&uc, &rc.clone().perfect_dcache()).unwrap();
    println!("perfD$:  +{:.0}%", pd.speedup_over(&base));
    let pboth = run_baseline(&uc, &rc.clone().perfect_bp().perfect_dcache()).unwrap();
    println!("perfBP+D$: +{:.0}%", pboth.speedup_over(&base));
    for (c, w) in [(4, 1), (4, 2), (4, 4)] {
        let p = FabricParams::paper_default()
            .clk_w(c, w)
            .delay(0)
            .queue(32)
            .port(pfm_fabric::PortPolicy::All);
        match run_pfm(&uc, p, &rc) {
            Ok(r) => {
                let f = r.fabric.unwrap();
                println!("clk{c}_w{w}: +{:.0}% MPKI {:.2} | fst {:.1}% rst {:.1}% mismatch {} dropped {} fabric_mispred {} stalls {} mlb {} squash {}",
                    r.speedup_over(&base), r.stats.mpki(), f.fst_hit_pct(), f.rst_hit_pct(),
                    f.pred_mismatch_passes, f.preds_dropped, r.stats.fabric_mispredicts,
                    r.stats.fetch_fabric_stall_cycles, f.mlb_replays, f.squash_packets);
            }
            Err(e) => println!("clk{c}_w{w}: ERROR {e}"),
        }
    }
}
