use pfm_fabric::{FabricParams, PortPolicy};
use pfm_sim::{run_baseline, run_pfm, RunConfig};

fn main() {
    let rc = RunConfig::paper_scale();
    for uc in pfm_sim::usecases::prefetch_suite() {
        let base = run_baseline(&uc, &rc).unwrap();
        print!(
            "{:<11} base IPC {:.2} l1dm {:>6} l2h {:>6} l3h {:>6} dram {:>6} |",
            uc.name,
            base.ipc(),
            base.hier.l1d_misses,
            base.hier.l2_hits,
            base.hier.l3_hits,
            base.hier.dram_accesses
        );
        for (c, w) in [(4, 1), (4, 4)] {
            let p = FabricParams::paper_default()
                .clk_w(c, w)
                .delay(0)
                .queue(32)
                .port(PortPolicy::All);
            let r = run_pfm(&uc, p, &rc).unwrap();
            let f = r.fabric.unwrap();
            print!(
                " c{c}w{w}: +{:.0}% pf {} dram {} |",
                r.speedup_over(&base),
                f.prefetches_injected,
                r.hier.dram_accesses
            );
        }
        println!();
    }
}
