//! Functional/detailed equivalence gate: the pre-decoded functional
//! executor must retire the *exact same committed stream* as the
//! detailed out-of-order core — for every use case the experiment
//! suite simulates, in both baseline and PFM modes.
//!
//! The committed-stream checksum folds PCs, branch outcomes, register
//! writes and stores over the first `max_instrs` retired instructions,
//! so equality here means the two speeds are architecturally
//! interchangeable: the sampled-run mode may fast-forward functionally
//! and hand off to detailed intervals without changing what the
//! program computes.
//!
//! The budget is deliberately truncated — this runs as a CI smoke
//! step (`ci.sh`); the full-length equivalence is implied by
//! determinism plus the snapshot round-trip regression.

use pfm_fabric::FabricParams;
use pfm_sim::usecases::throughput_suite_factories;
use pfm_sim::{run_baseline, run_functional, run_pfm, RunConfig};

#[test]
fn functional_matches_detailed_for_every_use_case_and_mode() {
    let rc = RunConfig {
        max_instrs: 10_000,
        ..RunConfig::test_scale()
    };
    let factories = throughput_suite_factories();
    assert_eq!(factories.len(), 11, "suite shrank — update this gate");
    for factory in factories {
        let uc = factory.build();
        let name = factory.name();
        let fun = run_functional(&uc, &rc).unwrap_or_else(|e| panic!("{name} functional: {e}"));
        let base = run_baseline(&uc, &rc).unwrap_or_else(|e| panic!("{name} baseline: {e}"));
        let pfm = run_pfm(&uc, FabricParams::paper_default(), &rc)
            .unwrap_or_else(|e| panic!("{name} pfm: {e}"));

        assert_eq!(
            fun.arch_checksum, base.arch_checksum,
            "{name}: functional and baseline committed streams differ"
        );
        assert_eq!(
            fun.arch_checksum, pfm.arch_checksum,
            "{name}: functional and PFM committed streams differ \
             (fabric interventions must stay microarchitectural)"
        );
        assert_eq!(
            fun.completed, base.completed,
            "{name}: completion disagrees between speeds"
        );
        assert!(fun.stats.retired > 0, "{name}: functional retired nothing");
        assert_eq!(
            fun.stats.loads, base.stats.loads,
            "{name}: retired load counts differ"
        );
        assert_eq!(
            fun.stats.stores, base.stats.stores,
            "{name}: retired store counts differ"
        );
    }
}
