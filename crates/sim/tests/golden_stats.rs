//! Golden-stats regression test: every use case's complete statistics
//! vector, at a small instruction budget, folded into one checksum per
//! (use case, mode) pair and pinned against values captured *before*
//! the simulator's hot paths were optimized.
//!
//! This is the contract every fast path in the simulator must honor:
//! an optimization that changes any statistic — cycles, mispredicts,
//! cache hits, fabric counters — is a bug, not a speedup. The run-plan
//! dedup layer and the EXPERIMENTS.md tables both rely on per-run
//! determinism, so the checksums here must be stable across
//! debug/release builds, thread schedules, and host machines.
//!
//! Regenerating (only after an *intentional* model change): run with
//! `PFM_GOLDEN_PRINT=1` and paste the printed table over `GOLDEN`.

use pfm_sim::plan::RunSpec;
use pfm_sim::{exec, usecases, ExecOptions, RunConfig, RunResult};

/// Instruction budget: small enough to keep debug-build test time in
/// check, large enough to exercise squashes, cache misses, the TLB,
/// both prefetchers, and every fabric agent path.
const GOLDEN_INSTRS: u64 = 30_000;

/// FNV-1a over every statistic of a completed run. Field order is
/// fixed; adding a counter to any stats struct will change checksums
/// and require a deliberate regeneration.
fn checksum(r: &RunResult) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut fold = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(FNV_PRIME);
    };
    let s = &r.stats;
    for v in [
        s.cycles,
        s.retired,
        s.cond_branches,
        s.mispredicts,
        s.target_mispredicts,
        s.squash_mispredict,
        s.squash_disambiguation,
        s.squash_roi,
        s.fetch_icache_stall_cycles,
        s.fetch_fabric_stall_cycles,
        s.fetch_redirect_stall_cycles,
        s.retire_agent_stall_cycles,
        s.fabric_predictions_used,
        s.fabric_mispredicts,
        s.fabric_loads,
        s.fabric_prefetches,
        s.loads,
        s.stores,
    ] {
        fold(v);
    }
    let m = &r.hier;
    for v in [
        m.l1d_hits,
        m.l1d_misses,
        m.inflight_merges,
        m.l2_hits,
        m.l3_hits,
        m.dram_accesses,
        m.l1i_misses,
        m.prefetches_issued,
        m.mshr_wait_cycles,
    ] {
        fold(v);
    }
    if let Some(f) = &r.fabric {
        for v in [
            f.fetched_in_roi,
            f.fst_hits,
            f.retired_in_roi,
            f.rst_hits,
            f.obs_packets,
            f.preds_delivered,
            f.preds_dropped,
            f.pred_mismatch_passes,
            f.loads_injected,
            f.prefetches_injected,
            f.mlb_replays,
            f.mlb_full_drops,
            f.squash_packets,
            f.port_conflict_delays,
            u64::from(f.watchdog_fired),
        ] {
            fold(v);
        }
    }
    h
}

/// Captured from the pre-optimization simulator (PR 3 baseline) at
/// `GOLDEN_INSTRS` on the Table 1 machine. `(name, mode, checksum)`.
const GOLDEN: &[(&str, &str, u64)] = &[
    ("astar", "baseline", 0xca0ef10b69cdbb6f),
    ("astar", "pfm", 0xd19c4e470aa89b0a),
    ("astar-slipstream", "baseline", 0xca0ef10b69cdbb6f),
    ("astar-slipstream", "pfm", 0xa25178aea7eff907),
    ("astar-alt", "baseline", 0xca0ef10b69cdbb6f),
    ("astar-alt", "pfm", 0x69ea7496e7cc0bca),
    ("bfs-roads", "baseline", 0x9806e36721d7e2b7),
    ("bfs-roads", "pfm", 0x6c132a2e773cf24a),
    ("bfs-roads-slipstream", "baseline", 0x9806e36721d7e2b7),
    ("bfs-roads-slipstream", "pfm", 0x2145bcef98d5967c),
    ("bfs-youtube", "baseline", 0xcc9036f48c6d2cad),
    ("bfs-youtube", "pfm", 0xcd347456d2a1d589),
    ("libquantum", "baseline", 0x6e1a23d3c44e67b6),
    ("libquantum", "pfm", 0xd74629ee54d25f42),
    ("bwaves", "baseline", 0xa2c1ac7ad2aa7efb),
    ("bwaves", "pfm", 0x5240d278391daa16),
    ("lbm", "baseline", 0xa73ed1c544a065fb),
    ("lbm", "pfm", 0x5478d30cfcbf7473),
    ("milc", "baseline", 0x2874c375a3bbaee9),
    ("milc", "pfm", 0x566d57fd6ad7b09f),
    ("leslie", "baseline", 0xb26c506d32b12e9f),
    ("leslie", "pfm", 0x633c84d6ffb482e8),
];

#[test]
fn golden_stats_are_bit_identical() {
    let rc = RunConfig {
        max_instrs: GOLDEN_INSTRS,
        ..RunConfig::paper_scale()
    };
    let mut specs = Vec::new();
    let mut expected = Vec::new();
    for uc in usecases::throughput_suite_factories() {
        specs.push(RunSpec::baseline(uc.clone(), &rc));
        expected.push((uc.name().to_string(), "baseline"));
        specs.push(RunSpec::pfm(
            uc.clone(),
            pfm_fabric::FabricParams::paper_default(),
            &rc,
        ));
        expected.push((uc.name().to_string(), "pfm"));
    }

    let (runs, _) = exec::execute(
        &specs,
        &ExecOptions {
            jobs: 4,
            progress: false,
            keep_going: false,
            store: None,
            ..ExecOptions::default()
        },
    );

    let mut actual = Vec::new();
    for (spec, (name, mode)) in specs.iter().zip(&expected) {
        let r = runs.get(spec.key()).expect("golden run completes");
        actual.push((name.clone(), *mode, checksum(r)));
    }

    if std::env::var_os("PFM_GOLDEN_PRINT").is_some() {
        for (name, mode, sum) in &actual {
            println!("    (\"{name}\", \"{mode}\", {sum:#018x}),");
        }
    }

    assert_eq!(
        actual.len(),
        GOLDEN.len(),
        "golden table out of sync with the use-case list"
    );
    let mut failures = Vec::new();
    for ((name, mode, sum), (gname, gmode, gsum)) in actual.iter().zip(GOLDEN) {
        assert_eq!((name.as_str(), *mode), (*gname, *gmode), "table order");
        if sum != gsum {
            failures.push(format!("{name}/{mode}: got {sum:#018x}, want {gsum:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "statistics drifted from the golden capture (an optimization \
         changed simulated behavior):\n  {}\nIf the model change was \
         intentional, regenerate with PFM_GOLDEN_PRINT=1.",
        failures.join("\n  ")
    );
}
