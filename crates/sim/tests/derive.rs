//! Interface inference over the registered use cases: the derived
//! profile summaries are pinned, the profile-seeded astar template
//! reproduces the hand-built component's prediction stream bit for
//! bit, the seeded component's watchlist is fully covered by the
//! derived watch set, and the computed-dispatch kernel's `jalr` edge
//! resolves to a profiled handler.

use pfm_analyze::cfg::Cfg;
use pfm_analyze::profile::StreamClass;
use pfm_components::astar::NEIGHBORS;
use pfm_components::template::spec_from_profile;
use pfm_components::{astar_template, AstarConfig, AstarPredictor, TemplateComponent};
use pfm_fabric::{CustomComponent, FabricIo, LoadResponse, ObsPacket, PredPacket};
use pfm_sim::analyze::{analyze_usecase, derive_all};
use pfm_sim::usecases;
use pfm_workloads::astar::{MAPARP_BASE, WAYMAP_BASE};
use std::collections::VecDeque;

/// The derived profile of every registered use case, pinned as its
/// PC-free summary line. A kernel or analyzer change that alters loop
/// structure, stream classification, watch derivation, or coverage
/// must update this snapshot deliberately. Every program ends in
/// `gaps=0`: the hand-built watchlists are fully derived or carry a
/// typed divergence.
#[test]
fn derived_profile_summaries_are_pinned() {
    let got: Vec<String> = derive_all(None)
        .into_iter()
        .map(|(name, p)| format!("{name}: {}", p.summary()))
        .collect();
    let want = [
        "astar: loops=4 strided=3 indirect=33 irregular=8 branches=20 watch=76 \
         resolved_jalrs=1 covered=20 divergences=0 gaps=0",
        "astar-slipstream: loops=4 strided=3 indirect=33 irregular=8 branches=20 watch=76 \
         resolved_jalrs=1 covered=20 divergences=0 gaps=0",
        "astar-alt: loops=4 strided=3 indirect=33 irregular=8 branches=20 watch=76 \
         resolved_jalrs=1 covered=28 divergences=0 gaps=0",
        "bfs-roads: loops=3 strided=2 indirect=4 irregular=1 branches=4 watch=20 \
         resolved_jalrs=0 covered=5 divergences=0 gaps=0",
        "bfs-roads-slipstream: loops=3 strided=2 indirect=4 irregular=1 branches=4 watch=20 \
         resolved_jalrs=0 covered=5 divergences=0 gaps=0",
        "bfs-youtube: loops=3 strided=2 indirect=4 irregular=1 branches=4 watch=20 \
         resolved_jalrs=0 covered=5 divergences=0 gaps=0",
        "libquantum: loops=2 strided=2 indirect=0 irregular=0 branches=3 watch=9 \
         resolved_jalrs=0 covered=3 divergences=0 gaps=0",
        "bwaves: loops=3 strided=3 indirect=0 irregular=0 branches=3 watch=11 \
         resolved_jalrs=0 covered=1 divergences=2 gaps=0",
        "lbm: loops=1 strided=10 indirect=0 irregular=0 branches=1 watch=14 \
         resolved_jalrs=0 covered=3 divergences=0 gaps=0",
        "milc: loops=1 strided=5 indirect=0 irregular=0 branches=1 watch=9 \
         resolved_jalrs=0 covered=3 divergences=0 gaps=0",
        "leslie: loops=6 strided=3 indirect=0 irregular=0 branches=6 watch=18 \
         resolved_jalrs=0 covered=6 divergences=3 gaps=0",
    ];
    assert_eq!(got, want, "derived profile summaries drifted");
}

/// The corrupt-watch seam redirects a component watch entry to a PC
/// no derivation can explain, which must surface as a coverage gap —
/// the CI gate behind `repro --derive`.
#[test]
fn corrupted_watch_entry_becomes_a_coverage_gap() {
    let report = derive_all(Some("astar"));
    let astar = &report
        .iter()
        .find(|(n, _)| n == "astar")
        .expect("astar is registered")
        .1;
    let gaps: usize = astar.coverage.iter().map(|c| c.gaps.len()).sum();
    assert_eq!(gaps, 1, "the corrupted entry must be the one gap");
    assert_eq!(astar.coverage[0].gaps[0].0, 0xdead_0000);
    // Every other use case stays gap-free.
    for (name, p) in &report {
        if name != "astar" {
            assert!(p.coverage.iter().all(|c| c.gaps.is_empty()), "{name}");
        }
    }
}

/// Reconstructs the hand-maintained astar configuration the same way
/// the workload builder does: snoop PCs from the assembled program's
/// symbol table, array bases and neighbor offsets from the workload's
/// constants (default 256-wide grid).
fn handbuilt_astar_config(prog: &pfm_isa::Program) -> AstarConfig {
    let w = 256i64;
    let mut waymap_branch_pcs = [0u64; NEIGHBORS];
    let mut maparp_branch_pcs = [0u64; NEIGHBORS];
    for k in 0..NEIGHBORS {
        waymap_branch_pcs[k] = prog.require_symbol(&format!("waymap_branch_pc_{k}"));
        maparp_branch_pcs[k] = prog.require_symbol(&format!("maparp_branch_pc_{k}"));
    }
    AstarConfig {
        fillnum_pc: prog.require_symbol("fillnum_pc"),
        wl_base_pc: prog.require_symbol("wl_base_pc"),
        wl_len_pc: prog.require_symbol("wl_len_pc"),
        induction_pc: prog.require_symbol("induction_pc"),
        waymap_base: WAYMAP_BASE,
        maparp_base: MAPARP_BASE,
        offsets: [-w - 1, -w, -w + 1, -1, 1, w - 1, w, w + 1],
        waymap_branch_pcs,
        maparp_branch_pcs,
        index_queue_size: 8,
        store_inference: true,
        predict_maparp: true,
        t1_width: 2,
    }
}

/// §7's generator gate, spec level: feeding the derived profile of the
/// real astar kernel to `spec_from_profile` recovers exactly the
/// template instantiation the hand-read configuration produces — every
/// snoop PC, table base, neighbor offset, lane predicate, and the
/// store-inference flags.
#[test]
fn profile_seeded_spec_equals_handbuilt_astar_template() {
    let uc = usecases::astar_custom();
    let cfg = handbuilt_astar_config(&uc.program);
    let profile = analyze_usecase(&uc).profile;
    let spec = spec_from_profile(&profile, cfg.index_queue_size)
        .expect("the astar kernel matches the template shape");
    assert_eq!(spec, astar_template(&cfg));
}

/// Worklist base value handed to the components under test; above
/// both arrays so the load router can tell worklist reads apart.
const WL_VALUE_BASE: u64 = 0x5000_0000;

/// Drives one component over a scripted worklist through a standalone
/// `FabricIo` harness (same pacing discipline as the template crate's
/// unit tests, with the snoop PCs taken from the real kernel):
/// iterations retire only after all their group-leader predictions
/// were emitted, as the core would.
#[allow(clippy::too_many_arguments)]
fn drive_component(
    c: &mut dyn CustomComponent,
    cfg: &AstarConfig,
    worklist: &[u64],
    answer: &dyn Fn(u64) -> u64,
    tag: u64,
    leader_pcs: &[u64],
    groups_per_iter: u64,
) -> Vec<PredPacket> {
    let mut obs: VecDeque<ObsPacket> = VecDeque::new();
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.fillnum_pc,
        value: tag,
    });
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.wl_base_pc,
        value: WL_VALUE_BASE,
    });
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.wl_len_pc,
        value: worklist.len() as u64,
    });
    let mut resp: VecDeque<LoadResponse> = VecDeque::new();
    let mut preds: Vec<PredPacket> = Vec::new();
    let mut retired = 0u64;
    for tick in 0..2000 {
        let mut out_p = Vec::new();
        let mut out_l = Vec::new();
        {
            let mut io = FabricIo::new(
                8, tick, &mut obs, &mut resp, &mut out_p, &mut out_l, 512, 512,
            );
            c.tick(&mut io);
        }
        for l in out_l {
            let value = if l.addr >= WL_VALUE_BASE {
                worklist[((l.addr - WL_VALUE_BASE) / 4) as usize]
            } else {
                answer(l.addr)
            };
            resp.push_back(LoadResponse { id: l.id, value });
        }
        preds.extend(out_p);
        let leaders = preds.iter().filter(|p| leader_pcs.contains(&p.pc)).count() as u64;
        if leaders >= (retired + 1) * groups_per_iter && (retired as usize) < worklist.len() {
            retired += 1;
            obs.push_back(ObsPacket::DestValue {
                pc: cfg.induction_pc,
                value: retired,
            });
        }
    }
    preds
}

/// §7's generator gate, stream level: the component instantiated from
/// the *derived* spec emits the same prediction stream as the
/// hand-built `AstarPredictor`, bit for bit, over a scripted worklist
/// with visited cells, blocked cells, and a revisit (exercising tag
/// match, maparp test, and inferred stores).
#[test]
fn profile_seeded_template_reproduces_handbuilt_stream() {
    let uc = usecases::astar_custom();
    let cfg = handbuilt_astar_config(&uc.program);
    let profile = analyze_usecase(&uc).profile;
    let spec = spec_from_profile(&profile, cfg.index_queue_size)
        .expect("the astar kernel matches the template shape");

    let worklist: Vec<u64> = vec![1000, 1001, 1300, 1000];
    let blocked = [999u64, 1256, 1301];
    let answer = |addr: u64| -> u64 {
        if addr >= MAPARP_BASE {
            blocked.contains(&(addr - MAPARP_BASE)) as u64
        } else {
            0 // waymap: all unvisited
        }
    };
    let leaders: Vec<u64> = cfg.waymap_branch_pcs.to_vec();

    let mut seeded = TemplateComponent::new(spec);
    let template_preds = drive_component(&mut seeded, &cfg, &worklist, &answer, 7, &leaders, 8);

    let mut hand = AstarPredictor::new(cfg.clone());
    let hand_preds = drive_component(&mut hand, &cfg, &worklist, &answer, 7, &leaders, 8);

    assert!(
        template_preds.len() >= worklist.len() * NEIGHBORS,
        "the drive must exercise every neighbor group ({} preds)",
        template_preds.len()
    );
    assert_eq!(
        template_preds, hand_preds,
        "the profile-seeded template must reproduce the hand-built stream bit for bit"
    );
}

/// The seeded component is a valid fifth component: every PC/kind it
/// watches is in the derived watch set (the same coverage relation the
/// `derived-watch-gap` check enforces for the hand-built components).
#[test]
fn seeded_component_watchlist_is_covered_by_the_profile() {
    let uc = usecases::astar_custom();
    let profile = analyze_usecase(&uc).profile;
    let spec = spec_from_profile(&profile, 8).expect("the astar kernel matches the template shape");
    let seeded = TemplateComponent::new(spec);
    let watchlist = seeded.watchlist();
    assert_eq!(watchlist.len(), 4 + 2 * NEIGHBORS);
    for (pc, kind) in watchlist {
        assert!(
            profile.covers(pc, kind),
            "derived watch set must cover the seeded component's {kind} @ {pc:#x}"
        );
    }
}

/// The computed-dispatch kernel: a naive CFG sees an `Unknown` edge at
/// the `jalr` and an unreachable handler; the resolve loop proves the
/// target, the edge lands on the handler, and the handler's store loop
/// profiles as stride-8 over the dispatch table — with no findings.
#[test]
fn dispatch_jalr_resolves_to_a_profiled_handler() {
    use pfm_workloads::dispatch::{dispatch_program, sym, TABLE_BASE};
    let prog = dispatch_program();
    let jalr = prog.require_symbol(sym::JALR);
    let handler = prog.require_symbol(sym::HANDLER);
    let store = prog.require_symbol(sym::STORE);

    let naive = Cfg::build(&prog);
    assert!(
        naive.has_unknown_edges(),
        "without constant propagation the computed call is opaque"
    );

    let analysis = pfm_analyze::analyze(&prog, &[], &[]);
    assert!(
        !analysis.cfg.has_unknown_edges(),
        "the resolve loop closes the CFG"
    );
    assert_eq!(analysis.resolved_jalrs.get(&jalr), Some(&handler));
    // The handler's `ret` resolves too (its `ra` is the proven link
    // value of the computed call), so the halt after the call site is
    // reached through a single direct edge.
    let ret = prog.end() - pfm_isa::inst::INST_BYTES;
    assert_eq!(
        analysis.profile.resolved_jalrs,
        vec![(jalr, handler), (ret, jalr + pfm_isa::inst::INST_BYTES)]
    );

    let s = analysis
        .profile
        .stream_at(store)
        .expect("the handler's store loop is profiled once the edge resolves");
    match &s.class {
        StreamClass::Strided { stride, base, .. } => {
            assert_eq!(*stride, 8);
            assert_eq!(*base, Some(TABLE_BASE));
        }
        other => panic!("dispatch table store must be strided, got {other:?}"),
    }
    assert!(
        analysis.findings.is_empty(),
        "the handler is reachable and clean: {:?}",
        analysis.findings
    );
}
