//! Integration tests for the chaos fault-injection harness: fault
//! traces are deterministic, no fault scenario can corrupt committed
//! architectural state, a wedged run terminates via the
//! forward-progress watchdog as a structured error (not a hang, not a
//! panic), and the executor isolates panicking runs instead of dying
//! with them.

use pfm_fabric::{
    CustomComponent, FabricIo, FabricParams, FaultPlan, FaultScenario, RstEntry, StallPolicy,
};
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, SpecMemory};
use pfm_sim::exec::{execute, run_plans, ExecOptions};
use pfm_sim::experiments::plan_chaos_smoke;
use pfm_sim::plan::{RunOutcome, RunSpec};
use pfm_sim::{run_chaos, run_pfm, RunConfig, RunError};
use pfm_workloads::{UseCase, UseCaseFactory};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

fn tiny_rc() -> RunConfig {
    RunConfig {
        max_instrs: 20_000,
        ..RunConfig::test_scale()
    }
}

#[test]
fn fault_traces_are_deterministic_across_identical_runs() {
    let uc = pfm_sim::usecases::libquantum_scale();
    let rc = tiny_rc();
    for sc in FaultScenario::ALL {
        let plan = FaultPlan::new(sc, 0xFEED);
        let a = run_chaos(&uc, FabricParams::paper_default(), plan, &rc).unwrap();
        let b = run_chaos(&uc, FabricParams::paper_default(), plan, &rc).unwrap();
        let (fa, fb) = (a.faults.unwrap(), b.faults.unwrap());
        assert_eq!(
            fa,
            fb,
            "fault trace must replay bit-identically ({})",
            sc.name()
        );
        assert_eq!(
            a.arch_checksum,
            b.arch_checksum,
            "checksum drift ({})",
            sc.name()
        );
        assert_eq!(a.stats, b.stats, "timing drift ({})", sc.name());
    }
}

#[test]
fn no_fault_scenario_corrupts_committed_state() {
    // The §3 graceful-degradation guarantee, end to end: a component
    // producing inverted predictions, wild prefetches, dropped or
    // duplicated packets, stuck-busy episodes, etc. may change timing
    // but never the committed architectural state.
    let uc = pfm_sim::usecases::astar_custom();
    let rc = tiny_rc();
    let clean = run_pfm(&uc, FabricParams::paper_default(), &rc).unwrap();
    for sc in FaultScenario::ALL {
        let plan = FaultPlan::new(sc, 0xFEED);
        let faulty = run_chaos(&uc, FabricParams::paper_default(), plan, &rc).unwrap();
        assert_eq!(
            faulty.arch_checksum,
            clean.arch_checksum,
            "scenario {} corrupted architectural state",
            sc.name()
        );
        // Wide retire can overshoot the instruction budget by a
        // timing-dependent sliver; the checksum above already pins the
        // first `max_instrs` committed instructions bit-for-bit.
        assert!(faulty.stats.retired >= clean.stats.retired.min(rc.max_instrs));
    }
}

/// A component that drains its observations but never predicts: with
/// the fabric's own chicken switch disabled and `StallPolicy::Stall`,
/// an FST-hit branch stalls fetch forever — the canonical should-hang
/// fixture. (It must drain ObsQ-R: a deaf component would instead
/// wedge the squash handshake and stall retire at the ROI boundary.)
struct Mute;
impl CustomComponent for Mute {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        while io.pop_obs().is_some() {}
    }
    fn name(&self) -> &'static str {
        "mute"
    }
}

/// A workload that opens the ROI, spins a while (so a few thousand
/// instructions commit), then fetches an FST-resident conditional
/// branch whose prediction never arrives.
fn wedged_usecase() -> UseCase {
    let mut a = Asm::new(0x1000);
    let halt = a.label();
    let roi_pc = a.here();
    a.li(T0, 200); // RST begin-ROI entry; retiring this enables the fabric
    let spin = a.label();
    a.place(spin);
    a.addi(T0, T0, -1);
    a.bne(T0, X0, spin);
    let branch_pc = a.here();
    a.beq(X0, X0, halt); // FST hit; the mute component never predicts it
    a.bind(halt).unwrap();
    a.halt();
    let mut fst = BTreeSet::new();
    fst.insert(branch_pc);
    let mut rst = BTreeMap::new();
    rst.insert(roi_pc, RstEntry::dest().begin());
    UseCase::new(
        "wedge",
        a.finish().unwrap(),
        SpecMemory::new(),
        fst,
        rst,
        Arc::new(|| Box::new(Mute)),
    )
}

/// Fabric parameters that let the wedge actually wedge: the paper's
/// §2.4 chicken switch is off, so only the runner's commit watchdog
/// stands between the stall and a 200 M-cycle spin.
fn wedge_params() -> FabricParams {
    let mut p = FabricParams::paper_default();
    p.stall_policy = StallPolicy::Stall;
    p.watchdog = None;
    p
}

#[test]
fn watchdog_turns_a_wedged_run_into_a_structured_error() {
    let rc = RunConfig {
        commit_watchdog: Some(5_000),
        ..tiny_rc()
    };
    match run_pfm(&wedged_usecase(), wedge_params(), &rc) {
        Err(RunError::Watchdog {
            last_commit_cycle,
            stalled_cycles,
            retired,
        }) => {
            assert!(
                retired >= 2,
                "the pre-branch instructions commit: {retired}"
            );
            assert!(last_commit_cycle > 0);
            assert!(stalled_cycles >= 5_000);
        }
        other => panic!("expected RunError::Watchdog, got {other:?}"),
    }
}

#[test]
fn executor_reports_a_hung_run_after_one_raised_retry() {
    let rc = RunConfig {
        commit_watchdog: Some(2_000),
        ..tiny_rc()
    };
    let factory = UseCaseFactory::new("wedge", "wedge-hang-fixture", wedged_usecase);
    let spec = RunSpec::pfm(factory, wedge_params(), &rc);
    let key = spec.key().to_string();
    let (runs, report) = execute(&[spec], &ExecOptions::serial());
    match runs.outcome(&key) {
        Some(RunOutcome::TimedOut { error, retries }) => {
            assert_eq!(*retries, 1, "one bounded retry at the raised cap");
            assert!(error.is_watchdog(), "final error: {error}");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.retried, 1);
    let table = report.failure_table();
    assert!(table.contains("watchdog"), "table: {table}");
    assert!(
        report.summary().contains("1 FAILED"),
        "{}",
        report.summary()
    );
}

#[test]
fn executor_isolates_a_panicking_run_and_keeps_going() {
    let rc = tiny_rc();
    let boom = RunSpec::baseline(
        UseCaseFactory::new("boom", "boom-fixture", || {
            panic!("component exploded in build()")
        }),
        &rc,
    );
    let good = RunSpec::baseline(pfm_sim::usecases::libquantum_factory(), &rc);
    let (boom_key, good_key) = (boom.key().to_string(), good.key().to_string());

    // keep_going: the suite completes and the good run still succeeds.
    let opts = ExecOptions {
        jobs: 1,
        progress: false,
        keep_going: true,
        store: None,
        ..ExecOptions::default()
    };
    let (runs, report) = execute(&[boom.clone(), good.clone()], &opts);
    match runs.outcome(&boom_key) {
        Some(RunOutcome::Panicked(msg)) => {
            assert!(msg.contains("component exploded"), "payload: {msg}");
        }
        other => panic!("expected Panicked, got {other:?}"),
    }
    assert!(runs.get(&good_key).is_ok(), "good run must still complete");
    assert_eq!(report.failures.len(), 1);
    assert_eq!(report.skipped, 0);

    // Without keep_going (serial): the failure aborts the claim loop
    // and the good run surfaces as skipped, not silently absent.
    let (runs, report) = execute(&[boom, good], &ExecOptions::serial());
    assert!(runs.outcome(&good_key).is_none());
    assert_eq!(report.skipped, 1);
    assert!(
        report.summary().contains("1 skipped"),
        "{}",
        report.summary()
    );
}

#[test]
fn environmental_outcomes_are_never_persisted_to_the_store() {
    use pfm_sim::store::{CodeFingerprint, ResultStore};

    let rc = RunConfig {
        commit_watchdog: Some(2_000),
        ..tiny_rc()
    };
    let hang = RunSpec::pfm(
        UseCaseFactory::new("wedge", "wedge-hang-fixture", wedged_usecase),
        wedge_params(),
        &rc,
    );
    let boom = RunSpec::baseline(
        UseCaseFactory::new("boom", "boom-fixture", || {
            panic!("component exploded in build()")
        }),
        &rc,
    );
    let dir = std::env::temp_dir().join(format!("pfm-chaos-env-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(3)).unwrap());
    let opts = ExecOptions {
        keep_going: true,
        ..ExecOptions::serial()
    }
    .with_store(Arc::clone(&store));

    let (runs, report) = execute(&[hang.clone(), boom.clone()], &opts);
    assert!(matches!(
        runs.outcome(hang.key()),
        Some(RunOutcome::TimedOut { .. })
    ));
    assert!(matches!(
        runs.outcome(boom.key()),
        Some(RunOutcome::Panicked(_))
    ));
    assert_eq!(report.store_misses, 2);
    assert_eq!(
        store.len(),
        0,
        "TimedOut/Panicked are environmental verdicts and must not be cached"
    );

    // A warm re-run through a fresh handle re-simulates instead of
    // replaying a stale environmental verdict.
    let store2 = Arc::new(ResultStore::open(&dir, CodeFingerprint::fixed(3)).unwrap());
    let opts2 = ExecOptions {
        keep_going: true,
        ..ExecOptions::serial()
    }
    .with_store(store2);
    let (_, warm) = execute(&[hang, boom], &opts2);
    assert_eq!(warm.store_hits, 0, "nothing to hit: nothing was stored");
    assert_eq!(warm.store_misses, 2, "the warm run simulates again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_watchdog_factor_is_honored_and_surfaced() {
    let rc = RunConfig {
        commit_watchdog: Some(2_000),
        ..tiny_rc()
    };
    let spec = RunSpec::pfm(
        UseCaseFactory::new("wedge", "wedge-hang-fixture", wedged_usecase),
        wedge_params(),
        &rc,
    );
    // Factor 2: the single bounded retry runs at a 4 000-cycle cap,
    // nowhere near the default 32x (64 000). The final hang verdict
    // carries the stall length, which pins the factor actually used.
    let opts = ExecOptions {
        keep_going: true,
        retry_watchdog_factor: 2,
        ..ExecOptions::serial()
    };
    let (runs, report) = execute(std::slice::from_ref(&spec), &opts);
    match runs.outcome(spec.key()) {
        Some(RunOutcome::TimedOut { error, retries }) => {
            assert_eq!(*retries, 1);
            match error {
                RunError::Watchdog { stalled_cycles, .. } => {
                    assert!(
                        (4_000..32_000).contains(stalled_cycles),
                        "retry must use the configured 2x cap, stalled {stalled_cycles}"
                    );
                }
                other => panic!("expected Watchdog, got {other:?}"),
            }
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    let summary = report.summary();
    assert!(
        summary.contains("1 watchdog retry across 1 run(s)"),
        "retries must be surfaced in the summary: {summary}"
    );
}

#[test]
fn chaos_smoke_plan_assembles_with_every_checksum_intact() {
    let rc = tiny_rc();
    let (experiments, report) = run_plans(vec![plan_chaos_smoke(&rc)], &ExecOptions::serial());
    assert!(report.failures.is_empty(), "{}", report.failure_table());
    let exp = experiments
        .into_iter()
        .next()
        .unwrap()
        .expect("chaos smoke must assemble");
    assert_eq!(exp.rows.len(), FaultScenario::ALL.len());
    for row in &exp.rows {
        assert!(
            row.extra.contains("checksum OK"),
            "{}: {}",
            row.label,
            row.extra
        );
    }
}
