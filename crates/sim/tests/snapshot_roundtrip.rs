//! Snapshot round-trip regression: a detailed run snapshotted
//! mid-stream and restored into a *fresh* core (and fabric) must
//! continue bit-identically — same committed-stream checksum, same
//! statistics — as the same run left uninterrupted.
//!
//! This is the invariant the sampled-run mode stands on: an interval
//! simulated from a restored snapshot measures the same machine the
//! full detailed run would have been at that point.
//!
//! Both legs drive the core with manual `tick` loops (not
//! `run_watched`) so the commit checksum folds every retired
//! instruction in both the split and the uninterrupted run — the
//! watched entry point caps the fold at its own budget, which would
//! make the split run's first-leg cap differ.

use pfm_core::{Core, NoPfm};
use pfm_fabric::{Fabric, FabricParams};
use pfm_mem::Hierarchy;
use pfm_sim::usecases;
use pfm_sim::RunConfig;
use pfm_workloads::{astar, AstarParams};

const SPLIT: u64 = 8_000;
const TOTAL: u64 = 25_000;

/// Ticks `core` (with `hooks`) until `target` instructions have
/// retired or the workload halts.
fn tick_until(core: &mut Core, hooks: &mut dyn pfm_core::PfmHooks, target: u64) {
    while !core.finished() && core.stats().retired < target {
        core.tick(hooks).expect("functional fault");
    }
}

#[test]
fn astar_baseline_roundtrip_is_bit_identical() {
    let p = AstarParams {
        grid_w: 48,
        grid_h: 48,
        fills: 1,
        ..AstarParams::default()
    };
    let uc = astar(&p);
    let rc = RunConfig::test_scale();

    // Uninterrupted reference.
    let mut reference = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    tick_until(&mut reference, &mut NoPfm, TOTAL);

    // Split run: snapshot at SPLIT, restore into a fresh core,
    // continue to the same target.
    let mut first = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    tick_until(&mut first, &mut NoPfm, SPLIT);
    let bytes = first.snapshot();
    drop(first);
    let mut resumed = Core::restore(rc.core.clone(), rc.hier.clone(), uc.program.clone(), &bytes)
        .expect("snapshot restores");
    tick_until(&mut resumed, &mut NoPfm, TOTAL);

    assert!(reference.stats().retired >= TOTAL, "workload too short");
    assert_eq!(
        resumed.commit_checksum(),
        reference.commit_checksum(),
        "committed stream diverged after restore"
    );
    assert_eq!(resumed.stats(), reference.stats(), "core stats diverged");
    assert_eq!(
        resumed.hierarchy().stats(),
        reference.hierarchy().stats(),
        "hierarchy stats diverged"
    );
    assert_eq!(resumed.cycle(), reference.cycle());
}

#[test]
fn libquantum_pfm_roundtrip_is_bit_identical() {
    let uc = usecases::libquantum_scale();
    let rc = RunConfig::test_scale();
    let params = FabricParams::paper_default();

    // Uninterrupted reference: detailed core + fabric.
    let mut ref_fabric = uc.fabric(params.clone());
    let mut reference = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    while !reference.finished() && reference.stats().retired < TOTAL {
        reference.tick(&mut ref_fabric).expect("functional fault");
    }

    // Split run: snapshot core AND fabric at SPLIT, restore both into
    // fresh instances, continue to the same target.
    let mut first_fabric = uc.fabric(params.clone());
    let mut first = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    while !first.finished() && first.stats().retired < SPLIT {
        first.tick(&mut first_fabric).expect("functional fault");
    }
    let core_bytes = first.snapshot();
    let fabric_bytes = first_fabric.snapshot().expect("fabric snapshots");
    drop(first);
    drop(first_fabric);

    let mut resumed_fabric = Fabric::restore(
        params,
        uc.fst.clone(),
        uc.rst.clone(),
        uc.component(),
        &fabric_bytes,
    )
    .expect("fabric restores");
    let mut resumed = Core::restore(
        rc.core.clone(),
        rc.hier.clone(),
        uc.program.clone(),
        &core_bytes,
    )
    .expect("core restores");
    while !resumed.finished() && resumed.stats().retired < TOTAL {
        resumed.tick(&mut resumed_fabric).expect("functional fault");
    }

    assert!(reference.stats().retired >= TOTAL, "workload too short");
    assert_eq!(
        resumed.commit_checksum(),
        reference.commit_checksum(),
        "committed stream diverged after restore"
    );
    assert_eq!(resumed.stats(), reference.stats(), "core stats diverged");
    assert_eq!(
        resumed.hierarchy().stats(),
        reference.hierarchy().stats(),
        "hierarchy stats diverged"
    );
    assert_eq!(
        resumed_fabric.stats(),
        ref_fabric.stats(),
        "fabric stats diverged"
    );
    assert!(
        reference.stats().fabric_prefetches > 0 || ref_fabric.stats().prefetches_injected > 0,
        "the fabric must actually be doing something for this test to mean anything"
    );
}

// --- Mid-swap checkpoints -------------------------------------------------
//
// A machine checkpointed while the fabric slot is mid-reconfiguration
// (Draining, then Loading) must restore and continue bit-identically:
// the residency machine, the remaining drain/load window, and the
// swap counters are all part of the snapshot. This is what lets the
// sampled-run mode (and the experiment service's warm restarts) cut a
// run anywhere, even inside a swap.

const SWAP_AT: u64 = 6_000;
const SWAP_LOAD_CYCLES: u64 = 2_000;

/// Drives one leg of the mid-swap scenario: run to [`SWAP_AT`]
/// retires, begin a swap to a fresh instance of the same
/// configuration, and continue to [`TOTAL`]. When `checkpoint_in`
/// matches the residency state at a tick boundary after the swap
/// began, the machine is snapshotted, torn down, restored into fresh
/// instances, and the run continues from the restored state.
fn midswap_leg(
    uc: &pfm_workloads::UseCase,
    rc: &RunConfig,
    params: &FabricParams,
    checkpoint_in: Option<fn(&pfm_fabric::Residency) -> bool>,
) -> (Core, Fabric) {
    let mut fabric = uc.fabric(params.clone());
    let mut core = Core::new(
        rc.core.clone(),
        uc.machine(),
        Hierarchy::new(rc.hier.clone()),
    );
    let mut swapped = false;
    let mut bytes = None;
    while !core.finished() && core.stats().retired < TOTAL {
        if !swapped && core.stats().retired >= SWAP_AT {
            assert!(
                fabric.begin_swap(
                    uc.fst.clone(),
                    uc.rst.clone(),
                    uc.component(),
                    SWAP_LOAD_CYCLES
                ),
                "swap must start from Resident"
            );
            swapped = true;
        }
        if bytes.is_none() && swapped {
            if let Some(want) = checkpoint_in {
                if want(&fabric.residency()) {
                    bytes = Some((
                        core.snapshot(),
                        fabric.snapshot().expect("mid-swap fabric snapshots"),
                    ));
                    break;
                }
            }
        }
        core.tick(&mut fabric).expect("functional fault");
    }
    if checkpoint_in.is_none() {
        return (core, fabric);
    }

    let (core_bytes, fabric_bytes) = bytes.expect("checkpoint state never reached");
    drop(core);
    drop(fabric);
    let mut fabric = Fabric::restore(
        params.clone(),
        uc.fst.clone(),
        uc.rst.clone(),
        uc.component(),
        &fabric_bytes,
    )
    .expect("mid-swap fabric restores");
    let mut core = Core::restore(
        rc.core.clone(),
        rc.hier.clone(),
        uc.program.clone(),
        &core_bytes,
    )
    .expect("core restores");
    while !core.finished() && core.stats().retired < TOTAL {
        core.tick(&mut fabric).expect("functional fault");
    }
    (core, fabric)
}

#[test]
fn machine_checkpointed_mid_swap_roundtrips_bit_identically() {
    let uc = usecases::libquantum_scale();
    let rc = RunConfig::test_scale();
    let params = FabricParams::paper_default();

    let (ref_core, ref_fabric) = midswap_leg(&uc, &rc, &params, None);
    assert!(ref_core.stats().retired >= TOTAL, "workload too short");
    assert_eq!(
        ref_fabric.residency(),
        pfm_fabric::Residency::Resident,
        "the swap must complete well before the run ends"
    );
    assert_eq!(ref_fabric.stats().swaps, 1);
    assert!(ref_fabric.stats().reconfig_cycles >= SWAP_LOAD_CYCLES);

    for (label, want) in [
        (
            "Draining",
            (|r: &pfm_fabric::Residency| matches!(r, pfm_fabric::Residency::Draining { .. }))
                as fn(&pfm_fabric::Residency) -> bool,
        ),
        ("Loading", |r: &pfm_fabric::Residency| {
            matches!(r, pfm_fabric::Residency::Loading { .. })
        }),
    ] {
        let (split_core, split_fabric) = midswap_leg(&uc, &rc, &params, Some(want));
        assert_eq!(
            split_core.commit_checksum(),
            ref_core.commit_checksum(),
            "committed stream diverged after a {label} checkpoint"
        );
        assert_eq!(
            split_core.stats(),
            ref_core.stats(),
            "core stats diverged after a {label} checkpoint"
        );
        assert_eq!(
            split_core.hierarchy().stats(),
            ref_core.hierarchy().stats(),
            "hierarchy stats diverged after a {label} checkpoint"
        );
        assert_eq!(
            split_fabric.stats(),
            ref_fabric.stats(),
            "fabric stats diverged after a {label} checkpoint"
        );
        assert_eq!(split_core.cycle(), ref_core.cycle());
    }
}
