//! Bakes the workspace source digest into the crate at build time.
//!
//! The digest half of a `CodeFingerprint` must describe the sources
//! the *running binary was built from*, not whatever the tree contains
//! when the binary happens to run: a stale binary walking an edited
//! tree would compute the NEW digest while producing OLD-code results,
//! caching them under a fingerprint they do not belong to — exactly
//! the stale hit the store exists to rule out. So the fold runs here,
//! before compilation, and `store::BAKED_SOURCE_DIGEST` carries it
//! into the binary for the lifetime of that build.
//!
//! The fold must mirror `store::source_digest` byte for byte; the
//! `baked_digest_matches_tree_digest` test pins the two together.

use std::path::{Path, PathBuf};

/// FNV-1a parameters (same constants as `pfm_isa::snap`, which a build
/// script cannot depend on).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn env_dir(key: &str) -> std::io::Result<PathBuf> {
    std::env::var(key)
        .map(PathBuf::from)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::NotFound, format!("{key}: {e}")))
}

/// Recursively collects `.rs` files, skipping `target` build
/// directories (mirrors `store::collect_rs_files`).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            if entry.file_name() == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if ty.is_file() && path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// FNV-1a fold over the workspace's `.rs` sources in sorted
/// relative-path order (mirrors `store::source_digest`).
fn fold_sources(root: &Path) -> std::io::Result<u64> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["src", "crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    let mut keyed: Vec<(String, PathBuf)> = files
        .into_iter()
        .map(|p| {
            let rel = p
                .strip_prefix(root)
                .map(|r| r.to_string_lossy().into_owned())
                .unwrap_or_else(|_| p.to_string_lossy().into_owned());
            (rel, p)
        })
        .collect();
    keyed.sort();
    let mut h = FNV_OFFSET;
    let fold_bytes = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(FNV_PRIME);
        }
        *h ^= bytes.len() as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    };
    for (rel, path) in keyed {
        let contents = std::fs::read(&path)?;
        fold_bytes(&mut h, rel.as_bytes());
        fold_bytes(&mut h, &contents);
    }
    Ok(h)
}

fn main() -> std::io::Result<()> {
    // CARGO_MANIFEST_DIR = <workspace root>/crates/sim.
    let manifest_dir = env_dir("CARGO_MANIFEST_DIR")?;
    let root = manifest_dir
        .parent()
        .and_then(Path::parent)
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "crates/sim has no workspace root two levels up",
            )
        })?;
    // Cargo scans these trees recursively: editing any workspace
    // source reruns this script and re-bakes the digest before the
    // crate recompiles.
    for top in ["src", "crates", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            println!("cargo:rerun-if-changed={}", dir.display());
        }
    }
    let h = fold_sources(root)?;
    let out = env_dir("OUT_DIR")?.join("source_digest.rs");
    std::fs::write(&out, format!("0x{h:016x}u64"))
}
