//! Structural FPGA resource estimation.
//!
//! The paper synthesizes its custom components to a Xilinx Virtex
//! UltraScale+ (xcvu3p) with Vivado; we replace the vendor tools with a
//! structural estimator: a component is described as a netlist of
//! coarse primitives (registers, queues, adders, comparators, CAMs,
//! block-RAM tables, multipliers, FSMs) whose LUT/FF/BRAM/DSP costs are
//! calibrated against published synthesis results for this device
//! class. Absolute counts are estimates; the *relationships* Table 4
//! exhibits (the 4-wide astar design is LUT-heavy, astar-alt trades
//! logic for BRAM, the prefetch FSMs are tiny) are structural and carry
//! over.

/// A coarse hardware primitive.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Primitive {
    /// `bits` of simple registers/pipeline state.
    Registers {
        /// Total register bits.
        bits: u32,
    },
    /// A FIFO queue of `entries` x `width` bits implemented in
    /// distributed RAM + pointers.
    Queue {
        /// Number of entries.
        entries: u32,
        /// Bits per entry.
        width: u32,
    },
    /// A content-addressable memory of `entries` x `width` bits
    /// (parallel comparators: LUT-hungry).
    Cam {
        /// Number of entries.
        entries: u32,
        /// Tag width in bits.
        width: u32,
    },
    /// An adder/subtractor of `width` bits.
    Adder {
        /// Operand width.
        width: u32,
    },
    /// An equality/magnitude comparator of `width` bits.
    Comparator {
        /// Operand width.
        width: u32,
    },
    /// A `ways`-to-1 multiplexer of `width`-bit operands.
    Mux {
        /// Number of inputs.
        ways: u32,
        /// Data width.
        width: u32,
    },
    /// A large table in Block RAM (`bits` total).
    BramTable {
        /// Total bits.
        bits: u32,
    },
    /// A hardware multiplier (DSP-mapped when wide enough).
    Multiplier {
        /// Operand width.
        width: u32,
    },
    /// Control FSM with `states` states and `signals` control outputs.
    Fsm {
        /// State count.
        states: u32,
        /// Control signal count.
        signals: u32,
    },
}

/// Estimated resources for one design.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub lut: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Block RAMs (36Kb units; halves allowed).
    pub bram: f64,
    /// DSP slices.
    pub dsp: u32,
}

impl ResourceEstimate {
    /// Adds another estimate.
    pub fn add(&mut self, other: ResourceEstimate) {
        self.lut += other.lut;
        self.ff += other.ff;
        self.bram += other.bram;
        self.dsp += other.dsp;
    }
}

/// Estimates the cost of one primitive (xcvu3p-class calibration).
pub fn estimate(p: &Primitive) -> ResourceEstimate {
    match *p {
        Primitive::Registers { bits } => ResourceEstimate {
            lut: bits / 8,
            ff: bits,
            bram: 0.0,
            dsp: 0,
        },
        Primitive::Queue { entries, width } => {
            // Distributed-RAM FIFO: storage LUTs (LUTRAM packs 64 bits
            // per LUT pair) + head/tail pointers and flags.
            let storage_lut = (entries * width).div_ceil(32);
            let ptr_bits = 2 * (32 - entries.leading_zeros().max(1)) + 4;
            ResourceEstimate {
                lut: storage_lut + 12,
                ff: ptr_bits + width, // output register + pointers
                bram: 0.0,
                dsp: 0,
            }
        }
        Primitive::Cam { entries, width } => {
            // One comparator per entry plus tag storage (LUTRAM-packed,
            // so roughly half a FF per tag bit).
            ResourceEstimate {
                lut: entries * width.div_ceil(2),
                ff: entries * width / 2,
                bram: 0.0,
                dsp: 0,
            }
        }
        Primitive::Adder { width } => ResourceEstimate {
            lut: width,
            ff: 0,
            bram: 0.0,
            dsp: 0,
        },
        Primitive::Comparator { width } => ResourceEstimate {
            lut: width.div_ceil(2),
            ff: 0,
            bram: 0.0,
            dsp: 0,
        },
        Primitive::Mux { ways, width } => ResourceEstimate {
            lut: (ways.saturating_sub(1)) * width.div_ceil(2),
            ff: 0,
            bram: 0.0,
            dsp: 0,
        },
        Primitive::BramTable { bits } => ResourceEstimate {
            lut: 8,
            ff: 8,
            bram: f64::from(bits) / 36_864.0,
            dsp: 0,
        },
        Primitive::Multiplier { width } => {
            if width >= 12 {
                ResourceEstimate {
                    lut: 12,
                    ff: 16,
                    bram: 0.0,
                    dsp: width.div_ceil(17).max(1),
                }
            } else {
                ResourceEstimate {
                    lut: width * width / 2,
                    ff: width,
                    bram: 0.0,
                    dsp: 0,
                }
            }
        }
        Primitive::Fsm { states, signals } => ResourceEstimate {
            lut: states * 3 + signals * 2,
            ff: (32 - states.leading_zeros().max(1)) + signals,
            bram: 0.0,
            dsp: 0,
        },
    }
}

/// Estimates a whole design (a bag of primitives).
pub fn estimate_design(prims: &[Primitive]) -> ResourceEstimate {
    let mut total = ResourceEstimate::default();
    for p in prims {
        total.add(estimate(p));
    }
    total
}

/// Achievable clock frequency (MHz) for a design on this device class:
/// small FSMs close near the device limit; CAM match-lines and wide
/// muxes add levels of logic that cost frequency.
pub fn frequency_mhz(prims: &[Primitive], est: &ResourceEstimate) -> f64 {
    let mut f: f64 = 737.0; // xcvu3p-3 BUFG-limited practical ceiling
    let cam_bits: u32 = prims
        .iter()
        .map(|p| {
            if let Primitive::Cam { entries, width } = *p {
                entries * width
            } else {
                0
            }
        })
        .sum();
    // CAM match-or trees: ~1 MHz per 16 CAM bits of match network.
    f -= f64::from(cam_bits) / 16.0;
    // Routing congestion from sheer logic size.
    f -= f64::from(est.lut) / 60.0;
    // BRAM access paths hold ~500 MHz.
    if est.bram > 0.0 {
        f = f.min(520.0);
    }
    f.clamp(150.0, 737.0)
}

/// Configuration-frame payload covered by one partial-reconfiguration
/// frame, expressed in LUT-equivalents (FFs, BRAM and DSP are folded
/// into the same currency below). Virtex UltraScale+ CLB frames carry
/// on the order of a hundred LUTs of configuration data each.
const FRAME_LUT_EQUIV: u32 = 96;

/// Core cycles spent streaming one configuration frame through the
/// ICAP at its 32-bit port width, expressed at the simulated core
/// clock (the ICAP runs slower than the core, so each frame costs many
/// core cycles).
const CYCLES_PER_FRAME: u64 = 64;

/// Fixed partial-reconfiguration overhead in core cycles: descriptor
/// fetch, ICAP handshake, and post-load initialization of the region.
const RECONFIG_SETUP_CYCLES: u64 = 2_048;

/// Number of partial-reconfiguration frames a design occupies, from
/// its resource estimate. FF bits ride in the same CLB frames as the
/// LUTs around them (8 FFs ≈ 1 LUT of frame payload); BRAM and DSP
/// columns have their own, larger frames.
pub fn reconfig_frames(est: &ResourceEstimate) -> u64 {
    let lut_equiv = est.lut + est.ff / 8 + (est.bram.ceil() as u32) * 24 + est.dsp * 12;
    u64::from(lut_equiv.div_ceil(FRAME_LUT_EQUIV).max(1))
}

/// Partial-reconfiguration latency, in core cycles, to load a design
/// with this resource estimate into the fabric: per-frame ICAP
/// streaming cost plus a fixed setup overhead. This is the latency the
/// runtime scheduler charges when it swaps a resident component.
pub fn reconfig_cycles(est: &ResourceEstimate) -> u64 {
    reconfig_frames(est) * CYCLES_PER_FRAME + RECONFIG_SETUP_CYCLES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_sane_costs() {
        let r = estimate(&Primitive::Registers { bits: 64 });
        assert_eq!(r.ff, 64);
        let q = estimate(&Primitive::Queue {
            entries: 32,
            width: 16,
        });
        assert!(q.lut > 0 && q.ff > 0);
        let c = estimate(&Primitive::Cam {
            entries: 64,
            width: 18,
        });
        assert!(c.lut >= 64 * 9, "CAMs are LUT-hungry");
        let b = estimate(&Primitive::BramTable {
            bits: 32 * 8 * 1024,
        });
        assert!(b.bram > 7.0 && b.bram < 7.2);
        let m = estimate(&Primitive::Multiplier { width: 32 });
        assert!(m.dsp >= 1);
    }

    #[test]
    fn design_sums_primitives() {
        let d = vec![
            Primitive::Registers { bits: 100 },
            Primitive::Adder { width: 32 },
            Primitive::Adder { width: 32 },
        ];
        let e = estimate_design(&d);
        assert_eq!(e.ff, 100);
        assert_eq!(e.lut, 100 / 8 + 64);
    }

    #[test]
    fn frequency_degrades_with_cams_and_size() {
        let small = vec![Primitive::Fsm {
            states: 4,
            signals: 8,
        }];
        let es = estimate_design(&small);
        let fs = frequency_mhz(&small, &es);
        let big = vec![
            Primitive::Cam {
                entries: 64,
                width: 18,
            },
            Primitive::Registers { bits: 4000 },
        ];
        let eb = estimate_design(&big);
        let fb = frequency_mhz(&big, &eb);
        assert!(fs > 650.0, "small FSMs run fast, got {fs}");
        assert!(fb < fs, "CAM designs are slower: {fb} vs {fs}");
    }

    #[test]
    fn bram_designs_cap_frequency() {
        let d = vec![Primitive::BramTable { bits: 262_144 }];
        let e = estimate_design(&d);
        assert!(frequency_mhz(&d, &e) <= 520.0);
    }

    #[test]
    fn reconfig_latency_scales_with_design_size() {
        let tiny = estimate_design(&[Primitive::Fsm {
            states: 4,
            signals: 8,
        }]);
        let big = estimate_design(&[
            Primitive::Cam {
                entries: 64,
                width: 18,
            },
            Primitive::Registers { bits: 4000 },
            Primitive::BramTable { bits: 262_144 },
        ]);
        assert!(reconfig_frames(&tiny) >= 1);
        assert!(reconfig_frames(&big) > reconfig_frames(&tiny));
        assert!(reconfig_cycles(&big) > reconfig_cycles(&tiny));
        // Even an empty region pays the setup handshake.
        assert!(reconfig_cycles(&tiny) > RECONFIG_SETUP_CYCLES);
    }

    #[test]
    fn reconfig_latency_is_deterministic() {
        let e = estimate_design(&[Primitive::Queue {
            entries: 32,
            width: 16,
        }]);
        assert_eq!(reconfig_cycles(&e), reconfig_cycles(&e));
    }
}
