//! # pfm-fpga — FPGA cost, power and energy models
//!
//! Replaces the paper's vendor toolflow (§5): a structural resource
//! estimator over coarse primitives stands in for Vivado synthesis, a
//! switched-capacitance power model for the post-place-and-route power
//! analysis, and a per-event core energy model for McPAT. Together they
//! regenerate Table 4 (LUT/FF/BRAM/DSP/frequency/power per design) and
//! Figure 18 (core+RF energy normalized to the baseline core).

#![warn(missing_docs)]

pub mod designs;
pub mod energy;
pub mod power;
pub mod resource;

pub use designs::{table4_designs, Design};
pub use energy::EnergyModel;
pub use power::{power, PowerEstimate};
pub use resource::{
    estimate_design, reconfig_cycles, reconfig_frames, Primitive, ResourceEstimate,
};
