//! Structural descriptions of the paper's synthesized custom
//! components (Table 4), expressed as primitive netlists for the
//! resource estimator.

use crate::resource::{estimate_design, frequency_mhz, Primitive, ResourceEstimate};

/// A named synthesized design.
#[derive(Clone, Debug)]
pub struct Design {
    /// Design name (Table 4 row).
    pub name: &'static str,
    /// Its primitive netlist.
    pub primitives: Vec<Primitive>,
    /// Activity factor (fraction of FFs toggling per cycle), for the
    /// power model.
    pub activity: f64,
    /// I/O pin-group count (standalone-FPGA I/O power; reported
    /// separately as in the paper).
    pub io_groups: u32,
}

impl Design {
    /// Resource estimate for this design.
    pub fn resources(&self) -> ResourceEstimate {
        estimate_design(&self.primitives)
    }

    /// Post-place-and-route frequency estimate (MHz).
    pub fn frequency_mhz(&self) -> f64 {
        frequency_mhz(&self.primitives, &self.resources())
    }
}

/// The 4-wide astar custom branch predictor (§4.1 / Figure 7, W=4,
/// 8-entry index_queue): three concurrent engines, the 64-entry
/// index1_CAM, and the wide T1/T2 datapaths make it the LUT-heaviest
/// design in Table 4.
pub fn astar_4wide() -> Design {
    let mut p = vec![
        // index_queue: 8 x (32-bit index + valid).
        Primitive::Queue {
            entries: 8,
            width: 33,
        },
        // pred_queue: 128 x (pred + valid); replay queue of final preds.
        Primitive::Queue {
            entries: 128,
            width: 2,
        },
        Primitive::Queue {
            entries: 128,
            width: 2,
        },
        // index1_queue: 64 x 32-bit.
        Primitive::Queue {
            entries: 64,
            width: 32,
        },
    ];
    // index1_CAM: 64 x 18-bit tags, searched 4-wide => 4 copies of the
    // match network (modeled as 4 CAM banks of 16).
    for _ in 0..4 {
        p.push(Primitive::Cam {
            entries: 16,
            width: 18,
        });
    }
    // T0: worklist walker (address adder + id tagging).
    p.push(Primitive::Adder { width: 40 });
    p.push(Primitive::Fsm {
        states: 4,
        signals: 12,
    });
    // T1: 2 index1 generators x 8 neighbor offsets, 4 load-address
    // adders, steering muxes.
    for _ in 0..2 {
        p.push(Primitive::Adder { width: 32 });
    }
    for _ in 0..4 {
        p.push(Primitive::Adder { width: 40 });
        p.push(Primitive::Mux { ways: 8, width: 32 });
    }
    p.push(Primitive::Fsm {
        states: 6,
        signals: 16,
    });
    // T2: 4 predicate units (compare fillnum / maparp) + final-pred
    // mux + CAM write port logic.
    for _ in 0..4 {
        p.push(Primitive::Comparator { width: 32 });
        p.push(Primitive::Comparator { width: 8 });
        p.push(Primitive::Mux { ways: 4, width: 4 });
    }
    p.push(Primitive::Fsm {
        states: 8,
        signals: 24,
    });
    // Pipeline registers for the 4-deep pipelined engines, 4-wide
    // datapaths (the dominant FF cost).
    p.push(Primitive::Registers { bits: 2200 });
    // Wide width-4 interconnect/alignment crossbars between engines.
    for _ in 0..4 {
        p.push(Primitive::Mux {
            ways: 16,
            width: 96,
        });
    }
    p.push(Primitive::Cam {
        entries: 64,
        width: 18,
    }); // replicated search across the full window
    Design {
        name: "astar (4wide)",
        primitives: p,
        activity: 0.18,
        io_groups: 6,
    }
}

/// astar-alt (§5): two 32KB BRAM prediction tables mimicking waymap and
/// maparp, two 512-entry worklists, and narrow 1-wide logic.
pub fn astar_alt() -> Design {
    let p = vec![
        Primitive::BramTable {
            bits: 32 * 8 * 1024,
        }, // waymap mirror
        Primitive::BramTable {
            bits: 32 * 8 * 1024,
        }, // maparp mirror
        Primitive::Queue {
            entries: 512,
            width: 32,
        }, // worklist A
        Primitive::Queue {
            entries: 512,
            width: 32,
        }, // worklist B
        Primitive::Adder { width: 32 },
        Primitive::Adder { width: 32 },
        Primitive::Comparator { width: 8 },
        Primitive::Comparator { width: 8 },
        Primitive::Mux { ways: 8, width: 32 },
        Primitive::Fsm {
            states: 10,
            signals: 24,
        },
        Primitive::Registers { bits: 420 },
    ];
    Design {
        name: "astar-alt",
        primitives: p,
        activity: 0.22,
        io_groups: 3,
    }
}

/// libquantum custom prefetcher: a stride FSM with adaptive distance.
pub fn libquantum() -> Design {
    let p = vec![
        Primitive::Registers { bits: 140 }, // base/count/distance/epoch state
        Primitive::Adder { width: 40 },     // prefetch address
        Primitive::Adder { width: 16 },     // distance/epoch counters
        Primitive::Comparator { width: 32 },
        Primitive::Fsm {
            states: 5,
            signals: 10,
        },
    ];
    Design {
        name: "libq",
        primitives: p,
        activity: 0.3,
        io_groups: 1,
    }
}

/// lbm custom prefetcher: cluster-of-planes set pusher (no adaptive
/// distance, simplest FSM).
pub fn lbm() -> Design {
    let p = vec![
        Primitive::Registers { bits: 130 },
        Primitive::Adder { width: 40 },
        Primitive::Mux { ways: 9, width: 8 }, // plane-offset select
        Primitive::Fsm {
            states: 4,
            signals: 8,
        },
    ];
    Design {
        name: "lbm",
        primitives: p,
        activity: 0.28,
        io_groups: 1,
    }
}

/// bwaves custom prefetcher: multi-level nested-loop walker (more
/// induction registers, no multipliers — strides are pre-scaled).
pub fn bwaves() -> Design {
    let p = vec![
        Primitive::Registers { bits: 260 }, // 3-5 induction vars + strides
        Primitive::Adder { width: 40 },
        Primitive::Adder { width: 24 },
        Primitive::Comparator { width: 24 },
        Primitive::Comparator { width: 24 },
        Primitive::Fsm {
            states: 8,
            signals: 12,
        },
    ];
    Design {
        name: "bwaves",
        primitives: p,
        activity: 0.26,
        io_groups: 1,
    }
}

/// milc custom prefetcher: several adaptive streams; the per-stream
/// distance scaling uses narrow multipliers (the DSPs in Table 4).
pub fn milc() -> Design {
    let p = vec![
        Primitive::Registers { bits: 480 }, // 4 streams x state
        Primitive::Adder { width: 40 },
        Primitive::Adder { width: 40 },
        Primitive::Multiplier { width: 17 },
        Primitive::Multiplier { width: 17 },
        Primitive::Multiplier { width: 17 },
        Primitive::Multiplier { width: 17 },
        Primitive::Comparator { width: 32 },
        Primitive::Fsm {
            states: 6,
            signals: 14,
        },
    ];
    Design {
        name: "milc",
        primitives: p,
        activity: 0.3,
        io_groups: 2,
    }
}

/// bfs frontier-walker branch predictor (the roads/youtube component):
/// frontier and neighbor queues, a visited-bitmap CAM slice, and the
/// row-offset adders of the CSR walk. Not a Table 4 row — used by the
/// runtime-reconfiguration scheduler for its swap-latency estimate.
pub fn bfs() -> Design {
    let p = vec![
        Primitive::Queue {
            entries: 64,
            width: 32,
        }, // frontier queue
        Primitive::Queue {
            entries: 128,
            width: 33,
        }, // neighbor/pred replay queue
        Primitive::Cam {
            entries: 32,
            width: 18,
        }, // recently-visited filter
        Primitive::Adder { width: 40 }, // row-pointer address
        Primitive::Adder { width: 32 }, // edge-offset walk
        Primitive::Comparator { width: 32 },
        Primitive::Fsm {
            states: 6,
            signals: 14,
        },
        Primitive::Registers { bits: 360 },
    ];
    Design {
        name: "bfs",
        primitives: p,
        activity: 0.24,
        io_groups: 2,
    }
}

/// All Table 4 designs, in row order.
pub fn table4_designs() -> Vec<Design> {
    vec![
        astar_4wide(),
        astar_alt(),
        libquantum(),
        lbm(),
        bwaves(),
        milc(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn astar_is_the_lut_heaviest() {
        let designs = table4_designs();
        let astar = designs[0].resources();
        for d in &designs[1..] {
            assert!(
                astar.lut > d.resources().lut,
                "astar(4wide) should dominate LUTs vs {}",
                d.name
            );
        }
    }

    #[test]
    fn astar_alt_trades_logic_for_bram() {
        let alt = astar_alt();
        let r = alt.resources();
        assert!(r.bram > 10.0, "two 32KB tables need BRAM, got {}", r.bram);
        assert!(r.lut < astar_4wide().resources().lut / 3);
    }

    #[test]
    fn prefetchers_are_tiny() {
        for d in [libquantum(), lbm(), bwaves(), milc()] {
            let r = d.resources();
            assert!(r.lut < 800, "{} LUTs = {}", d.name, r.lut);
            assert!(r.ff < 800, "{} FFs = {}", d.name, r.ff);
        }
    }

    #[test]
    fn only_milc_uses_dsps() {
        for d in table4_designs() {
            let dsp = d.resources().dsp;
            if d.name == "milc" {
                assert!(dsp >= 4);
            } else {
                assert_eq!(dsp, 0, "{} should use no DSPs", d.name);
            }
        }
    }

    #[test]
    fn bfs_design_is_mid_sized_and_off_table4() {
        let d = bfs();
        let r = d.resources();
        assert!(r.lut > libquantum().resources().lut);
        assert!(r.lut < astar_4wide().resources().lut);
        assert!(table4_designs().iter().all(|t| t.name != d.name));
    }

    #[test]
    fn frequencies_match_table4_ordering() {
        // Prefetch FSMs close fastest; the CAM-heavy astar design and
        // the BRAM design land near 500 MHz.
        let astar = astar_4wide().frequency_mhz();
        let libq = libquantum().frequency_mhz();
        assert!(libq > 600.0, "libq frequency {libq}");
        assert!(astar < 560.0 && astar > 380.0, "astar frequency {astar}");
    }
}
