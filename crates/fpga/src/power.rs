//! FPGA power estimation: dynamic logic power from switched
//! capacitance (resources x frequency x activity) and device static
//! power, following the structure of the paper's Table 4 (logic and
//! I/O dynamic power reported separately; I/O would not exist for an
//! RF embedded next to the core).

use crate::designs::Design;

/// Power estimate in milliwatts.
#[derive(Clone, Copy, Debug, Default)]
pub struct PowerEstimate {
    /// Dynamic power of the design's logic (mW).
    pub dynamic_logic_mw: f64,
    /// Dynamic power of the standalone-FPGA I/O (mW); informational
    /// only, excluded from energy analysis when embedded.
    pub dynamic_io_mw: f64,
    /// Device static power (mW).
    pub static_mw: f64,
}

impl PowerEstimate {
    /// Total power including I/O (standalone FPGA).
    pub fn total_mw(&self) -> f64 {
        self.dynamic_logic_mw + self.dynamic_io_mw + self.static_mw
    }

    /// Power relevant to an embedded RF (no I/O pins).
    pub fn embedded_mw(&self) -> f64 {
        self.dynamic_logic_mw + self.static_mw
    }
}

/// xcvu3p-class static power floor (mW): dominated by the device, with
/// a small leakage adder per used resource.
const STATIC_FLOOR_MW: f64 = 858.0;
/// Dynamic energy coefficients (mW per MHz per unit, at the modeled
/// activity): calibrated to published UltraScale+ characterizations.
const LUT_MW_PER_MHZ: f64 = 0.000_32;
const FF_MW_PER_MHZ: f64 = 0.000_16;
const BRAM_MW_PER_MHZ: f64 = 0.012;
const DSP_MW_PER_MHZ: f64 = 0.008;
const IO_GROUP_MW_PER_MHZ: f64 = 0.15;

/// Estimates the power of a design at its achievable frequency, using
/// its modeled switching activity (the paper drives the vendor power
/// tool with simulator-generated stimuli; our activity factors play
/// the same role).
pub fn power(design: &Design) -> PowerEstimate {
    let r = design.resources();
    let f = design.frequency_mhz();
    let act = design.activity;
    let dynamic_logic_mw = f
        * act
        * (f64::from(r.lut) * LUT_MW_PER_MHZ
            + f64::from(r.ff) * FF_MW_PER_MHZ
            + r.bram * BRAM_MW_PER_MHZ
            + f64::from(r.dsp) * DSP_MW_PER_MHZ);
    let dynamic_io_mw = f64::from(design.io_groups) * (45.0 + f * act * IO_GROUP_MW_PER_MHZ);
    let static_mw =
        STATIC_FLOOR_MW + f64::from(r.lut) * 0.001 + r.bram * 0.08 + f64::from(r.dsp) * 0.05;
    PowerEstimate {
        dynamic_logic_mw,
        dynamic_io_mw,
        static_mw,
    }
}

/// Energy per RF cycle (nJ) for a design running at `clk_rf_mhz`.
pub fn energy_per_rf_cycle_nj(design: &Design, clk_rf_mhz: f64) -> f64 {
    let p = power(design);
    // Dynamic energy per cycle is frequency-independent (CV^2);
    // evaluate dynamic power at the operating frequency, then divide.
    let scale = clk_rf_mhz / design.frequency_mhz();
    let dyn_at_op = p.dynamic_logic_mw * scale;
    // mW / MHz = nJ per cycle.
    dyn_at_op / clk_rf_mhz + p.static_mw / (clk_rf_mhz * 1000.0) * 1000.0 / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::{astar_4wide, astar_alt, libquantum, table4_designs};

    #[test]
    fn static_power_dominates_like_table4() {
        for d in table4_designs() {
            let p = power(&d);
            assert!(
                p.static_mw > 850.0 && p.static_mw < 880.0,
                "{}: {}",
                d.name,
                p.static_mw
            );
            assert!(
                p.static_mw > p.dynamic_logic_mw,
                "{} static should dominate",
                d.name
            );
        }
    }

    #[test]
    fn astar_burns_more_logic_power_than_prefetchers() {
        let a = power(&astar_4wide());
        let l = power(&libquantum());
        assert!(a.dynamic_logic_mw > 5.0 * l.dynamic_logic_mw);
    }

    #[test]
    fn embedded_power_excludes_io() {
        let p = power(&astar_alt());
        assert!(p.embedded_mw() < p.total_mw());
    }

    #[test]
    fn energy_per_cycle_positive_and_small() {
        let e = energy_per_rf_cycle_nj(&astar_4wide(), 500.0);
        assert!(e > 0.0 && e < 10.0, "nJ/cycle = {e}");
    }
}
