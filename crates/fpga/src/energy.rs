//! McPAT-style core energy model plus core+RF energy accounting for
//! Figure 18.
//!
//! The paper obtains core energy from McPAT and RF energy from
//! post-place-and-route power analysis; we use a per-event energy model
//! with constants in the published range for a 4-wide out-of-order core
//! in a 22nm-class process, and the [`mod@crate::power`] model for the RF.
//! Energy reductions come from the same two sources the paper
//! identifies: (1) less mis-speculated work, and (2) shorter runtime,
//! hence less static energy.

use crate::designs::Design;
use crate::power::energy_per_rf_cycle_nj;
use pfm_core::SimStats;
use pfm_mem::HierarchyStats;

/// Per-event energy constants (nanojoules).
#[derive(Clone, Copy, Debug)]
pub struct EnergyModel {
    /// Fetch/decode/rename/issue/commit energy per retired instruction.
    pub epi_nj: f64,
    /// Extra energy per load/store (AGU + LSQ + L1D access).
    pub mem_op_nj: f64,
    /// Energy per L2 access.
    pub l2_nj: f64,
    /// Energy per L3 access.
    pub l3_nj: f64,
    /// Energy per DRAM access.
    pub dram_nj: f64,
    /// Wasted pipeline work per squash (refilled instructions times
    /// front-end energy — stands in for wrong-path execution energy).
    pub squash_nj: f64,
    /// Core static + clock-tree power (watts).
    pub static_w: f64,
    /// Core clock (GHz).
    pub clk_ghz: f64,
}

impl Default for EnergyModel {
    fn default() -> EnergyModel {
        EnergyModel {
            epi_nj: 0.16,
            mem_op_nj: 0.06,
            l2_nj: 0.35,
            l3_nj: 1.4,
            dram_nj: 12.0,
            squash_nj: 0.16 * 24.0, // ~fetch-width x pipeline-depth refill
            static_w: 1.3,
            clk_ghz: 2.0,
        }
    }
}

impl EnergyModel {
    /// Total core energy for a run, in millijoules.
    pub fn core_energy_mj(&self, stats: &SimStats, hier: &HierarchyStats) -> f64 {
        let dynamic_nj = stats.retired as f64 * self.epi_nj
            + (stats.loads + stats.stores + stats.fabric_loads + stats.fabric_prefetches) as f64
                * self.mem_op_nj
            + (hier.l2_hits + hier.l3_hits + hier.dram_accesses) as f64 * self.l2_nj
            + (hier.l3_hits + hier.dram_accesses) as f64 * self.l3_nj
            + hier.dram_accesses as f64 * self.dram_nj
            + (stats.squash_mispredict + stats.squash_disambiguation + stats.squash_roi) as f64
                * self.squash_nj;
        let seconds = stats.cycles as f64 / (self.clk_ghz * 1e9);
        let static_mj = self.static_w * seconds * 1e3;
        dynamic_nj * 1e-6 + static_mj
    }

    /// RF (fabric + synthesized component) energy for a run, in
    /// millijoules: per-RF-cycle dynamic energy from post-PAR-style
    /// power analysis plus RF static power over the runtime.
    pub fn rf_energy_mj(&self, design: &Design, stats: &SimStats, clk_ratio: u64) -> f64 {
        let clk_rf_mhz = self.clk_ghz * 1000.0 / clk_ratio as f64;
        let rf_cycles = stats.cycles as f64 / clk_ratio as f64;
        rf_cycles * energy_per_rf_cycle_nj(design, clk_rf_mhz) * 1e-6
    }

    /// Figure 18's metric: PFM (core + RF) energy normalized to the
    /// baseline core's energy.
    pub fn normalized_pfm_energy(
        &self,
        base: (&SimStats, &HierarchyStats),
        pfm: (&SimStats, &HierarchyStats),
        design: &Design,
        clk_ratio: u64,
    ) -> f64 {
        let e_base = self.core_energy_mj(base.0, base.1);
        let e_pfm = self.core_energy_mj(pfm.0, pfm.1) + self.rf_energy_mj(design, pfm.0, clk_ratio);
        e_pfm / e_base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::astar_4wide;

    fn stats(cycles: u64, retired: u64, squashes: u64) -> (SimStats, HierarchyStats) {
        let s = SimStats {
            cycles,
            retired,
            loads: retired / 4,
            stores: retired / 10,
            squash_mispredict: squashes,
            ..Default::default()
        };
        let h = HierarchyStats {
            l2_hits: retired / 50,
            l3_hits: retired / 100,
            dram_accesses: retired / 400,
            ..Default::default()
        };
        (s, h)
    }

    #[test]
    fn shorter_runs_save_static_energy() {
        let m = EnergyModel::default();
        let (s1, h1) = stats(1_000_000, 1_000_000, 0);
        let (s2, h2) = stats(400_000, 1_000_000, 0);
        assert!(m.core_energy_mj(&s2, &h2) < m.core_energy_mj(&s1, &h1));
    }

    #[test]
    fn squashes_cost_energy() {
        let m = EnergyModel::default();
        let (s1, h1) = stats(1_000_000, 1_000_000, 0);
        let (s2, h2) = stats(1_000_000, 1_000_000, 40_000);
        assert!(m.core_energy_mj(&s2, &h2) > m.core_energy_mj(&s1, &h1));
    }

    #[test]
    fn pfm_with_big_speedup_reduces_energy() {
        // A PFM run that halves cycles and removes squashes should come
        // in below 1.0 even after paying for the RF.
        let m = EnergyModel::default();
        let (bs, bh) = stats(2_000_000, 1_000_000, 50_000);
        let (ps, ph) = stats(800_000, 1_000_000, 500);
        let n = m.normalized_pfm_energy((&bs, &bh), (&ps, &ph), &astar_4wide(), 4);
        assert!(n < 1.0, "normalized energy {n}");
        assert!(n > 0.2, "RF power is not free, got {n}");
    }

    #[test]
    fn rf_energy_scales_with_runtime() {
        let m = EnergyModel::default();
        let (s1, _) = stats(1_000_000, 1_000_000, 0);
        let (s2, _) = stats(2_000_000, 1_000_000, 0);
        let d = astar_4wide();
        assert!(m.rf_energy_mj(&d, &s2, 4) > m.rf_energy_mj(&d, &s1, 4));
    }
}
