//! # pfm-workloads — the paper's workloads, rebuilt for the simulator
//!
//! Hand-assembled kernels that faithfully reproduce the regions of
//! interest the paper targets (§3, §4): astar's `makebound2` wavefront
//! expansion (Figure 6), GAP top-down BFS over road-network-like and
//! power-law graphs, and the five SPEC-2006-style delinquent-load
//! kernels (libquantum's toffoli walk of Figure 15, bwaves, lbm, milc,
//! leslie). Each builder returns a [`UseCase`]: program + initial
//! memory + the "configuration bitstream" (FST/RST snoop tables and a
//! custom-component factory) shipped with the executable.

#![warn(missing_docs)]

pub mod astar;
pub mod bfs;
pub mod dispatch;
pub mod graphs;
pub mod spec;
pub mod usecase;

/// Finishes a static kernel, panicking with the kernel name when
/// assembly fails: workload kernels are fixed programs, so an unbound
/// label there is a builder bug, not a runtime condition.
pub(crate) fn assembled(
    kernel: &str,
    r: Result<pfm_isa::Program, pfm_isa::asm::AsmError>,
) -> pfm_isa::Program {
    match r {
        Ok(p) => p,
        Err(e) => panic!("{kernel}: kernel failed to assemble: {e}"),
    }
}

pub use astar::{astar, astar_reference, AstarParams, AstarVariant};
pub use bfs::{bfs, BfsParams, BfsVariant};
pub use graphs::{powerlaw_graph, road_graph, Csr};
pub use spec::{bwaves, lbm, leslie, libquantum, milc};
pub use usecase::{UseCase, UseCaseFactory};
