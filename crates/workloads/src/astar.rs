//! The *astar* workload: a faithful reconstruction of the paper's
//! region of interest (Figure 6) — `wayobj::fill()` repeatedly calling
//! `wayobj::makebound2()` to expand a wavefront over a 2D grid, with
//! the 16 data-dependent `waymap`/`maparp` branches and the
//! loop-carried `waymap[index1].fillnum = fillnum` store.
//!
//! The grid has a blocked border (so neighbor indices never leave the
//! arrays) and random interior obstacles; the input worklist is fully
//! dynamic — the output of each `makebound2` call — which is what
//! defeats the baseline TAGE-SC-L predictor.

use crate::usecase::UseCase;
use pfm_components::astar::{AstarConfig, NEIGHBORS};
use pfm_components::astar_alt::{AstarAltConfig, AstarAltPredictor};
use pfm_components::slipstream::slipstream_astar;
use pfm_components::AstarPredictor;
use pfm_fabric::RstEntry;
use pfm_isa::{Asm, SpecMemory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Base address of the `waymap` array (8 bytes per cell).
pub const WAYMAP_BASE: u64 = 0x1000_0000;
/// Base address of the `maparp` array (1 byte per cell).
pub const MAPARP_BASE: u64 = 0x2000_0000;
/// Base address of worklist 0.
pub const WL0_BASE: u64 = 0x3000_0000;
/// Base address of worklist 1.
pub const WL1_BASE: u64 = 0x3400_0000;
/// Base address of the seed-cell list.
pub const SEEDS_BASE: u64 = 0x3800_0000;

/// Which astar machinery to ship with the executable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstarVariant {
    /// The paper's load-based three-engine custom predictor (§4.1).
    Custom,
    /// Slipstream-2.0-style pre-execution: branch 1 only, no store
    /// inference (§1.1's comparison).
    Slipstream,
    /// The EXACT-inspired table-mimicking design (§5's astar-alt).
    Alt,
}

impl AstarVariant {
    /// Canonical label (used in use-case content keys).
    pub fn label(&self) -> &'static str {
        match self {
            AstarVariant::Custom => "custom",
            AstarVariant::Slipstream => "slipstream",
            AstarVariant::Alt => "alt",
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct AstarParams {
    /// Grid width (including the blocked 1-cell border).
    pub grid_w: usize,
    /// Grid height (including the border).
    pub grid_h: usize,
    /// Percentage of interior cells that are obstacles.
    pub block_pct: u32,
    /// Number of `fill()` invocations.
    pub fills: u64,
    /// Wavefront seed cells per fill.
    pub num_seeds: usize,
    /// RNG seed for obstacles/seeds.
    pub seed: u64,
    /// index_queue entries (the component's speculative scope).
    pub scope: usize,
    /// T1 width (index1s per RF cycle).
    pub t1_width: usize,
    /// Component variant.
    pub variant: AstarVariant,
    /// Ablation: disable the index1_CAM store inference while keeping
    /// everything else (the Custom variant only).
    pub store_inference: bool,
}

impl Default for AstarParams {
    fn default() -> AstarParams {
        AstarParams {
            grid_w: 256,
            grid_h: 256,
            block_pct: 30,
            fills: 4,
            num_seeds: 4,
            seed: 0xA57A,
            scope: 8,
            t1_width: 2,
            variant: AstarVariant::Custom,
            store_inference: true,
        }
    }
}

impl AstarParams {
    /// Canonical content key covering every field: parameter sets with
    /// equal keys build identical use-cases (the experiment planner's
    /// run deduplication relies on this).
    pub fn key(&self) -> String {
        format!(
            "astar[{}x{}_b{}_f{}_s{}_seed{:x}_scope{}_t1w{}_{}{}]",
            self.grid_w,
            self.grid_h,
            self.block_pct,
            self.fills,
            self.num_seeds,
            self.seed,
            self.scope,
            self.t1_width,
            self.variant.label(),
            if self.store_inference { "" } else { "_noinf" }
        )
    }
}

/// Exported symbol names for the astar kernel's snoop points.
mod sym {
    pub const FILLNUM: &str = "fillnum_pc";
    pub const SEED_STORE: &str = "seed_store_pc";
    pub const WL_BASE: &str = "wl_base_pc";
    pub const WL_LEN: &str = "wl_len_pc";
    pub const YOFFSET: &str = "yoffset_pc";
    pub const INDUCTION: &str = "induction_pc";

    /// Per-neighbor snoop points (`k` is the neighbor index).
    pub fn waymap_branch(k: usize) -> String {
        format!("waymap_branch_pc_{k}")
    }
    /// Per-neighbor `maparp` branch.
    pub fn maparp_branch(k: usize) -> String {
        format!("maparp_branch_pc_{k}")
    }
    /// Per-neighbor output-worklist store.
    pub fn out_store(k: usize) -> String {
        format!("out_store_pc_{k}")
    }
}

/// Builds the astar use-case.
pub fn astar(params: &AstarParams) -> UseCase {
    let (w, h) = (params.grid_w, params.grid_h);
    assert!(w >= 8 && h >= 8, "grid too small");
    let _ncells = w * h;
    let mut rng = StdRng::seed_from_u64(params.seed);

    // ---- data memory ----
    let mut mem = SpecMemory::new();
    {
        let m = mem.committed_mut();
        // maparp: border blocked, interior random obstacles.
        for y in 0..h {
            for x in 0..w {
                let idx = (y * w + x) as u64;
                let border = x == 0 || y == 0 || x == w - 1 || y == h - 1;
                let blocked = border || rng.gen_range(0u32..100) < params.block_pct;
                if blocked {
                    m.write(MAPARP_BASE + idx, 1, 1);
                }
            }
        }
        // waymap starts zeroed (fillnum 0 != any current fillnum >= 1).
        // Seeds: random passable interior cells.
        let mut seeds = Vec::new();
        while seeds.len() < params.num_seeds {
            let x = rng.gen_range(1..w - 1);
            let y = rng.gen_range(1..h - 1);
            let idx = (y * w + x) as u64;
            if m.read(MAPARP_BASE + idx, 1) == 0 && !seeds.contains(&idx) {
                seeds.push(idx);
            }
        }
        for (i, s) in seeds.iter().enumerate() {
            m.write(SEEDS_BASE + 4 * i as u64, 4, *s);
        }
    }

    // ---- kernel ----
    let offsets: [i64; NEIGHBORS] = [
        -(w as i64) - 1,
        -(w as i64),
        -(w as i64) + 1,
        -1,
        1,
        w as i64 - 1,
        w as i64,
        w as i64 + 1,
    ];

    use pfm_isa::reg::names::*;
    let mut a = Asm::new(0x1000);
    let outer = a.label();
    let seed_loop = a.label();
    let fill_loop = a.label();
    let fill_done = a.label();
    let makebound2 = a.label();
    let end = a.label();

    a.li(S1, WAYMAP_BASE as i64);
    a.li(S2, MAPARP_BASE as i64);
    a.li(A6, WL0_BASE as i64);
    a.li(A7, WL1_BASE as i64);
    a.li(S0, 0); // fillnum
    a.li(S8, 0); // step
    a.li(S9, params.fills as i64);

    a.place(outer);
    // ---- fill() prologue: fillnum++, seed the input worklist ----
    a.export(sym::FILLNUM);
    a.addi(S0, S0, 1);
    a.li(T0, 0);
    a.li(T1, params.num_seeds as i64);
    a.li(T2, SEEDS_BASE as i64);
    a.place(seed_loop);
    a.slli(T3, T0, 2);
    a.add(T4, T2, T3);
    a.lwu(T5, T4, 0); // seed index
    a.add(T4, A6, T3);
    a.export(sym::SEED_STORE);
    a.sw(T5, T4, 0); // WL0[i] = seed
    a.slli(T3, T5, 3);
    a.add(T3, S1, T3);
    a.sw(S0, T3, 0); // waymap[seed].fillnum = fillnum
    a.addi(T0, T0, 1);
    a.blt(T0, T1, seed_loop);
    a.mv(S3, A6); // input = WL0
    a.mv(S4, A7); // output = WL1
    a.mv(S5, T1); // bound1l = num_seeds

    a.place(fill_loop);
    a.beq(S5, X0, fill_done);
    a.call(makebound2);
    // Swap worklists; the output length becomes the input length.
    a.mv(T3, S3);
    a.mv(S3, S4);
    a.mv(S4, T3);
    a.mv(S5, S6);
    a.addi(S8, S8, 1);
    a.j(fill_loop);

    a.place(fill_done);
    a.addi(S9, S9, -1);
    a.bne(S9, X0, outer);
    a.j(end);

    // ---- makebound2() ----
    a.place(makebound2);
    a.export(sym::WL_BASE);
    a.mv(A0, S3); // snooped: input worklist base
    a.export(sym::WL_LEN);
    a.mv(A1, S5); // snooped: input worklist length
    a.export(sym::YOFFSET);
    a.li(S7, w as i64); // snooped: yoffset
    a.li(S6, 0); // bound2l = 0
    a.li(T0, 0); // i = 0
    let loop_top = a.label();
    let loop_done = a.label();
    a.place(loop_top);
    a.bge(T0, A1, loop_done);
    a.slli(T3, T0, 2);
    a.add(T3, A0, T3);
    a.lwu(T1, T3, 0); // index = bound1p[i]

    for (k, &off) in offsets.iter().enumerate() {
        let skip = a.label();
        a.addi(T2, T1, off); // index1 = index + offset_k
        a.slli(T3, T2, 3);
        a.add(T3, S1, T3);
        a.lwu(T4, T3, 0); // waymap[index1].fillnum
        a.export(&sym::waymap_branch(k));
        a.beq(T4, S0, skip); // taken => already visited
        a.add(T5, S2, T2);
        a.lbu(T5, T5, 0); // maparp[index1]
        a.export(&sym::maparp_branch(k));
        a.bne(T5, X0, skip); // taken => blocked
        a.slli(T3, S6, 2);
        a.add(T3, S4, T3);
        a.export(&sym::out_store(k));
        a.sw(T2, T3, 0); // bound2p[bound2l] = index1
        a.addi(S6, S6, 1);
        a.slli(T3, T2, 3);
        a.add(T3, S1, T3);
        a.sw(S0, T3, 0); // waymap[index1].fillnum = fillnum
        a.sw(S8, T3, 4); // waymap[index1].num = step
        a.place(skip);
    }

    a.export(sym::INDUCTION);
    a.addi(T0, T0, 1); // i++ (snooped: commit-head advance)
    a.j(loop_top);
    a.place(loop_done);
    a.ret();

    a.place(end);
    a.halt();

    let program = crate::assembled("astar", a.finish());

    // ---- snoop tables + component ----
    let fillnum_pc = program.require_symbol(sym::FILLNUM);
    let wl_base_pc = program.require_symbol(sym::WL_BASE);
    let wl_len_pc = program.require_symbol(sym::WL_LEN);
    let yoffset_pc = program.require_symbol(sym::YOFFSET);
    let induction_pc = program.require_symbol(sym::INDUCTION);
    let seed_store_pc = program.require_symbol(sym::SEED_STORE);
    // Per-neighbor snoop PCs come back out of the assembled program's
    // symbol table, not positional bookkeeping during assembly: a
    // kernel edit that moves a branch moves its symbol with it.
    let mut waymap_branch_pcs = [0u64; NEIGHBORS];
    let mut maparp_branch_pcs = [0u64; NEIGHBORS];
    let mut out_store_pcs = Vec::with_capacity(NEIGHBORS);
    for k in 0..NEIGHBORS {
        waymap_branch_pcs[k] = program.require_symbol(&sym::waymap_branch(k));
        maparp_branch_pcs[k] = program.require_symbol(&sym::maparp_branch(k));
        out_store_pcs.push(program.require_symbol(&sym::out_store(k)));
    }

    let mut fst = BTreeSet::new();
    for &pc in &waymap_branch_pcs {
        fst.insert(pc);
    }
    if params.variant != AstarVariant::Slipstream {
        for &pc in &maparp_branch_pcs {
            fst.insert(pc);
        }
    }

    let mut rst = BTreeMap::new();
    rst.insert(fillnum_pc, RstEntry::dest().begin());
    rst.insert(wl_base_pc, RstEntry::dest());
    rst.insert(wl_len_pc, RstEntry::dest());
    rst.insert(yoffset_pc, RstEntry::dest());
    rst.insert(induction_pc, RstEntry::dest());
    // Branch outcomes of the waymap branches: observed to advance
    // fine-grained commit state (and dominating the RST snoop rate, as
    // in the paper's Table 2).
    for &pc in &waymap_branch_pcs {
        rst.insert(pc, RstEntry::branch());
    }
    match params.variant {
        AstarVariant::Alt => {
            // astar-alt mimics the worklists and maparp from the retire
            // stream.
            rst.insert(seed_store_pc, RstEntry::store());
            for &pc in &out_store_pcs {
                rst.insert(pc, RstEntry::store());
            }
            for &pc in &maparp_branch_pcs {
                rst.insert(pc, RstEntry::branch());
            }
        }
        AstarVariant::Custom | AstarVariant::Slipstream => {}
    }

    let cfg = AstarConfig {
        fillnum_pc,
        wl_base_pc,
        wl_len_pc,
        induction_pc,
        waymap_base: WAYMAP_BASE,
        maparp_base: MAPARP_BASE,
        offsets,
        waymap_branch_pcs,
        maparp_branch_pcs,
        index_queue_size: params.scope,
        store_inference: params.store_inference,
        predict_maparp: true,
        t1_width: params.t1_width,
    };

    let name = match params.variant {
        AstarVariant::Custom => "astar",
        AstarVariant::Slipstream => "astar-slipstream",
        AstarVariant::Alt => "astar-alt",
    };

    let factory: crate::usecase::ComponentFactory = match params.variant {
        AstarVariant::Custom => {
            let cfg = cfg.clone();
            Arc::new(move || Box::new(AstarPredictor::new(cfg.clone())))
        }
        AstarVariant::Slipstream => {
            let cfg = slipstream_astar(cfg.clone());
            Arc::new(move || Box::new(AstarPredictor::new(cfg.clone())))
        }
        AstarVariant::Alt => {
            let mut worklist_store_pcs = out_store_pcs.clone();
            worklist_store_pcs.push(seed_store_pc);
            let alt = AstarAltConfig {
                fillnum_pc,
                call_marker_pc: wl_base_pc,
                worklist_store_pcs,
                offsets,
                waymap_branch_pcs,
                maparp_branch_pcs,
                runahead_iters: params.scope as u64,
                induction_pc,
            };
            Arc::new(move || Box::new(AstarAltPredictor::new(alt.clone())))
        }
    };

    UseCase::new(name, program, mem, fst, rst, factory)
}

/// Software reference of the kernel, for functional validation: runs
/// `fills` wavefront expansions and returns the final `waymap.fillnum`
/// image.
pub fn astar_reference(params: &AstarParams) -> Vec<u32> {
    let (w, h) = (params.grid_w, params.grid_h);
    let ncells = w * h;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut maparp = vec![0u8; ncells];
    for y in 0..h {
        for x in 0..w {
            let idx = y * w + x;
            let border = x == 0 || y == 0 || x == w - 1 || y == h - 1;
            if border || rng.gen_range(0u32..100) < params.block_pct {
                maparp[idx] = 1;
            }
        }
    }
    let mut seeds = Vec::new();
    while seeds.len() < params.num_seeds {
        let x = rng.gen_range(1..w - 1);
        let y = rng.gen_range(1..h - 1);
        let idx = (y * w + x) as u64;
        if maparp[idx as usize] == 0 && !seeds.contains(&idx) {
            seeds.push(idx);
        }
    }
    let offsets: [i64; 8] = [
        -(w as i64) - 1,
        -(w as i64),
        -(w as i64) + 1,
        -1,
        1,
        w as i64 - 1,
        w as i64,
        w as i64 + 1,
    ];
    let mut waymap = vec![0u32; ncells];
    for fill in 1..=params.fills {
        let fillnum = fill as u32;
        let mut wl: Vec<u64> = seeds.clone();
        for &s in &wl {
            waymap[s as usize] = fillnum;
        }
        while !wl.is_empty() {
            let mut next = Vec::new();
            for &index in &wl {
                for &off in &offsets {
                    let idx1 = (index as i64 + off) as usize;
                    if waymap[idx1] != fillnum && maparp[idx1] == 0 {
                        next.push(idx1 as u64);
                        waymap[idx1] = fillnum;
                    }
                }
            }
            wl = next;
        }
    }
    waymap
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::ObserveKind;

    fn small() -> AstarParams {
        AstarParams {
            grid_w: 24,
            grid_h: 24,
            fills: 2,
            ..AstarParams::default()
        }
    }

    #[test]
    fn kernel_matches_reference_implementation() {
        let p = small();
        let uc = astar(&p);
        let mut m = uc.machine();
        m.run(100_000_000).unwrap();
        assert!(m.halted(), "kernel must run to completion");
        let reference = astar_reference(&p);
        for (idx, &expect) in reference.iter().enumerate() {
            let got = m.mem().read_committed(WAYMAP_BASE + 8 * idx as u64, 4) as u32;
            assert_eq!(got, expect, "waymap mismatch at cell {idx}");
        }
    }

    #[test]
    fn wavefront_reaches_most_unblocked_cells() {
        let p = small();
        let reference = astar_reference(&p);
        let visited = reference.iter().filter(|&&f| f == p.fills as u32).count();
        assert!(visited > 100, "wave should expand, visited only {visited}");
    }

    #[test]
    fn snoop_tables_are_wired() {
        let uc = astar(&small());
        assert_eq!(uc.fst.len(), 16, "8 waymap + 8 maparp branches");
        assert!(uc.rst.values().any(|e| e.begin_roi));
        assert!(
            uc.rst
                .values()
                .filter(|e| e.observe == Some(ObserveKind::DestValue))
                .count()
                >= 5
        );
        assert_eq!(uc.component().name(), "astar-custom-bp");
    }

    #[test]
    fn slipstream_variant_prunes_fst() {
        let mut p = small();
        p.variant = AstarVariant::Slipstream;
        let uc = astar(&p);
        assert_eq!(uc.fst.len(), 8, "only the waymap branches are pre-executed");
    }

    #[test]
    fn alt_variant_observes_stores() {
        let mut p = small();
        p.variant = AstarVariant::Alt;
        let uc = astar(&p);
        assert!(
            uc.rst
                .values()
                .filter(|e| e.observe == Some(ObserveKind::StoreValue))
                .count()
                >= 9
        );
        assert_eq!(uc.component().name(), "astar-alt");
    }

    #[test]
    fn deterministic_build() {
        let a1 = astar(&small());
        let a2 = astar(&small());
        assert_eq!(a1.program.len(), a2.program.len());
        assert_eq!(
            a1.memory.read_committed(MAPARP_BASE, 8),
            a2.memory.read_committed(MAPARP_BASE, 8)
        );
    }
}
