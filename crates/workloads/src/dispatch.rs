//! An *unregistered* computed-dispatch kernel: the handler's address
//! is derived from the link register at run time and called through
//! `jalr`, so a naive CFG sees only an `Unknown` edge and an
//! unreachable handler. The kernel exists to exercise `pfm-analyze`'s
//! constant-propagation resolve loop (which proves the target, turns
//! the edge into a call and makes the handler's stride-8 store loop
//! analyzable) and is deliberately not registered as a use case — the
//! golden-stats corpus is frozen.

use pfm_isa::reg::names::*;
use pfm_isa::{Asm, Program};

/// Exported symbol names.
pub mod sym {
    /// The instruction whose link value anchors the address
    /// computation.
    pub const ANCHOR: &str = "dispatch_anchor";
    /// The computed `jalr` call site.
    pub const JALR: &str = "dispatch_jalr";
    /// First instruction of the handler the jump lands on.
    pub const HANDLER: &str = "dispatch_handler";
    /// The handler's strided store.
    pub const STORE: &str = "dispatch_store";
}

/// Base address of the table the handler fills.
pub const TABLE_BASE: u64 = 0x8000;
/// Number of 8-byte entries the handler writes.
pub const TABLE_ENTRIES: u64 = 8;

/// Bytes from the anchor (the instruction after the anchoring call)
/// to the handler: `mv`, `addi`, `jalr`, `halt`.
const HANDLER_DELTA: i64 = 16;

/// Builds the kernel: recover the current PC from a call's link
/// value, offset it to the handler, call the handler through `jalr`,
/// and let the handler fill [`TABLE_ENTRIES`] slots at [`TABLE_BASE`]
/// with a stride-8 store loop.
pub fn dispatch_program() -> Program {
    let mut a = Asm::new(0x1000);
    let anchor = a.label();
    let hloop = a.label();

    // `call` to the next instruction: its only effect is ra = anchor.
    a.call(anchor);
    a.place(anchor);
    a.export(sym::ANCHOR);
    a.mv(S1, RA); // s1 = anchor
    a.addi(S1, S1, HANDLER_DELTA); // s1 = handler
    a.export(sym::JALR);
    a.jalr(RA, S1, 0); // computed call
    a.halt();

    a.export(sym::HANDLER);
    a.li(T0, 0);
    a.li(T1, TABLE_ENTRIES as i64);
    a.li(A0, TABLE_BASE as i64);
    a.place(hloop);
    a.slli(T2, T0, 3);
    a.add(T2, A0, T2);
    a.export(sym::STORE);
    a.sd(T0, T2, 0); // table[i] = i
    a.addi(T0, T0, 1);
    a.blt(T0, T1, hloop);
    a.ret();

    let program = crate::assembled("dispatch", a.finish());
    let anchor_pc = program.require_symbol(sym::ANCHOR);
    let handler_pc = program.require_symbol(sym::HANDLER);
    assert_eq!(
        handler_pc,
        anchor_pc.wrapping_add(HANDLER_DELTA as u64),
        "dispatch: HANDLER_DELTA is out of sync with the kernel layout"
    );
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_isa::machine::Machine;
    use pfm_isa::mem::SpecMemory;

    #[test]
    fn kernel_executes_and_fills_the_table() {
        let prog = dispatch_program();
        let mut m = Machine::new(prog, SpecMemory::new());
        m.run(10_000).expect("executes");
        assert!(m.halted(), "the computed call must return to the halt");
        for i in 0..TABLE_ENTRIES {
            assert_eq!(m.mem().read_committed(TABLE_BASE + 8 * i, 8), i);
        }
    }
}
