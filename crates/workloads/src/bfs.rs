//! The *bfs* workload: GAP-style top-down breadth-first search (§4.2)
//! over synthetic road-network or power-law graphs, with the
//! hard-to-predict neighbor-loop (trip count) and visited branches and
//! the load-dependent loads that defeat conventional prefetchers.

use crate::graphs::Csr;
use crate::usecase::UseCase;
use pfm_components::bfs::BfsConfig;
use pfm_components::slipstream::slipstream_bfs;
use pfm_components::BfsComponent;
use pfm_fabric::RstEntry;
use pfm_isa::{Asm, SpecMemory};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// CSR offsets array base (8 bytes per entry).
pub const OFFSETS_BASE: u64 = 0x1000_0000;
/// CSR neighbors array base (4 bytes per entry).
pub const NEIGHBORS_BASE: u64 = 0x4000_0000;
/// Parent/properties array base (8 bytes per node; negative =
/// unvisited).
pub const PROPS_BASE: u64 = 0x8000_0000;
/// Frontier buffer 0.
pub const FR0_BASE: u64 = 0xB000_0000;
/// Frontier buffer 1.
pub const FR1_BASE: u64 = 0xD000_0000;

/// Component variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BfsVariant {
    /// The paper's four-engine component.
    Custom,
    /// Slipstream-style: visited branch pre-executed without inference,
    /// no trip-count stream.
    Slipstream,
}

impl BfsVariant {
    /// Canonical label (used in use-case content keys).
    pub fn label(&self) -> &'static str {
        match self {
            BfsVariant::Custom => "custom",
            BfsVariant::Slipstream => "slipstream",
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct BfsParams {
    /// Source node.
    pub source: u32,
    /// Fast-forward: start the measured search at this BFS depth, with
    /// all shallower nodes pre-visited in the memory image (the paper
    /// skips the setup phase and measures the search in steady state).
    pub start_level: usize,
    /// Frontier/neighbor window entries in the component.
    pub window: usize,
    /// Component variant.
    pub variant: BfsVariant,
}

impl Default for BfsParams {
    fn default() -> BfsParams {
        BfsParams {
            source: 0,
            start_level: 0,
            window: 64,
            variant: BfsVariant::Custom,
        }
    }
}

impl BfsParams {
    /// Canonical content key covering every field, scoped under a
    /// graph identity tag (the params alone don't pin the input graph;
    /// the caller supplies a tag that does).
    pub fn key(&self, graph_tag: &str) -> String {
        format!(
            "bfs[{}_src{}_lvl{}_win{}_{}]",
            graph_tag,
            self.source,
            self.start_level,
            self.window,
            self.variant.label()
        )
    }
}

mod sym {
    pub const ROI: &str = "roi_begin_pc";
    pub const FR_BASE: &str = "frontier_base_pc";
    pub const FR_LEN: &str = "frontier_len_pc";
    pub const INDUCTION: &str = "induction_pc";
    pub const LOOP_BRANCH: &str = "loop_branch_pc";
    pub const VISITED_BRANCH: &str = "visited_branch_pc";
}

/// Builds the bfs use-case over `graph`, named `bfs-<input>`.
pub fn bfs(graph: &Csr, input: &str, params: &BfsParams) -> UseCase {
    let n = graph.num_nodes();
    assert!((params.source as usize) < n, "source out of range");

    // ---- data memory ----
    let levels = graph.bfs_levels(params.source as usize);
    let start_level = params.start_level.min(levels.len() - 1);
    let mut mem = SpecMemory::new();
    {
        let m = mem.committed_mut();
        for (i, &o) in graph.offsets.iter().enumerate() {
            m.write(OFFSETS_BASE + 8 * i as u64, 8, o);
        }
        for (i, &v) in graph.neighbors.iter().enumerate() {
            m.write(NEIGHBORS_BASE + 4 * i as u64, 4, v as u64);
        }
        for i in 0..n {
            m.write(PROPS_BASE + 8 * i as u64, 8, (-1i64) as u64);
        }
        // Fast-forward: mark every node shallower than the start level
        // as visited (parent = itself is fine for timing purposes; the
        // kernel only tests the sign) and materialize the start
        // frontier.
        for lvl in levels.iter().take(start_level) {
            for &v in lvl {
                m.write(PROPS_BASE + 8 * v as u64, 8, v as u64);
            }
        }
        for (i, &v) in levels[start_level].iter().enumerate() {
            m.write(FR0_BASE + 4 * i as u64, 4, v as u64);
            if start_level == 0 {
                m.write(PROPS_BASE + 8 * v as u64, 8, v as u64);
            }
        }
        if start_level > 0 {
            for &v in &levels[start_level] {
                m.write(PROPS_BASE + 8 * v as u64, 8, v as u64);
            }
        }
    }
    let init_len = levels[start_level].len() as i64;

    // ---- kernel ----
    use pfm_isa::reg::names::*;
    let mut a = Asm::new(0x1000);
    let level_loop = a.label();
    let _level_done = a.label();
    let outer_top = a.label();
    let outer_done = a.label();
    let inner_top = a.label();
    let inner_done = a.label();
    let skip_visit = a.label();
    let bfs_done = a.label();

    a.li(S1, OFFSETS_BASE as i64);
    a.li(S2, NEIGHBORS_BASE as i64);
    a.li(S3, PROPS_BASE as i64);
    a.li(A6, FR0_BASE as i64);
    a.li(A7, FR1_BASE as i64);
    // The start frontier and visited state live in the memory image.
    a.export(sym::ROI);
    a.li(S5, init_len); // frontier_len (also marks the ROI begin)

    a.place(level_loop);
    a.beq(S5, X0, bfs_done);
    a.export(sym::FR_BASE);
    a.mv(A0, A6); // snooped: frontier base
    a.export(sym::FR_LEN);
    a.mv(A1, S5); // snooped: frontier length
    a.li(S6, 0); // next_len = 0
    a.li(T0, 0); // i = 0

    a.place(outer_top);
    a.bge(T0, A1, outer_done);
    a.slli(T3, T0, 2);
    a.add(T3, A0, T3);
    a.lwu(T4, T3, 0); // u = frontier[i]
    a.slli(T5, T4, 3);
    a.add(T5, S1, T5);
    a.ld(T6, T5, 0); // a = offsets[u]
    a.ld(A2, T5, 8); // b = offsets[u+1]
    a.mv(A3, T6); // j = a

    a.place(inner_top);
    a.export(sym::LOOP_BRANCH);
    a.bgeu(A3, A2, inner_done); // taken => exit neighbor loop
    a.slli(T5, A3, 2);
    a.add(T5, S2, T5);
    a.lwu(A4, T5, 0); // v = neighbors[j]
    a.slli(T5, A4, 3);
    a.add(T5, S3, T5);
    a.ld(A5, T5, 0); // p = props[v]
    a.export(sym::VISITED_BRANCH);
    a.bge(A5, X0, skip_visit); // taken => already visited
    a.sd(T4, T5, 0); // props[v] = u  (the loop-carried store)
    a.slli(T3, S6, 2);
    a.add(T3, A7, T3);
    a.sw(A4, T3, 0); // next_frontier[next_len] = v
    a.addi(S6, S6, 1);
    a.place(skip_visit);
    a.addi(A3, A3, 1); // j++
    a.j(inner_top);
    a.place(inner_done);
    a.export(sym::INDUCTION);
    a.addi(T0, T0, 1); // i++ (snooped: frees the component's window)
    a.j(outer_top);

    a.place(outer_done);
    // Swap frontiers.
    a.mv(T3, A6);
    a.mv(A6, A7);
    a.mv(A7, T3);
    a.mv(S5, S6);
    a.j(level_loop);

    a.place(bfs_done);
    a.halt();

    let program = crate::assembled("bfs", a.finish());

    // ---- snoop tables + component ----
    let roi_pc = program.require_symbol(sym::ROI);
    let frontier_base_pc = program.require_symbol(sym::FR_BASE);
    let frontier_len_pc = program.require_symbol(sym::FR_LEN);
    let induction_pc = program.require_symbol(sym::INDUCTION);
    let loop_branch_pc = program.require_symbol(sym::LOOP_BRANCH);
    let visited_branch_pc = program.require_symbol(sym::VISITED_BRANCH);

    let mut fst = BTreeSet::new();
    fst.insert(visited_branch_pc);
    if params.variant == BfsVariant::Custom {
        fst.insert(loop_branch_pc);
    }

    let mut rst = BTreeMap::new();
    rst.insert(roi_pc, RstEntry::dest().begin());
    // The per-level frontier-base snoop doubles as an ROI re-arm
    // point: a no-op while the Agents are already armed (`begin_roi`
    // only acts when the ROI is closed), but it lets a component that
    // was swapped in mid-search re-arm at the next level boundary —
    // exactly where `reset_level` makes a cold component's state
    // meaningful again.
    rst.insert(frontier_base_pc, RstEntry::dest().begin());
    rst.insert(frontier_len_pc, RstEntry::dest());
    rst.insert(induction_pc, RstEntry::dest());
    // Branch outcomes of both hard branches: observed for fine-grained
    // commit tracking (and the Table 3 snoop rates).
    rst.insert(loop_branch_pc, RstEntry::branch());
    rst.insert(visited_branch_pc, RstEntry::branch());

    let cfg = BfsConfig {
        frontier_base_pc,
        frontier_len_pc,
        induction_pc,
        offsets_base: OFFSETS_BASE,
        neighbors_base: NEIGHBORS_BASE,
        properties_base: PROPS_BASE,
        loop_branch_pc,
        visited_branch_pc,
        window_size: params.window,
        dup_inference: true,
        predict_loop: true,
    };
    let cfg = match params.variant {
        BfsVariant::Custom => cfg,
        BfsVariant::Slipstream => slipstream_bfs(cfg),
    };

    let name = match params.variant {
        BfsVariant::Custom => format!("bfs-{input}"),
        BfsVariant::Slipstream => format!("bfs-{input}-slipstream"),
    };
    let factory: crate::usecase::ComponentFactory = {
        let cfg = cfg.clone();
        Arc::new(move || Box::new(BfsComponent::new(cfg.clone())))
    };
    UseCase::new(name, program, mem, fst, rst, factory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{powerlaw_graph, road_graph};

    #[test]
    fn kernel_computes_correct_parents() {
        let g = road_graph(16, 16, 4, 9);
        let uc = bfs(&g, "test", &BfsParams::default());
        let mut m = uc.machine();
        m.run(50_000_000).unwrap();
        assert!(m.halted());
        let reference = g.bfs_parents(0);
        for (v, &p) in reference.iter().enumerate() {
            let got = m.mem().read_committed(PROPS_BASE + 8 * v as u64, 8) as i64;
            if p < 0 {
                assert!(got < 0, "node {v} should stay unvisited");
            } else {
                // Any valid BFS parent is acceptable in general, but
                // our kernel and reference process in identical order.
                assert_eq!(got, p, "parent mismatch at node {v}");
            }
        }
    }

    #[test]
    fn powerlaw_kernel_terminates() {
        let g = powerlaw_graph(500, 3, 2);
        let uc = bfs(&g, "yt", &BfsParams::default());
        let mut m = uc.machine();
        m.run(50_000_000).unwrap();
        assert!(m.halted());
        // Power-law graphs are connected by construction: all visited.
        for v in 0..g.num_nodes() {
            let got = m.mem().read_committed(PROPS_BASE + 8 * v as u64, 8) as i64;
            assert!(got >= 0, "node {v} unreached");
        }
    }

    #[test]
    fn snoop_tables_cover_both_branches() {
        let g = road_graph(8, 8, 0, 0);
        let uc = bfs(&g, "t", &BfsParams::default());
        assert_eq!(uc.fst.len(), 2);
        assert!(uc.rst.values().any(|e| e.begin_roi));
        assert_eq!(uc.component().name(), "bfs-custom");
    }

    #[test]
    fn slipstream_variant_prunes_loop_branch() {
        let g = road_graph(8, 8, 0, 0);
        let p = BfsParams {
            variant: BfsVariant::Slipstream,
            ..BfsParams::default()
        };
        let uc = bfs(&g, "t", &p);
        assert_eq!(uc.fst.len(), 1, "only the visited branch is pre-executed");
        assert!(uc.name.contains("slipstream"));
    }
}
