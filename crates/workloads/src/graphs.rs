//! Synthetic graph generators standing in for the paper's SNAP inputs
//! (§3): a road-network-like lattice (roadNet-CA: huge diameter, low
//! degree) and a power-law graph (com-Youtube: small diameter, skewed
//! degree).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph in CSR form (undirected: each edge appears in both
/// adjacency lists).
#[derive(Clone, Debug)]
pub struct Csr {
    /// Per-node start offsets into `neighbors`; `n + 1` entries.
    pub offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    pub neighbors: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (twice the undirected count).
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbors of `u`.
    pub fn neighbors_of(&self, u: usize) -> &[u32] {
        &self.neighbors[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    fn from_adj(adj: Vec<Vec<u32>>) -> Csr {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut neighbors = Vec::new();
        offsets.push(0);
        for l in &adj {
            neighbors.extend_from_slice(l);
            offsets.push(neighbors.len() as u64);
        }
        Csr { offsets, neighbors }
    }

    /// BFS levels: `levels[k]` holds the nodes discovered at depth `k`
    /// in visit order, matching what the top-down kernel produces.
    pub fn bfs_levels(&self, src: usize) -> Vec<Vec<u32>> {
        let n = self.num_nodes();
        let mut parent = vec![-1i64; n];
        parent[src] = src as i64;
        let mut levels = vec![vec![src as u32]];
        loop {
            let mut next = Vec::new();
            // pfm-lint: allow(hygiene): levels starts non-empty and only grows
            for &u in levels.last().expect("non-empty") {
                for &v in self.neighbors_of(u as usize) {
                    if parent[v as usize] < 0 {
                        parent[v as usize] = u as i64;
                        next.push(v);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            levels.push(next);
        }
        levels
    }

    /// Reference BFS (parent array), for validating simulated runs.
    pub fn bfs_parents(&self, src: usize) -> Vec<i64> {
        let n = self.num_nodes();
        let mut parent = vec![-1i64; n];
        parent[src] = src as i64;
        let mut frontier = vec![src as u32];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors_of(u as usize) {
                    if parent[v as usize] < 0 {
                        parent[v as usize] = u as i64;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        parent
    }
}

/// A road-network-like graph: a `w x h` lattice with ~25% of the
/// lattice edges randomly removed (real road networks are irregular:
/// dead ends, missing links, variable intersection degree) plus a
/// sprinkling of random shortcut edges. This yields the huge diameter,
/// low degree, and irregular trip counts characteristic of roadNet-CA
/// — the irregularity is what makes the neighbor-loop and visited
/// branches hard for the baseline predictor.
pub fn road_graph(w: usize, h: usize, shortcuts: usize, seed: u64) -> Csr {
    let n = w * h;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let add = |adj: &mut Vec<Vec<u32>>, a: usize, b: usize| {
        adj[a].push(b as u32);
        adj[b].push(a as u32);
    };
    let mut rng = StdRng::seed_from_u64(seed);
    for y in 0..h {
        for x in 0..w {
            let u = y * w + x;
            if x + 1 < w && rng.gen_range(0..100) < 75 {
                add(&mut adj, u, u + 1);
            }
            if y + 1 < h && rng.gen_range(0..100) < 75 {
                add(&mut adj, u, u + w);
            }
        }
    }
    // Shortcuts are local (diagonal connectors, bypass roads): long
    // random edges would collapse the diameter into a small world,
    // which road networks are not.
    for _ in 0..shortcuts {
        let x = rng.gen_range(0..w) as i64;
        let y = rng.gen_range(0..h) as i64;
        let dx = rng.gen_range(-20..=20i64);
        let dy = rng.gen_range(-20..=20i64);
        let (x2, y2) = (x + dx, y + dy);
        if x2 >= 0 && x2 < w as i64 && y2 >= 0 && y2 < h as i64 {
            let a = (y * w as i64 + x) as usize;
            let b = (y2 * w as i64 + x2) as usize;
            if a != b {
                add(&mut adj, a, b);
            }
        }
    }
    Csr::from_adj(adj)
}

/// Relabels a graph's nodes with a random permutation. Real-world
/// graph files (e.g., roadNet-CA) assign IDs with no memory locality,
/// so neighbor/property accesses scatter across the whole arrays; a
/// freshly generated lattice has near-perfect locality until shuffled.
pub fn shuffle_labels(g: &Csr, seed: u64) -> Csr {
    shuffle_labels_fraction(g, seed, 1.0)
}

/// Like [`shuffle_labels`] but only a `fraction` of the nodes are
/// relabeled (swapped with random partners); the rest keep their
/// locality. This dials the workload between cache-friendly (0.0) and
/// fully scattered (1.0).
pub fn shuffle_labels_fraction(g: &Csr, seed: u64, fraction: f64) -> Csr {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let swaps = ((n as f64) * fraction.clamp(0.0, 1.0) / 2.0) as usize;
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        perm.swap(i, j);
    }
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for u in 0..n {
        let nu = perm[u] as usize;
        adj[nu] = g
            .neighbors_of(u)
            .iter()
            .map(|&v| perm[v as usize])
            .collect();
    }
    Csr::from_adj(adj)
}

/// A power-law graph via preferential attachment (Barabási–Albert with
/// `m` edges per new node): small diameter, heavy-tailed degrees, like
/// com-Youtube.
pub fn powerlaw_graph(n: usize, m: usize, seed: u64) -> Csr {
    assert!(n > m && m > 0, "need n > m > 0");
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut rng = StdRng::seed_from_u64(seed);
    // Repeated-endpoints list: sampling uniformly from it implements
    // preferential attachment.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique over the first m+1 nodes.
    for a in 0..=m {
        for b in (a + 1)..=m {
            adj[a].push(b as u32);
            adj[b].push(a as u32);
            endpoints.push(a as u32);
            endpoints.push(b as u32);
        }
    }
    for u in (m + 1)..n {
        let mut targets = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t as usize != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            adj[u].push(t);
            adj[t as usize].push(u as u32);
            endpoints.push(u as u32);
            endpoints.push(t);
        }
    }
    Csr::from_adj(adj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_graph_shape() {
        let g = road_graph(10, 10, 5, 1);
        assert_eq!(g.num_nodes(), 100);
        // ~75% of the 180 undirected lattice edges, doubled, + shortcuts.
        assert!(g.num_edges() >= 200);
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg < 5.0, "road graphs are sparse, got avg degree {avg}");
        // Degrees must be irregular (TAGE-hostile trip counts).
        let distinct: std::collections::HashSet<usize> =
            (0..100).map(|u| g.neighbors_of(u).len()).collect();
        assert!(
            distinct.len() >= 4,
            "expected varied degrees, got {distinct:?}"
        );
    }

    #[test]
    fn powerlaw_graph_has_heavy_tail() {
        let g = powerlaw_graph(2000, 3, 7);
        assert_eq!(g.num_nodes(), 2000);
        let mut degrees: Vec<usize> = (0..2000).map(|u| g.neighbors_of(u).len()).collect();
        degrees.sort_unstable();
        let max = *degrees.last().unwrap();
        let median = degrees[1000];
        assert!(
            max > 10 * median,
            "expected hubs: max {max}, median {median}"
        );
    }

    #[test]
    fn bfs_parents_cover_most_of_the_graph() {
        let g = road_graph(20, 20, 10, 0);
        let parents = g.bfs_parents(0);
        let visited = parents.iter().filter(|&&p| p >= 0).count();
        assert!(
            visited > 300,
            "percolated lattice stays mostly connected, got {visited}"
        );
        assert_eq!(parents[0], 0);
    }

    #[test]
    fn csr_is_symmetric() {
        let g = powerlaw_graph(500, 2, 3);
        for u in 0..g.num_nodes() {
            for &v in g.neighbors_of(u) {
                assert!(
                    g.neighbors_of(v as usize).contains(&(u as u32)),
                    "edge {u}->{v} missing its reverse"
                );
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let a = road_graph(15, 15, 10, 42);
        let b = road_graph(15, 15, 10, 42);
        assert_eq!(a.neighbors, b.neighbors);
        let c = powerlaw_graph(300, 3, 42);
        let d = powerlaw_graph(300, 3, 42);
        assert_eq!(c.neighbors, d.neighbors);
    }
}
