//! The five SPEC-2006-style prefetch workloads of §4.3: loop kernels
//! whose delinquent loads reproduce each benchmark's documented access
//! pattern, paired with the matching custom prefetcher.
//!
//! * `libquantum` — one strided delinquent load in a long flat loop
//!   (the `quantum_toffoli` walk of Figure 15), adaptive distance.
//! * `bwaves` — delinquent load inside a loop nest whose address mixes
//!   several induction variables (a scattered, page-crossing walk that
//!   defeats per-page delta prefetchers).
//! * `lbm` — a cluster of delinquent loads at fixed plane offsets from
//!   a walking base; the prefetcher pushes the cluster as a set.
//! * `milc` — several libquantum-like streams prefetched together.
//! * `leslie` — multiple ROIs, each a nested loop over its own array.

use crate::usecase::UseCase;
use pfm_components::{CustomPrefetcher, EngineConfig};
use pfm_fabric::RstEntry;
use pfm_isa::reg::names::*;
use pfm_isa::{Asm, SpecMemory};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Data array base for the prefetch kernels.
pub const ARRAY_BASE: u64 = 0x1_0000_0000;
/// Second array base (bwaves' scattered stream, milc's extra arrays).
pub const ARRAY2_BASE: u64 = 0x2_0000_0000;

fn usecase(
    name: &str,
    program: pfm_isa::Program,
    mem: SpecMemory,
    rst: BTreeMap<u64, RstEntry>,
    engines: Vec<EngineConfig>,
    comp_name: &'static str,
) -> UseCase {
    let factory: crate::usecase::ComponentFactory = {
        let engines = engines.clone();
        Arc::new(move || Box::new(CustomPrefetcher::new(comp_name, engines.clone())))
    };
    UseCase::new(name, program, mem, BTreeSet::new(), rst, factory)
}

/// libquantum: `for i in 0..n { B = node[i]; if (B & control) ... }`
/// with a 16-byte element stride.
pub fn libquantum(n: u64, calls: u64) -> UseCase {
    let mut mem = SpecMemory::new();
    {
        // Sparse control bits: a period-16 branch pattern (biased,
        // easily predicted) so the bottleneck is purely the load.
        let m = mem.committed_mut();
        for i in (0..n).step_by(16) {
            m.write(ARRAY_BASE + i * 16, 8, 0x2);
        }
    }
    let mut a = Asm::new(0x1000);
    let call_loop = a.label();
    let body = a.label();
    let skip = a.label();
    let done = a.label();
    a.li(S1, ARRAY_BASE as i64);
    a.li(S9, calls as i64);
    a.li(A2, 0x2); // control mask
    a.li(A3, 0x10); // target mask
    a.li(S6, 0); // bookkeeping accumulator
    a.place(call_loop);
    a.export("base_pc");
    a.mv(A0, S1); // snooped: base
    a.export("count_pc");
    a.li(A1, n as i64); // snooped: count
    a.li(T0, 0);
    a.place(body);
    a.bge(T0, A1, done);
    a.slli(T3, T0, 4);
    a.add(T3, A0, T3);
    a.export("load_pc");
    a.ld(T4, T3, 0); // delinquent load B
    a.and(T5, T4, A2);
    // Bookkeeping the real toffoli body performs per node.
    a.srli(T6, T4, 8);
    a.xor(T6, T6, T4);
    a.slli(S4, T6, 1);
    a.add(S4, S4, T6);
    a.andi(S5, S4, 0xFF);
    a.add(S6, S6, S5);
    a.beq(T5, X0, skip);
    a.xor(T4, T4, A3);
    a.sd(T4, T3, 0);
    a.place(skip);
    a.addi(T0, T0, 1);
    a.j(body);
    a.place(done);
    a.addi(S9, S9, -1);
    a.bne(S9, X0, call_loop);
    a.halt();
    let program = crate::assembled("libquantum", a.finish());

    let base_pc = program.require_symbol("base_pc");
    let count_pc = program.require_symbol("count_pc");
    let load_pc = program.require_symbol("load_pc");
    let mut rst = BTreeMap::new();
    rst.insert(base_pc, RstEntry::dest().begin());
    rst.insert(count_pc, RstEntry::dest());
    rst.insert(load_pc, RstEntry::dest());
    let engines = vec![EngineConfig {
        base_pcs: vec![base_pc],
        count_pc,
        load_pc,
        extents: vec![n],
        strides: vec![16],
        stream_offsets: vec![0],
        as_set: false,
        adaptive: true,
        init_distance: 8,
    }];
    usecase("libquantum", program, mem, rst, engines, "libq-prefetcher")
}

/// bwaves: nested `i, j, k` loops; the delinquent load's address mixes
/// the induction variables so consecutive accesses jump across pages.
pub fn bwaves(ni: u64, nj: u64, nk: u64) -> UseCase {
    let mem = SpecMemory::new();
    let mut a = Asm::new(0x1000);
    a.li(S1, ARRAY_BASE as i64); // sequential stream X
    a.li(S2, ARRAY2_BASE as i64); // scattered stream Y
    a.export("base_pc");
    a.mv(A0, S2); // snooped: scattered base
    a.export("count_pc");
    a.li(A1, (ni * nj * nk) as i64);
    let li = a.label(); // i loop
    let lj = a.label();
    let lk = a.label();
    let di = a.label();
    let dj = a.label();
    let dk = a.label();
    a.li(T0, 0); // i
    a.place(li);
    a.li(T1, 0); // j
    a.place(lj);
    a.li(T2, 0); // k
    a.place(lk);
    // X[(i*nj*nk + j*nk + k)*8] — sequential.
    a.li(T3, (nj * nk) as i64);
    a.mul(T3, T0, T3);
    a.li(T4, nk as i64);
    a.mul(T4, T1, T4);
    a.add(T3, T3, T4);
    a.add(T3, T3, T2);
    a.slli(T3, T3, 3);
    a.add(T3, S1, T3);
    a.fld(FT0, T3, 0);
    // Y[(k*ni*nj + j*97 + i)*8] — scattered (delinquent): every
    // access lands on a fresh line in a fresh page.
    a.li(T5, (ni * nj) as i64);
    a.mul(T5, T2, T5);
    a.li(T6, 97);
    a.mul(T6, T1, T6);
    a.add(T5, T5, T6);
    a.add(T5, T5, T0);
    a.slli(T5, T5, 3);
    a.add(T5, S2, T5);
    a.export("load_pc");
    a.fld(FT1, T5, 0); // delinquent load
    a.fadd(FT2, FT0, FT1);
    a.fsd(FT2, T3, 0);
    a.addi(T2, T2, 1);
    a.li(T4, nk as i64);
    a.blt(T2, T4, lk);
    a.j(dk);
    a.place(dk);
    a.addi(T1, T1, 1);
    a.li(T4, nj as i64);
    a.blt(T1, T4, lj);
    a.j(dj);
    a.place(dj);
    a.addi(T0, T0, 1);
    a.li(T4, ni as i64);
    a.blt(T0, T4, li);
    a.j(di);
    a.place(di);
    a.halt();
    let program = crate::assembled("bwaves", a.finish());

    let base_pc = program.require_symbol("base_pc");
    let count_pc = program.require_symbol("count_pc");
    let load_pc = program.require_symbol("load_pc");
    let mut rst = BTreeMap::new();
    rst.insert(base_pc, RstEntry::dest().begin());
    rst.insert(count_pc, RstEntry::dest());
    rst.insert(load_pc, RstEntry::dest());
    // The FSM walks the program's (i, j, k) space with the Y stream's
    // per-level strides: i -> 8, j -> 97*8, k -> ni*nj*8.
    let engines = vec![EngineConfig {
        base_pcs: vec![base_pc],
        count_pc,
        load_pc,
        extents: vec![ni, nj, nk],
        strides: vec![8, 97 * 8, (ni * nj) as i64 * 8],
        stream_offsets: vec![0],
        as_set: false,
        adaptive: true,
        init_distance: 16,
    }];
    usecase("bwaves", program, mem, rst, engines, "bwaves-prefetcher")
}

/// lbm: a cluster of delinquent loads at fixed plane offsets from a
/// walking base, prefetched as a set.
pub fn lbm(n: u64, planes: u64) -> UseCase {
    let mem = SpecMemory::new();
    let plane_bytes = (n * 160) as i64;
    let mut a = Asm::new(0x1000);
    a.li(S1, ARRAY_BASE as i64);
    a.export("base_pc");
    a.mv(A0, S1);
    a.export("count_pc");
    a.li(A1, n as i64);
    let body = a.label();
    let done = a.label();
    a.li(T0, 0);
    a.li(A3, 160); // 20 doubles per cell, as in lbm's struct-of-cells
    a.place(body);
    a.bge(T0, A1, done);
    a.mul(T3, T0, A3);
    a.add(T3, A0, T3);
    // The cluster: one load per plane. The first is the tracked
    // delinquent load; all suffer together (bottleneck shifts among
    // them unless they are prefetched as a set).
    a.export("load_pc");
    a.fld(FT0, T3, 0);
    for p in 1..planes {
        a.fld(FT1, T3, p as i64 * plane_bytes);
        a.fadd(FT0, FT0, FT1);
    }
    // Collision-kernel FP density (real lbm performs ~100s of FLOPs
    // per cell; a taste of that keeps prefetch demand per cycle low).
    for _ in 0..8 {
        a.fmul(FT2, FT0, FT1);
        a.fadd(FT0, FT0, FT2);
        a.fsub(FT3, FT0, FT1);
    }
    a.fsd(FT0, T3, 0);
    a.addi(T0, T0, 1);
    a.j(body);
    a.place(done);
    a.halt();
    let program = crate::assembled("lbm", a.finish());

    let base_pc = program.require_symbol("base_pc");
    let count_pc = program.require_symbol("count_pc");
    let load_pc = program.require_symbol("load_pc");
    let mut rst = BTreeMap::new();
    rst.insert(base_pc, RstEntry::dest().begin());
    rst.insert(count_pc, RstEntry::dest());
    rst.insert(load_pc, RstEntry::dest());
    let engines = vec![EngineConfig {
        base_pcs: vec![base_pc],
        count_pc,
        load_pc,
        extents: vec![n],
        strides: vec![160],
        stream_offsets: (0..planes).map(|p| p as i64 * plane_bytes).collect(),
        as_set: true,
        adaptive: false,
        init_distance: 16,
    }];
    usecase("lbm", program, mem, rst, engines, "lbm-prefetcher")
}

/// milc: several libquantum-like streams accessed together each
/// iteration.
pub fn milc(n: u64, streams: u64) -> UseCase {
    let mem = SpecMemory::new();
    let stream_bytes = (n * 16) as i64;
    let mut a = Asm::new(0x1000);
    a.li(S1, ARRAY_BASE as i64);
    a.export("base_pc");
    a.mv(A0, S1);
    a.export("count_pc");
    a.li(A1, n as i64);
    let body = a.label();
    let done = a.label();
    a.li(T0, 0);
    a.place(body);
    a.bge(T0, A1, done);
    a.slli(T3, T0, 4);
    a.add(T3, A0, T3);
    a.export("load_pc");
    a.fld(FT0, T3, 0);
    for s in 1..streams {
        a.fld(FT1, T3, s as i64 * stream_bytes);
        a.fmul(FT0, FT0, FT1);
    }
    // su3 matrix-vector flavor: dense FP work per element.
    a.fadd(FT2, FT0, FT1);
    for _ in 0..6 {
        a.fmul(FT3, FT2, FT0);
        a.fadd(FT2, FT2, FT3);
    }
    a.fsd(FT2, T3, 8);
    a.addi(T0, T0, 1);
    a.j(body);
    a.place(done);
    a.halt();
    let program = crate::assembled("milc", a.finish());

    let base_pc = program.require_symbol("base_pc");
    let count_pc = program.require_symbol("count_pc");
    let load_pc = program.require_symbol("load_pc");
    let mut rst = BTreeMap::new();
    rst.insert(base_pc, RstEntry::dest().begin());
    rst.insert(count_pc, RstEntry::dest());
    rst.insert(load_pc, RstEntry::dest());
    let engines = vec![EngineConfig {
        base_pcs: vec![base_pc],
        count_pc,
        load_pc,
        extents: vec![n],
        strides: vec![16],
        stream_offsets: (0..streams).map(|s| s as i64 * stream_bytes).collect(),
        as_set: false,
        adaptive: true,
        init_distance: 8,
    }];
    usecase("milc", program, mem, rst, engines, "milc-prefetcher")
}

/// leslie: three ROIs, each a two-level loop nest over its own array
/// with a non-unit inner stride.
pub fn leslie(rows: u64, cols: u64) -> UseCase {
    let mem = SpecMemory::new();
    let mut a = Asm::new(0x1000);
    let mut engines = Vec::new();
    let mut rst = BTreeMap::new();
    let inner_stride: i64 = 192; // three lines apart: hostile to next-N-line
    let row_stride: i64 = cols as i64 * inner_stride + 256;

    for roi in 0..3u64 {
        let base = ARRAY_BASE + roi * 0x800_0000;
        a.li(S1, base as i64);
        let base_sym = format!("base_pc_{roi}");
        let count_sym = format!("count_pc_{roi}");
        let load_sym = format!("load_pc_{roi}");
        a.export(&base_sym);
        a.mv(A0, S1);
        a.export(&count_sym);
        a.li(A1, (rows * cols) as i64);
        let lr = a.label();
        let lc = a.label();
        let dr = a.label();
        a.fmv_d_x(FT1, X0); // zero the accumulator before first use
        a.li(T0, 0); // row
        a.place(lr);
        a.li(T1, 0); // col
        a.place(lc);
        a.li(T3, row_stride);
        a.mul(T3, T0, T3);
        a.li(T4, inner_stride);
        a.mul(T4, T1, T4);
        a.add(T3, T3, T4);
        a.add(T3, A0, T3);
        a.export(&load_sym);
        a.fld(FT0, T3, 0);
        a.fadd(FT1, FT1, FT0);
        a.addi(T1, T1, 1);
        a.li(T4, cols as i64);
        a.blt(T1, T4, lc);
        a.addi(T0, T0, 1);
        a.li(T4, rows as i64);
        a.blt(T0, T4, lr);
        a.j(dr);
        a.place(dr);
    }
    a.halt();
    let program = crate::assembled("leslie", a.finish());

    for roi in 0..3u64 {
        let base_pc = program.require_symbol(&format!("base_pc_{roi}"));
        let count_pc = program.require_symbol(&format!("count_pc_{roi}"));
        let load_pc = program.require_symbol(&format!("load_pc_{roi}"));
        let entry = if roi == 0 {
            RstEntry::dest().begin()
        } else {
            RstEntry::dest()
        };
        rst.insert(base_pc, entry);
        rst.insert(count_pc, RstEntry::dest());
        rst.insert(load_pc, RstEntry::dest());
        engines.push(EngineConfig {
            base_pcs: vec![base_pc],
            count_pc,
            load_pc,
            extents: vec![rows, cols],
            strides: vec![row_stride, inner_stride],
            stream_offsets: vec![0],
            as_set: false,
            adaptive: false,
            init_distance: 24,
        });
    }
    usecase("leslie", program, mem, rst, engines, "leslie-prefetcher")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libquantum_runs_and_counts() {
        let uc = libquantum(1000, 2);
        let mut m = uc.machine();
        m.run(10_000_000).unwrap();
        assert!(m.halted());
        assert_eq!(uc.component().name(), "libq-prefetcher");
        assert!(uc.rst.values().any(|e| e.begin_roi));
    }

    #[test]
    fn bwaves_touches_both_streams() {
        let uc = bwaves(4, 4, 4);
        let mut m = uc.machine();
        m.run(10_000_000).unwrap();
        assert!(m.halted());
        // The sequential stream was written (fsd).
        let _ = m.mem().read_committed(ARRAY_BASE, 8);
    }

    #[test]
    fn lbm_and_milc_assemble_and_run() {
        for uc in [lbm(500, 4), milc(500, 4)] {
            let mut m = uc.machine();
            m.run(10_000_000).unwrap();
            assert!(m.halted(), "{} did not halt", uc.name);
        }
    }

    #[test]
    fn leslie_has_three_engines_in_rst() {
        let uc = leslie(16, 16);
        let mut m = uc.machine();
        m.run(10_000_000).unwrap();
        assert!(m.halted());
        let dests = uc.rst.values().filter(|e| e.observe.is_some()).count();
        assert!(dests >= 9, "3 ROIs x 3 snoop points");
    }
}
