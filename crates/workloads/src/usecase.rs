//! A PFM use-case: a program, its initial memory image, and the
//! "configuration bitstream" (snoop tables + custom component) shipped
//! with it.

use pfm_fabric::{CustomComponent, Fabric, FabricParams, FaultPlan, FaultyComponent, RstEntry};
use pfm_isa::{Machine, Program, SpecMemory};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Factory for fresh component instances (each simulation run gets its
/// own).
pub type ComponentFactory = Arc<dyn Fn() -> Box<dyn CustomComponent> + Send + Sync>;

/// A complete workload + PFM configuration bundle.
#[derive(Clone)]
pub struct UseCase {
    /// Human-readable name (e.g. `astar`, `bfs-roads`, `libquantum`).
    pub name: String,
    /// The assembled kernel.
    pub program: Program,
    /// Initial data memory.
    pub memory: SpecMemory,
    /// Fetch Snoop Table contents.
    pub fst: BTreeSet<u64>,
    /// Retire Snoop Table contents.
    pub rst: BTreeMap<u64, RstEntry>,
    component: ComponentFactory,
}

impl std::fmt::Debug for UseCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UseCase")
            .field("name", &self.name)
            .field("instructions", &self.program.len())
            .field("fst_entries", &self.fst.len())
            .field("rst_entries", &self.rst.len())
            .finish()
    }
}

impl UseCase {
    /// Bundles a use-case.
    pub fn new(
        name: impl Into<String>,
        program: Program,
        memory: SpecMemory,
        fst: BTreeSet<u64>,
        rst: BTreeMap<u64, RstEntry>,
        component: ComponentFactory,
    ) -> UseCase {
        UseCase {
            name: name.into(),
            program,
            memory,
            fst,
            rst,
            component,
        }
    }

    /// A fresh functional machine over this workload.
    pub fn machine(&self) -> Machine {
        Machine::new(self.program.clone(), self.memory.clone())
    }

    /// A fresh custom component instance.
    pub fn component(&self) -> Box<dyn CustomComponent> {
        (self.component)()
    }

    /// A fresh fabric configured with this use-case's snoop tables and
    /// component.
    pub fn fabric(&self, params: FabricParams) -> Fabric {
        Fabric::new(params, self.fst.clone(), self.rst.clone(), self.component())
    }

    /// A fresh fabric whose component is wrapped in the deterministic
    /// fault injector (the chaos harness: same snoop tables, same inner
    /// component, adversarially perturbed packet streams).
    pub fn fabric_faulty(&self, params: FabricParams, plan: FaultPlan) -> Fabric {
        Fabric::new(
            params,
            self.fst.clone(),
            self.rst.clone(),
            Box::new(FaultyComponent::new(self.component(), plan)),
        )
    }
}

// Use-cases cross thread boundaries in the parallel experiment
// executor; keep the bundle (and therefore every component factory)
// thread-safe by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<UseCase>()
};

/// A named, keyed, thread-safe recipe for building a [`UseCase`].
///
/// Experiment plans describe runs declaratively; the actual (often
/// expensive) use-case construction — graph generation, memory-image
/// assembly — happens inside the executor's worker threads, so the
/// factory must be `Send + Sync`. The `key` is a canonical content
/// key: two factories with the same key MUST build behaviourally
/// identical use-cases (the run deduplicator relies on it), and
/// factories building different workloads MUST have different keys.
#[derive(Clone)]
pub struct UseCaseFactory {
    name: Arc<str>,
    key: Arc<str>,
    build: Arc<dyn Fn() -> UseCase + Send + Sync>,
}

impl UseCaseFactory {
    /// Wraps a builder under a display name and canonical content key.
    pub fn new(
        name: impl Into<String>,
        key: impl Into<String>,
        build: impl Fn() -> UseCase + Send + Sync + 'static,
    ) -> UseCaseFactory {
        UseCaseFactory {
            name: name.into().into(),
            key: key.into().into(),
            build: Arc::new(build),
        }
    }

    /// Display name of the built use-case (e.g. `astar`, `libquantum`)
    /// — matches `UseCase::name`, available without building.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Canonical content key (distinguishes parameterizations that
    /// share a display name, e.g. astar at different scopes).
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Builds a fresh use-case.
    pub fn build(&self) -> UseCase {
        (self.build)()
    }
}

impl std::fmt::Debug for UseCaseFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UseCaseFactory")
            .field("name", &self.name)
            .field("key", &self.key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::{FabricIo, PredPacket};

    struct Dummy;
    impl CustomComponent for Dummy {
        fn tick(&mut self, io: &mut FabricIo<'_>) {
            let _ = io.push_pred(PredPacket { pc: 0, taken: true });
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
    }

    #[test]
    fn usecase_yields_fresh_instances() {
        let mut a = pfm_isa::Asm::new(0x1000);
        a.halt();
        let uc = UseCase::new(
            "test",
            a.finish().unwrap(),
            SpecMemory::new(),
            BTreeSet::new(),
            BTreeMap::new(),
            Arc::new(|| Box::new(Dummy)),
        );
        let m1 = uc.machine();
        let m2 = uc.machine();
        assert_eq!(m1.pc(), m2.pc());
        assert_eq!(uc.component().name(), "dummy");
        let f = uc.fabric(FabricParams::paper_default());
        assert!(!f.enabled());
        assert!(!format!("{uc:?}").is_empty());
    }
}
