//! Property-based tests for the workloads: the assembled kernels must
//! compute exactly what their Rust references compute, for arbitrary
//! generator parameters, and the graph generators must uphold their
//! structural invariants.

use pfm_workloads::graphs::{powerlaw_graph, road_graph, shuffle_labels_fraction};
use pfm_workloads::{astar, astar_reference, bfs, AstarParams, BfsParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The astar kernel's final waymap image equals the reference
    /// implementation for arbitrary grids, obstacle densities, seeds
    /// and fill counts.
    #[test]
    fn astar_kernel_equals_reference(
        w in 12usize..28,
        h in 12usize..28,
        block_pct in 0u32..60,
        fills in 1u64..4,
        seed: u64,
    ) {
        let p = AstarParams { grid_w: w, grid_h: h, block_pct, fills, seed, ..AstarParams::default() };
        let uc = astar(&p);
        let mut m = uc.machine();
        m.run(200_000_000).unwrap();
        prop_assert!(m.halted(), "kernel must terminate");
        let reference = astar_reference(&p);
        for (idx, &expect) in reference.iter().enumerate() {
            let got =
                m.mem().read_committed(pfm_workloads::astar::WAYMAP_BASE + 8 * idx as u64, 4) as u32;
            prop_assert_eq!(got, expect, "cell {}", idx);
        }
    }

    /// The bfs kernel visits exactly the reference's reachable set with
    /// identical parents, over arbitrary graphs and start levels.
    #[test]
    fn bfs_kernel_equals_reference(
        w in 6usize..16,
        h in 6usize..16,
        shortcuts in 0usize..20,
        seed: u64,
        start_level in 0usize..6,
    ) {
        let g = road_graph(w, h, shortcuts, seed);
        let params = BfsParams { source: 0, start_level, ..BfsParams::default() };
        let uc = bfs(&g, "prop", &params);
        let mut m = uc.machine();
        m.run(200_000_000).unwrap();
        prop_assert!(m.halted());
        let reference = g.bfs_parents(0);
        let levels = g.bfs_levels(0);
        let start = start_level.min(levels.len() - 1);
        for (v, &p) in reference.iter().enumerate() {
            let got =
                m.mem().read_committed(pfm_workloads::bfs::PROPS_BASE + 8 * v as u64, 8) as i64;
            if p < 0 {
                prop_assert!(got < 0, "node {} must stay unvisited", v);
            } else {
                // Nodes at or before the start level are seeded with
                // parent = self; deeper nodes must match exactly.
                let depth = levels.iter().position(|l| l.contains(&(v as u32)));
                match depth {
                    Some(d) if d <= start => prop_assert!(got >= 0),
                    _ => prop_assert_eq!(got, p, "parent of node {}", v),
                }
            }
        }
    }

    /// Graph invariants: CSR symmetry and monotone offsets survive
    /// shuffling.
    #[test]
    fn shuffled_graphs_keep_invariants(
        n in 30usize..200,
        m in 1usize..4,
        seed: u64,
        fraction in 0.0f64..1.0,
    ) {
        let g = shuffle_labels_fraction(&powerlaw_graph(n, m, seed), seed ^ 1, fraction);
        prop_assert_eq!(g.num_nodes(), n);
        // Offsets monotone.
        for w in g.offsets.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Symmetry.
        for u in 0..n {
            for &v in g.neighbors_of(u) {
                prop_assert!(
                    g.neighbors_of(v as usize).contains(&(u as u32)),
                    "edge {}->{} lost its reverse",
                    u,
                    v
                );
            }
        }
        // Shuffling preserves the degree multiset.
        let base = powerlaw_graph(n, m, seed);
        let mut d1: Vec<usize> = (0..n).map(|u| base.neighbors_of(u).len()).collect();
        let mut d2: Vec<usize> = (0..n).map(|u| g.neighbors_of(u).len()).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        prop_assert_eq!(d1, d2);
    }
}
