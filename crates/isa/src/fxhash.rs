//! A tiny deterministic hasher for the simulator's hot-loop hash maps.
//!
//! `std`'s default `SipHash` is keyed per-process for HashDoS
//! resistance, which the simulator does not need: every map in the hot
//! loop is keyed by trusted integers (page numbers, aligned words,
//! cycle numbers, sequence numbers). This is the classic
//! multiply-rotate "Fx" hash — a fixed function of the key bytes, so
//! it is deterministic across processes and hosts, and an order of
//! magnitude cheaper than SipHash for 8-byte keys.
//!
//! Determinism note: swapping the hasher changes *iteration order* of a
//! map, which is why pfm-lint bans iterating hash maps in simulation
//! crates in the first place. All users of these aliases do point
//! lookups only, so the change is invisible to simulated statistics.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Fixed odd multiplier (the golden-ratio constant used by rustc's
/// FxHash); quality only needs to be "good enough" for integer keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over little-endian key words.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            // pfm-lint: allow(hygiene): chunks_exact guarantees len 8
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
        // Pinned value: the hash function is part of no contract, but a
        // silent change would at least show up here.
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn maps_do_point_lookups() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i * 4096, i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 4096)), Some(&i));
        }
    }

    #[test]
    fn byte_stream_matches_word_stream_padding() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0]);
        // Different lengths pad differently only in the remainder word;
        // 3 bytes and 5 bytes both zero-pad to the same final word here.
        assert_eq!(a.finish(), b.finish());
    }
}
