//! Instruction definitions and static decode information.
//!
//! The ISA is a compact RV64-flavoured instruction set: 64-bit integer
//! ALU operations, loads/stores of 1/2/4/8 bytes, conditional branches,
//! jumps, and double-precision floating-point arithmetic. Every
//! instruction occupies 4 bytes of the instruction address space so the
//! program counter advances by [`INST_BYTES`] per instruction.

use crate::reg::{FReg, Reg, RegRef};
use core::fmt;

/// Size in bytes of one instruction slot in the PC address space.
pub const INST_BYTES: u64 = 4;

/// Integer ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Logical shift left.
    Sll,
    /// Set-less-than (signed).
    Slt,
    /// Set-less-than (unsigned).
    Sltu,
    /// Bitwise exclusive-or.
    Xor,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// Multiplication (low 64 bits).
    Mul,
    /// Division (signed, RISC-V semantics: x/0 == -1).
    Div,
    /// Division (unsigned, RISC-V semantics: x/0 == u64::MAX).
    Divu,
    /// Remainder (signed, RISC-V semantics: x%0 == x).
    Rem,
    /// Remainder (unsigned, RISC-V semantics: x%0 == x).
    Remu,
}

impl AluOp {
    /// Whether this operation executes on the FP/complex lanes
    /// (multi-cycle multiply/divide) rather than the simple ALU lanes.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }

    /// Evaluates the operation over two 64-bit operand values with the
    /// machine's exact semantics (wrapping arithmetic, shift amounts
    /// masked to 6 bits, RISC-V divide-by-zero/overflow results). Both
    /// executors and the static constant-propagation analysis fold
    /// through this single definition, so they cannot drift apart.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl((b & 63) as u32),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr((b & 63) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else if (a as i64) == i64::MIN && (b as i64) == -1 {
                    a
                } else {
                    ((a as i64) / (b as i64)) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else if (a as i64) == i64::MIN && (b as i64) == -1 {
                    0
                } else {
                    ((a as i64) % (b as i64)) as u64
                }
            }
            AluOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// Double-precision floating-point ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FAluOp {
    /// Addition.
    Fadd,
    /// Subtraction.
    Fsub,
    /// Multiplication.
    Fmul,
    /// Division.
    Fdiv,
    /// Minimum.
    Fmin,
    /// Maximum.
    Fmax,
}

/// Conditional branch condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less-than (signed).
    Lt,
    /// Greater-or-equal (signed).
    Ge,
    /// Less-than (unsigned).
    Ltu,
    /// Greater-or-equal (unsigned).
    Geu,
}

impl BranchCond {
    /// Evaluates the condition over two source register values.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// Memory access width in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemWidth {
    /// Width in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B1 => 1,
            MemWidth::B2 => 2,
            MemWidth::B4 => 4,
            MemWidth::B8 => 8,
        }
    }
}

/// A single instruction.
///
/// Branch and jump targets are absolute byte addresses in the PC space
/// (the assembler resolves labels to these).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Inst {
    /// Register-register integer ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate integer ALU operation: `rd = rs1 op imm`.
    AluImm {
        /// Operation (shift amounts use the low 6 bits of `imm`).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// Load a full 64-bit immediate: `rd = imm`.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Integer load: `rd = mem[rs1 + offset]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend the loaded value.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Integer store: `mem[rs1 + offset] = src`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Value register.
        src: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Conditional branch: `if cond(rs1, rs2) pc = target`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
        /// Absolute target address.
        target: u64,
    },
    /// Unconditional jump with link: `rd = pc+4; pc = target`.
    Jal {
        /// Link destination (use `x0` for a plain jump).
        rd: Reg,
        /// Absolute target address.
        target: u64,
    },
    /// Indirect jump with link: `rd = pc+4; pc = (base + offset) & !1`.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Floating-point load (8 bytes): `fd = mem[base + offset]`.
    FLoad {
        /// Destination.
        fd: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Floating-point store (8 bytes): `mem[base + offset] = fs`.
    FStore {
        /// Value register.
        fs: FReg,
        /// Base address register.
        base: Reg,
        /// Signed displacement.
        offset: i64,
    },
    /// Floating-point ALU operation: `fd = fs1 op fs2`.
    FAlu {
        /// Operation.
        op: FAluOp,
        /// Destination.
        fd: FReg,
        /// First source.
        fs1: FReg,
        /// Second source.
        fs2: FReg,
    },
    /// Move integer register bits into an FP register.
    FMvToF {
        /// Destination.
        fd: FReg,
        /// Source.
        rs1: Reg,
    },
    /// Move FP register bits into an integer register.
    FMvToX {
        /// Destination.
        rd: Reg,
        /// Source.
        fs1: FReg,
    },
    /// No operation.
    Nop,
    /// Stop the simulation; the machine reports `halted`.
    Halt,
}

/// Execution class of an instruction, used for lane steering and latency.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ExecClass {
    /// Simple single-cycle integer ALU operation.
    SimpleAlu,
    /// Multi-cycle integer (mul/div) or floating-point operation.
    Complex,
    /// Memory load (integer or FP).
    Load,
    /// Memory store (integer or FP).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional direct or indirect jump.
    Jump,
    /// No-op / halt (uses a simple ALU slot).
    Other,
}

/// Statically-decoded control-transfer target of an instruction.
///
/// Distinguishes "no control transfer at all" from "a transfer whose
/// target is not statically known" — a distinction [`Inst::direct_target`]
/// cannot express (it returns `None` for both), which matters to CFG
/// construction: an indirect jump must become an explicit unknown edge,
/// not silently disappear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ControlTarget {
    /// Not a control-transfer instruction; execution falls through.
    None,
    /// Direct transfer to a statically-known absolute address
    /// (the taken path of a conditional branch, or a `jal`).
    Direct(u64),
    /// Indirect transfer (`jalr`): the target is a register value and
    /// cannot be resolved statically.
    Indirect,
}

/// Statically-decoded shape of a memory access: the `base + offset`
/// address expression plus width and direction, uniform across the
/// integer and FP load/store forms. Static analyses walk address
/// expressions through this instead of matching four `Inst` variants.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemAccess {
    /// Base address register.
    pub base: Reg,
    /// Signed displacement added to the base.
    pub offset: i64,
    /// Access width (FP accesses are always 8 bytes).
    pub width: MemWidth,
    /// Whether the access writes memory.
    pub is_store: bool,
    /// The register whose value a store writes (`None` for loads; the
    /// loaded destination is in [`InstInfo::dst`]).
    pub value: Option<RegRef>,
}

/// Static decode information for an instruction.
#[derive(Clone, Copy, Debug)]
pub struct InstInfo {
    /// Up to two register sources.
    pub srcs: [Option<RegRef>; 2],
    /// Destination register, if any.
    pub dst: Option<RegRef>,
    /// Execution class.
    pub class: ExecClass,
    /// Whether this is a conditional branch.
    pub is_cond_branch: bool,
    /// Whether this is a control-transfer instruction of any kind.
    pub is_control: bool,
    /// Whether this instruction accesses memory.
    pub is_mem: bool,
    /// Execution latency in cycles once issued (address generation and
    /// cache access are additional for memory operations).
    pub latency: u32,
}

impl Inst {
    /// Computes the static decode information for this instruction.
    pub fn info(&self) -> InstInfo {
        use Inst::*;
        let none = [None, None];
        let mk =
            |srcs: [Option<RegRef>; 2], dst: Option<RegRef>, class: ExecClass, lat: u32| InstInfo {
                srcs,
                dst,
                class,
                is_cond_branch: matches!(class, ExecClass::Branch),
                is_control: matches!(class, ExecClass::Branch | ExecClass::Jump),
                is_mem: matches!(class, ExecClass::Load | ExecClass::Store),
                latency: lat,
            };
        match *self {
            Alu { op, rd, rs1, rs2 } => {
                let class = if op.is_complex() {
                    ExecClass::Complex
                } else {
                    ExecClass::SimpleAlu
                };
                let lat = match op {
                    AluOp::Mul => 3,
                    AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
                    _ => 1,
                };
                mk(
                    [Some(rs1.into()), Some(rs2.into())],
                    dst_int(rd),
                    class,
                    lat,
                )
            }
            AluImm { op, rd, rs1, .. } => {
                let class = if op.is_complex() {
                    ExecClass::Complex
                } else {
                    ExecClass::SimpleAlu
                };
                let lat = match op {
                    AluOp::Mul => 3,
                    AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
                    _ => 1,
                };
                mk([Some(rs1.into()), None], dst_int(rd), class, lat)
            }
            Li { rd, .. } => mk(none, dst_int(rd), ExecClass::SimpleAlu, 1),
            Load { rd, base, .. } => mk([Some(base.into()), None], dst_int(rd), ExecClass::Load, 1),
            Store { src, base, .. } => mk(
                [Some(base.into()), Some(src.into())],
                None,
                ExecClass::Store,
                1,
            ),
            Branch { rs1, rs2, .. } => mk(
                [Some(rs1.into()), Some(rs2.into())],
                None,
                ExecClass::Branch,
                1,
            ),
            Jal { rd, .. } => mk(none, dst_int(rd), ExecClass::Jump, 1),
            Jalr { rd, base, .. } => mk([Some(base.into()), None], dst_int(rd), ExecClass::Jump, 1),
            FLoad { fd, base, .. } => mk(
                [Some(base.into()), None],
                Some(fd.into()),
                ExecClass::Load,
                1,
            ),
            FStore { fs, base, .. } => mk(
                [Some(base.into()), Some(fs.into())],
                None,
                ExecClass::Store,
                1,
            ),
            FAlu { op, fd, fs1, fs2 } => {
                let lat = match op {
                    FAluOp::Fadd | FAluOp::Fsub => 3,
                    FAluOp::Fmul => 4,
                    FAluOp::Fdiv => 12,
                    FAluOp::Fmin | FAluOp::Fmax => 2,
                };
                mk(
                    [Some(fs1.into()), Some(fs2.into())],
                    Some(fd.into()),
                    ExecClass::Complex,
                    lat,
                )
            }
            FMvToF { fd, rs1 } => mk(
                [Some(rs1.into()), None],
                Some(fd.into()),
                ExecClass::Complex,
                1,
            ),
            FMvToX { rd, fs1 } => mk([Some(fs1.into()), None], dst_int(rd), ExecClass::Complex, 1),
            Nop | Halt => mk(none, None, ExecClass::Other, 1),
        }
    }

    /// Whether the instruction is a conditional branch.
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether the instruction is a store (integer or FP).
    #[inline]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::FStore { .. })
    }

    /// Whether the instruction is a load (integer or FP).
    #[inline]
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::FLoad { .. })
    }

    /// Statically-known direct target for branches and `jal`, if any.
    ///
    /// Returns `None` for both non-control instructions *and* indirect
    /// jumps; callers that must tell those apart (CFG construction)
    /// should use [`Inst::control_target`] instead.
    #[inline]
    pub fn direct_target(&self) -> Option<u64> {
        match self.control_target() {
            ControlTarget::Direct(t) => Some(t),
            _ => None,
        }
    }

    /// The control-transfer target of this instruction, with `jalr`
    /// reported as an explicit [`ControlTarget::Indirect`] case rather
    /// than folded into "no target".
    #[inline]
    pub fn control_target(&self) -> ControlTarget {
        match *self {
            Inst::Branch { target, .. } | Inst::Jal { target, .. } => ControlTarget::Direct(target),
            Inst::Jalr { .. } => ControlTarget::Indirect,
            _ => ControlTarget::None,
        }
    }

    /// The memory access this instruction performs, if any, in the
    /// uniform [`MemAccess`] shape.
    #[inline]
    pub fn mem_access(&self) -> Option<MemAccess> {
        match *self {
            Inst::Load {
                width,
                base,
                offset,
                ..
            } => Some(MemAccess {
                base,
                offset,
                width,
                is_store: false,
                value: None,
            }),
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => Some(MemAccess {
                base,
                offset,
                width,
                is_store: true,
                value: Some(src.into()),
            }),
            Inst::FLoad { base, offset, .. } => Some(MemAccess {
                base,
                offset,
                width: MemWidth::B8,
                is_store: false,
                value: None,
            }),
            Inst::FStore { fs, base, offset } => Some(MemAccess {
                base,
                offset,
                width: MemWidth::B8,
                is_store: true,
                value: Some(fs.into()),
            }),
            _ => None,
        }
    }

    /// Condition, operand registers and taken target of a conditional
    /// branch, or `None` for anything else.
    #[inline]
    pub fn cond_branch_parts(&self) -> Option<(BranchCond, Reg, Reg, u64)> {
        match *self {
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Some((cond, rs1, rs2, target)),
            _ => None,
        }
    }

    /// Whether this instruction is a function return in the assembler's
    /// calling convention: `jalr x0, 0(ra)` (see `Asm::ret`). CFG
    /// construction treats returns differently from arbitrary indirect
    /// jumps (edges to every call's return site instead of unknown).
    #[inline]
    pub fn is_ret(&self) -> bool {
        matches!(
            self,
            Inst::Jalr { rd, base, offset: 0 } if rd.is_zero() && *base == Reg::RA
        )
    }
}

fn dst_int(rd: Reg) -> Option<RegRef> {
    if rd.is_zero() {
        None
    } else {
        Some(rd.into())
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                write!(
                    f,
                    "l{}{} {rd}, {offset}({base})",
                    width.bytes(),
                    if signed { "" } else { "u" }
                )
            }
            Store {
                width,
                src,
                base,
                offset,
            } => {
                write!(f, "s{} {src}, {offset}({base})", width.bytes())
            }
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{cond:?} {rs1}, {rs2}, {target:#x}")
            }
            Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            FLoad { fd, base, offset } => write!(f, "fld {fd}, {offset}({base})"),
            FStore { fs, base, offset } => write!(f, "fsd {fs}, {offset}({base})"),
            FAlu { op, fd, fs1, fs2 } => write!(f, "{op:?} {fd}, {fs1}, {fs2}"),
            FMvToF { fd, rs1 } => write!(f, "fmv.d.x {fd}, {rs1}"),
            FMvToX { rd, fs1 } => write!(f, "fmv.x.d {rd}, {fs1}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn alu_info_simple_vs_complex() {
        let add = Inst::Alu {
            op: AluOp::Add,
            rd: A0,
            rs1: A1,
            rs2: A2,
        };
        assert_eq!(add.info().class, ExecClass::SimpleAlu);
        assert_eq!(add.info().latency, 1);
        let mul = Inst::Alu {
            op: AluOp::Mul,
            rd: A0,
            rs1: A1,
            rs2: A2,
        };
        assert_eq!(mul.info().class, ExecClass::Complex);
        assert_eq!(mul.info().latency, 3);
        let div = Inst::Alu {
            op: AluOp::Div,
            rd: A0,
            rs1: A1,
            rs2: A2,
        };
        assert_eq!(div.info().latency, 12);
    }

    #[test]
    fn x0_destination_is_discarded() {
        let i = Inst::AluImm {
            op: AluOp::Add,
            rd: X0,
            rs1: A0,
            imm: 1,
        };
        assert!(i.info().dst.is_none());
        let j = Inst::Jal {
            rd: X0,
            target: 0x1000,
        };
        assert!(j.info().dst.is_none());
    }

    #[test]
    fn branch_info() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: A0,
            rs2: X0,
            target: 0x1000,
        };
        let info = b.info();
        assert!(info.is_cond_branch);
        assert!(info.is_control);
        assert!(!info.is_mem);
        assert_eq!(info.class, ExecClass::Branch);
        assert_eq!(b.direct_target(), Some(0x1000));
    }

    #[test]
    fn load_store_info() {
        let ld = Inst::Load {
            width: MemWidth::B8,
            signed: true,
            rd: A0,
            base: A1,
            offset: 8,
        };
        assert!(ld.info().is_mem);
        assert!(ld.is_load());
        assert!(!ld.is_store());
        let st = Inst::Store {
            width: MemWidth::B4,
            src: A0,
            base: A1,
            offset: -4,
        };
        assert!(st.info().is_mem);
        assert!(st.is_store());
        assert!(st.info().dst.is_none());
        // Store sources: base and data.
        assert_eq!(st.info().srcs.iter().flatten().count(), 2);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(3, 3));
        assert!(BranchCond::Ne.eval(3, 4));
        assert!(BranchCond::Lt.eval((-1i64) as u64, 0));
        assert!(!BranchCond::Ltu.eval((-1i64) as u64, 0));
        assert!(BranchCond::Ge.eval(0, (-5i64) as u64));
        assert!(BranchCond::Geu.eval(u64::MAX, 5));
    }

    #[test]
    fn fp_ops_are_complex() {
        let fa = Inst::FAlu {
            op: FAluOp::Fadd,
            fd: FT0,
            fs1: FT1,
            fs2: FT2,
        };
        assert_eq!(fa.info().class, ExecClass::Complex);
        assert_eq!(fa.info().latency, 3);
        let fd = Inst::FAlu {
            op: FAluOp::Fdiv,
            fd: FT0,
            fs1: FT1,
            fs2: FT2,
        };
        assert_eq!(fd.info().latency, 12);
    }

    #[test]
    fn control_target_separates_indirect_from_none() {
        let b = Inst::Branch {
            cond: BranchCond::Ne,
            rs1: A0,
            rs2: X0,
            target: 0x40,
        };
        assert_eq!(b.control_target(), ControlTarget::Direct(0x40));
        let j = Inst::Jal {
            rd: X0,
            target: 0x80,
        };
        assert_eq!(j.control_target(), ControlTarget::Direct(0x80));
        let jr = Inst::Jalr {
            rd: X0,
            base: A0,
            offset: 0,
        };
        // The load-bearing distinction: an indirect jump is *not* the
        // same as "no control transfer", even though both have no
        // statically-known direct target.
        assert_eq!(jr.control_target(), ControlTarget::Indirect);
        assert_eq!(jr.direct_target(), None);
        assert_eq!(Inst::Nop.control_target(), ControlTarget::None);
        assert_eq!(Inst::Nop.direct_target(), None);
    }

    #[test]
    fn ret_is_recognised_by_shape() {
        let ret = Inst::Jalr {
            rd: X0,
            base: RA,
            offset: 0,
        };
        assert!(ret.is_ret());
        // Computed jumps and offset returns are plain indirect jumps.
        let tail = Inst::Jalr {
            rd: X0,
            base: A0,
            offset: 0,
        };
        assert!(!tail.is_ret());
        let link = Inst::Jalr {
            rd: RA,
            base: RA,
            offset: 0,
        };
        assert!(!link.is_ret());
        let off = Inst::Jalr {
            rd: X0,
            base: RA,
            offset: 8,
        };
        assert!(!off.is_ret());
    }

    #[test]
    fn mem_access_uniform_shape() {
        let ld = Inst::Load {
            width: MemWidth::B4,
            signed: false,
            rd: A0,
            base: A1,
            offset: 8,
        };
        let m = ld.mem_access().unwrap();
        assert_eq!(
            (m.base, m.offset, m.width, m.is_store),
            (A1, 8, MemWidth::B4, false)
        );
        assert!(m.value.is_none());
        let st = Inst::Store {
            width: MemWidth::B8,
            src: A2,
            base: SP,
            offset: -16,
        };
        let m = st.mem_access().unwrap();
        assert!(m.is_store);
        assert_eq!(m.value, Some(A2.into()));
        let fs = Inst::FStore {
            fs: FT0,
            base: A1,
            offset: 0,
        };
        let m = fs.mem_access().unwrap();
        assert_eq!(m.width, MemWidth::B8, "FP accesses are 8 bytes");
        assert_eq!(m.value, Some(FT0.into()));
        assert!(Inst::Nop.mem_access().is_none());
        assert!(Inst::Halt.mem_access().is_none());
    }

    #[test]
    fn cond_branch_parts_roundtrip() {
        let b = Inst::Branch {
            cond: BranchCond::Geu,
            rs1: A3,
            rs2: A2,
            target: 0x2000,
        };
        assert_eq!(
            b.cond_branch_parts(),
            Some((BranchCond::Geu, A3, A2, 0x2000))
        );
        assert!(Inst::Nop.cond_branch_parts().is_none());
        assert!(Inst::Jal { rd: X0, target: 0 }
            .cond_branch_parts()
            .is_none());
    }

    #[test]
    fn alu_eval_machine_semantics() {
        assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0, "wrapping add");
        assert_eq!(AluOp::Sll.eval(1, 64), 1, "shift amount masked to 6 bits");
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 2), (-2i64) as u64);
        assert_eq!(AluOp::Div.eval(7, 0), u64::MAX);
        assert_eq!(
            AluOp::Div.eval(i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Remu.eval(7, 0), 7);
        assert_eq!(AluOp::Mul.eval(1 << 63, 2), 0, "wrapping mul");
    }

    #[test]
    fn memwidth_bytes() {
        assert_eq!(MemWidth::B1.bytes(), 1);
        assert_eq!(MemWidth::B2.bytes(), 2);
        assert_eq!(MemWidth::B4.bytes(), 4);
        assert_eq!(MemWidth::B8.bytes(), 8);
    }

    #[test]
    fn display_is_never_empty() {
        let insts = [
            Inst::Nop,
            Inst::Halt,
            Inst::Li { rd: A0, imm: -3 },
            Inst::Jalr {
                rd: RA,
                base: A0,
                offset: 0,
            },
        ];
        for i in insts {
            assert!(!format!("{i}").is_empty());
        }
    }
}
