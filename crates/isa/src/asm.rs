//! A small label-based assembler for writing workload kernels in Rust.
//!
//! ```
//! use pfm_isa::asm::Asm;
//! use pfm_isa::reg::names::*;
//!
//! # fn main() -> Result<(), pfm_isa::asm::AsmError> {
//! let mut a = Asm::new(0x1000);
//! let loop_top = a.label();
//! a.li(A0, 10);
//! a.bind(loop_top)?;
//! a.addi(A0, A0, -1);
//! a.bne(A0, X0, loop_top);
//! a.halt();
//! let prog = a.finish()?;
//! assert_eq!(prog.len(), 4);
//! # Ok(())
//! # }
//! ```

use crate::inst::{AluOp, BranchCond, FAluOp, Inst, MemWidth, INST_BYTES};
use crate::program::Program;
use crate::reg::{FReg, Reg};
use std::collections::BTreeMap;

/// A forward-referencable code label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Label(usize);

/// Errors produced by the assembler.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// `finish` was called while a label used as a branch target was
    /// never bound.
    UnboundLabel(usize),
    /// A label was bound twice.
    Rebound(usize),
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} was referenced but never bound"),
            AsmError::Rebound(i) => write!(f, "label {i} bound more than once"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Incremental program builder.
///
/// Instructions are appended with the mnemonic-named methods; branch
/// targets may be labels created with [`Asm::label`] and bound with
/// [`Asm::bind`] before or after use. [`Asm::finish`] patches all label
/// references and returns the [`Program`].
#[derive(Debug)]
pub struct Asm {
    base: u64,
    insts: Vec<Inst>,
    labels: Vec<Option<u64>>,
    /// (instruction index) -> label to patch into its target.
    patches: Vec<(usize, Label)>,
    symbols: BTreeMap<String, u64>,
}

impl Asm {
    /// Creates an assembler placing the first instruction at `base`.
    pub fn new(base: u64) -> Asm {
        Asm {
            base,
            insts: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
            symbols: BTreeMap::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the address of the *next* appended instruction.
    ///
    /// # Errors
    /// Returns [`AsmError::Rebound`] if the label was already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), AsmError> {
        if self.labels[label.0].is_some() {
            return Err(AsmError::Rebound(label.0));
        }
        self.labels[label.0] = Some(self.here());
        Ok(())
    }

    /// Binds `label` like [`Asm::bind`], panicking on a double bind.
    ///
    /// Static kernel builders use this for labels they create and bind
    /// exactly once: a rebind there is a builder bug, not a recoverable
    /// condition, and the panic carries the label index.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn place(&mut self, label: Label) {
        if let Err(e) = self.bind(label) {
            panic!("Asm::place: {e}");
        }
    }

    /// The address of the next appended instruction.
    pub fn here(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_BYTES
    }

    /// Records `name` as an exported symbol for the current address.
    pub fn export(&mut self, name: &str) {
        self.symbols.insert(name.to_string(), self.here());
    }

    /// Records `name` as an exported symbol for an arbitrary value
    /// (e.g., a data address).
    pub fn export_value(&mut self, name: &str, value: u64) {
        self.symbols.insert(name.to_string(), value);
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Asm {
        self.insts.push(inst);
        self
    }

    fn push_branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.patches.push((self.insts.len(), label));
        self.insts.push(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: 0,
        });
        self
    }

    // ---- integer ALU ----

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 >> rs2` (logical)
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Mul,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 / rs2` (signed)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Div,
            rd,
            rs1,
            rs2,
        })
    }
    /// `rd = rs1 % rs2` (signed)
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu {
            op: AluOp::Rem,
            rd,
            rs1,
            rs2,
        })
    }

    // ---- immediates ----

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = (rs1 < imm) ? 1 : 0` (signed)
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::AluImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        })
    }
    /// `rd = imm` (full 64-bit constant materialization)
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::Li { rd, imm })
    }
    /// `rd = rs1` (register move)
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.addi(rd, rs1, 0)
    }

    // ---- memory ----

    /// `rd = sext(mem8[rs1+offset])`
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B1,
            signed: true,
            rd,
            base,
            offset,
        })
    }
    /// `rd = zext(mem8[rs1+offset])`
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B1,
            signed: false,
            rd,
            base,
            offset,
        })
    }
    /// `rd = sext(mem16[rs1+offset])`
    pub fn lh(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B2,
            signed: true,
            rd,
            base,
            offset,
        })
    }
    /// `rd = sext(mem32[rs1+offset])`
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B4,
            signed: true,
            rd,
            base,
            offset,
        })
    }
    /// `rd = zext(mem32[rs1+offset])`
    pub fn lwu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B4,
            signed: false,
            rd,
            base,
            offset,
        })
    }
    /// `rd = mem64[rs1+offset]`
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Load {
            width: MemWidth::B8,
            signed: true,
            rd,
            base,
            offset,
        })
    }
    /// `mem8[base+offset] = src`
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Store {
            width: MemWidth::B1,
            src,
            base,
            offset,
        })
    }
    /// `mem16[base+offset] = src`
    pub fn sh(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Store {
            width: MemWidth::B2,
            src,
            base,
            offset,
        })
    }
    /// `mem32[base+offset] = src`
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Store {
            width: MemWidth::B4,
            src,
            base,
            offset,
        })
    }
    /// `mem64[base+offset] = src`
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Store {
            width: MemWidth::B8,
            src,
            base,
            offset,
        })
    }

    // ---- control flow ----

    /// `if rs1 == rs2 goto label`
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Eq, rs1, rs2, label)
    }
    /// `if rs1 != rs2 goto label`
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Ne, rs1, rs2, label)
    }
    /// `if rs1 < rs2 goto label` (signed)
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Lt, rs1, rs2, label)
    }
    /// `if rs1 >= rs2 goto label` (signed)
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Ge, rs1, rs2, label)
    }
    /// `if rs1 < rs2 goto label` (unsigned)
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Ltu, rs1, rs2, label)
    }
    /// `if rs1 >= rs2 goto label` (unsigned)
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: Label) -> &mut Asm {
        self.push_branch(BranchCond::Geu, rs1, rs2, label)
    }
    /// Unconditional jump to `label`.
    pub fn j(&mut self, label: Label) -> &mut Asm {
        self.patches.push((self.insts.len(), label));
        self.push(Inst::Jal {
            rd: Reg::X0,
            target: 0,
        })
    }
    /// Call `label`, saving the return address in `ra`.
    pub fn call(&mut self, label: Label) -> &mut Asm {
        self.patches.push((self.insts.len(), label));
        self.push(Inst::Jal {
            rd: Reg::RA,
            target: 0,
        })
    }
    /// Return via `ra`.
    pub fn ret(&mut self) -> &mut Asm {
        self.push(Inst::Jalr {
            rd: Reg::X0,
            base: Reg::RA,
            offset: 0,
        })
    }
    /// Indirect jump-and-link.
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::Jalr { rd, base, offset })
    }

    // ---- floating point ----

    /// `fd = mem64[base+offset]` (as f64 bits)
    pub fn fld(&mut self, fd: FReg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::FLoad { fd, base, offset })
    }
    /// `mem64[base+offset] = fs`
    pub fn fsd(&mut self, fs: FReg, base: Reg, offset: i64) -> &mut Asm {
        self.push(Inst::FStore { fs, base, offset })
    }
    /// `fd = fs1 + fs2`
    pub fn fadd(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Inst::FAlu {
            op: FAluOp::Fadd,
            fd,
            fs1,
            fs2,
        })
    }
    /// `fd = fs1 - fs2`
    pub fn fsub(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Inst::FAlu {
            op: FAluOp::Fsub,
            fd,
            fs1,
            fs2,
        })
    }
    /// `fd = fs1 * fs2`
    pub fn fmul(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Inst::FAlu {
            op: FAluOp::Fmul,
            fd,
            fs1,
            fs2,
        })
    }
    /// `fd = fs1 / fs2`
    pub fn fdiv(&mut self, fd: FReg, fs1: FReg, fs2: FReg) -> &mut Asm {
        self.push(Inst::FAlu {
            op: FAluOp::Fdiv,
            fd,
            fs1,
            fs2,
        })
    }
    /// `fd = bits(rs1)` — move integer register bits into an FP
    /// register (`fmv.d.x`); `fmv_d_x(fd, X0)` zeroes `fd`.
    pub fn fmv_d_x(&mut self, fd: FReg, rs1: Reg) -> &mut Asm {
        self.push(Inst::FMvToF { fd, rs1 })
    }

    // ---- misc ----

    /// No-op.
    pub fn nop(&mut self) -> &mut Asm {
        self.push(Inst::Nop)
    }
    /// Stop the simulation.
    pub fn halt(&mut self) -> &mut Asm {
        self.push(Inst::Halt)
    }

    /// Resolves all labels and produces the final [`Program`].
    ///
    /// # Errors
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was
    /// never bound.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        for &(idx, label) in &self.patches {
            let addr = self.labels[label.0].ok_or(AsmError::UnboundLabel(label.0))?;
            match &mut self.insts[idx] {
                Inst::Branch { target, .. } | Inst::Jal { target, .. } => *target = addr,
                other => unreachable!("patch target is not a control instruction: {other:?}"),
            }
        }
        Ok(Program::new(self.base, self.insts, self.symbols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::names::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new(0x1000);
        let fwd = a.label();
        let back = a.label();
        a.bind(back).unwrap();
        a.addi(A0, A0, 1); // 0x1000
        a.beq(A0, X0, fwd); // 0x1004
        a.bne(A0, X0, back); // 0x1008
        a.bind(fwd).unwrap();
        a.halt(); // 0x100c
        let p = a.finish().unwrap();
        match p.fetch(0x1004).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(target, 0x100c),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(0x1008).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(target, 0x1000),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.j(l);
        assert_eq!(a.finish().unwrap_err(), AsmError::UnboundLabel(0));
    }

    #[test]
    fn rebinding_is_an_error() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.bind(l).unwrap();
        a.nop();
        assert_eq!(a.bind(l).unwrap_err(), AsmError::Rebound(0));
    }

    #[test]
    fn exports_become_symbols() {
        let mut a = Asm::new(0x2000);
        a.nop();
        a.export("roi_begin");
        a.halt();
        a.export_value("waymap_base", 0xdead0000);
        let p = a.finish().unwrap();
        assert_eq!(p.symbol("roi_begin").unwrap(), 0x2004);
        assert_eq!(p.symbol("waymap_base").unwrap(), 0xdead0000);
    }

    #[test]
    fn call_ret_encode_jal_jalr() {
        let mut a = Asm::new(0);
        let f = a.label();
        a.call(f);
        a.halt();
        a.bind(f).unwrap();
        a.ret();
        let p = a.finish().unwrap();
        assert!(matches!(p.fetch(0).unwrap(), Inst::Jal { rd, target: 8 } if rd == RA));
        assert!(matches!(p.fetch(8).unwrap(), Inst::Jalr { .. }));
    }
}
