//! Deterministic, dependency-free snapshot serialization.
//!
//! Snapshots capture machine state — architectural registers, sparse
//! memory pages, and (in higher layers) warm microarchitectural state —
//! as a flat little-endian byte stream. The format is deliberately
//! minimal:
//!
//! * integers are fixed-width little-endian,
//! * sequences are a `u64` element count followed by the elements,
//! * optionals are a `u8` tag (0 = absent) followed by the payload,
//! * there is no self-description; encoder and decoder must agree on
//!   the layout (the [`SNAP_VERSION`] header at the top of every
//!   top-level snapshot guards against skew).
//!
//! Determinism is a hard requirement: the same state must always
//! produce the same bytes, because [`content_key`] over those bytes is
//! used as a run-dedup key by the sampled-run planner. Snapshot
//! encoders therefore must not iterate hash-ordered containers without
//! sorting, and must not capture wall-clock time (`pfm-lint` enforces
//! both via the `snapshot-hash-iter` / `snapshot-wall-clock` rules).

/// Version tag written at the head of every top-level snapshot. Bump
/// on any layout change; decoders reject mismatches instead of
/// misinterpreting bytes. (v2: fabric snapshots carry the runtime
/// reconfiguration residency state.)
pub const SNAP_VERSION: u32 = 2;

/// FNV-1a offset basis shared by every checksum in the workspace
/// (content keys, commit-stream folds, architectural fingerprints).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime shared by every checksum in the workspace.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Stable content key of a snapshot byte stream: FNV-1a over the bytes
/// (plus the length, so prefixes never collide with their extension).
///
/// Equal keys are treated as equal snapshots by the run-plan dedup
/// layer, exactly like the configuration content keys elsewhere in the
/// stack.
pub fn content_key(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(FNV_PRIME)
}

/// A failed snapshot decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The byte stream ended before the expected field.
    Truncated,
    /// A decoded value is structurally impossible (bad tag, register
    /// out of range, trailing bytes, ...). The message names the field.
    Corrupt(&'static str),
    /// The snapshot was produced by an incompatible format version.
    Version {
        /// Version found in the byte stream.
        found: u32,
    },
    /// The state owner cannot be snapshotted (e.g. a custom fabric
    /// component without snapshot support).
    Unsupported(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
            SnapError::Version { found } => write!(
                f,
                "snapshot version {found} incompatible with {SNAP_VERSION}"
            ),
            SnapError::Unsupported(what) => write!(f, "snapshot unsupported: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Snapshot encoder: appends fixed-layout little-endian fields to a
/// byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` (two's-complement, as `u64`).
    pub fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends raw bytes with no length prefix (fixed-size payloads).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed byte sequence (`u64` count + bytes).
    pub fn bytes_len(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes_len(s.as_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (`u64`), so equal
    /// values always produce equal bytes.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder and returns the byte stream.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Snapshot decoder: reads fields in the same order [`Enc`] wrote
/// them, with bounds and validity checks (a corrupt stream produces a
/// typed [`SnapError`], never a panic).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] if fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.bytes(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads an `i64` (two's-complement).
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream.
    pub fn i64(&mut self) -> Result<i64, SnapError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `usize` encoded as `u64`.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream, or
    /// [`SnapError::Corrupt`] if the value does not fit `usize`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize overflow"))
    }

    /// Reads a sequence length and sanity-checks it against the bytes
    /// remaining (every element occupies at least one byte, so a valid
    /// length can never exceed `remaining`). This bounds allocations on
    /// corrupt input.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream, or
    /// [`SnapError::Corrupt`] if the length is impossible.
    pub fn seq_len(&mut self) -> Result<usize, SnapError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(SnapError::Corrupt("sequence length exceeds stream"));
        }
        Ok(n)
    }

    /// Reads a length-prefixed byte sequence written by
    /// [`Enc::bytes_len`].
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream, or
    /// [`SnapError::Corrupt`] if the length is impossible.
    pub fn bytes_len(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.seq_len()?;
        self.bytes(n)
    }

    /// Reads a length-prefixed UTF-8 string written by [`Enc::str`].
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream, or
    /// [`SnapError::Corrupt`] on an impossible length or invalid UTF-8.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes_len()?).map_err(|_| SnapError::Corrupt("string utf-8"))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting anything but 0 or 1.
    ///
    /// # Errors
    /// [`SnapError::Truncated`] at end of stream, or
    /// [`SnapError::Corrupt`] on a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool tag")),
        }
    }

    /// Asserts the stream is fully consumed (top-level decode only).
    ///
    /// # Errors
    /// [`SnapError::Corrupt`] if bytes remain.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() != 0 {
            return Err(SnapError::Corrupt("trailing bytes"));
        }
        Ok(())
    }
}

/// Writes the [`SNAP_VERSION`] header.
pub fn write_version(e: &mut Enc) {
    e.u32(SNAP_VERSION);
}

/// Reads and validates the [`SNAP_VERSION`] header.
///
/// # Errors
/// [`SnapError::Version`] on mismatch, [`SnapError::Truncated`] at end
/// of stream.
pub fn read_version(d: &mut Dec<'_>) -> Result<(), SnapError> {
    let found = d.u32()?;
    if found != SNAP_VERSION {
        return Err(SnapError::Version { found });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Enc::new();
        e.u8(0xAB);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.bool(true);
        e.bool(false);
        e.usize(7);
        e.bytes(&[1, 2, 3]);
        assert!(!e.is_empty());
        let bytes = e.finish();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.usize().unwrap(), 7);
        assert_eq!(d.bytes(3).unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn string_and_f64_roundtrip() {
        let mut e = Enc::new();
        e.str("astar|baseline|n1500000");
        e.str("");
        e.bytes_len(&[9, 8, 7]);
        e.f64(-0.125);
        let bytes = e.finish();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.str().unwrap(), "astar|baseline|n1500000");
        assert_eq!(d.str().unwrap(), "");
        assert_eq!(d.bytes_len().unwrap(), &[9, 8, 7]);
        assert_eq!(d.f64().unwrap(), -0.125);
        d.finish().unwrap();
    }

    #[test]
    fn invalid_utf8_string_is_typed() {
        let mut e = Enc::new();
        e.bytes_len(&[0xFF, 0xFE]);
        let bytes = e.finish();
        assert_eq!(
            Dec::new(&bytes).str().unwrap_err(),
            SnapError::Corrupt("string utf-8")
        );
    }

    #[test]
    fn truncation_is_typed() {
        let mut e = Enc::new();
        e.u32(1);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u64().unwrap_err(), SnapError::Truncated);
        let mut d = Dec::new(&bytes);
        d.u32().unwrap();
        assert_eq!(d.u8().unwrap_err(), SnapError::Truncated);
    }

    #[test]
    fn corrupt_bool_and_trailing_bytes_are_typed() {
        let bytes = [2u8, 0];
        let mut d = Dec::new(&bytes);
        assert_eq!(d.bool().unwrap_err(), SnapError::Corrupt("bool tag"));
        assert_eq!(
            d.finish().unwrap_err(),
            SnapError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn seq_len_bounds_corrupt_counts() {
        let mut e = Enc::new();
        e.u64(u64::MAX); // impossible element count
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        assert!(matches!(d.seq_len().unwrap_err(), SnapError::Corrupt(_)));
    }

    #[test]
    fn version_header_roundtrip_and_mismatch() {
        let mut e = Enc::new();
        write_version(&mut e);
        let bytes = e.finish();
        read_version(&mut Dec::new(&bytes)).unwrap();

        let mut e = Enc::new();
        e.u32(SNAP_VERSION + 9);
        let bytes = e.finish();
        assert_eq!(
            read_version(&mut Dec::new(&bytes)).unwrap_err(),
            SnapError::Version {
                found: SNAP_VERSION + 9
            }
        );
    }

    #[test]
    fn content_key_is_stable_and_length_sensitive() {
        assert_eq!(content_key(b"abc"), content_key(b"abc"));
        assert_ne!(content_key(b"abc"), content_key(b"abd"));
        assert_ne!(content_key(b""), content_key(b"\0"));
        assert_ne!(content_key(b"a"), content_key(b"a\0"));
    }

    #[test]
    fn errors_render() {
        for e in [
            SnapError::Truncated,
            SnapError::Corrupt("x"),
            SnapError::Version { found: 3 },
            SnapError::Unsupported("y"),
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
