//! Pre-decoded functional-only execution — the fast speed of the
//! two-speed simulator.
//!
//! [`FastExec`] decodes a program once into a dense array of [`Op`]s —
//! operands, immediates and the handler discriminant resolved up front
//! — and executes it in a tight interpreter loop with no per-cycle
//! structures, no speculation and no timing model. Stores commit
//! immediately (exactly like [`Machine::run`]), so architectural state
//! evolves identically to the detailed core's committed view.
//!
//! Two invariants tie the fast path to the detailed model:
//!
//! * **The committed stream is bit-identical.** The interpreter folds
//!   every retired instruction into the same FNV-1a commit-stream
//!   checksum the cycle core computes at retirement
//!   (`Core::fold_commit`): PC, next PC, taken flag, destination
//!   write, store effects — in that order. The functional/detailed
//!   equivalence gate pins this for every use case.
//! * **Snapshots are interchangeable.** [`FastExec::snapshot`] emits
//!   the same byte layout as [`Machine::snapshot`], so a fast-forward
//!   position can seed a detailed interval via [`Machine::restore`]
//!   (the sampled-run mode in `pfm-sim`).
//!
//! Immediates are pre-cast to `u64` at decode; `x0` is kept hardwired
//! to zero by never writing slot 0, so reads skip the zero test.

use crate::inst::{AluOp, BranchCond, FAluOp, Inst, MemWidth, INST_BYTES};
use crate::machine::{alu, extend, ExecError, Machine};
use crate::mem::SpecMemory;
use crate::program::{Program, ProgramError};
use crate::reg::{FReg, Reg, NUM_FP_REGS, NUM_INT_REGS};
use crate::snap::{self, Enc, FNV_OFFSET, FNV_PRIME};

/// One pre-decoded instruction. Register operands are raw indices
/// (guaranteed in range by construction from [`Inst`]), immediates and
/// offsets are pre-cast to the `u64` arithmetic domain.
#[derive(Clone, Copy, Debug)]
enum Op {
    Alu {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    AluImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: u64,
    },
    Li {
        rd: u8,
        imm: u64,
    },
    Load {
        width: MemWidth,
        signed: bool,
        rd: u8,
        base: u8,
        offset: u64,
    },
    Store {
        width: MemWidth,
        src: u8,
        base: u8,
        offset: u64,
    },
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        target: u64,
    },
    Jal {
        rd: u8,
        target: u64,
    },
    Jalr {
        rd: u8,
        base: u8,
        offset: u64,
    },
    FLoad {
        fd: u8,
        base: u8,
        offset: u64,
    },
    FStore {
        fs: u8,
        base: u8,
        offset: u64,
    },
    FAlu {
        op: FAluOp,
        fd: u8,
        fs1: u8,
        fs2: u8,
    },
    FMvToF {
        fd: u8,
        rs1: u8,
    },
    FMvToX {
        rd: u8,
        fs1: u8,
    },
    Nop,
    Halt,
}

fn compile(inst: Inst) -> Op {
    match inst {
        Inst::Alu { op, rd, rs1, rs2 } => Op::Alu {
            op,
            rd: rd.num(),
            rs1: rs1.num(),
            rs2: rs2.num(),
        },
        Inst::AluImm { op, rd, rs1, imm } => Op::AluImm {
            op,
            rd: rd.num(),
            rs1: rs1.num(),
            imm: imm as u64,
        },
        Inst::Li { rd, imm } => Op::Li {
            rd: rd.num(),
            imm: imm as u64,
        },
        Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => Op::Load {
            width,
            signed,
            rd: rd.num(),
            base: base.num(),
            offset: offset as u64,
        },
        Inst::Store {
            width,
            src,
            base,
            offset,
        } => Op::Store {
            width,
            src: src.num(),
            base: base.num(),
            offset: offset as u64,
        },
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => Op::Branch {
            cond,
            rs1: rs1.num(),
            rs2: rs2.num(),
            target,
        },
        Inst::Jal { rd, target } => Op::Jal {
            rd: rd.num(),
            target,
        },
        Inst::Jalr { rd, base, offset } => Op::Jalr {
            rd: rd.num(),
            base: base.num(),
            offset: offset as u64,
        },
        Inst::FLoad { fd, base, offset } => Op::FLoad {
            fd: fd.num(),
            base: base.num(),
            offset: offset as u64,
        },
        Inst::FStore { fs, base, offset } => Op::FStore {
            fs: fs.num(),
            base: base.num(),
            offset: offset as u64,
        },
        Inst::FAlu { op, fd, fs1, fs2 } => Op::FAlu {
            op,
            fd: fd.num(),
            fs1: fs1.num(),
            fs2: fs2.num(),
        },
        Inst::FMvToF { fd, rs1 } => Op::FMvToF {
            fd: fd.num(),
            rs1: rs1.num(),
        },
        Inst::FMvToX { rd, fs1 } => Op::FMvToX {
            rd: rd.num(),
            fs1: fs1.num(),
        },
        Inst::Nop => Op::Nop,
        Inst::Halt => Op::Halt,
    }
}

#[inline(always)]
fn fold(h: &mut u64, v: u64) {
    *h ^= v;
    *h = h.wrapping_mul(FNV_PRIME);
}

/// The pre-decoded functional executor.
///
/// ```
/// use pfm_isa::{Asm, FastExec, SpecMemory};
/// use pfm_isa::reg::names::*;
/// let mut a = Asm::new(0x1000);
/// a.li(A0, 2);
/// a.add(A0, A0, A0);
/// a.halt();
/// let mut fx = FastExec::new(a.finish().unwrap(), SpecMemory::new());
/// fx.run(100).unwrap();
/// assert!(fx.halted());
/// assert_eq!(fx.retired(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct FastExec {
    base: u64,
    ops: Box<[Op]>,
    program: Program,
    regs: [u64; NUM_INT_REGS],
    fregs: [u64; NUM_FP_REGS],
    pc: u64,
    next_seq: u64,
    halted: bool,
    mem: SpecMemory,
    checksum: u64,
    retired: u64,
    loads: u64,
    stores: u64,
}

impl FastExec {
    /// Pre-decodes `program` and positions the executor at its base
    /// address over the given data memory.
    ///
    /// # Panics
    /// Panics if `mem` has unretired speculative stores (fresh
    /// use-case memories never do; the functional path commits every
    /// store immediately, so none ever accumulate).
    pub fn new(program: Program, mem: SpecMemory) -> FastExec {
        assert_eq!(
            mem.pending_stores(),
            0,
            "functional execution starts from committed state"
        );
        let ops: Vec<Op> = program.insts().iter().map(|&i| compile(i)).collect();
        FastExec {
            base: program.base(),
            ops: ops.into_boxed_slice(),
            pc: program.base(),
            program,
            regs: [0; NUM_INT_REGS],
            fregs: [0; NUM_FP_REGS],
            next_seq: 1,
            halted: false,
            mem,
            checksum: FNV_OFFSET,
            retired: 0,
            loads: 0,
            stores: 0,
        }
    }

    /// Executes up to `max_steps` instructions (or until `Halt`),
    /// returning the number retired by this call.
    ///
    /// # Errors
    /// [`ExecError::Program`] if the PC leaves the program; state up
    /// to the faulting instruction is retained.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, ExecError> {
        let base = self.base;
        let len = self.ops.len() as u64;
        let ops = &self.ops;
        let regs = &mut self.regs;
        let fregs = &mut self.fregs;
        let mem = self.mem.committed_mut();
        let mut pc = self.pc;
        let mut h = self.checksum;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut n = 0u64;
        let mut halted = self.halted;
        let mut fault = None;

        while n < max_steps && !halted {
            let off = pc.wrapping_sub(base);
            let idx = off / INST_BYTES;
            if !off.is_multiple_of(INST_BYTES) || idx >= len {
                fault = Some(pc);
                break;
            }
            let fall = pc + INST_BYTES;
            let mut next = fall;
            let mut taken = false;
            // `1 + RegRef::index()` and value, exactly as the core's
            // commit fold encodes destination writes.
            let mut wrote: Option<(u64, u64)> = None;
            let mut store: Option<(u64, u64, u64)> = None;
            match ops[idx as usize] {
                Op::Alu { op, rd, rs1, rs2 } => {
                    let v = alu(op, regs[rs1 as usize], regs[rs2 as usize]);
                    if rd != 0 {
                        regs[rd as usize] = v;
                        wrote = Some((1 + rd as u64, v));
                    }
                }
                Op::AluImm { op, rd, rs1, imm } => {
                    let v = alu(op, regs[rs1 as usize], imm);
                    if rd != 0 {
                        regs[rd as usize] = v;
                        wrote = Some((1 + rd as u64, v));
                    }
                }
                Op::Li { rd, imm } => {
                    if rd != 0 {
                        regs[rd as usize] = imm;
                        wrote = Some((1 + rd as u64, imm));
                    }
                }
                Op::Load {
                    width,
                    signed,
                    rd,
                    base,
                    offset,
                } => {
                    let addr = regs[base as usize].wrapping_add(offset);
                    let raw = mem.read_cached(addr, width.bytes());
                    let v = extend(raw, width, signed);
                    if rd != 0 {
                        regs[rd as usize] = v;
                        wrote = Some((1 + rd as u64, v));
                    }
                    loads += 1;
                }
                Op::Store {
                    width,
                    src,
                    base,
                    offset,
                } => {
                    let addr = regs[base as usize].wrapping_add(offset);
                    let size = width.bytes();
                    let v = regs[src as usize];
                    mem.write(addr, size, v);
                    store = Some((addr, size, v));
                    stores += 1;
                }
                Op::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    taken = cond.eval(regs[rs1 as usize], regs[rs2 as usize]);
                    if taken {
                        next = target;
                    }
                }
                Op::Jal { rd, target } => {
                    if rd != 0 {
                        regs[rd as usize] = fall;
                        wrote = Some((1 + rd as u64, fall));
                    }
                    taken = true;
                    next = target;
                }
                Op::Jalr { rd, base, offset } => {
                    let target = regs[base as usize].wrapping_add(offset) & !1u64;
                    if rd != 0 {
                        regs[rd as usize] = fall;
                        wrote = Some((1 + rd as u64, fall));
                    }
                    taken = true;
                    next = target;
                }
                Op::FLoad { fd, base, offset } => {
                    let addr = regs[base as usize].wrapping_add(offset);
                    let bits = mem.read_cached(addr, 8);
                    fregs[fd as usize] = bits;
                    wrote = Some((1 + NUM_INT_REGS as u64 + fd as u64, bits));
                    loads += 1;
                }
                Op::FStore { fs, base, offset } => {
                    let addr = regs[base as usize].wrapping_add(offset);
                    let bits = fregs[fs as usize];
                    mem.write(addr, 8, bits);
                    store = Some((addr, 8, bits));
                    stores += 1;
                }
                Op::FAlu { op, fd, fs1, fs2 } => {
                    let a = f64::from_bits(fregs[fs1 as usize]);
                    let b = f64::from_bits(fregs[fs2 as usize]);
                    let r = match op {
                        FAluOp::Fadd => a + b,
                        FAluOp::Fsub => a - b,
                        FAluOp::Fmul => a * b,
                        FAluOp::Fdiv => a / b,
                        FAluOp::Fmin => a.min(b),
                        FAluOp::Fmax => a.max(b),
                    };
                    let bits = r.to_bits();
                    fregs[fd as usize] = bits;
                    wrote = Some((1 + NUM_INT_REGS as u64 + fd as u64, bits));
                }
                Op::FMvToF { fd, rs1 } => {
                    let bits = regs[rs1 as usize];
                    fregs[fd as usize] = bits;
                    wrote = Some((1 + NUM_INT_REGS as u64 + fd as u64, bits));
                }
                Op::FMvToX { rd, fs1 } => {
                    let bits = fregs[fs1 as usize];
                    if rd != 0 {
                        regs[rd as usize] = bits;
                        wrote = Some((1 + rd as u64, bits));
                    }
                }
                Op::Nop => {}
                Op::Halt => {
                    halted = true;
                }
            }

            // Commit-stream fold, field order identical to the detailed
            // core's retirement fold.
            fold(&mut h, pc);
            fold(&mut h, next);
            fold(&mut h, u64::from(taken));
            match wrote {
                Some((ri, v)) => {
                    fold(&mut h, ri);
                    fold(&mut h, v);
                }
                None => fold(&mut h, 0),
            }
            match store {
                Some((addr, size, v)) => {
                    fold(&mut h, 1);
                    fold(&mut h, addr);
                    fold(&mut h, size);
                    fold(&mut h, v);
                }
                None => fold(&mut h, 0),
            }

            pc = next;
            n += 1;
        }

        self.pc = pc;
        self.checksum = h;
        self.retired += n;
        self.next_seq += n;
        self.loads += loads;
        self.stores += stores;
        self.halted = halted;
        match fault {
            Some(pc) => Err(ExecError::Program(ProgramError::BadPc(pc))),
            None => Ok(n),
        }
    }

    /// Instructions retired since construction.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Whether `Halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Committed-stream checksum over every retired instruction —
    /// bit-identical to the detailed core's `commit_checksum` after
    /// retiring the same stream.
    pub fn commit_checksum(&self) -> u64 {
        self.checksum
    }

    /// Loads retired since construction.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores retired since construction.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.num() as usize]
    }

    /// Reads a floating-point register as raw bits.
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.fregs[r.num() as usize]
    }

    /// A cheap fingerprint of architectural state, identical to
    /// [`Machine::arch_checksum`] over the same state.
    pub fn arch_checksum(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &r in &self.regs {
            fold(&mut h, r);
        }
        for &f in &self.fregs {
            fold(&mut h, f);
        }
        fold(&mut h, self.pc);
        fold(&mut h, self.mem.committed().generation());
        h
    }

    /// An architectural snapshot in the same byte layout as
    /// [`Machine::snapshot`] — restorable via [`Machine::restore`] to
    /// seed a detailed interval from this fast-forward position.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        snap::write_version(&mut e);
        for &r in &self.regs {
            e.u64(r);
        }
        for &f in &self.fregs {
            e.u64(f);
        }
        e.u64(self.pc);
        e.u64(self.next_seq);
        e.bool(self.halted);
        self.mem.snapshot_encode(&mut e);
        e.finish()
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A [`Machine`] positioned at this executor's exact architectural
    /// state (for interoperability tests and detailed continuation).
    pub fn to_machine(&self) -> Machine {
        // The snapshot layouts are locked together by construction
        // (and by the cross-layout test below), so this cannot fail.
        Machine::restore(self.program.clone(), &self.snapshot())
            // pfm-lint: allow(hygiene): layout equality is a construction invariant
            .expect("FastExec snapshot is Machine-layout")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::names::*;

    fn program(f: impl FnOnce(&mut Asm)) -> Program {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        a.finish().unwrap()
    }

    /// A representative kernel: integer loop, loads/stores of every
    /// width, FP pipeline, calls, divisions, unaligned access.
    fn mixed_kernel(a: &mut Asm) {
        let top = a.label();
        let func = a.label();
        let done = a.label();
        a.li(A0, 0x8000);
        a.li(A1, 16);
        a.li(A2, 0);
        a.bind(top).unwrap();
        a.sd(A1, A0, 0);
        a.lw(A3, A0, 0);
        a.sb(A3, A0, 9);
        a.lbu(A4, A0, 9);
        a.add(A2, A2, A4);
        a.call(func);
        a.addi(A1, A1, -1);
        a.bne(A1, X0, top);
        a.j(done);
        a.bind(func).unwrap();
        a.li(T0, 2.5f64.to_bits() as i64);
        a.sd(T0, A0, 16);
        a.fld(FT0, A0, 16);
        a.fadd(FT1, FT0, FT0);
        a.fsd(FT1, A0, 24);
        a.div(T1, A2, A1);
        a.rem(T2, A2, A1);
        a.ret();
        a.bind(done).unwrap();
        a.halt();
    }

    #[test]
    fn matches_machine_stream_and_state() {
        let p = program(mixed_kernel);
        let mut m = Machine::new(p.clone(), SpecMemory::new());
        let mut fx = FastExec::new(p, SpecMemory::new());
        let steps = m.run(10_000).unwrap();
        let fast_steps = fx.run(10_000).unwrap();
        assert_eq!(steps, fast_steps);
        assert!(m.halted() && fx.halted());
        assert_eq!(m.arch_checksum(), fx.arch_checksum());
        for i in 0..32 {
            assert_eq!(m.reg(Reg::new(i)), fx.reg(Reg::new(i)), "x{i}");
            assert_eq!(
                m.freg_bits(FReg::new(i)),
                fx.freg_bits(FReg::new(i)),
                "f{i}"
            );
        }
    }

    #[test]
    fn budget_slicing_is_invisible() {
        let p = program(mixed_kernel);
        let mut whole = FastExec::new(p.clone(), SpecMemory::new());
        whole.run(10_000).unwrap();
        let mut sliced = FastExec::new(p, SpecMemory::new());
        while !sliced.halted() {
            sliced.run(7).unwrap();
        }
        assert_eq!(whole.retired(), sliced.retired());
        assert_eq!(whole.commit_checksum(), sliced.commit_checksum());
        assert_eq!(whole.arch_checksum(), sliced.arch_checksum());
        assert_eq!(whole.loads(), sliced.loads());
        assert_eq!(whole.stores(), sliced.stores());
    }

    #[test]
    fn snapshot_restores_into_machine_midstream() {
        let p = program(mixed_kernel);
        let mut fx = FastExec::new(p.clone(), SpecMemory::new());
        fx.run(50).unwrap();
        assert!(!fx.halted());
        let m = fx.to_machine();
        assert_eq!(m.pc(), fx.pc());
        assert_eq!(m.arch_checksum(), fx.arch_checksum());

        // Continue both to completion: identical final state.
        let mut m = m;
        m.run(10_000).unwrap();
        fx.run(10_000).unwrap();
        assert_eq!(m.arch_checksum(), fx.arch_checksum());
    }

    #[test]
    fn bad_pc_is_reported_with_state_retained() {
        let p = program(|a| {
            a.li(A0, 7);
            a.nop();
        });
        let mut fx = FastExec::new(p, SpecMemory::new());
        let err = fx.run(10).unwrap_err();
        assert!(matches!(err, ExecError::Program(ProgramError::BadPc(_))));
        assert_eq!(fx.retired(), 2);
        assert_eq!(fx.reg(A0), 7);
    }

    #[test]
    fn halted_run_retires_nothing() {
        let p = program(|a| {
            a.halt();
        });
        let mut fx = FastExec::new(p, SpecMemory::new());
        assert_eq!(fx.run(10).unwrap(), 1);
        assert_eq!(fx.run(10).unwrap(), 0);
        assert_eq!(fx.retired(), 1);
    }

    #[test]
    fn x0_writes_are_discarded() {
        let p = program(|a| {
            a.li(X0, 42);
            a.addi(A0, X0, 1);
            a.halt();
        });
        let mut fx = FastExec::new(p, SpecMemory::new());
        fx.run(10).unwrap();
        assert_eq!(fx.reg(X0), 0);
        assert_eq!(fx.reg(A0), 1);
    }
}
