//! Data memory: a sparse paged byte store plus a speculative store
//! overlay.
//!
//! The simulator executes correct-path instructions functionally at
//! fetch ("functional-first"), but stores must not become
//! architecturally visible until they retire: the PFM Load Agent issues
//! loads on behalf of the reconfigurable fabric that, per the paper,
//! *do not search the store queue* and therefore see only committed
//! state. [`SpecMemory`] models this split:
//!
//! * speculative writes go into a per-word overlay tagged with the
//!   store's program-order sequence number,
//! * core loads read overlay-then-committed (correct, because the
//!   functional stream is executed in program order),
//! * fabric loads read only the committed image,
//! * at store retirement the overlay entry is folded into the committed
//!   image; on a pipeline squash younger overlay entries are dropped.
//!
//! ## Fast-path invariants
//!
//! Both structures sit on the simulator's hottest path (one or more
//! accesses per simulated load/store), so they avoid hashing wherever
//! possible:
//!
//! * [`SparseMem`] stores pages in an arena (`Vec<Box<page>>`) with a
//!   hash index from page number to arena slot, plus a one-entry
//!   *last-page cache* of the most recent slot. The cache holds arena
//!   indices, not pointers, so it stays valid across `Clone` and map
//!   growth; pages are never deallocated, so a cached slot can go stale
//!   only by pointing at the wrong page number, which the tag compare
//!   catches.
//! * Aligned-in-page accesses (any access that does not cross a 4 KiB
//!   boundary — all 1/2/4/8-byte accesses with natural alignment, and
//!   most without) take a single page lookup instead of one per byte.
//! * `generation` counts *bytes written*, exactly as if every write
//!   were byte-at-a-time; the multi-byte fast paths bump it by the
//!   access size so the core's `checked_hook!` non-interference
//!   bracketing observes identical values on either path.
//! * The overlay is keyed by aligned 8-byte word with per-entry lane
//!   masks. Entries in a word's stack are in program (seq) order:
//!   reads apply oldest→youngest so the youngest byte wins, commits
//!   take the stack front (commit is oldest-first), squashes pop the
//!   stack back (squash is youngest-first) — the same order contract
//!   the old per-byte stacks had, at one lookup per word instead of
//!   one per byte.

use crate::fxhash::FxHashMap;
use crate::snap::{Dec, Enc, SnapError};
use std::collections::VecDeque;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Sentinel page number for an empty last-page cache: real page
/// numbers are `addr >> 12` and can never reach `u64::MAX`.
const NO_PAGE: u64 = u64::MAX;

/// A sparse, paged, byte-addressable memory. Unwritten bytes read zero.
///
/// ```
/// use pfm_isa::mem::SparseMem;
/// let mut m = SparseMem::new();
/// m.write(0x8000, 8, 0xdead_beef_1234_5678);
/// assert_eq!(m.read(0x8000, 8), 0xdead_beef_1234_5678);
/// assert_eq!(m.read(0x8004, 4), 0xdead_beef);
/// assert_eq!(m.read(0x9000, 8), 0); // untouched page
/// ```
#[derive(Clone, Debug)]
pub struct SparseMem {
    /// Page number → arena slot. Point lookups only (never iterated).
    index: FxHashMap<u64, u32>,
    /// Page storage; slots are stable for the life of the memory.
    arena: Vec<Box<[u8; PAGE_SIZE]>>,
    /// Last-page cache tag ([`NO_PAGE`] when empty) and arena slot.
    /// Updated by `&mut self` paths; `&self` reads may still *hit* it.
    last_page: u64,
    last_slot: u32,
    /// Monotonic write-generation counter: bumped once per byte
    /// written. Lets observers (the core's non-interference
    /// cross-check) detect *any* committed-state mutation without
    /// hashing the whole image.
    generation: u64,
}

impl Default for SparseMem {
    /// Equivalent to [`SparseMem::new`]; hand-written because the
    /// last-page cache's empty tag is [`NO_PAGE`], not zero.
    fn default() -> SparseMem {
        SparseMem::new()
    }
}

impl SparseMem {
    /// Creates an empty memory.
    pub fn new() -> SparseMem {
        SparseMem {
            index: FxHashMap::default(),
            arena: Vec::new(),
            last_page: NO_PAGE,
            last_slot: 0,
            generation: 0,
        }
    }

    /// Number of resident 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.arena.len()
    }

    /// Base addresses of every resident 4 KiB page, sorted ascending.
    ///
    /// A page is resident once any byte in it has been written, so this
    /// is a conservative page-granular map of the initialized data
    /// image — what `pfm-analyze` checks the code region against for
    /// overlap. Off the hot path (one call per analysis, not per
    /// access).
    pub fn resident_page_addrs(&self) -> Vec<u64> {
        // Sorted before return, so the result is independent of
        // hash-iteration order.
        // pfm-lint: allow(hash-iter)
        let mut pages: Vec<u64> = self.index.keys().map(|p| p << PAGE_SHIFT).collect();
        pages.sort_unstable();
        pages
    }

    /// Monotonic write-generation counter; increments on every byte
    /// written. Two equal generations bracket a window with no
    /// committed-memory mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Arena slot for `page`, if resident. Read-only: hits the
    /// last-page cache but cannot refresh it.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<u32> {
        if page == self.last_page {
            return Some(self.last_slot);
        }
        self.index.get(&page).copied()
    }

    /// Arena slot for `page`, refreshing the last-page cache on a hit.
    #[inline]
    fn slot_of_mut(&mut self, page: u64) -> Option<u32> {
        if page == self.last_page {
            return Some(self.last_slot);
        }
        let slot = *self.index.get(&page)?;
        self.last_page = page;
        self.last_slot = slot;
        Some(slot)
    }

    /// Arena slot for `page`, allocating a zero page on first touch.
    #[inline]
    fn slot_of_alloc(&mut self, page: u64) -> u32 {
        if page == self.last_page {
            return self.last_slot;
        }
        let slot = match self.index.get(&page) {
            Some(&s) => s,
            None => {
                let s = self.arena.len() as u32;
                self.arena.push(Box::new([0u8; PAGE_SIZE]));
                self.index.insert(page, s);
                s
            }
        };
        self.last_page = page;
        self.last_slot = slot;
        slot
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(s) => self.arena[s as usize][(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let slot = self.slot_of_alloc(addr >> PAGE_SHIFT);
        self.arena[slot as usize][(addr & PAGE_MASK) as usize] = value;
        self.generation += 1;
    }

    /// Reads `size` bytes (1, 2, 4, or 8) little-endian, zero-extended.
    ///
    /// # Panics
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            // Fast path: the access stays inside one page — one lookup.
            return match self.slot_of(addr >> PAGE_SHIFT) {
                Some(s) => le_load(&self.arena[s as usize][off..off + size as usize]),
                None => 0,
            };
        }
        self.read_slow(addr, size)
    }

    /// Same as [`SparseMem::read`], but refreshes the last-page cache —
    /// use from call sites that hold `&mut` (the hot execute loop).
    #[inline]
    pub fn read_cached(&mut self, addr: u64, size: u64) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let off = (addr & PAGE_MASK) as usize;
        if off + size as usize <= PAGE_SIZE {
            return match self.slot_of_mut(addr >> PAGE_SHIFT) {
                Some(s) => le_load(&self.arena[s as usize][off..off + size as usize]),
                None => 0,
            };
        }
        self.read_slow(addr, size)
    }

    /// Page-crossing fallback: byte loop (at most two pages).
    #[cold]
    fn read_slow(&self, addr: u64, size: u64) -> u64 {
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes (1, 2, 4, or 8) of `value`
    /// little-endian.
    ///
    /// # Panics
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        self.write_bytes(addr, &value.to_le_bytes()[..size as usize]);
    }

    /// Writes a little-endian byte run of any length, allocating pages
    /// on demand. `generation` advances by `bytes.len()`, exactly as if
    /// each byte were written individually.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        let off = (addr & PAGE_MASK) as usize;
        if off + bytes.len() <= PAGE_SIZE {
            // Fast path: one lookup for the whole run.
            let slot = self.slot_of_alloc(addr >> PAGE_SHIFT);
            self.arena[slot as usize][off..off + bytes.len()].copy_from_slice(bytes);
            self.generation += bytes.len() as u64;
            return;
        }
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Serializes the image: the write-generation counter plus every
    /// resident page (in ascending page-number order) as raw bytes.
    ///
    /// The encoding is canonical — equal images always produce equal
    /// bytes — so snapshot content keys are stable regardless of the
    /// order pages were first touched in.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.generation);
        // Sorted before encoding, so the byte stream is independent of
        // hash-iteration order.
        // pfm-lint: allow(snapshot-hash-iter)
        let mut pages: Vec<u64> = self.index.keys().copied().collect();
        pages.sort_unstable();
        e.usize(pages.len());
        for p in pages {
            e.u64(p);
            e.bytes(&self.arena[self.index[&p] as usize][..]);
        }
    }

    /// Reconstructs an image serialized by [`SparseMem::snapshot_encode`].
    ///
    /// The restored image is behaviourally identical to the original:
    /// same bytes at every address, same generation counter. (Arena
    /// slot order — a pure implementation detail — is normalized to
    /// page order.)
    ///
    /// # Errors
    /// Typed [`SnapError`] on truncated or non-canonical input.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<SparseMem, SnapError> {
        let generation = d.u64()?;
        let n = d.seq_len()?;
        let mut mem = SparseMem::new();
        let mut prev: Option<u64> = None;
        for _ in 0..n {
            let page = d.u64()?;
            if prev.is_some_and(|p| page <= p) {
                return Err(SnapError::Corrupt("page order"));
            }
            prev = Some(page);
            let bytes = d.bytes(PAGE_SIZE)?;
            let mut data = Box::new([0u8; PAGE_SIZE]);
            data.copy_from_slice(bytes);
            let slot = mem.arena.len() as u32;
            mem.arena.push(data);
            mem.index.insert(page, slot);
        }
        mem.generation = generation;
        Ok(mem)
    }
}

/// Little-endian zero-extended load of a 1–8 byte slice.
#[inline]
fn le_load(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    buf[..bytes.len()].copy_from_slice(bytes);
    u64::from_le_bytes(buf)
}

/// A pending speculative store registered with [`SpecMemory`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingStore {
    /// Program-order sequence number of the store instruction.
    pub seq: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Store value (low `size` bytes significant).
    pub value: u64,
}

/// One store's contribution to an aligned 8-byte overlay word:
/// `mask` has `0xFF` in every lane the store wrote, and `data` holds
/// the store bytes in those lanes (zero elsewhere).
#[derive(Clone, Copy, Debug)]
struct OverlayEntry {
    seq: u64,
    data: u64,
    mask: u64,
}

/// Committed memory plus a speculative store overlay.
///
/// Sequence numbers must be registered in strictly increasing order
/// (program order), committed in the same order, and squashed from the
/// youngest end — which is exactly how an out-of-order core's store
/// queue behaves.
#[derive(Clone, Debug, Default)]
pub struct SpecMemory {
    committed: SparseMem,
    /// Aligned word (`addr >> 3`) → stack of store contributions in
    /// seq order. Point lookups only (never iterated).
    overlay: FxHashMap<u64, Vec<OverlayEntry>>,
    /// All unretired stores by seq, for commit/squash bookkeeping.
    pending: VecDeque<PendingStore>,
}

/// The two aligned words an access touches, with the low word's bit
/// offset: `(word0, bit_off, spills_into_word1)`.
#[inline]
fn word_span(addr: u64, size: u64) -> (u64, u32, bool) {
    let word = addr >> 3;
    let bit_off = ((addr & 7) * 8) as u32;
    (word, bit_off, bit_off as u64 + size * 8 > 64)
}

/// `0xFF` in each of the low `size` lanes.
#[inline]
fn size_mask(size: u64) -> u64 {
    if size == 8 {
        u64::MAX
    } else {
        (1u64 << (size * 8)) - 1
    }
}

impl SpecMemory {
    /// Creates an empty speculative memory.
    pub fn new() -> SpecMemory {
        SpecMemory::default()
    }

    /// Immutable view of the committed image (what the PFM Load Agent
    /// sees).
    pub fn committed(&self) -> &SparseMem {
        &self.committed
    }

    /// Mutable access to the committed image, for program/data
    /// initialization before simulation starts.
    ///
    /// # Panics
    /// Panics if there are unretired speculative stores, to prevent
    /// initialization racing with execution.
    pub fn committed_mut(&mut self) -> &mut SparseMem {
        assert!(
            self.pending.is_empty(),
            "cannot mutate committed image with stores in flight"
        );
        &mut self.committed
    }

    /// Number of in-flight speculative stores.
    pub fn pending_stores(&self) -> usize {
        self.pending.len()
    }

    /// The committed value of aligned word `word` with all pending
    /// overlay entries applied oldest→youngest (youngest byte wins).
    #[inline]
    fn word_spec(&mut self, word: u64) -> u64 {
        let mut v = self.committed.read_cached(word << 3, 8);
        if let Some(stack) = self.overlay.get(&word) {
            for e in stack {
                v = (v & !e.mask) | e.data;
            }
        }
        v
    }

    /// Speculative read: youngest overlay byte wins, falling back to the
    /// committed image. This is the view core instructions see.
    ///
    /// Takes `&mut self` to keep the committed image's last-page cache
    /// warm; the architectural state is not modified.
    pub fn read_spec(&mut self, addr: u64, size: u64) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        if self.overlay.is_empty() {
            // Fast path: no stores in flight — a plain committed read.
            return self.committed.read_cached(addr, size);
        }
        let (word, bit_off, spills) = word_span(addr, size);
        let lo = self.word_spec(word);
        let mut v = lo >> bit_off;
        if spills {
            let hi = self.word_spec(word + 1);
            v |= hi << (64 - bit_off);
        }
        v & size_mask(size)
    }

    /// Committed read: ignores all unretired stores. This is the view
    /// fabric (Load Agent) loads see.
    pub fn read_committed(&self, addr: u64, size: u64) -> u64 {
        self.committed.read(addr, size)
    }

    /// Registers a speculative store.
    ///
    /// # Panics
    /// Panics if `seq` is not greater than every pending store's seq
    /// (stores must arrive in program order).
    pub fn write_spec(&mut self, seq: u64, addr: u64, size: u64, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        if let Some(last) = self.pending.back() {
            assert!(seq > last.seq, "stores must be registered in program order");
        }
        let value = value & size_mask(size);
        let (word, bit_off, spills) = word_span(addr, size);
        self.overlay.entry(word).or_default().push(OverlayEntry {
            seq,
            data: value << bit_off,
            mask: size_mask(size) << bit_off,
        });
        if spills {
            self.overlay
                .entry(word + 1)
                .or_default()
                .push(OverlayEntry {
                    seq,
                    data: value >> (64 - bit_off),
                    mask: size_mask(size) >> (64 - bit_off),
                });
        }
        self.pending.push_back(PendingStore {
            seq,
            addr,
            size,
            value,
        });
    }

    /// Removes `seq`'s entry for `word` from the stack `end` it is
    /// required to sit at (front for commit, back for squash), and
    /// returns it.
    #[inline]
    fn take_entry(&mut self, word: u64, seq: u64, front: bool) -> OverlayEntry {
        // write_spec registered this word for `seq`, and only
        // commit/squash (which take it exactly once) remove entries,
        // so the stack must be present.
        // pfm-lint: allow(hygiene): see the invariant above
        let stack = self.overlay.get_mut(&word).expect("overlay word present");
        let e = if front {
            debug_assert_eq!(stack.first().map(|e| e.seq), Some(seq));
            stack.remove(0)
        } else {
            debug_assert_eq!(stack.last().map(|e| e.seq), Some(seq));
            // pfm-lint: allow(hygiene): non-empty per the same argument
            stack.pop().expect("overlay stack non-empty")
        };
        if stack.is_empty() {
            self.overlay.remove(&word);
        }
        e
    }

    /// Folds one overlay entry's lanes into the committed image.
    /// The lanes a single store wrote within a word are contiguous.
    fn fold_entry(&mut self, word: u64, e: OverlayEntry) {
        let lane0 = e.mask.trailing_zeros() / 8;
        let lanes = e.mask.count_ones() / 8;
        let bytes = e.data.to_le_bytes();
        self.committed.write_bytes(
            (word << 3) + lane0 as u64,
            &bytes[lane0 as usize..(lane0 + lanes) as usize],
        );
    }

    /// Commits the oldest pending store, which must have sequence number
    /// `seq`; its bytes become visible in the committed image.
    ///
    /// # Panics
    /// Panics if `seq` is not the oldest pending store.
    pub fn commit_store(&mut self, seq: u64) {
        let st = self
            .pending
            .front()
            .copied()
            // pfm-lint: allow(hygiene): caller contract; the panic is documented
            .expect("no pending store to commit");
        assert_eq!(st.seq, seq, "stores must commit in program order");
        self.pending.pop_front();
        // The committing store's entries sit at the front of each word
        // stack: commits are oldest-first, so every older store that
        // touched these words has already removed its entries.
        let (word, _, spills) = word_span(st.addr, st.size);
        let e = self.take_entry(word, seq, true);
        self.fold_entry(word, e);
        if spills {
            let e = self.take_entry(word + 1, seq, true);
            self.fold_entry(word + 1, e);
        }
    }

    /// Squashes all speculative stores with sequence number strictly
    /// greater than `seq` (youngest-first rollback after a pipeline
    /// squash).
    pub fn squash_after(&mut self, seq: u64) {
        while let Some(last) = self.pending.back().copied() {
            if last.seq <= seq {
                break;
            }
            self.pending.pop_back();
            // The squashed store is the youngest, so its entries sit at
            // the back of each word stack.
            let (word, _, spills) = word_span(last.addr, last.size);
            self.take_entry(word, last.seq, false);
            if spills {
                self.take_entry(word + 1, last.seq, false);
            }
        }
    }

    /// Serializes the committed image, the speculative overlay
    /// (in ascending word order) and the pending-store queue.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.committed.snapshot_encode(e);
        // Sorted before encoding, so the byte stream is independent of
        // hash-iteration order.
        // pfm-lint: allow(snapshot-hash-iter)
        let mut words: Vec<u64> = self.overlay.keys().copied().collect();
        words.sort_unstable();
        e.usize(words.len());
        for w in words {
            e.u64(w);
            let stack = &self.overlay[&w];
            e.usize(stack.len());
            for entry in stack {
                e.u64(entry.seq);
                e.u64(entry.data);
                e.u64(entry.mask);
            }
        }
        e.usize(self.pending.len());
        for st in &self.pending {
            e.u64(st.seq);
            e.u64(st.addr);
            e.u64(st.size);
            e.u64(st.value);
        }
    }

    /// Reconstructs a memory serialized by
    /// [`SpecMemory::snapshot_encode`], including any in-flight
    /// speculative stores.
    ///
    /// # Errors
    /// Typed [`SnapError`] on truncated or structurally invalid input.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<SpecMemory, SnapError> {
        let committed = SparseMem::snapshot_decode(d)?;
        let mut overlay = FxHashMap::default();
        let words = d.seq_len()?;
        let mut prev: Option<u64> = None;
        for _ in 0..words {
            let w = d.u64()?;
            if prev.is_some_and(|p| w <= p) {
                return Err(SnapError::Corrupt("overlay word order"));
            }
            prev = Some(w);
            let depth = d.seq_len()?;
            if depth == 0 {
                return Err(SnapError::Corrupt("empty overlay stack"));
            }
            let mut stack = Vec::with_capacity(depth);
            for _ in 0..depth {
                stack.push(OverlayEntry {
                    seq: d.u64()?,
                    data: d.u64()?,
                    mask: d.u64()?,
                });
            }
            overlay.insert(w, stack);
        }
        let mut pending = VecDeque::new();
        let n = d.seq_len()?;
        for _ in 0..n {
            let st = PendingStore {
                seq: d.u64()?,
                addr: d.u64()?,
                size: d.u64()?,
                value: d.u64()?,
            };
            if !matches!(st.size, 1 | 2 | 4 | 8) {
                return Err(SnapError::Corrupt("pending store size"));
            }
            if pending
                .back()
                .is_some_and(|p: &PendingStore| st.seq <= p.seq)
            {
                return Err(SnapError::Corrupt("pending store order"));
            }
            pending.push_back(st);
        }
        Ok(SpecMemory {
            committed,
            overlay,
            pending,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_mem_zero_fill() {
        let m = SparseMem::new();
        assert_eq!(m.read(0x1234, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn sparse_mem_rw_roundtrip_sizes() {
        let mut m = SparseMem::new();
        for &(size, val) in &[
            (1u64, 0xabu64),
            (2, 0xbeef),
            (4, 0xdeadbeef),
            (8, 0x0123456789abcdef),
        ] {
            m.write(0x4000, size, val);
            assert_eq!(m.read(0x4000, size), val);
        }
    }

    #[test]
    fn sparse_mem_cross_page_access() {
        let mut m = SparseMem::new();
        let addr = 0x1FFC; // spans 0x1000-page boundary at 0x2000
        m.write(addr, 8, 0x1122334455667788);
        assert_eq!(m.read(addr, 8), 0x1122334455667788);
        assert_eq!(m.read_cached(addr, 8), 0x1122334455667788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn resident_page_addrs_sorted_and_page_granular() {
        let mut m = SparseMem::new();
        m.write_u8(0x9005, 1);
        m.write_u8(0x1000, 1);
        m.write(0x1FFC, 8, 0); // crosses into the 0x2000 page
        assert_eq!(m.resident_page_addrs(), vec![0x1000, 0x2000, 0x9000]);
    }

    #[test]
    fn sparse_mem_little_endian() {
        let mut m = SparseMem::new();
        m.write(0x100, 4, 0x0A0B0C0D);
        assert_eq!(m.read_u8(0x100), 0x0D);
        assert_eq!(m.read_u8(0x103), 0x0A);
    }

    #[test]
    fn generation_counts_bytes_on_every_path() {
        let mut m = SparseMem::new();
        m.write(0x100, 8, 1); // intra-page fast path
        assert_eq!(m.generation(), 8);
        m.write(0x1FFC, 8, 2); // page-crossing byte loop
        assert_eq!(m.generation(), 16);
        m.write_u8(0x0, 3);
        assert_eq!(m.generation(), 17);
        m.write_bytes(0x200, &[1, 2, 3]);
        assert_eq!(m.generation(), 20);
    }

    #[test]
    fn last_page_cache_survives_clone() {
        let mut m = SparseMem::new();
        m.write(0x8000, 8, 0xabcd);
        let mut c = m.clone();
        // Writes to the clone must not alias the original's pages.
        c.write(0x8000, 8, 0x1234);
        assert_eq!(m.read(0x8000, 8), 0xabcd);
        assert_eq!(c.read(0x8000, 8), 0x1234);
    }

    #[test]
    fn spec_read_sees_overlay_committed_does_not() {
        let mut m = SpecMemory::new();
        m.committed_mut().write(0x100, 8, 111);
        m.write_spec(1, 0x100, 8, 222);
        assert_eq!(m.read_spec(0x100, 8), 222);
        assert_eq!(m.read_committed(0x100, 8), 111);
    }

    #[test]
    fn commit_makes_store_visible() {
        let mut m = SpecMemory::new();
        m.write_spec(5, 0x200, 4, 77);
        assert_eq!(m.read_committed(0x200, 4), 0);
        m.commit_store(5);
        assert_eq!(m.read_committed(0x200, 4), 77);
        assert_eq!(m.pending_stores(), 0);
    }

    #[test]
    fn squash_discards_young_stores_only() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x300, 8, 10);
        m.write_spec(2, 0x300, 8, 20);
        m.write_spec(3, 0x308, 8, 30);
        m.squash_after(1);
        assert_eq!(m.read_spec(0x300, 8), 10);
        assert_eq!(m.read_spec(0x308, 8), 0);
        assert_eq!(m.pending_stores(), 1);
        m.commit_store(1);
        assert_eq!(m.read_committed(0x300, 8), 10);
    }

    #[test]
    fn youngest_overlay_byte_wins() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x400, 8, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_spec(2, 0x404, 4, 0xBBBB_BBBB);
        // Low half from store 1, high half from store 2.
        assert_eq!(m.read_spec(0x400, 8), 0xBBBB_BBBB_AAAA_AAAA);
    }

    #[test]
    fn unaligned_store_spans_two_words() {
        let mut m = SpecMemory::new();
        m.committed_mut().write(0x500, 8, 0x1111_1111_1111_1111);
        m.committed_mut().write(0x508, 8, 0x2222_2222_2222_2222);
        // 8-byte store at 0x505 covers bytes 5..13.
        m.write_spec(1, 0x505, 8, 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read_spec(0x505, 8), 0xAABB_CCDD_EEFF_0011);
        // Unwritten neighbours still read committed.
        assert_eq!(m.read_spec(0x500, 4), 0x1111_1111);
        assert_eq!(m.read_spec(0x508, 8) >> 40, 0x22_2222);
        m.commit_store(1);
        assert_eq!(m.read_committed(0x505, 8), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(m.read_committed(0x500, 4), 0x1111_1111);
    }

    #[test]
    fn unaligned_squash_unwinds_both_words() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x605, 8, u64::MAX);
        m.squash_after(0);
        assert_eq!(m.read_spec(0x600, 8), 0);
        assert_eq!(m.read_spec(0x608, 8), 0);
        assert_eq!(m.pending_stores(), 0);
    }

    #[test]
    fn overlapping_commit_in_order() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x500, 8, 1);
        m.write_spec(2, 0x500, 8, 2);
        m.commit_store(1);
        // Spec view still sees store 2; committed sees store 1.
        assert_eq!(m.read_spec(0x500, 8), 2);
        assert_eq!(m.read_committed(0x500, 8), 1);
        m.commit_store(2);
        assert_eq!(m.read_committed(0x500, 8), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_order_registration_panics() {
        let mut m = SpecMemory::new();
        m.write_spec(5, 0x0, 8, 0);
        m.write_spec(4, 0x8, 8, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_commit_panics() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x0, 8, 0);
        m.write_spec(2, 0x8, 8, 0);
        m.commit_store(2);
    }
}
