//! Data memory: a sparse paged byte store plus a speculative store
//! overlay.
//!
//! The simulator executes correct-path instructions functionally at
//! fetch ("functional-first"), but stores must not become
//! architecturally visible until they retire: the PFM Load Agent issues
//! loads on behalf of the reconfigurable fabric that, per the paper,
//! *do not search the store queue* and therefore see only committed
//! state. [`SpecMemory`] models this split:
//!
//! * speculative writes go into a per-byte overlay tagged with the
//!   store's program-order sequence number,
//! * core loads read overlay-then-committed (correct, because the
//!   functional stream is executed in program order),
//! * fabric loads read only the committed image,
//! * at store retirement the overlay entry is folded into the committed
//!   image; on a pipeline squash younger overlay entries are dropped.

use std::collections::HashMap;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse, paged, byte-addressable memory. Unwritten bytes read zero.
///
/// ```
/// use pfm_isa::mem::SparseMem;
/// let mut m = SparseMem::new();
/// m.write(0x8000, 8, 0xdead_beef_1234_5678);
/// assert_eq!(m.read(0x8000, 8), 0xdead_beef_1234_5678);
/// assert_eq!(m.read(0x8004, 4), 0xdead_beef);
/// assert_eq!(m.read(0x9000, 8), 0); // untouched page
/// ```
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    /// Monotonic write-generation counter: bumped on every byte write.
    /// Lets observers (the core's non-interference cross-check) detect
    /// *any* committed-state mutation without hashing the whole image.
    generation: u64,
}

impl SparseMem {
    /// Creates an empty memory.
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Number of resident 4 KiB pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Monotonic write-generation counter; increments on every byte
    /// written. Two equal generations bracket a window with no
    /// committed-memory mutation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page on demand.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
        self.generation += 1;
    }

    /// Reads `size` bytes (1, 2, 4, or 8) little-endian, zero-extended.
    ///
    /// # Panics
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes (1, 2, 4, or 8) of `value`
    /// little-endian.
    ///
    /// # Panics
    /// Panics if `size` is not one of 1, 2, 4, 8.
    pub fn write(&mut self, addr: u64, size: u64, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }
}

/// A pending speculative store registered with [`SpecMemory`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PendingStore {
    /// Program-order sequence number of the store instruction.
    pub seq: u64,
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Store value (low `size` bytes significant).
    pub value: u64,
}

/// Committed memory plus a speculative store overlay.
///
/// Sequence numbers must be registered in strictly increasing order
/// (program order), committed in the same order, and squashed from the
/// youngest end — which is exactly how an out-of-order core's store
/// queue behaves.
#[derive(Clone, Debug, Default)]
pub struct SpecMemory {
    committed: SparseMem,
    /// Per-byte stacks of (seq, value); each Vec is sorted by seq
    /// because writes arrive in program order.
    overlay: HashMap<u64, Vec<(u64, u8)>>,
    /// All unretired stores by seq, for commit/squash bookkeeping.
    pending: Vec<PendingStore>,
}

impl SpecMemory {
    /// Creates an empty speculative memory.
    pub fn new() -> SpecMemory {
        SpecMemory::default()
    }

    /// Immutable view of the committed image (what the PFM Load Agent
    /// sees).
    pub fn committed(&self) -> &SparseMem {
        &self.committed
    }

    /// Mutable access to the committed image, for program/data
    /// initialization before simulation starts.
    ///
    /// # Panics
    /// Panics if there are unretired speculative stores, to prevent
    /// initialization racing with execution.
    pub fn committed_mut(&mut self) -> &mut SparseMem {
        assert!(
            self.pending.is_empty(),
            "cannot mutate committed image with stores in flight"
        );
        &mut self.committed
    }

    /// Number of in-flight speculative stores.
    pub fn pending_stores(&self) -> usize {
        self.pending.len()
    }

    /// Speculative read: youngest overlay byte wins, falling back to the
    /// committed image. This is the view core instructions see.
    pub fn read_spec(&self, addr: u64, size: u64) -> u64 {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        let mut v = 0u64;
        for i in 0..size {
            let a = addr.wrapping_add(i);
            let byte = match self.overlay.get(&a).and_then(|s| s.last()) {
                Some(&(_, b)) => b,
                None => self.committed.read_u8(a),
            };
            v |= (byte as u64) << (8 * i);
        }
        v
    }

    /// Committed read: ignores all unretired stores. This is the view
    /// fabric (Load Agent) loads see.
    pub fn read_committed(&self, addr: u64, size: u64) -> u64 {
        self.committed.read(addr, size)
    }

    /// Registers a speculative store.
    ///
    /// # Panics
    /// Panics if `seq` is not greater than every pending store's seq
    /// (stores must arrive in program order).
    pub fn write_spec(&mut self, seq: u64, addr: u64, size: u64, value: u64) {
        assert!(matches!(size, 1 | 2 | 4 | 8), "bad access size {size}");
        if let Some(last) = self.pending.last() {
            assert!(seq > last.seq, "stores must be registered in program order");
        }
        for i in 0..size {
            let a = addr.wrapping_add(i);
            let byte = (value >> (8 * i)) as u8;
            self.overlay.entry(a).or_default().push((seq, byte));
        }
        self.pending.push(PendingStore {
            seq,
            addr,
            size,
            value,
        });
    }

    /// Commits the oldest pending store, which must have sequence number
    /// `seq`; its bytes become visible in the committed image.
    ///
    /// # Panics
    /// Panics if `seq` is not the oldest pending store.
    pub fn commit_store(&mut self, seq: u64) {
        let st = self
            .pending
            .first()
            .copied()
            // pfm-lint: allow(hygiene): caller contract; the panic is documented
            .expect("no pending store to commit");
        assert_eq!(st.seq, seq, "stores must commit in program order");
        self.pending.remove(0);
        for i in 0..st.size {
            let a = st.addr.wrapping_add(i);
            if let Some(stack) = self.overlay.get_mut(&a) {
                // The committing store's byte is the oldest entry.
                debug_assert_eq!(stack.first().map(|e| e.0), Some(seq));
                let (_, byte) = stack.remove(0);
                self.committed.write_u8(a, byte);
                if stack.is_empty() {
                    self.overlay.remove(&a);
                }
            }
        }
    }

    /// Squashes all speculative stores with sequence number strictly
    /// greater than `seq` (youngest-first rollback after a pipeline
    /// squash).
    pub fn squash_after(&mut self, seq: u64) {
        while let Some(last) = self.pending.last().copied() {
            if last.seq <= seq {
                break;
            }
            self.pending.pop();
            for i in 0..last.size {
                let a = last.addr.wrapping_add(i);
                if let Some(stack) = self.overlay.get_mut(&a) {
                    debug_assert_eq!(stack.last().map(|e| e.0), Some(last.seq));
                    stack.pop();
                    if stack.is_empty() {
                        self.overlay.remove(&a);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_mem_zero_fill() {
        let m = SparseMem::new();
        assert_eq!(m.read(0x1234, 8), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn sparse_mem_rw_roundtrip_sizes() {
        let mut m = SparseMem::new();
        for &(size, val) in &[
            (1u64, 0xabu64),
            (2, 0xbeef),
            (4, 0xdeadbeef),
            (8, 0x0123456789abcdef),
        ] {
            m.write(0x4000, size, val);
            assert_eq!(m.read(0x4000, size), val);
        }
    }

    #[test]
    fn sparse_mem_cross_page_access() {
        let mut m = SparseMem::new();
        let addr = 0x1FFC; // spans 0x1000-page boundary at 0x2000
        m.write(addr, 8, 0x1122334455667788);
        assert_eq!(m.read(addr, 8), 0x1122334455667788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn sparse_mem_little_endian() {
        let mut m = SparseMem::new();
        m.write(0x100, 4, 0x0A0B0C0D);
        assert_eq!(m.read_u8(0x100), 0x0D);
        assert_eq!(m.read_u8(0x103), 0x0A);
    }

    #[test]
    fn spec_read_sees_overlay_committed_does_not() {
        let mut m = SpecMemory::new();
        m.committed_mut().write(0x100, 8, 111);
        m.write_spec(1, 0x100, 8, 222);
        assert_eq!(m.read_spec(0x100, 8), 222);
        assert_eq!(m.read_committed(0x100, 8), 111);
    }

    #[test]
    fn commit_makes_store_visible() {
        let mut m = SpecMemory::new();
        m.write_spec(5, 0x200, 4, 77);
        assert_eq!(m.read_committed(0x200, 4), 0);
        m.commit_store(5);
        assert_eq!(m.read_committed(0x200, 4), 77);
        assert_eq!(m.pending_stores(), 0);
    }

    #[test]
    fn squash_discards_young_stores_only() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x300, 8, 10);
        m.write_spec(2, 0x300, 8, 20);
        m.write_spec(3, 0x308, 8, 30);
        m.squash_after(1);
        assert_eq!(m.read_spec(0x300, 8), 10);
        assert_eq!(m.read_spec(0x308, 8), 0);
        assert_eq!(m.pending_stores(), 1);
        m.commit_store(1);
        assert_eq!(m.read_committed(0x300, 8), 10);
    }

    #[test]
    fn youngest_overlay_byte_wins() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x400, 8, 0xAAAA_AAAA_AAAA_AAAA);
        m.write_spec(2, 0x404, 4, 0xBBBB_BBBB);
        // Low half from store 1, high half from store 2.
        assert_eq!(m.read_spec(0x400, 8), 0xBBBB_BBBB_AAAA_AAAA);
    }

    #[test]
    fn overlapping_commit_in_order() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x500, 8, 1);
        m.write_spec(2, 0x500, 8, 2);
        m.commit_store(1);
        // Spec view still sees store 2; committed sees store 1.
        assert_eq!(m.read_spec(0x500, 8), 2);
        assert_eq!(m.read_committed(0x500, 8), 1);
        m.commit_store(2);
        assert_eq!(m.read_committed(0x500, 8), 2);
    }

    #[test]
    #[should_panic]
    fn out_of_order_registration_panics() {
        let mut m = SpecMemory::new();
        m.write_spec(5, 0x0, 8, 0);
        m.write_spec(4, 0x8, 8, 0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_commit_panics() {
        let mut m = SpecMemory::new();
        m.write_spec(1, 0x0, 8, 0);
        m.write_spec(2, 0x8, 8, 0);
        m.commit_store(2);
    }
}
