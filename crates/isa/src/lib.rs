//! # pfm-isa — ISA, assembler and functional execution substrate
//!
//! The RISC-V-flavoured instruction set, label-based assembler, sparse
//! data memory with a speculative store overlay, and the architectural
//! (functional) executor used by the Post-Fabrication Microarchitecture
//! (PFM) reproduction.
//!
//! The cycle-level superscalar core in `pfm-core` is *functional-first*:
//! it consumes architecturally-exact [`machine::StepOut`] records from
//! [`machine::Machine`] and layers all speculation/timing on top. The
//! split between speculative and committed memory in
//! [`mem::SpecMemory`] is what gives the PFM Load Agent its
//! paper-faithful semantics (fabric loads never see unretired stores).
//!
//! ## Example
//!
//! ```
//! use pfm_isa::asm::Asm;
//! use pfm_isa::machine::Machine;
//! use pfm_isa::mem::SpecMemory;
//! use pfm_isa::reg::names::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(0x1000);
//! let top = a.label();
//! a.li(A0, 0);
//! a.li(A1, 100);
//! a.bind(top)?;
//! a.add(A0, A0, A1);
//! a.addi(A1, A1, -1);
//! a.bne(A1, X0, top);
//! a.halt();
//! let mut m = Machine::new(a.finish()?, SpecMemory::new());
//! m.run(10_000)?;
//! assert_eq!(m.reg(A0), 5050);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod fast;
pub mod fxhash;
pub mod inst;
pub mod machine;
pub mod mem;
pub mod program;
pub mod reg;
pub mod snap;

pub use asm::Asm;
pub use fast::FastExec;
pub use inst::{ControlTarget, ExecClass, Inst, InstInfo, MemAccess};
pub use machine::{Machine, StepOut};
pub use mem::{SparseMem, SpecMemory};
pub use program::Program;
pub use reg::{FReg, Reg, RegRef};
pub use snap::{Dec, Enc, SnapError};
