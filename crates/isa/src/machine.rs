//! Functional (architectural) execution.
//!
//! [`Machine`] walks the correct execution path one instruction at a
//! time. The cycle-level core consumes the produced [`StepOut`] records
//! ("functional-first" simulation): values are architecturally exact,
//! while the timing model separately accounts for speculation, squashes
//! and replay. Stores are registered in the speculative overlay of
//! [`SpecMemory`] at execution and must be committed by the timing model
//! at retirement (see [`SpecMemory::commit_store`]).

use crate::inst::{AluOp, FAluOp, Inst, MemWidth};
use crate::mem::SpecMemory;
use crate::program::{Program, ProgramError};
use crate::reg::{FReg, Reg, RegRef, NUM_FP_REGS, NUM_INT_REGS};
use crate::snap::{Dec, Enc, SnapError};

/// A functional memory access performed by one instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// True for stores, false for loads.
    pub is_store: bool,
    /// Effective byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u64,
    /// Value loaded or stored (zero-extended raw bits).
    pub value: u64,
}

/// The architectural effects of one executed instruction.
#[derive(Clone, Copy, Debug)]
pub struct StepOut {
    /// Global program-order sequence number (starts at 1).
    pub seq: u64,
    /// Address of the executed instruction.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Inst,
    /// Architecturally correct next PC.
    pub next_pc: u64,
    /// For control instructions: whether the transfer was taken.
    pub taken: bool,
    /// Memory access, if any.
    pub mem: Option<MemOp>,
    /// Destination register write, if any (raw 64-bit value).
    pub wrote: Option<(RegRef, u64)>,
    /// Whether this instruction halts the machine.
    pub halted: bool,
}

/// Errors raised during functional execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The PC left the program.
    Program(ProgramError),
    /// Step was called after `Halt` executed.
    Halted,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Program(e) => write!(f, "functional execution error: {e}"),
            ExecError::Halted => write!(f, "machine is halted"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ProgramError> for ExecError {
    fn from(e: ProgramError) -> ExecError {
        ExecError::Program(e)
    }
}

/// Architectural machine state: registers, PC, and data memory.
#[derive(Clone, Debug)]
pub struct Machine {
    regs: [u64; NUM_INT_REGS],
    fregs: [u64; NUM_FP_REGS],
    pc: u64,
    mem: SpecMemory,
    program: Program,
    next_seq: u64,
    halted: bool,
}

impl Machine {
    /// Creates a machine at the program's base address with zeroed
    /// registers and the given data memory.
    pub fn new(program: Program, mem: SpecMemory) -> Machine {
        let pc = program.base();
        Machine {
            regs: [0; NUM_INT_REGS],
            fregs: [0; NUM_FP_REGS],
            pc,
            mem,
            program,
            next_seq: 1,
            halted: false,
        }
    }

    /// Current PC (address of the next instruction to execute).
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Overrides the PC (e.g., to start at an exported symbol).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Whether `Halt` has executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads an integer register.
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.num() as usize]
        }
    }

    /// Writes an integer register (writes to `x0` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if !r.is_zero() {
            self.regs[r.num() as usize] = v;
        }
    }

    /// Reads a floating-point register as raw bits.
    pub fn freg_bits(&self, r: FReg) -> u64 {
        self.fregs[r.num() as usize]
    }

    /// Writes a floating-point register from raw bits.
    pub fn set_freg_bits(&mut self, r: FReg, bits: u64) {
        self.fregs[r.num() as usize] = bits;
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The data memory.
    pub fn mem(&self) -> &SpecMemory {
        &self.mem
    }

    /// Mutable access to the data memory (commit/squash bookkeeping is
    /// driven by the timing model).
    pub fn mem_mut(&mut self) -> &mut SpecMemory {
        &mut self.mem
    }

    /// A cheap fingerprint of architectural state: every register file
    /// entry, the PC, and the committed memory's write-generation
    /// counter, folded FNV-style.
    ///
    /// Two equal checksums bracketing a fabric Agent hook invocation
    /// certify the hook did not change architectural state — the PFM
    /// non-interference contract (observe retired stream, intervene
    /// microarchitecturally only). The timing core cross-checks this in
    /// debug builds around every hook call.
    pub fn arch_checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for &r in &self.regs {
            fold(r);
        }
        for &f in &self.fregs {
            fold(f);
        }
        fold(self.pc);
        fold(self.mem.committed().generation());
        h
    }

    /// Executes one instruction at the current PC.
    ///
    /// # Errors
    /// Returns [`ExecError::Halted`] if the machine already halted, or
    /// [`ExecError::Program`] if the PC is outside the program.
    pub fn step(&mut self) -> Result<StepOut, ExecError> {
        if self.halted {
            return Err(ExecError::Halted);
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let fall = pc + crate::inst::INST_BYTES;

        let mut out = StepOut {
            seq,
            pc,
            inst,
            next_pc: fall,
            taken: false,
            mem: None,
            wrote: None,
            halted: false,
        };

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                out.wrote = wrote_int(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = alu(op, self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
                out.wrote = wrote_int(rd, v);
            }
            Inst::Li { rd, imm } => {
                self.set_reg(rd, imm as u64);
                out.wrote = wrote_int(rd, imm as u64);
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let size = width.bytes();
                let raw = self.mem.read_spec(addr, size);
                let v = extend(raw, width, signed);
                self.set_reg(rd, v);
                out.mem = Some(MemOp {
                    is_store: false,
                    addr,
                    size,
                    value: v,
                });
                out.wrote = wrote_int(rd, v);
            }
            Inst::Store {
                width,
                src,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let size = width.bytes();
                let v = self.reg(src);
                self.mem.write_spec(seq, addr, size, v);
                out.mem = Some(MemOp {
                    is_store: true,
                    addr,
                    size,
                    value: v,
                });
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                out.taken = taken;
                out.next_pc = if taken { target } else { fall };
            }
            Inst::Jal { rd, target } => {
                self.set_reg(rd, fall);
                out.wrote = wrote_int(rd, fall);
                out.taken = true;
                out.next_pc = target;
            }
            Inst::Jalr { rd, base, offset } => {
                let target = self.reg(base).wrapping_add(offset as u64) & !1u64;
                self.set_reg(rd, fall);
                out.wrote = wrote_int(rd, fall);
                out.taken = true;
                out.next_pc = target;
            }
            Inst::FLoad { fd, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.mem.read_spec(addr, 8);
                self.set_freg_bits(fd, bits);
                out.mem = Some(MemOp {
                    is_store: false,
                    addr,
                    size: 8,
                    value: bits,
                });
                out.wrote = Some((fd.into(), bits));
            }
            Inst::FStore { fs, base, offset } => {
                let addr = self.reg(base).wrapping_add(offset as u64);
                let bits = self.freg_bits(fs);
                self.mem.write_spec(seq, addr, 8, bits);
                out.mem = Some(MemOp {
                    is_store: true,
                    addr,
                    size: 8,
                    value: bits,
                });
            }
            Inst::FAlu { op, fd, fs1, fs2 } => {
                let a = f64::from_bits(self.freg_bits(fs1));
                let b = f64::from_bits(self.freg_bits(fs2));
                let r = match op {
                    FAluOp::Fadd => a + b,
                    FAluOp::Fsub => a - b,
                    FAluOp::Fmul => a * b,
                    FAluOp::Fdiv => a / b,
                    FAluOp::Fmin => a.min(b),
                    FAluOp::Fmax => a.max(b),
                };
                let bits = r.to_bits();
                self.set_freg_bits(fd, bits);
                out.wrote = Some((fd.into(), bits));
            }
            Inst::FMvToF { fd, rs1 } => {
                let bits = self.reg(rs1);
                self.set_freg_bits(fd, bits);
                out.wrote = Some((fd.into(), bits));
            }
            Inst::FMvToX { rd, fs1 } => {
                let bits = self.freg_bits(fs1);
                self.set_reg(rd, bits);
                out.wrote = wrote_int(rd, bits);
            }
            Inst::Nop => {}
            Inst::Halt => {
                out.halted = true;
                self.halted = true;
            }
        }

        self.pc = out.next_pc;
        Ok(out)
    }

    /// Runs until `Halt` or `max_steps`, returning the number of
    /// instructions executed. Commits every store immediately
    /// (pure-functional mode, no timing model attached).
    ///
    /// # Errors
    /// Propagates any [`ExecError`] from `step`.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, ExecError> {
        let mut n = 0;
        while !self.halted && n < max_steps {
            let out = self.step()?;
            if let Some(m) = out.mem {
                if m.is_store {
                    self.mem.commit_store(out.seq);
                }
            }
            n += 1;
        }
        Ok(n)
    }

    /// Serializes the architectural state — registers, PC, sequence
    /// counter, halt flag, data memory — as snapshot fields (no
    /// version header; composed into larger snapshots by the core).
    ///
    /// The program itself is not serialized: it is immutable and
    /// identified by the run spec, so the decoder takes it as input.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        for &r in &self.regs {
            e.u64(r);
        }
        for &f in &self.fregs {
            e.u64(f);
        }
        e.u64(self.pc);
        e.u64(self.next_seq);
        e.bool(self.halted);
        self.mem.snapshot_encode(e);
    }

    /// Reconstructs a machine serialized by
    /// [`Machine::snapshot_encode`] over `program`.
    ///
    /// # Errors
    /// Typed [`SnapError`] on truncated or invalid input.
    pub fn snapshot_decode(program: Program, d: &mut Dec<'_>) -> Result<Machine, SnapError> {
        let mut regs = [0u64; NUM_INT_REGS];
        for r in &mut regs {
            *r = d.u64()?;
        }
        if regs[0] != 0 {
            return Err(SnapError::Corrupt("x0 not zero"));
        }
        let mut fregs = [0u64; NUM_FP_REGS];
        for f in &mut fregs {
            *f = d.u64()?;
        }
        let pc = d.u64()?;
        let next_seq = d.u64()?;
        if next_seq == 0 {
            return Err(SnapError::Corrupt("sequence counter"));
        }
        let halted = d.bool()?;
        let mem = SpecMemory::snapshot_decode(d)?;
        Ok(Machine {
            regs,
            fregs,
            pc,
            mem,
            program,
            next_seq,
            halted,
        })
    }

    /// A standalone architectural snapshot: version header plus
    /// [`Machine::snapshot_encode`] fields.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        crate::snap::write_version(&mut e);
        self.snapshot_encode(&mut e);
        e.finish()
    }

    /// Restores a machine from [`Machine::snapshot`] bytes.
    ///
    /// # Errors
    /// Typed [`SnapError`] on version mismatch or invalid input.
    pub fn restore(program: Program, bytes: &[u8]) -> Result<Machine, SnapError> {
        let mut d = Dec::new(bytes);
        crate::snap::read_version(&mut d)?;
        let m = Machine::snapshot_decode(program, &mut d)?;
        d.finish()?;
        Ok(m)
    }
}

impl StepOut {
    /// Serializes everything but the instruction itself (re-fetched
    /// from the program at decode, keyed by `pc`).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.seq);
        e.u64(self.pc);
        e.u64(self.next_pc);
        e.bool(self.taken);
        match self.mem {
            None => e.u8(0),
            Some(m) => {
                e.u8(1);
                e.bool(m.is_store);
                e.u64(m.addr);
                e.u64(m.size);
                e.u64(m.value);
            }
        }
        match self.wrote {
            None => e.u8(0),
            Some((RegRef::Int(r), v)) => {
                e.u8(1);
                e.u8(r.num());
                e.u64(v);
            }
            Some((RegRef::Fp(f), v)) => {
                e.u8(2);
                e.u8(f.num());
                e.u64(v);
            }
        }
        e.bool(self.halted);
    }

    /// Reconstructs a record serialized by
    /// [`StepOut::snapshot_encode`], re-fetching the instruction from
    /// `program`.
    ///
    /// # Errors
    /// Typed [`SnapError`] on truncated input, a PC outside the
    /// program, or an out-of-range register number.
    pub fn snapshot_decode(program: &Program, d: &mut Dec<'_>) -> Result<StepOut, SnapError> {
        let seq = d.u64()?;
        let pc = d.u64()?;
        let inst = program
            .fetch(pc)
            .map_err(|_| SnapError::Corrupt("step pc outside program"))?;
        let next_pc = d.u64()?;
        let taken = d.bool()?;
        let mem = match d.u8()? {
            0 => None,
            1 => {
                let m = MemOp {
                    is_store: d.bool()?,
                    addr: d.u64()?,
                    size: d.u64()?,
                    value: d.u64()?,
                };
                if !matches!(m.size, 1 | 2 | 4 | 8) {
                    return Err(SnapError::Corrupt("mem op size"));
                }
                Some(m)
            }
            _ => return Err(SnapError::Corrupt("mem op tag")),
        };
        let wrote = match d.u8()? {
            0 => None,
            1 => {
                let n = d.u8()?;
                if n as usize >= NUM_INT_REGS {
                    return Err(SnapError::Corrupt("int register number"));
                }
                Some((RegRef::Int(Reg::new(n)), d.u64()?))
            }
            2 => {
                let n = d.u8()?;
                if n as usize >= NUM_FP_REGS {
                    return Err(SnapError::Corrupt("fp register number"));
                }
                Some((RegRef::Fp(FReg::new(n)), d.u64()?))
            }
            _ => return Err(SnapError::Corrupt("dest write tag")),
        };
        let halted = d.bool()?;
        Ok(StepOut {
            seq,
            pc,
            inst,
            next_pc,
            taken,
            mem,
            wrote,
            halted,
        })
    }
}

fn wrote_int(rd: Reg, v: u64) -> Option<(RegRef, u64)> {
    if rd.is_zero() {
        None
    } else {
        Some((rd.into(), v))
    }
}

pub(crate) fn extend(raw: u64, width: MemWidth, signed: bool) -> u64 {
    if !signed {
        return raw;
    }
    match width {
        MemWidth::B1 => raw as u8 as i8 as i64 as u64,
        MemWidth::B2 => raw as u16 as i16 as i64 as u64,
        MemWidth::B4 => raw as u32 as i32 as i64 as u64,
        MemWidth::B8 => raw,
    }
}

pub(crate) fn alu(op: AluOp, a: u64, b: u64) -> u64 {
    op.eval(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::names::*;

    fn machine(f: impl FnOnce(&mut Asm)) -> Machine {
        let mut a = Asm::new(0x1000);
        f(&mut a);
        Machine::new(a.finish().unwrap(), SpecMemory::new())
    }

    #[test]
    fn arithmetic_loop_computes_sum() {
        // sum 1..=10
        let mut m = machine(|a| {
            let top = a.label();
            a.li(A0, 0);
            a.li(A1, 10);
            a.bind(top).unwrap();
            a.add(A0, A0, A1);
            a.addi(A1, A1, -1);
            a.bne(A1, X0, top);
            a.halt();
        });
        m.run(1000).unwrap();
        assert_eq!(m.reg(A0), 55);
        assert!(m.halted());
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let mut m = machine(|a| {
            a.li(A0, 0x8000);
            a.li(A1, -42);
            a.sd(A1, A0, 0);
            a.ld(A2, A0, 0);
            a.sw(A1, A0, 8);
            a.lw(A3, A0, 8); // sign-extended
            a.lwu(A4, A0, 8); // zero-extended
            a.halt();
        });
        m.run(1000).unwrap();
        assert_eq!(m.reg(A2) as i64, -42);
        assert_eq!(m.reg(A3) as i64, -42);
        assert_eq!(m.reg(A4), 0xFFFF_FFD6);
    }

    #[test]
    fn branch_taken_and_not_taken_reported() {
        let mut m = machine(|a| {
            let skip = a.label();
            a.li(A0, 1);
            a.beq(A0, X0, skip); // not taken
            a.bne(A0, X0, skip); // taken
            a.nop(); // skipped
            a.bind(skip).unwrap();
            a.halt();
        });
        let _li = m.step().unwrap();
        let beq = m.step().unwrap();
        assert!(!beq.taken);
        assert_eq!(beq.next_pc, beq.pc + 4);
        let bne = m.step().unwrap();
        assert!(bne.taken);
        assert_eq!(bne.next_pc, 0x1010);
    }

    #[test]
    fn call_and_return() {
        let mut m = machine(|a| {
            let func = a.label();
            a.call(func);
            a.halt();
            a.bind(func).unwrap();
            a.li(A0, 99);
            a.ret();
        });
        m.run(100).unwrap();
        assert_eq!(m.reg(A0), 99);
        assert!(m.halted());
    }

    #[test]
    fn step_records_seq_and_dest_values() {
        let mut m = machine(|a| {
            a.li(A0, 7);
            a.addi(A1, A0, 3);
            a.halt();
        });
        let s1 = m.step().unwrap();
        assert_eq!(s1.seq, 1);
        assert_eq!(s1.wrote, Some((A0.into(), 7)));
        let s2 = m.step().unwrap();
        assert_eq!(s2.seq, 2);
        assert_eq!(s2.wrote, Some((A1.into(), 10)));
    }

    #[test]
    fn stores_stay_speculative_until_committed() {
        let mut m = machine(|a| {
            a.li(A0, 0x9000);
            a.li(A1, 5);
            a.sd(A1, A0, 0);
            a.ld(A2, A0, 0);
            a.halt();
        });
        m.step().unwrap();
        m.step().unwrap();
        let st = m.step().unwrap();
        assert!(st.mem.unwrap().is_store);
        // Committed view does not see it yet; spec view does.
        assert_eq!(m.mem().read_committed(0x9000, 8), 0);
        let ld = m.step().unwrap();
        assert_eq!(ld.mem.unwrap().value, 5);
        m.mem_mut().commit_store(st.seq);
        assert_eq!(m.mem().read_committed(0x9000, 8), 5);
    }

    #[test]
    fn riscv_division_semantics() {
        assert_eq!(alu(AluOp::Div, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(
            alu(AluOp::Div, i64::MIN as u64, (-1i64) as u64),
            i64::MIN as u64
        );
        assert_eq!(alu(AluOp::Rem, i64::MIN as u64, (-1i64) as u64), 0);
        assert_eq!(alu(AluOp::Divu, 7, 0), u64::MAX);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
    }

    #[test]
    fn fp_pipeline() {
        let mut m = machine(|a| {
            a.li(A0, 0x8000);
            a.li(A1, 2.5f64.to_bits() as i64);
            a.sd(A1, A0, 0);
            a.fld(FT0, A0, 0);
            a.fadd(FT1, FT0, FT0);
            a.fmul(FT2, FT1, FT0);
            a.fsd(FT2, A0, 8);
            a.halt();
        });
        m.run(100).unwrap();
        let bits = m.mem().read_committed(0x8008, 8);
        assert_eq!(f64::from_bits(bits), 12.5);
    }

    #[test]
    fn halt_stops_stepping() {
        let mut m = machine(|a| {
            a.halt();
        });
        let out = m.step().unwrap();
        assert!(out.halted);
        assert_eq!(m.step().unwrap_err(), ExecError::Halted);
    }

    #[test]
    fn x0_is_immutable() {
        let mut m = machine(|a| {
            a.li(X0, 42);
            a.addi(A0, X0, 1);
            a.halt();
        });
        m.run(10).unwrap();
        assert_eq!(m.reg(X0), 0);
        assert_eq!(m.reg(A0), 1);
    }

    #[test]
    fn bad_pc_is_reported() {
        let mut m = machine(|a| {
            a.nop();
        });
        m.step().unwrap();
        assert!(matches!(m.step().unwrap_err(), ExecError::Program(_)));
    }
}
