//! Architectural register names for the PFM RISC-V-like ISA.
//!
//! The ISA has 32 integer registers (`x0`..`x31`, with `x0` hardwired to
//! zero) and 32 floating-point registers (`f0`..`f31`). For renaming
//! purposes the two files are folded into a single 64-entry architectural
//! register space via [`RegRef::index`].

use core::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: usize = 32;
/// Total architectural register-space size (int + fp) used by rename.
pub const NUM_ARCH_REGS: usize = NUM_INT_REGS + NUM_FP_REGS;

/// An integer architectural register (`x0`..`x31`).
///
/// `x0` always reads as zero and writes to it are discarded.
///
/// ```
/// use pfm_isa::reg::Reg;
/// let a0 = Reg::new(10);
/// assert_eq!(a0.num(), 10);
/// assert!(Reg::X0.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const X0: Reg = Reg(0);
    /// Return address register (`x1` / `ra`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer (`x2` / `sp`).
    pub const SP: Reg = Reg(2);

    /// Creates a register from its number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub fn new(n: u8) -> Reg {
        assert!(
            (n as usize) < NUM_INT_REGS,
            "integer register out of range: {n}"
        );
        Reg(n)
    }

    /// The register number (0..32).
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired zero register `x0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A floating-point architectural register (`f0`..`f31`).
///
/// ```
/// use pfm_isa::reg::FReg;
/// let ft0 = FReg::new(0);
/// assert_eq!(ft0.num(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FReg(u8);

impl FReg {
    /// Creates a floating-point register from its number.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub fn new(n: u8) -> FReg {
        assert!((n as usize) < NUM_FP_REGS, "fp register out of range: {n}");
        FReg(n)
    }

    /// The register number (0..32).
    #[inline]
    pub fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A reference into the unified architectural register space.
///
/// The out-of-order core renames integer and floating-point registers out
/// of one physical register file, so both are mapped into a flat
/// 64-entry space: integer register `xN` is index `N` and floating-point
/// register `fN` is index `32 + N`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegRef {
    /// An integer register.
    Int(Reg),
    /// A floating-point register.
    Fp(FReg),
}

impl RegRef {
    /// Flat index into the unified 64-entry architectural register space.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RegRef::Int(r) => r.num() as usize,
            RegRef::Fp(f) => NUM_INT_REGS + f.num() as usize,
        }
    }

    /// Whether this reference is the hardwired integer zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        matches!(self, RegRef::Int(r) if r.is_zero())
    }
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Int(r) => write!(f, "{r}"),
            RegRef::Fp(r) => write!(f, "{r}"),
        }
    }
}

impl From<Reg> for RegRef {
    fn from(r: Reg) -> RegRef {
        RegRef::Int(r)
    }
}

impl From<FReg> for RegRef {
    fn from(r: FReg) -> RegRef {
        RegRef::Fp(r)
    }
}

/// Conventional ABI-style names for the integer registers, for use when
/// hand-writing kernels.
pub mod names {
    use super::{FReg, Reg};

    /// Hardwired zero.
    pub const X0: Reg = Reg::X0;
    /// Return address.
    pub const RA: Reg = Reg::RA;
    /// Stack pointer.
    pub const SP: Reg = Reg::SP;
    /// Global pointer.
    pub const GP: Reg = Reg(3);
    /// Thread pointer.
    pub const TP: Reg = Reg(4);
    /// Temporary 0.
    pub const T0: Reg = Reg(5);
    /// Temporary 1.
    pub const T1: Reg = Reg(6);
    /// Temporary 2.
    pub const T2: Reg = Reg(7);
    /// Saved register 0 / frame pointer.
    pub const S0: Reg = Reg(8);
    /// Saved register 1.
    pub const S1: Reg = Reg(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg(11);
    /// Argument 2.
    pub const A2: Reg = Reg(12);
    /// Argument 3.
    pub const A3: Reg = Reg(13);
    /// Argument 4.
    pub const A4: Reg = Reg(14);
    /// Argument 5.
    pub const A5: Reg = Reg(15);
    /// Argument 6.
    pub const A6: Reg = Reg(16);
    /// Argument 7.
    pub const A7: Reg = Reg(17);
    /// Saved register 2.
    pub const S2: Reg = Reg(18);
    /// Saved register 3.
    pub const S3: Reg = Reg(19);
    /// Saved register 4.
    pub const S4: Reg = Reg(20);
    /// Saved register 5.
    pub const S5: Reg = Reg(21);
    /// Saved register 6.
    pub const S6: Reg = Reg(22);
    /// Saved register 7.
    pub const S7: Reg = Reg(23);
    /// Saved register 8.
    pub const S8: Reg = Reg(24);
    /// Saved register 9.
    pub const S9: Reg = Reg(25);
    /// Saved register 10.
    pub const S10: Reg = Reg(26);
    /// Saved register 11.
    pub const S11: Reg = Reg(27);
    /// Temporary 3.
    pub const T3: Reg = Reg(28);
    /// Temporary 4.
    pub const T4: Reg = Reg(29);
    /// Temporary 5.
    pub const T5: Reg = Reg(30);
    /// Temporary 6.
    pub const T6: Reg = Reg(31);

    /// FP temporary 0.
    pub const FT0: FReg = FReg(0);
    /// FP temporary 1.
    pub const FT1: FReg = FReg(1);
    /// FP temporary 2.
    pub const FT2: FReg = FReg(2);
    /// FP temporary 3.
    pub const FT3: FReg = FReg(3);
    /// FP temporary 4.
    pub const FT4: FReg = FReg(4);
    /// FP temporary 5.
    pub const FT5: FReg = FReg(5);
    /// FP temporary 6.
    pub const FT6: FReg = FReg(6);
    /// FP temporary 7.
    pub const FT7: FReg = FReg(7);
    /// FP argument 0.
    pub const FA0: FReg = FReg(10);
    /// FP argument 1.
    pub const FA1: FReg = FReg(11);
    /// FP argument 2.
    pub const FA2: FReg = FReg(12);
    /// FP argument 3.
    pub const FA3: FReg = FReg(13);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_basics() {
        assert!(Reg::X0.is_zero());
        assert!(!Reg::new(5).is_zero());
        assert_eq!(Reg::new(31).num(), 31);
        assert_eq!(format!("{}", Reg::new(7)), "x7");
    }

    #[test]
    #[should_panic]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(32);
    }

    #[test]
    #[should_panic]
    fn freg_out_of_range_panics() {
        let _ = FReg::new(32);
    }

    #[test]
    fn regref_index_is_flat_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u8 {
            assert!(seen.insert(RegRef::Int(Reg::new(i)).index()));
        }
        for i in 0..32u8 {
            assert!(seen.insert(RegRef::Fp(FReg::new(i)).index()));
        }
        assert_eq!(seen.len(), NUM_ARCH_REGS);
        assert_eq!(RegRef::Int(Reg::new(3)).index(), 3);
        assert_eq!(RegRef::Fp(FReg::new(3)).index(), 35);
    }

    #[test]
    fn regref_zero_detection() {
        assert!(RegRef::Int(Reg::X0).is_zero());
        assert!(!RegRef::Fp(FReg::new(0)).is_zero());
        assert!(!RegRef::Int(Reg::new(1)).is_zero());
    }

    #[test]
    fn regref_from_conversions() {
        let r: RegRef = Reg::new(4).into();
        assert_eq!(r.index(), 4);
        let f: RegRef = FReg::new(4).into();
        assert_eq!(f.index(), 36);
    }
}
