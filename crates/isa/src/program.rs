//! Program representation: a contiguous block of instructions in the PC
//! address space plus symbolic metadata.

use crate::inst::{Inst, INST_BYTES};
use std::collections::BTreeMap;

/// Errors produced while building or querying a [`Program`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// The program counter does not map to an instruction slot.
    BadPc(u64),
    /// A named symbol was not defined.
    UnknownSymbol(String),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::BadPc(pc) => write!(f, "pc {pc:#x} is outside the program"),
            ProgramError::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// An assembled program.
///
/// Instructions live at consecutive addresses starting at
/// [`Program::base`], each occupying [`INST_BYTES`] bytes.
#[derive(Clone, Debug, Default)]
pub struct Program {
    base: u64,
    insts: Vec<Inst>,
    symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Creates a program from raw parts.
    pub fn new(base: u64, insts: Vec<Inst>, symbols: BTreeMap<String, u64>) -> Program {
        Program {
            base,
            insts,
            symbols,
        }
    }

    /// First instruction address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.insts.len() as u64 * INST_BYTES
    }

    /// Fetches the instruction at `pc`.
    ///
    /// # Errors
    /// Returns [`ProgramError::BadPc`] if `pc` is unaligned or outside
    /// the program.
    pub fn fetch(&self, pc: u64) -> Result<Inst, ProgramError> {
        if pc < self.base || pc >= self.end() || !(pc - self.base).is_multiple_of(INST_BYTES) {
            return Err(ProgramError::BadPc(pc));
        }
        Ok(self.insts[((pc - self.base) / INST_BYTES) as usize])
    }

    /// All instructions, in address order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Looks up a named symbol (label address recorded by the
    /// assembler).
    ///
    /// # Errors
    /// Returns [`ProgramError::UnknownSymbol`] if the name was never
    /// exported.
    pub fn symbol(&self, name: &str) -> Result<u64, ProgramError> {
        self.symbols
            .get(name)
            .copied()
            .ok_or_else(|| ProgramError::UnknownSymbol(name.to_string()))
    }

    /// Like [`Program::symbol`], panicking when the symbol is missing.
    ///
    /// Kernel builders resolving symbols they just exported use this;
    /// absence there is a builder bug, not a runtime condition.
    ///
    /// # Panics
    /// Panics if `name` was never exported.
    pub fn require_symbol(&self, name: &str) -> u64 {
        match self.symbol(name) {
            Ok(v) => v,
            Err(e) => panic!("Program::require_symbol: {e}"),
        }
    }

    /// All exported symbols, in name order.
    pub fn symbols(&self) -> &BTreeMap<String, u64> {
        &self.symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn prog() -> Program {
        let mut syms = BTreeMap::new();
        syms.insert("start".to_string(), 0x1000);
        Program::new(0x1000, vec![Inst::Nop, Inst::Halt], syms)
    }

    #[test]
    fn fetch_in_range() {
        let p = prog();
        assert_eq!(p.fetch(0x1000).unwrap(), Inst::Nop);
        assert_eq!(p.fetch(0x1004).unwrap(), Inst::Halt);
        assert_eq!(p.len(), 2);
        assert_eq!(p.end(), 0x1008);
    }

    #[test]
    fn fetch_out_of_range_or_unaligned_errors() {
        let p = prog();
        assert_eq!(p.fetch(0xFFC), Err(ProgramError::BadPc(0xFFC)));
        assert_eq!(p.fetch(0x1008), Err(ProgramError::BadPc(0x1008)));
        assert_eq!(p.fetch(0x1002), Err(ProgramError::BadPc(0x1002)));
    }

    #[test]
    fn symbols_lookup() {
        let p = prog();
        assert_eq!(p.symbol("start").unwrap(), 0x1000);
        assert!(p.symbol("missing").is_err());
        assert!(!format!("{}", p.symbol("missing").unwrap_err()).is_empty());
    }
}
