//! Property-based tests for the ISA substrate: memory semantics, ALU
//! semantics against a Rust reference, the speculative-overlay
//! invariants, and assembler label resolution.

use pfm_isa::asm::Asm;
use pfm_isa::inst::{AluOp, Inst};
use pfm_isa::machine::Machine;
use pfm_isa::mem::{SparseMem, SpecMemory};
use pfm_isa::reg::names::*;
use proptest::prelude::*;

fn access_size() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(2), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writes then reads back through SparseMem are exact (modulo size
    /// truncation), at arbitrary (possibly page-crossing) addresses.
    #[test]
    fn sparse_mem_roundtrip(addr in 0u64..0x10_0000, size in access_size(), value: u64) {
        let mut m = SparseMem::new();
        m.write(addr, size, value);
        let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
        prop_assert_eq!(m.read(addr, size), value & mask);
    }

    /// Disjoint writes never interfere.
    #[test]
    fn sparse_mem_disjoint_writes(a in 0u64..0x1000, v1: u64, v2: u64) {
        let b = a + 8;
        let mut m = SparseMem::new();
        m.write(a, 8, v1);
        m.write(b, 8, v2);
        prop_assert_eq!(m.read(a, 8), v1);
        prop_assert_eq!(m.read(b, 8), v2);
    }

    /// The speculative overlay equals a naive shadow model under any
    /// program-order sequence of stores, commits (oldest-first) and a
    /// final squash.
    #[test]
    fn spec_memory_matches_shadow_model(
        stores in prop::collection::vec((0u64..256, access_size(), any::<u64>()), 1..20),
        commit_count in 0usize..20,
        probe in 0u64..256,
    ) {
        let mut spec = SpecMemory::new();
        let mut shadow_committed = vec![0u8; 512];
        let mut shadow_spec = vec![0u8; 512];

        let mut seqs = Vec::new();
        for (i, &(addr, size, value)) in stores.iter().enumerate() {
            let seq = (i + 1) as u64;
            spec.write_spec(seq, addr, size, value);
            seqs.push((seq, addr, size, value));
            for b in 0..size {
                shadow_spec[(addr + b) as usize] = (value >> (8 * b)) as u8;
            }
        }
        let commits = commit_count.min(seqs.len());
        for &(seq, addr, size, value) in seqs.iter().take(commits) {
            spec.commit_store(seq);
            for b in 0..size {
                shadow_committed[(addr + b) as usize] = (value >> (8 * b)) as u8;
            }
        }
        // Spec view sees every store; committed view only the commits.
        prop_assert_eq!(spec.read_spec(probe, 1), shadow_spec[probe as usize] as u64);
        prop_assert_eq!(spec.read_committed(probe, 1), shadow_committed[probe as usize] as u64);

        // Squash everything uncommitted: the spec view collapses onto
        // the committed view.
        let boundary = seqs.get(commits.wrapping_sub(1)).map(|s| s.0).unwrap_or(0);
        spec.squash_after(boundary);
        for a in 0..256u64 {
            prop_assert_eq!(spec.read_spec(a, 1), spec.read_committed(a, 1));
        }
    }

    /// Machine ALU results equal a direct Rust evaluation.
    #[test]
    fn alu_matches_reference(a: i64, b: i64) {
        let cases: Vec<(AluOp, u64)> = vec![
            (AluOp::Add, (a as u64).wrapping_add(b as u64)),
            (AluOp::Sub, (a as u64).wrapping_sub(b as u64)),
            (AluOp::Xor, (a ^ b) as u64),
            (AluOp::And, (a & b) as u64),
            (AluOp::Or, (a | b) as u64),
            (AluOp::Slt, ((a < b) as u64)),
            (AluOp::Sltu, (((a as u64) < (b as u64)) as u64)),
            (AluOp::Mul, (a as u64).wrapping_mul(b as u64)),
        ];
        for (op, expect) in cases {
            let mut asm = Asm::new(0x1000);
            asm.li(A0, a);
            asm.li(A1, b);
            asm.push(Inst::Alu { op, rd: A2, rs1: A0, rs2: A1 });
            asm.halt();
            let mut m = Machine::new(asm.finish().unwrap(), SpecMemory::new());
            m.run(10).unwrap();
            prop_assert_eq!(m.reg(A2), expect, "op {:?}", op);
        }
    }

    /// Shift semantics use the low 6 bits of the shift amount.
    #[test]
    fn shift_amount_is_mod_64(v: u64, sh in 0i64..256) {
        let mut asm = Asm::new(0x1000);
        asm.li(A0, v as i64);
        asm.li(A1, sh);
        asm.sll(A2, A0, A1);
        asm.srl(A3, A0, A1);
        asm.halt();
        let mut m = Machine::new(asm.finish().unwrap(), SpecMemory::new());
        m.run(10).unwrap();
        prop_assert_eq!(m.reg(A2), v.wrapping_shl((sh & 63) as u32));
        prop_assert_eq!(m.reg(A3), v.wrapping_shr((sh & 63) as u32));
    }

    /// Loads after stores through memory reproduce register contents
    /// for every access size, with correct sign extension.
    #[test]
    fn store_load_roundtrip_with_sign_extension(v: i64, size_idx in 0usize..4) {
        let mut asm = Asm::new(0x1000);
        asm.li(A0, 0x8000);
        asm.li(A1, v);
        match size_idx {
            0 => { asm.sb(A1, A0, 0); asm.lb(A2, A0, 0); }
            1 => { asm.sh(A1, A0, 0); asm.lh(A2, A0, 0); }
            2 => { asm.sw(A1, A0, 0); asm.lw(A2, A0, 0); }
            _ => { asm.sd(A1, A0, 0); asm.ld(A2, A0, 0); }
        }
        asm.halt();
        let mut m = Machine::new(asm.finish().unwrap(), SpecMemory::new());
        m.run(10).unwrap();
        let expect = match size_idx {
            0 => v as i8 as i64 as u64,
            1 => v as i16 as i64 as u64,
            2 => v as i32 as i64 as u64,
            _ => v as u64,
        };
        prop_assert_eq!(m.reg(A2), expect);
    }

    /// A chain of forward and backward jumps always resolves to the
    /// right instruction: a program that increments A0 exactly `n`
    /// times via a loop computes n.
    #[test]
    fn label_resolution_loops(n in 1i64..200) {
        let mut asm = Asm::new(0x4000);
        let top = asm.label();
        asm.li(A0, 0);
        asm.li(A1, n);
        asm.bind(top).unwrap();
        asm.addi(A0, A0, 1);
        asm.blt(A0, A1, top);
        asm.halt();
        let mut m = Machine::new(asm.finish().unwrap(), SpecMemory::new());
        m.run(10_000).unwrap();
        prop_assert_eq!(m.reg(A0) as i64, n);
    }

    /// Functional execution is deterministic: two machines over the
    /// same program and memory retire identical state.
    #[test]
    fn machine_determinism(vals in prop::collection::vec(any::<i64>(), 1..8)) {
        let build = || {
            let mut asm = Asm::new(0x1000);
            asm.li(A0, 0x9000);
            for (i, &v) in vals.iter().enumerate() {
                asm.li(A1, v);
                asm.sd(A1, A0, (i * 8) as i64);
                asm.ld(A2, A0, (i * 8) as i64);
                asm.add(A3, A3, A2);
            }
            asm.halt();
            let mut m = Machine::new(asm.finish().unwrap(), SpecMemory::new());
            m.run(100_000).unwrap();
            m
        };
        let m1 = build();
        let m2 = build();
        prop_assert_eq!(m1.reg(A3), m2.reg(A3));
    }
}
