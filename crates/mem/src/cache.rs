//! A set-associative cache model with true-LRU replacement.
//!
//! The timing simulator uses an "atomic lookahead" discipline: tag state
//! is mutated at access time and the computed latency tells the core
//! when the data arrives. This keeps the model single-pass while still
//! capturing hit/miss behaviour, eviction and prefetch pollution.

use pfm_isa::snap::{Dec, Enc, SnapError};

/// Base-2 logarithm of the cache line size (64-byte lines).
pub const LINE_SHIFT: u64 = 6;
/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Static geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Load-to-use latency in cycles for a hit at this level.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero ways, capacity not a
    /// multiple of `ways * LINE_BYTES`, or a non-power-of-two set
    /// count).
    pub fn new(size_bytes: u64, ways: usize, latency: u64) -> CacheConfig {
        assert!(ways > 0, "cache must have at least one way");
        assert_eq!(
            size_bytes % (ways as u64 * LINE_BYTES),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = size_bytes / (ways as u64 * LINE_BYTES);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            ways,
            latency,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * LINE_BYTES)
    }

    /// Canonical content key, e.g. `32k8w3` (capacity, ways, latency).
    pub fn key(&self) -> String {
        let cap = if self.size_bytes.is_multiple_of(1024) {
            format!("{}k", self.size_bytes / 1024)
        } else {
            format!("{}b", self.size_bytes)
        };
        format!("{cap}{}w{}", self.ways, self.latency)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for true LRU.
    lru: u64,
    /// Whether the line was filled by a prefetch and never demanded.
    prefetched: bool,
}

/// Hit/miss statistics for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines filled due to prefetches.
    pub prefetch_fills: u64,
    /// Prefetched lines that were later hit by a demand access.
    pub prefetch_useful: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Serializes the counters.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.hits);
        e.u64(self.misses);
        e.u64(self.prefetch_fills);
        e.u64(self.prefetch_useful);
        e.u64(self.writebacks);
    }

    /// Decodes counters serialized by [`CacheStats::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<CacheStats, SnapError> {
        Ok(CacheStats {
            hits: d.u64()?,
            misses: d.u64()?,
            prefetch_fills: d.u64()?,
            prefetch_useful: d.u64()?,
            writebacks: d.u64()?,
        })
    }

    /// Demand miss ratio in [0, 1]; zero when no accesses occurred.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A single set-associative, write-back, write-allocate cache level.
///
/// ```
/// use pfm_mem::cache::{Cache, CacheConfig};
/// let mut c = Cache::new(CacheConfig::new(32 * 1024, 8, 3));
/// assert!(!c.access(0x1000, false)); // cold miss
/// c.fill(0x1000, false);
/// assert!(c.access(0x1000, false)); // now hits
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// `sets() - 1`, precomputed: set selection is on the per-access
    /// hot path and `sets()` costs a 64-bit division.
    set_mask: u64,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Cache {
        let n = (config.sets() as usize) * config.ways;
        Cache {
            config,
            set_mask: config.sets() - 1,
            lines: vec![Line::default(); n],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, usize) {
        let set = ((addr >> LINE_SHIFT) & self.set_mask) as usize;
        let start = set * self.config.ways;
        (start, start + self.config.ways)
    }

    /// Demand access. Returns whether the line is present; updates LRU
    /// and dirty state on hit, and records statistics.
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        let tag = addr >> LINE_SHIFT;
        let (lo, hi) = self.set_range(addr);
        self.stamp += 1;
        for line in &mut self.lines[lo..hi] {
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                line.dirty |= is_write;
                if line.prefetched {
                    line.prefetched = false;
                    self.stats.prefetch_useful += 1;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Non-mutating presence probe (no LRU update, no stats).
    #[inline]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = addr >> LINE_SHIFT;
        let (lo, hi) = self.set_range(addr);
        self.lines[lo..hi].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Fills the line containing `addr`, evicting the LRU victim.
    /// Returns the evicted line's base address if a dirty line was
    /// displaced (i.e., a writeback is generated).
    pub fn fill(&mut self, addr: u64, from_prefetch: bool) -> Option<u64> {
        let tag = addr >> LINE_SHIFT;
        let (lo, hi) = self.set_range(addr);
        self.stamp += 1;
        // Already present (e.g., duplicate fill): refresh only.
        for line in &mut self.lines[lo..hi] {
            if line.valid && line.tag == tag {
                return None;
            }
        }
        if from_prefetch {
            self.stats.prefetch_fills += 1;
        }
        // Choose invalid way or LRU victim.
        let set = &mut self.lines[lo..hi];
        let victim = match set.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => {
                let mut best = 0;
                for (i, l) in set.iter().enumerate() {
                    if l.lru < set[best].lru {
                        best = i;
                    }
                }
                best
            }
        };
        let evicted = if set[victim].valid && set[victim].dirty {
            self.stats.writebacks += 1;
            let set_idx = (addr >> LINE_SHIFT) & self.set_mask;
            Some(((set[victim].tag & !self.set_mask) | set_idx) << LINE_SHIFT)
        } else {
            None
        };
        set[victim] = Line {
            tag,
            valid: true,
            dirty: false,
            lru: self.stamp,
            prefetched: from_prefetch,
        };
        evicted
    }

    /// Serializes the warm tag/LRU state and statistics. The geometry
    /// is not serialized: it comes from the config passed to
    /// [`Cache::snapshot_decode`].
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.lines.len());
        for l in &self.lines {
            e.u64(l.tag);
            e.bool(l.valid);
            e.bool(l.dirty);
            e.u64(l.lru);
            e.bool(l.prefetched);
        }
        e.u64(self.stamp);
        self.stats.snapshot_encode(e);
    }

    /// Decodes a cache serialized by [`Cache::snapshot_encode`] into a
    /// cache with geometry `config`.
    pub fn snapshot_decode(config: CacheConfig, d: &mut Dec<'_>) -> Result<Cache, SnapError> {
        let mut c = Cache::new(config);
        if d.usize()? != c.lines.len() {
            return Err(SnapError::Corrupt("cache line count"));
        }
        for l in &mut c.lines {
            *l = Line {
                tag: d.u64()?,
                valid: d.bool()?,
                dirty: d.bool()?,
                lru: d.u64()?,
                prefetched: d.bool()?,
            };
        }
        c.stamp = d.u64()?;
        c.stats = CacheStats::snapshot_decode(d)?;
        Ok(c)
    }

    /// Invalidates every line (used between experiment runs).
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B = 256B
        Cache::new(CacheConfig::new(256, 2, 3))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 * 1024, 8, 3);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic]
    fn non_pow2_sets_panics() {
        let _ = CacheConfig::new(3 * 64 * 2, 2, 1);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0x0, false));
        c.fill(0x0, false);
        assert!(c.access(0x0, false));
        assert!(c.access(0x3F, false)); // same line
        assert!(!c.access(0x40, false)); // next line, different set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines 0x000, 0x080, 0x100 (stride = sets*64 = 128).
        c.fill(0x000, false);
        c.fill(0x080, false);
        c.access(0x000, false); // make 0x080 the LRU
        c.fill(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0x000, false);
        c.access(0x000, true); // dirty it
        c.fill(0x080, false);
        let evicted = c.fill(0x100, false); // victim is LRU = 0x000 (dirty)
        assert_eq!(evicted, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn prefetch_usefulness_tracking() {
        let mut c = small();
        c.fill(0x000, true);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert_eq!(c.stats().prefetch_useful, 0);
        c.access(0x000, false);
        assert_eq!(c.stats().prefetch_useful, 1);
        // Second access does not double count.
        c.access(0x000, false);
        assert_eq!(c.stats().prefetch_useful, 1);
    }

    #[test]
    fn duplicate_fill_is_noop() {
        let mut c = small();
        c.fill(0x000, false);
        assert!(c.fill(0x000, false).is_none());
        assert!(c.probe(0x000));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small();
        c.fill(0x000, false);
        c.flush();
        assert!(!c.probe(0x000));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0x0, false);
        c.fill(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
