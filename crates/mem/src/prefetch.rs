//! Hardware prefetchers: the baseline core's next-N-line L1D prefetcher
//! and a simplified VLDP (Variable Length Delta Prefetcher, Shevgoor et
//! al., MICRO 2015) for L2/L3, per Table 1 of the paper.

use crate::cache::{line_of, LINE_BYTES};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// A prefetcher observes demand accesses and proposes line addresses to
/// fetch.
pub trait Prefetcher {
    /// Observes a demand access (`addr` is the byte address; `miss`
    /// indicates whether it missed at the level the prefetcher guards)
    /// and appends the line-aligned addresses to prefetch onto `out`.
    /// Taking an out-buffer keeps the per-miss hot path allocation-free
    /// — the hierarchy reuses one target buffer across all misses.
    fn observe_into(&mut self, addr: u64, miss: bool, out: &mut Vec<u64>);
    /// Human-readable name for stats output.
    fn name(&self) -> &'static str;
}

/// Next-N-line prefetcher: on a demand miss to line L, prefetch lines
/// L+1 .. L+N.
#[derive(Clone, Debug)]
pub struct NextNLine {
    n: u64,
    last_line: u64,
}

impl NextNLine {
    /// Creates a next-`n`-line prefetcher (the paper's L1D prefetcher
    /// uses `n = 2`).
    pub fn new(n: u64) -> NextNLine {
        NextNLine {
            n,
            last_line: u64::MAX,
        }
    }

    /// Serializes the last-trigger state. `n` is not serialized: it
    /// comes from the config passed to [`NextNLine::snapshot_decode`].
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.last_line);
    }

    /// Decodes state serialized by [`NextNLine::snapshot_encode`].
    pub fn snapshot_decode(n: u64, d: &mut Dec<'_>) -> Result<NextNLine, SnapError> {
        let mut p = NextNLine::new(n);
        p.last_line = d.u64()?;
        Ok(p)
    }
}

impl Prefetcher for NextNLine {
    fn observe_into(&mut self, addr: u64, miss: bool, out: &mut Vec<u64>) {
        let line = line_of(addr);
        if !miss || line == self.last_line {
            return;
        }
        self.last_line = line;
        out.extend((1..=self.n).map(|i| line.wrapping_add(i * LINE_BYTES)));
    }

    fn name(&self) -> &'static str {
        "next-n-line"
    }
}

const VLDP_PAGE_SHIFT: u64 = 12;
const VLDP_DHB_ENTRIES: usize = 16;
const VLDP_DPT_ENTRIES: usize = 64;
const VLDP_HISTORY: usize = 3;

#[derive(Clone, Copy, Debug, Default)]
struct DhbEntry {
    page: u64,
    valid: bool,
    last_block: i64,
    deltas: [i64; VLDP_HISTORY],
    num_deltas: usize,
    lru: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct DptEntry {
    key: u64,
    valid: bool,
    delta: i64,
    /// 2-bit accuracy counter; predictions are used when >= 1.
    conf: u8,
}

/// Simplified VLDP: per-page delta histories feed three delta
/// prediction tables keyed by the last 1, 2, or 3 deltas; the longest
/// matching history wins. Captures VLDP's headline ability to follow
/// complex multi-delta patterns, at the ~5.5 Kb budget the paper cites.
#[derive(Clone, Debug)]
pub struct Vldp {
    dhb: [DhbEntry; VLDP_DHB_ENTRIES],
    dpt: [[DptEntry; VLDP_DPT_ENTRIES]; VLDP_HISTORY],
    stamp: u64,
    degree: usize,
}

impl Default for Vldp {
    fn default() -> Vldp {
        Vldp::new(2)
    }
}

impl Vldp {
    /// Creates a VLDP issuing up to `degree` prefetches per trigger.
    pub fn new(degree: usize) -> Vldp {
        Vldp {
            dhb: [DhbEntry::default(); VLDP_DHB_ENTRIES],
            dpt: [[DptEntry::default(); VLDP_DPT_ENTRIES]; VLDP_HISTORY],
            stamp: 0,
            degree,
        }
    }

    /// Serializes the delta history buffer, prediction tables and LRU
    /// stamp.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.degree);
        for en in &self.dhb {
            e.u64(en.page);
            e.bool(en.valid);
            e.i64(en.last_block);
            for &dl in &en.deltas {
                e.i64(dl);
            }
            e.usize(en.num_deltas);
            e.u64(en.lru);
        }
        for table in &self.dpt {
            for en in table {
                e.u64(en.key);
                e.bool(en.valid);
                e.i64(en.delta);
                e.u8(en.conf);
            }
        }
        e.u64(self.stamp);
    }

    /// Decodes a prefetcher serialized by [`Vldp::snapshot_encode`].
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<Vldp, SnapError> {
        let degree = d.usize()?;
        let mut p = Vldp::new(degree);
        for en in &mut p.dhb {
            en.page = d.u64()?;
            en.valid = d.bool()?;
            en.last_block = d.i64()?;
            for dl in &mut en.deltas {
                *dl = d.i64()?;
            }
            let num = d.usize()?;
            if num > VLDP_HISTORY {
                return Err(SnapError::Corrupt("vldp history depth"));
            }
            en.num_deltas = num;
            en.lru = d.u64()?;
        }
        for table in &mut p.dpt {
            for en in table.iter_mut() {
                en.key = d.u64()?;
                en.valid = d.bool()?;
                en.delta = d.i64()?;
                let conf = d.u8()?;
                if conf > 3 {
                    return Err(SnapError::Corrupt("vldp confidence range"));
                }
                en.conf = conf;
            }
        }
        p.stamp = d.u64()?;
        Ok(p)
    }

    fn key_for(deltas: &[i64]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &d in deltas {
            h ^= d as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    fn dpt_update(&mut self, hist_len: usize, deltas: &[i64], actual: i64) {
        let key = Self::key_for(deltas);
        let idx = (key % VLDP_DPT_ENTRIES as u64) as usize;
        let e = &mut self.dpt[hist_len - 1][idx];
        if e.valid && e.key == key {
            if e.delta == actual {
                e.conf = (e.conf + 1).min(3);
            } else if e.conf > 0 {
                e.conf -= 1;
            } else {
                e.delta = actual;
                e.conf = 1;
            }
        } else {
            *e = DptEntry {
                key,
                valid: true,
                delta: actual,
                conf: 1,
            };
        }
    }

    fn dpt_predict(&self, deltas: &[i64]) -> Option<i64> {
        // Longest history first.
        for len in (1..=deltas.len().min(VLDP_HISTORY)).rev() {
            let hist = &deltas[deltas.len() - len..];
            let key = Self::key_for(hist);
            let idx = (key % VLDP_DPT_ENTRIES as u64) as usize;
            let e = &self.dpt[len - 1][idx];
            if e.valid && e.key == key && e.conf >= 1 {
                return Some(e.delta);
            }
        }
        None
    }
}

impl Prefetcher for Vldp {
    fn observe_into(&mut self, addr: u64, miss: bool, out: &mut Vec<u64>) {
        if !miss {
            return;
        }
        self.stamp += 1;
        let page = addr >> VLDP_PAGE_SHIFT;
        let block = (line_of(addr) >> crate::cache::LINE_SHIFT) as i64;

        // Find or allocate the page's DHB entry.
        let mut slot = None;
        for (i, e) in self.dhb.iter().enumerate() {
            if e.valid && e.page == page {
                slot = Some(i);
                break;
            }
        }
        let slot = match slot {
            Some(i) => i,
            None => {
                let mut victim = 0;
                for (i, e) in self.dhb.iter().enumerate() {
                    if !e.valid {
                        victim = i;
                        break;
                    }
                    if e.lru < self.dhb[victim].lru {
                        victim = i;
                    }
                }
                self.dhb[victim] = DhbEntry {
                    page,
                    valid: true,
                    last_block: block,
                    deltas: [0; VLDP_HISTORY],
                    num_deltas: 0,
                    lru: self.stamp,
                };
                // First touch of a page: nothing to predict from yet.
                return;
            }
        };

        let entry = self.dhb[slot];
        let delta = block - entry.last_block;
        if delta == 0 {
            self.dhb[slot].lru = self.stamp;
            return;
        }

        // Train: each history length that was available should have
        // predicted `delta`. (`entry` is a copy, so slicing its history
        // borrows nothing from `self`.)
        for len in 1..=entry.num_deltas.min(VLDP_HISTORY) {
            let hist = &entry.deltas[..entry.num_deltas][entry.num_deltas - len..];
            self.dpt_update(len, hist, delta);
        }

        // Shift the new delta into the history.
        let e = &mut self.dhb[slot];
        if e.num_deltas < VLDP_HISTORY {
            e.deltas[e.num_deltas] = delta;
            e.num_deltas += 1;
        } else {
            e.deltas.rotate_left(1);
            e.deltas[VLDP_HISTORY - 1] = delta;
        }
        e.last_block = block;
        e.lru = self.stamp;

        // Predict a chain of up to `degree` future blocks. The rolling
        // history lives in a fixed array — no per-miss allocation.
        let mut hist = self.dhb[slot].deltas;
        let mut hist_len = self.dhb[slot].num_deltas;
        let mut cur = block;
        for _ in 0..self.degree {
            let Some(d) = self.dpt_predict(&hist[..hist_len]) else {
                break;
            };
            cur += d;
            if cur < 0 {
                break;
            }
            out.push((cur as u64) << crate::cache::LINE_SHIFT);
            if hist_len == VLDP_HISTORY {
                hist.rotate_left(1);
                hist[VLDP_HISTORY - 1] = d;
            } else {
                hist[hist_len] = d;
                hist_len += 1;
            }
        }
    }

    fn name(&self) -> &'static str {
        "vldp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects one observation's proposals into a fresh Vec.
    fn observe(p: &mut impl Prefetcher, addr: u64, miss: bool) -> Vec<u64> {
        let mut out = Vec::new();
        p.observe_into(addr, miss, &mut out);
        out
    }

    #[test]
    fn next_n_line_prefetches_sequential_lines() {
        let mut p = NextNLine::new(2);
        let out = observe(&mut p, 0x1010, true);
        assert_eq!(out, vec![0x1040, 0x1080]);
    }

    #[test]
    fn next_n_line_ignores_hits_and_repeats() {
        let mut p = NextNLine::new(2);
        assert!(observe(&mut p, 0x1000, false).is_empty());
        assert_eq!(observe(&mut p, 0x1000, true).len(), 2);
        assert!(observe(&mut p, 0x1004, true).is_empty()); // same line again
    }

    #[test]
    fn observe_into_appends_without_clearing() {
        let mut p = NextNLine::new(1);
        let mut out = vec![0xdead];
        p.observe_into(0x1000, true, &mut out);
        assert_eq!(out, vec![0xdead, 0x1040]);
    }

    #[test]
    fn vldp_learns_constant_stride() {
        let mut p = Vldp::new(1);
        let stride = 2 * LINE_BYTES;
        let mut predicted = Vec::new();
        for i in 0..16u64 {
            predicted = observe(&mut p, 0x10_0000 + i * stride, true);
        }
        // After warmup it should predict the next strided line.
        assert_eq!(predicted, vec![line_of(0x10_0000 + 16 * stride)]);
    }

    #[test]
    fn vldp_learns_alternating_deltas() {
        // Pattern +1, +3, +1, +3 (in lines): VLDP's multi-delta history
        // disambiguates where a single-delta stride prefetcher cannot.
        let mut p = Vldp::new(1);
        let mut block = 0u64;
        let mut last_pred = Vec::new();
        for i in 0..40 {
            let delta = if i % 2 == 0 { 1 } else { 3 };
            block += delta;
            last_pred = observe(&mut p, block * LINE_BYTES, true);
        }
        // Last observed delta was +3 (i=39 odd), so next should be +1.
        assert_eq!(last_pred, vec![(block + 1) * LINE_BYTES]);
    }

    #[test]
    fn vldp_first_touch_is_silent() {
        let mut p = Vldp::new(2);
        assert!(observe(&mut p, 0x20_0000, true).is_empty());
    }

    #[test]
    fn vldp_ignores_hits() {
        let mut p = Vldp::new(2);
        observe(&mut p, 0x30_0000, true);
        assert!(observe(&mut p, 0x30_0040, false).is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NextNLine::new(1).name(), "next-n-line");
        assert_eq!(Vldp::new(1).name(), "vldp");
    }
}
