//! The full memory hierarchy of Table 1: L1I/L1D/L2/L3 + DRAM, with the
//! baseline next-2-line L1D prefetcher, a VLDP L2/L3 prefetcher, MSHRs
//! bounding MLP, and a data TLB.
//!
//! Timing discipline is "atomic lookahead": an access at cycle *t*
//! immediately updates tag/replacement state and returns the cycle
//! count until data arrives. In-flight misses are represented in the
//! MSHR file so overlapping accesses to the same line observe the
//! residual latency rather than a fresh miss — this is what lets the
//! PFM components' decoupled load engines express memory-level
//! parallelism, and what makes the Load Agent's missed-load-buffer
//! replay loop behave as in the paper.

use crate::cache::{line_of, Cache, CacheConfig};
use crate::mshr::MshrFile;
use crate::prefetch::{NextNLine, Prefetcher, Vldp};
use crate::tlb::Tlb;
use pfm_isa::snap::{Dec, Enc, SnapError};

/// Kind of memory access presented to the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand data load.
    Load,
    /// Demand data store (write-allocate).
    Store,
    /// Instruction fetch.
    Ifetch,
    /// Software/fabric-injected prefetch (fills, returns no data).
    Prefetch,
}

/// Level at which an access was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HitLevel {
    /// First-level cache (L1I or L1D).
    L1,
    /// Merged into an in-flight miss (residual latency).
    InFlight,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Dram,
}

/// Outcome of a hierarchy access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles from access until the data is usable.
    pub latency: u64,
    /// Where the data came from.
    pub level: HitLevel,
}

impl AccessOutcome {
    /// Whether this access behaved as an L1 hit (used by the Load Agent
    /// to decide hit-vs-replay for fabric loads).
    pub fn is_l1_hit(&self) -> bool {
        self.level == HitLevel::L1
    }
}

/// Hierarchy configuration (defaults follow Table 1 of the paper).
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Unified L3.
    pub l3: CacheConfig,
    /// Total load-to-use latency for DRAM accesses.
    pub dram_latency: u64,
    /// Number of L1D MSHRs (bounds data-side MLP).
    pub mshrs: usize,
    /// N for the baseline next-N-line L1D prefetcher (0 disables).
    pub next_n_line: u64,
    /// Enable the VLDP L2/L3 prefetcher.
    pub vldp: bool,
    /// Data TLB entries.
    pub tlb_entries: usize,
    /// Page-walk latency added on TLB miss.
    pub tlb_walk_latency: u64,
    /// Oracle mode: every data access hits in L1 (perfect D$).
    pub perfect_data: bool,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig::micro21()
    }
}

impl HierarchyConfig {
    /// Canonical content key covering every field. Two configs with
    /// the same key time identically; the experiment planner relies on
    /// this to deduplicate runs.
    pub fn key(&self) -> String {
        format!(
            "i{}_d{}_l2{}_l3{}_dram{}_mshr{}_nl{}_vldp{}_tlb{}w{}{}",
            self.l1i.key(),
            self.l1d.key(),
            self.l2.key(),
            self.l3.key(),
            self.dram_latency,
            self.mshrs,
            self.next_n_line,
            u8::from(self.vldp),
            self.tlb_entries,
            self.tlb_walk_latency,
            if self.perfect_data { "_perfD" } else { "" }
        )
    }

    /// The exact configuration of Table 1 (MICRO 2021 paper).
    pub fn micro21() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new(32 * 1024, 8, 1),
            l1d: CacheConfig::new(32 * 1024, 8, 3),
            l2: CacheConfig::new(256 * 1024, 8, 12),
            l3: CacheConfig::new(8 * 1024 * 1024, 16, 42),
            dram_latency: 292, // 42-cycle L3 + 250-cycle DRAM
            mshrs: 16,
            next_n_line: 2,
            vldp: true,
            tlb_entries: 64,
            tlb_walk_latency: 30,
            perfect_data: false,
        }
    }
}

/// Hierarchy-level statistics (authoritative for experiments; per-cache
/// stats additionally track prefetch usefulness).
///
/// `Eq` is part of the simulator's determinism contract (identical
/// runs must produce identical counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Demand data accesses that hit L1D.
    pub l1d_hits: u64,
    /// Demand data accesses that missed L1D.
    pub l1d_misses: u64,
    /// Demand data accesses merged into an in-flight miss.
    pub inflight_merges: u64,
    /// L1D misses satisfied by L2.
    pub l2_hits: u64,
    /// L1D misses satisfied by L3.
    pub l3_hits: u64,
    /// L1D misses that went to DRAM.
    pub dram_accesses: u64,
    /// Instruction-fetch L1I misses.
    pub l1i_misses: u64,
    /// Prefetch lines issued (all sources).
    pub prefetches_issued: u64,
    /// Cycles of extra latency charged waiting for a free MSHR.
    pub mshr_wait_cycles: u64,
}

impl HierarchyStats {
    /// Serializes every counter, in declaration order.
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.u64(self.l1d_hits);
        e.u64(self.l1d_misses);
        e.u64(self.inflight_merges);
        e.u64(self.l2_hits);
        e.u64(self.l3_hits);
        e.u64(self.dram_accesses);
        e.u64(self.l1i_misses);
        e.u64(self.prefetches_issued);
        e.u64(self.mshr_wait_cycles);
    }

    /// Decodes counters serialized by
    /// [`HierarchyStats::snapshot_encode`].
    ///
    /// # Errors
    /// [`SnapError::Truncated`] if the stream ends early.
    pub fn snapshot_decode(d: &mut Dec<'_>) -> Result<HierarchyStats, SnapError> {
        Ok(HierarchyStats {
            l1d_hits: d.u64()?,
            l1d_misses: d.u64()?,
            inflight_merges: d.u64()?,
            l2_hits: d.u64()?,
            l3_hits: d.u64()?,
            dram_accesses: d.u64()?,
            l1i_misses: d.u64()?,
            prefetches_issued: d.u64()?,
            mshr_wait_cycles: d.u64()?,
        })
    }
}

/// The memory hierarchy.
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    mshrs: MshrFile,
    l1_prefetcher: Option<NextNLine>,
    l2_prefetcher: Option<Vldp>,
    /// Reused prefetch-target buffer (the demand-miss path is hot).
    pf_targets: Vec<u64>,
    tlb: Tlb,
    stats: HierarchyStats,
}

impl std::fmt::Debug for Hierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hierarchy")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: Cache::new(config.l3),
            mshrs: MshrFile::new(config.mshrs),
            l1_prefetcher: if config.next_n_line > 0 {
                Some(NextNLine::new(config.next_n_line))
            } else {
                None
            },
            l2_prefetcher: if config.vldp {
                Some(Vldp::default())
            } else {
                None
            },
            pf_targets: Vec::new(),
            tlb: Tlb::new(config.tlb_entries, config.tlb_walk_latency),
            config,
            stats: HierarchyStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Per-level cache statistics `(l1i, l1d, l2, l3)`.
    pub fn cache_stats(
        &self,
    ) -> (
        crate::cache::CacheStats,
        crate::cache::CacheStats,
        crate::cache::CacheStats,
        crate::cache::CacheStats,
    ) {
        (
            *self.l1i.stats(),
            *self.l1d.stats(),
            *self.l2.stats(),
            *self.l3.stats(),
        )
    }

    /// Performs an access at `cycle` and returns its latency/source.
    pub fn access(&mut self, addr: u64, kind: AccessKind, cycle: u64) -> AccessOutcome {
        match kind {
            AccessKind::Ifetch => self.ifetch(addr),
            AccessKind::Prefetch => {
                self.data_access(addr, false, cycle, true);
                AccessOutcome {
                    latency: 0,
                    level: HitLevel::L1,
                }
            }
            AccessKind::Load => self.data_access(addr, false, cycle, false),
            AccessKind::Store => self.data_access(addr, true, cycle, false),
        }
    }

    fn ifetch(&mut self, addr: u64) -> AccessOutcome {
        if self.l1i.access(addr, false) {
            return AccessOutcome {
                latency: self.config.l1i.latency,
                level: HitLevel::L1,
            };
        }
        self.stats.l1i_misses += 1;
        let (latency, level) = if self.l2.access(addr, false) {
            (self.config.l2.latency, HitLevel::L2)
        } else if self.l3.access(addr, false) {
            self.l2.fill(addr, false);
            (self.config.l3.latency, HitLevel::L3)
        } else {
            self.l2.fill(addr, false);
            self.l3.fill(addr, false);
            (self.config.dram_latency, HitLevel::Dram)
        };
        self.l1i.fill(addr, false);
        AccessOutcome { latency, level }
    }

    fn data_access(
        &mut self,
        addr: u64,
        is_write: bool,
        cycle: u64,
        is_prefetch: bool,
    ) -> AccessOutcome {
        if self.config.perfect_data && !is_prefetch {
            return AccessOutcome {
                latency: self.config.l1d.latency,
                level: HitLevel::L1,
            };
        }

        self.mshrs.expire(cycle);
        let tlb_extra = if is_prefetch {
            0
        } else {
            self.tlb.translate(addr)
        };

        // In-flight miss covering this line?
        if let Some(ready) = self.mshrs.peek(addr) {
            if !is_prefetch {
                self.stats.inflight_merges += 1;
                self.mshrs.lookup(addr); // count the merge
                let residual = ready.saturating_sub(cycle).max(self.config.l1d.latency);
                return AccessOutcome {
                    latency: residual + tlb_extra,
                    level: HitLevel::InFlight,
                };
            }
            return AccessOutcome {
                latency: 0,
                level: HitLevel::InFlight,
            };
        }

        if self.l1d.access(addr, is_write) {
            if !is_prefetch {
                self.stats.l1d_hits += 1;
            }
            return AccessOutcome {
                latency: self.config.l1d.latency + tlb_extra,
                level: HitLevel::L1,
            };
        }

        if !is_prefetch {
            self.stats.l1d_misses += 1;
        }

        // Locate the data below L1.
        let (mut latency, level) = if self.l2.access(addr, is_write) {
            if !is_prefetch {
                self.stats.l2_hits += 1;
            }
            (self.config.l2.latency, HitLevel::L2)
        } else if self.l3.access(addr, is_write) {
            if !is_prefetch {
                self.stats.l3_hits += 1;
            }
            self.l2.fill(addr, is_prefetch);
            (self.config.l3.latency, HitLevel::L3)
        } else {
            if !is_prefetch {
                self.stats.dram_accesses += 1;
            }
            self.l2.fill(addr, is_prefetch);
            self.l3.fill(addr, is_prefetch);
            (self.config.dram_latency, HitLevel::Dram)
        };
        self.l1d.fill(addr, is_prefetch);

        // Charge MSHR occupancy: wait for a free entry if none.
        if let Err(earliest) = self.mshrs.alloc(addr, cycle + latency) {
            let wait = earliest.saturating_sub(cycle);
            self.stats.mshr_wait_cycles += wait;
            latency += wait;
            self.mshrs.expire(earliest);
            let _ = self.mshrs.alloc(addr, cycle + latency);
        }

        // Trigger prefetchers on demand misses only. The target buffer
        // is owned by the hierarchy and reused across misses;
        // `prefetch_fill` never re-enters this path, so taking it for
        // the duration of the loop is safe.
        if !is_prefetch {
            let mut targets = std::mem::take(&mut self.pf_targets);
            targets.clear();
            if let Some(pf) = self.l1_prefetcher.as_mut() {
                pf.observe_into(addr, true, &mut targets);
            }
            if let Some(pf) = self.l2_prefetcher.as_mut() {
                pf.observe_into(addr, true, &mut targets);
            }
            for &t in &targets {
                self.stats.prefetches_issued += 1;
                self.prefetch_fill(t, cycle);
            }
            self.pf_targets = targets;
        }

        AccessOutcome {
            latency: latency + tlb_extra,
            level,
        }
    }

    /// Fills `addr`'s line as a prefetch (no demand latency returned).
    fn prefetch_fill(&mut self, addr: u64, cycle: u64) {
        if self.mshrs.peek(addr).is_some() || self.l1d.probe(addr) {
            return;
        }
        let latency = if self.l2.probe(addr) {
            self.l2.access(addr, false);
            self.config.l2.latency
        } else if self.l3.probe(addr) {
            self.l3.access(addr, false);
            self.l2.fill(addr, true);
            self.config.l3.latency
        } else {
            self.l2.fill(addr, true);
            self.l3.fill(addr, true);
            self.config.dram_latency
        };
        self.l1d.fill(addr, true);
        // Prefetches occupy MSHRs only if one is free (they are dropped
        // rather than stalling demand traffic).
        if self.mshrs.has_free() {
            let _ = self.mshrs.alloc(addr, cycle + latency);
        }
    }

    /// Issues an external (fabric) prefetch for `addr` at `cycle`.
    pub fn external_prefetch(&mut self, addr: u64, cycle: u64) {
        self.stats.prefetches_issued += 1;
        self.prefetch_fill(line_of(addr), cycle);
    }

    /// Serializes all warm state: caches, MSHRs, prefetcher training,
    /// TLB and statistics. The configuration is not serialized — it is
    /// part of the run key and is supplied to
    /// [`Hierarchy::snapshot_decode`]. The reusable prefetch-target
    /// scratch buffer is not serialized (it is cleared before each use).
    pub fn snapshot_encode(&self, e: &mut Enc) {
        self.l1i.snapshot_encode(e);
        self.l1d.snapshot_encode(e);
        self.l2.snapshot_encode(e);
        self.l3.snapshot_encode(e);
        self.mshrs.snapshot_encode(e);
        match &self.l1_prefetcher {
            Some(p) => {
                e.u8(1);
                p.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        match &self.l2_prefetcher {
            Some(p) => {
                e.u8(1);
                p.snapshot_encode(e);
            }
            None => e.u8(0),
        }
        self.tlb.snapshot_encode(e);
        e.u64(self.stats.l1d_hits);
        e.u64(self.stats.l1d_misses);
        e.u64(self.stats.inflight_merges);
        e.u64(self.stats.l2_hits);
        e.u64(self.stats.l3_hits);
        e.u64(self.stats.dram_accesses);
        e.u64(self.stats.l1i_misses);
        e.u64(self.stats.prefetches_issued);
        e.u64(self.stats.mshr_wait_cycles);
    }

    /// Decodes a hierarchy serialized by
    /// [`Hierarchy::snapshot_encode`] under the same configuration.
    /// The serialized prefetcher presence must match what `config`
    /// instantiates.
    pub fn snapshot_decode(
        config: HierarchyConfig,
        d: &mut Dec<'_>,
    ) -> Result<Hierarchy, SnapError> {
        let l1i = Cache::snapshot_decode(config.l1i, d)?;
        let l1d = Cache::snapshot_decode(config.l1d, d)?;
        let l2 = Cache::snapshot_decode(config.l2, d)?;
        let l3 = Cache::snapshot_decode(config.l3, d)?;
        let mshrs = MshrFile::snapshot_decode(config.mshrs, d)?;
        let l1_prefetcher = match d.u8()? {
            0 if config.next_n_line == 0 => None,
            1 if config.next_n_line > 0 => Some(NextNLine::snapshot_decode(config.next_n_line, d)?),
            0 | 1 => return Err(SnapError::Corrupt("l1 prefetcher presence")),
            _ => return Err(SnapError::Corrupt("l1 prefetcher tag")),
        };
        let l2_prefetcher = match d.u8()? {
            0 if !config.vldp => None,
            1 if config.vldp => Some(Vldp::snapshot_decode(d)?),
            0 | 1 => return Err(SnapError::Corrupt("l2 prefetcher presence")),
            _ => return Err(SnapError::Corrupt("l2 prefetcher tag")),
        };
        let tlb = Tlb::snapshot_decode(config.tlb_entries, config.tlb_walk_latency, d)?;
        let stats = HierarchyStats {
            l1d_hits: d.u64()?,
            l1d_misses: d.u64()?,
            inflight_merges: d.u64()?,
            l2_hits: d.u64()?,
            l3_hits: d.u64()?,
            dram_accesses: d.u64()?,
            l1i_misses: d.u64()?,
            prefetches_issued: d.u64()?,
            mshr_wait_cycles: d.u64()?,
        };
        Ok(Hierarchy {
            config,
            l1i,
            l1d,
            l2,
            l3,
            mshrs,
            l1_prefetcher,
            l2_prefetcher,
            pf_targets: Vec::new(),
            tlb,
            stats,
        })
    }

    /// Empties all caches, MSHRs and the TLB (for experiment isolation).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
        self.mshrs = MshrFile::new(self.config.mshrs);
        self.tlb = Tlb::new(self.config.tlb_entries, self.config.tlb_walk_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> Hierarchy {
        let mut c = HierarchyConfig::micro21();
        c.next_n_line = 0;
        c.vldp = false;
        c.tlb_walk_latency = 0;
        Hierarchy::new(c)
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits_everywhere() {
        let mut h = hier();
        let o = h.access(0x10_0000, AccessKind::Load, 0);
        assert_eq!(o.level, HitLevel::Dram);
        assert_eq!(o.latency, 292);
        // Long after the fill, it's an L1 hit.
        let o2 = h.access(0x10_0000, AccessKind::Load, 1000);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(o2.latency, 3);
    }

    #[test]
    fn overlapping_miss_merges_with_residual_latency() {
        let mut h = hier();
        h.access(0x20_0000, AccessKind::Load, 0); // miss, ready at 292
        let o = h.access(0x20_0008, AccessKind::Load, 100); // same line
        assert_eq!(o.level, HitLevel::InFlight);
        assert_eq!(o.latency, 192);
        assert_eq!(h.stats().inflight_merges, 1);
    }

    #[test]
    fn independent_misses_overlap_mlp() {
        let mut h = hier();
        // Two misses to different lines at the same cycle both take the
        // full latency — they overlap rather than serialize.
        let a = h.access(0x30_0000, AccessKind::Load, 0);
        let b = h.access(0x30_1000, AccessKind::Load, 0);
        assert_eq!(a.latency, 292);
        assert_eq!(b.latency, 292);
    }

    #[test]
    fn mshr_exhaustion_delays_new_misses() {
        let mut cfg = HierarchyConfig::micro21();
        cfg.next_n_line = 0;
        cfg.vldp = false;
        cfg.tlb_walk_latency = 0;
        cfg.mshrs = 2;
        let mut h = Hierarchy::new(cfg);
        h.access(0x0000, AccessKind::Load, 0);
        h.access(0x2000, AccessKind::Load, 0);
        let o = h.access(0x4000, AccessKind::Load, 0); // MSHRs full until 292
        assert!(
            o.latency > 292,
            "third miss should wait for an MSHR, got {}",
            o.latency
        );
        assert!(h.stats().mshr_wait_cycles > 0);
    }

    #[test]
    fn l2_and_l3_hit_latencies() {
        let mut h = hier();
        h.access(0x40_0000, AccessKind::Load, 0); // fill everything
                                                  // Evict from L1 by filling 9 conflicting lines (8-way L1).
                                                  // L1D: 32KB/8way/64B = 64 sets; same-set stride = 4096 bytes.
                                                  // (4096 < L2's 32768-byte same-set stride, so L2 keeps the line.)
        for i in 1..=9u64 {
            h.access(0x40_0000 + i * 4096, AccessKind::Load, 0);
        }
        // This line should now be out of L1 but in L2.
        let o = h.access(0x40_0000, AccessKind::Load, 10_000);
        assert_eq!(o.level, HitLevel::L2);
        assert_eq!(o.latency, 12);
    }

    #[test]
    fn perfect_data_always_l1() {
        let mut cfg = HierarchyConfig::micro21();
        cfg.perfect_data = true;
        let mut h = Hierarchy::new(cfg);
        let o = h.access(0xAA_0000, AccessKind::Load, 0);
        assert_eq!(o.level, HitLevel::L1);
        assert_eq!(o.latency, 3);
    }

    #[test]
    fn next_line_prefetcher_hides_sequential_misses() {
        let mut cfg = HierarchyConfig::micro21();
        cfg.vldp = false;
        cfg.tlb_walk_latency = 0;
        let mut h = Hierarchy::new(cfg);
        h.access(0x50_0000, AccessKind::Load, 0); // miss; prefetch +1, +2
                                                  // Much later, the next line is already resident.
        let o = h.access(0x50_0040, AccessKind::Load, 5000);
        assert_eq!(o.level, HitLevel::L1);
        assert!(h.stats().prefetches_issued >= 2);
    }

    #[test]
    fn external_prefetch_then_demand_hit() {
        let mut h = hier();
        h.external_prefetch(0x60_0000, 0);
        let o = h.access(0x60_0000, AccessKind::Load, 1000);
        assert_eq!(o.level, HitLevel::L1);
    }

    #[test]
    fn ifetch_path() {
        let mut h = hier();
        let o = h.access(0x1000, AccessKind::Ifetch, 0);
        assert_eq!(o.level, HitLevel::Dram);
        let o2 = h.access(0x1000, AccessKind::Ifetch, 0);
        assert_eq!(o2.level, HitLevel::L1);
        assert_eq!(o2.latency, 1);
        assert_eq!(h.stats().l1i_misses, 1);
    }

    #[test]
    fn store_write_allocates() {
        let mut h = hier();
        let o = h.access(0x70_0000, AccessKind::Store, 0);
        assert_eq!(o.level, HitLevel::Dram);
        let o2 = h.access(0x70_0000, AccessKind::Load, 1000);
        assert_eq!(o2.level, HitLevel::L1);
    }

    #[test]
    fn flush_restores_cold_state() {
        let mut h = hier();
        h.access(0x80_0000, AccessKind::Load, 0);
        h.flush();
        let o = h.access(0x80_0000, AccessKind::Load, 10_000);
        assert_eq!(o.level, HitLevel::Dram);
    }

    #[test]
    fn snapshot_roundtrip_preserves_warm_state_and_timing() {
        use pfm_isa::snap::{Dec, Enc};
        let mut h = Hierarchy::new(HierarchyConfig::micro21());
        // Warm it with a mixed pattern: strided loads, stores, ifetches.
        for i in 0..400u64 {
            h.access(0x10_0000 + i * 128, AccessKind::Load, i * 3);
            if i % 3 == 0 {
                h.access(0x20_0000 + i * 64, AccessKind::Store, i * 3 + 1);
            }
            h.access(0x1000 + (i % 32) * 4, AccessKind::Ifetch, i * 3 + 2);
        }

        let mut e = Enc::new();
        h.snapshot_encode(&mut e);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes);
        let mut h2 =
            Hierarchy::snapshot_decode(HierarchyConfig::micro21(), &mut d).expect("decode");
        d.finish().expect("no trailing bytes");

        assert_eq!(h.stats(), h2.stats());
        // Re-encode must be byte-identical.
        let mut e2 = Enc::new();
        h2.snapshot_encode(&mut e2);
        assert_eq!(bytes, e2.finish());

        // Identical continuation: same accesses yield same outcomes.
        for i in 0..200u64 {
            let cycle = 2000 + i * 3;
            let a = h.access(0x10_0000 + i * 96, AccessKind::Load, cycle);
            let b = h2.access(0x10_0000 + i * 96, AccessKind::Load, cycle);
            assert_eq!(a, b, "diverged at access {i}");
        }
        assert_eq!(h.stats(), h2.stats());
    }

    #[test]
    fn snapshot_decode_rejects_mismatched_prefetcher_config() {
        use pfm_isa::snap::{Dec, Enc};
        let h = Hierarchy::new(HierarchyConfig::micro21());
        let mut e = Enc::new();
        h.snapshot_encode(&mut e);
        let bytes = e.finish();
        let mut wrong = HierarchyConfig::micro21();
        wrong.next_n_line = 0;
        let mut d = Dec::new(&bytes);
        assert!(Hierarchy::snapshot_decode(wrong, &mut d).is_err());
    }

    #[test]
    fn tlb_miss_adds_walk_latency() {
        let mut cfg = HierarchyConfig::micro21();
        cfg.next_n_line = 0;
        cfg.vldp = false;
        let mut h = Hierarchy::new(cfg);
        let o = h.access(0x90_0000, AccessKind::Load, 0);
        assert_eq!(o.latency, 292 + 30);
        let o2 = h.access(0x90_0008, AccessKind::Load, 500);
        assert_eq!(o2.latency, 3); // TLB + cache hit
    }
}
