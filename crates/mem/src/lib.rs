//! # pfm-mem — memory hierarchy substrate
//!
//! The cache/memory system of the PFM paper's Table 1: 32 KB 8-way L1I
//! and L1D (3-cycle), 256 KB 8-way L2 (12-cycle), 8 MB 16-way L3
//! (42-cycle), 250-cycle DRAM, a next-2-line L1D prefetcher, a
//! simplified VLDP L2/L3 prefetcher, MSHRs bounding memory-level
//! parallelism, and a data TLB.
//!
//! ## Example
//!
//! ```
//! use pfm_mem::hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HitLevel};
//!
//! let mut h = Hierarchy::new(HierarchyConfig::micro21());
//! let miss = h.access(0x10_0000, AccessKind::Load, 0);
//! assert_eq!(miss.level, HitLevel::Dram);
//! let hit = h.access(0x10_0000, AccessKind::Load, 1_000);
//! assert_eq!(hit.level, HitLevel::L1);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheStats, LINE_BYTES};
pub use hierarchy::{
    AccessKind, AccessOutcome, Hierarchy, HierarchyConfig, HierarchyStats, HitLevel,
};
pub use mshr::MshrFile;
pub use prefetch::{NextNLine, Prefetcher, Vldp};
pub use tlb::Tlb;
