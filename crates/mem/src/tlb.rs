//! A small fully-associative TLB. Misses add a fixed page-walk latency.

use pfm_isa::snap::{Dec, Enc, SnapError};

const PAGE_SHIFT: u64 = 12;

/// Fully-associative, true-LRU TLB.
///
/// ```
/// use pfm_mem::tlb::Tlb;
/// let mut t = Tlb::new(4, 30);
/// assert_eq!(t.translate(0x1234), 30); // cold miss: page walk
/// assert_eq!(t.translate(0x1FFF), 0);  // same page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (page, lru)
    capacity: usize,
    walk_latency: u64,
    stamp: u64,
    /// Slot of the most recent translation: accesses cluster on one
    /// page, so checking here first skips the linear scan on the
    /// common path. Purely an access-order cache — LRU stamps and
    /// eviction decisions are identical with or without it.
    mru: usize,
    /// Translation hits.
    pub hits: u64,
    /// Translation misses (page walks).
    pub misses: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries and `walk_latency` extra
    /// cycles per miss.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, walk_latency: u64) -> Tlb {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            walk_latency,
            stamp: 0,
            mru: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Serializes the translation entries, LRU state and counters. The
    /// capacity and walk latency are not serialized: they come from the
    /// config passed to [`Tlb::snapshot_decode`].
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for &(page, lru) in &self.entries {
            e.u64(page);
            e.u64(lru);
        }
        e.u64(self.stamp);
        e.usize(self.mru);
        e.u64(self.hits);
        e.u64(self.misses);
    }

    /// Decodes a TLB serialized by [`Tlb::snapshot_encode`] with the
    /// given capacity and walk latency.
    pub fn snapshot_decode(
        capacity: usize,
        walk_latency: u64,
        d: &mut Dec<'_>,
    ) -> Result<Tlb, SnapError> {
        let mut t = Tlb::new(capacity, walk_latency);
        let n = d.usize()?;
        if n > capacity {
            return Err(SnapError::Corrupt("tlb entry count"));
        }
        for _ in 0..n {
            let page = d.u64()?;
            let lru = d.u64()?;
            t.entries.push((page, lru));
        }
        t.stamp = d.u64()?;
        let mru = d.usize()?;
        if mru != 0 && mru >= t.entries.len() {
            return Err(SnapError::Corrupt("tlb mru slot"));
        }
        t.mru = mru;
        t.hits = d.u64()?;
        t.misses = d.u64()?;
        Ok(t)
    }

    /// Translates `addr`, returning the added latency (0 on hit, the
    /// walk latency on miss). The entry is installed/refreshed.
    pub fn translate(&mut self, addr: u64) -> u64 {
        let page = addr >> PAGE_SHIFT;
        self.stamp += 1;
        // Same-page fast path via the MRU slot.
        if let Some(e) = self.entries.get_mut(self.mru) {
            if e.0 == page {
                e.1 = self.stamp;
                self.hits += 1;
                return 0;
            }
        }
        if let Some(i) = self.entries.iter().position(|e| e.0 == page) {
            self.entries[i].1 = self.stamp;
            self.mru = i;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() >= self.capacity {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                // pfm-lint: allow(hygiene): eviction only runs when entries is full
                .expect("non-empty");
            self.entries.swap_remove(victim);
        }
        self.entries.push((page, self.stamp));
        self.mru = self.entries.len() - 1;
        self.walk_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(2, 25);
        assert_eq!(t.translate(0x0000), 25);
        assert_eq!(t.translate(0x0FFF), 0);
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 25);
        t.translate(0x0000); // page 0
        t.translate(0x1000); // page 1
        t.translate(0x0000); // refresh page 0
        t.translate(0x2000); // evicts page 1
        assert_eq!(t.translate(0x0000), 0);
        assert_eq!(t.translate(0x1000), 25);
    }
}
