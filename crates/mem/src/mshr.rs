//! Miss Status Holding Registers: the mechanism that bounds memory-level
//! parallelism (MLP) and gives in-flight misses their residual latency.

use crate::cache::line_of;
use pfm_isa::snap::{Dec, Enc, SnapError};

/// One outstanding miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mshr {
    /// Line-aligned address of the miss.
    pub line: u64,
    /// Cycle at which the fill data arrives.
    pub ready: u64,
}

/// A file of MSHRs with lazy expiry.
///
/// ```
/// use pfm_mem::mshr::MshrFile;
/// let mut m = MshrFile::new(2);
/// m.expire(0);
/// assert!(m.alloc(0x1000, 100).is_ok());
/// assert_eq!(m.lookup(0x1000), Some(100));
/// assert_eq!(m.lookup(0x1040), None);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    entries: Vec<Mshr>,
    capacity: usize,
    /// Total allocations that found the file full.
    pub full_stalls: u64,
    /// Accesses that merged into an existing entry.
    pub merges: u64,
}

impl MshrFile {
    /// Creates an empty file with `capacity` registers.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> MshrFile {
        assert!(capacity > 0, "MSHR file needs at least one entry");
        MshrFile {
            entries: Vec::with_capacity(capacity),
            capacity,
            full_stalls: 0,
            merges: 0,
        }
    }

    /// Drops entries whose data has arrived by `cycle`.
    pub fn expire(&mut self, cycle: u64) {
        self.entries.retain(|e| e.ready > cycle);
    }

    /// Ready cycle of the in-flight miss covering `addr`'s line, if any.
    /// Records a merge when found.
    pub fn lookup(&mut self, addr: u64) -> Option<u64> {
        let line = line_of(addr);
        let hit = self
            .entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.ready);
        if hit.is_some() {
            self.merges += 1;
        }
        hit
    }

    /// Non-mutating variant of [`MshrFile::lookup`] (no merge counted).
    pub fn peek(&self, addr: u64) -> Option<u64> {
        let line = line_of(addr);
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.ready)
    }

    /// Allocates an entry for `addr`'s line.
    ///
    /// # Errors
    /// Returns the earliest cycle at which an entry frees when full; the
    /// caller should retry (or charge the wait).
    pub fn alloc(&mut self, addr: u64, ready: u64) -> Result<(), u64> {
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            let earliest = self
                .entries
                .iter()
                .map(|e| e.ready)
                .min()
                // pfm-lint: allow(hygiene): the full-stall path implies entries is non-empty
                .expect("non-empty");
            return Err(earliest);
        }
        self.entries.push(Mshr {
            line: line_of(addr),
            ready,
        });
        Ok(())
    }

    /// Serializes the in-flight entries and counters. The capacity is
    /// not serialized: it comes from the config passed to
    /// [`MshrFile::snapshot_decode`].
    pub fn snapshot_encode(&self, e: &mut Enc) {
        e.usize(self.entries.len());
        for en in &self.entries {
            e.u64(en.line);
            e.u64(en.ready);
        }
        e.u64(self.full_stalls);
        e.u64(self.merges);
    }

    /// Decodes a file serialized by [`MshrFile::snapshot_encode`] with
    /// `capacity` registers.
    pub fn snapshot_decode(capacity: usize, d: &mut Dec<'_>) -> Result<MshrFile, SnapError> {
        let mut m = MshrFile::new(capacity);
        let n = d.usize()?;
        if n > capacity {
            return Err(SnapError::Corrupt("mshr entry count"));
        }
        for _ in 0..n {
            let line = d.u64()?;
            let ready = d.u64()?;
            m.entries.push(Mshr { line, ready });
        }
        m.full_stalls = d.u64()?;
        m.merges = d.u64()?;
        Ok(m)
    }

    /// Number of misses currently in flight.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Whether a new miss can be accepted.
    pub fn has_free(&self) -> bool {
        self.entries.len() < self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup_by_line() {
        let mut m = MshrFile::new(4);
        m.alloc(0x1008, 50).unwrap();
        assert_eq!(m.lookup(0x1000), Some(50)); // same line
        assert_eq!(m.lookup(0x1039), Some(50)); // same line
        assert_eq!(m.lookup(0x1040), None); // next line
        assert_eq!(m.merges, 2);
    }

    #[test]
    fn expiry_frees_entries() {
        let mut m = MshrFile::new(1);
        m.alloc(0x0, 10).unwrap();
        assert!(!m.has_free());
        m.expire(9);
        assert!(!m.has_free());
        m.expire(10);
        assert!(m.has_free());
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn full_file_reports_earliest_ready() {
        let mut m = MshrFile::new(2);
        m.alloc(0x000, 30).unwrap();
        m.alloc(0x040, 20).unwrap();
        assert_eq!(m.alloc(0x080, 40), Err(20));
        assert_eq!(m.full_stalls, 1);
    }

    #[test]
    fn peek_does_not_count_merge() {
        let mut m = MshrFile::new(2);
        m.alloc(0x000, 30).unwrap();
        assert_eq!(m.peek(0x000), Some(30));
        assert_eq!(m.merges, 0);
    }
}
