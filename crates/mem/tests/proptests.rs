//! Property-based tests for the memory hierarchy: cache behaviour
//! against a naive reference model, MSHR invariants, and latency
//! sanity across random access streams.

use pfm_mem::cache::{line_of, Cache, CacheConfig};
use pfm_mem::hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HitLevel};
use pfm_mem::mshr::MshrFile;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Naive fully-explicit reference for a set-associative LRU cache.
struct RefCacheModel {
    sets: Vec<VecDeque<u64>>, // tags per set, most-recent first
    ways: usize,
    num_sets: u64,
}

impl RefCacheModel {
    fn new(cfg: &CacheConfig) -> RefCacheModel {
        RefCacheModel {
            sets: (0..cfg.sets()).map(|_| VecDeque::new()).collect(),
            ways: cfg.ways,
            num_sets: cfg.sets(),
        }
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr >> 6) & (self.num_sets - 1)) as usize
    }

    fn access(&mut self, addr: u64) -> bool {
        let tag = addr >> 6;
        let set = self.set_of(addr);
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_front(tag);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: u64) {
        let tag = addr >> 6;
        let set = self.set_of(addr);
        let s = &mut self.sets[set];
        if s.iter().any(|&t| t == tag) {
            return;
        }
        if s.len() >= self.ways {
            s.pop_back();
        }
        s.push_front(tag);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache's hit/miss stream matches the reference LRU model for
    /// any access sequence.
    #[test]
    fn cache_matches_reference_lru(addrs in prop::collection::vec(0u64..0x8000, 1..300)) {
        let cfg = CacheConfig::new(4096, 4, 1); // 16 sets x 4 ways
        let mut cache = Cache::new(cfg);
        let mut reference = RefCacheModel::new(&cfg);
        for &a in &addrs {
            let hit = cache.access(a, false);
            let ref_hit = reference.access(a);
            prop_assert_eq!(hit, ref_hit, "divergence at addr {:#x}", a);
            if !hit {
                cache.fill(a, false);
                reference.fill(a);
            }
        }
    }

    /// Probe never mutates: probing between accesses does not change
    /// the hit/miss stream.
    #[test]
    fn probe_is_pure(addrs in prop::collection::vec(0u64..0x4000, 1..200)) {
        let cfg = CacheConfig::new(2048, 2, 1);
        let mut with_probe = Cache::new(cfg);
        let mut without = Cache::new(cfg);
        for &a in &addrs {
            with_probe.probe(a ^ 0x40);
            let h1 = with_probe.access(a, false);
            let h2 = without.access(a, false);
            prop_assert_eq!(h1, h2);
            if !h1 {
                with_probe.fill(a, false);
                without.fill(a, false);
            }
        }
    }

    /// MSHR in-flight count never exceeds capacity and lookups only
    /// match the same line.
    #[test]
    fn mshr_invariants(ops in prop::collection::vec((0u64..0x2000, 1u64..400), 1..100)) {
        let mut m = MshrFile::new(8);
        let mut cycle = 0u64;
        for (addr, lat) in ops {
            cycle += 7;
            m.expire(cycle);
            prop_assert!(m.in_flight() <= 8);
            if let Some(ready) = m.peek(addr) {
                // expire() just dropped everything ready at or before
                // this cycle, so surviving entries are in the future.
                prop_assert!(ready > cycle, "entry survived expire({cycle}) with ready {ready}");
                // Same-line lookups must agree with line_of.
                prop_assert!(m.peek(line_of(addr)).is_some());
            } else if m.has_free() {
                m.alloc(addr, cycle + lat).unwrap();
            }
        }
    }

    /// Hierarchy latencies are always one of the configured levels (or
    /// above, when MSHR/TLB waits add on), and repeated access to the
    /// same line is never slower than the first.
    #[test]
    fn hierarchy_latency_sanity(addrs in prop::collection::vec(0u64..0x40_0000, 1..150)) {
        let mut cfg = HierarchyConfig::micro21();
        cfg.next_n_line = 0;
        cfg.vldp = false;
        cfg.tlb_walk_latency = 0;
        let l1 = cfg.l1d.latency;
        let mut h = Hierarchy::new(cfg);
        let mut cycle = 0;
        for &a in &addrs {
            cycle += 500; // far apart: no in-flight interference
            let first = h.access(a, AccessKind::Load, cycle);
            prop_assert!(first.latency >= l1);
            cycle += 500;
            let second = h.access(a, AccessKind::Load, cycle);
            prop_assert_eq!(second.level, HitLevel::L1, "fill must land in L1");
            prop_assert!(second.latency <= first.latency);
        }
    }

    /// Perfect-data mode always reports L1 latency regardless of the
    /// stream.
    #[test]
    fn perfect_data_is_flat(addrs in prop::collection::vec(0u64..0x100_0000, 1..100)) {
        let mut cfg = HierarchyConfig::micro21();
        cfg.perfect_data = true;
        let l1 = cfg.l1d.latency;
        let mut h = Hierarchy::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let o = h.access(a, AccessKind::Load, i as u64);
            prop_assert_eq!(o.latency, l1);
        }
    }

    /// In-flight merges always return a residual latency no larger
    /// than the full miss latency.
    #[test]
    fn merge_residual_is_bounded(offset in 0u64..64, gap in 1u64..291) {
        let mut cfg = HierarchyConfig::micro21();
        cfg.next_n_line = 0;
        cfg.vldp = false;
        cfg.tlb_walk_latency = 0;
        let mut h = Hierarchy::new(cfg);
        let base = 0x70_0000u64;
        let first = h.access(base, AccessKind::Load, 0);
        prop_assert_eq!(first.level, HitLevel::Dram);
        let merged = h.access(base + offset, AccessKind::Load, gap);
        prop_assert_eq!(merged.level, HitLevel::InFlight);
        prop_assert!(merged.latency <= first.latency);
        prop_assert!(merged.latency >= first.latency.saturating_sub(gap).max(3));
    }
}
