//! Property-based tests for the custom components: the astar
//! predictor's output must match a software oracle over arbitrary
//! grids/worklists, the bfs component's stream must match a reference
//! walk over arbitrary graphs, and the prefetch engine's affine walk
//! must enumerate exactly the program's addresses.

use pfm_components::astar::{AstarConfig, AstarPredictor, NEIGHBORS};
use pfm_components::bfs::{BfsComponent, BfsConfig};
use pfm_components::{CustomPrefetcher, EngineConfig};
use pfm_fabric::{CustomComponent, FabricIo, LoadResponse, ObsPacket, PredPacket};
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};

// ---------------------------------------------------------------------
// astar
// ---------------------------------------------------------------------

fn astar_cfg() -> AstarConfig {
    AstarConfig {
        fillnum_pc: 0x100,
        wl_base_pc: 0x104,
        wl_len_pc: 0x108,
        induction_pc: 0x10c,
        waymap_base: 0x10_0000,
        maparp_base: 0x20_0000,
        offsets: [-17, -16, -15, -1, 1, 15, 16, 17],
        waymap_branch_pcs: [0x200, 0x210, 0x220, 0x230, 0x240, 0x250, 0x260, 0x270],
        maparp_branch_pcs: [0x204, 0x214, 0x224, 0x234, 0x244, 0x254, 0x264, 0x274],
        index_queue_size: 8,
        store_inference: true,
        predict_maparp: true,
        t1_width: 2,
    }
}

/// Drives the astar component against an in-memory grid, answering its
/// loads from `waymap`/`maparp`, and collects its predictions.
fn drive_astar(
    worklist: &[u64],
    waymap: &HashMap<u64, u32>,
    maparp: &HashMap<u64, u8>,
    fillnum: u64,
) -> Vec<PredPacket> {
    let cfg = astar_cfg();
    // Stores performed by each iteration (the oracle's semantics):
    // applied to the component-visible (committed) waymap when the
    // iteration retires, exactly as the core commits them.
    let mut stores_per_iter: Vec<Vec<u64>> = Vec::new();
    {
        let mut visited: HashMap<u64, u32> = waymap.clone();
        for &index in worklist {
            let mut stores = Vec::new();
            for &off in cfg.offsets.iter() {
                let idx1 = (index as i64 + off) as u64;
                let wtaken = *visited.get(&idx1).unwrap_or(&0) as u64 == fillnum;
                if !wtaken && *maparp.get(&idx1).unwrap_or(&0) == 0 {
                    visited.insert(idx1, fillnum as u32);
                    stores.push(idx1);
                }
            }
            stores_per_iter.push(stores);
        }
    }
    let mut committed_waymap = waymap.clone();
    let mut c = AstarPredictor::new(cfg.clone());
    let mut obs: VecDeque<ObsPacket> = VecDeque::new();
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.fillnum_pc,
        value: fillnum,
    });
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.wl_base_pc,
        value: 0x50_0000,
    });
    obs.push_back(ObsPacket::DestValue {
        pc: cfg.wl_len_pc,
        value: worklist.len() as u64,
    });
    let mut resp: VecDeque<LoadResponse> = VecDeque::new();
    let mut preds: Vec<PredPacket> = Vec::new();
    let mut pending: Vec<pfm_fabric::FabricLoad> = Vec::new();
    let mut retired = 0u64;
    for tick in 0..4000 {
        let mut out_p = Vec::new();
        let mut out_l = Vec::new();
        {
            let mut io = FabricIo::new(
                8, tick, &mut obs, &mut resp, &mut out_p, &mut out_l, 1024, 1024,
            );
            c.tick(&mut io);
        }
        preds.extend(out_p);
        pending.extend(out_l);
        // Answer all loads from the modeled data structures.
        for l in pending.drain(..) {
            let value = if l.addr >= 0x50_0000 && l.addr < 0x60_0000 {
                worklist[((l.addr - 0x50_0000) / 4) as usize]
            } else if l.addr >= 0x20_0000 {
                *maparp.get(&(l.addr - 0x20_0000)).unwrap_or(&0) as u64
            } else {
                *committed_waymap
                    .get(&((l.addr - 0x10_0000) / 8))
                    .unwrap_or(&0) as u64
            };
            resp.push_back(LoadResponse { id: l.id, value });
        }
        // Retire an iteration only once all of its waymap predictions
        // were emitted (the core cannot retire what it has not fetched).
        let waymap_pcs: Vec<u64> = cfg.waymap_branch_pcs.to_vec();
        let emitted_w = preds.iter().filter(|p| waymap_pcs.contains(&p.pc)).count() as u64;
        if emitted_w >= (retired + 1) * NEIGHBORS as u64 && (retired as usize) < worklist.len() {
            for &idx1 in &stores_per_iter[retired as usize] {
                committed_waymap.insert(idx1, fillnum as u32);
            }
            retired += 1;
            obs.push_back(ObsPacket::DestValue {
                pc: cfg.induction_pc,
                value: retired,
            });
        }
        if preds.len() > worklist.len() * 16 {
            break;
        }
    }
    preds
}

/// Software oracle for the astar ROI given a full memory image.
fn astar_oracle(
    worklist: &[u64],
    waymap: &HashMap<u64, u32>,
    maparp: &HashMap<u64, u8>,
    fillnum: u64,
) -> Vec<PredPacket> {
    let cfg = astar_cfg();
    let mut visited: HashMap<u64, u32> = waymap.clone();
    let mut preds = Vec::new();
    for &index in worklist {
        for (k, &off) in cfg.offsets.iter().enumerate() {
            let idx1 = (index as i64 + off) as u64;
            let vtag = *visited.get(&idx1).unwrap_or(&0);
            let wtaken = vtag as u64 == fillnum;
            preds.push(PredPacket {
                pc: cfg.waymap_branch_pcs[k],
                taken: wtaken,
            });
            if wtaken {
                continue;
            }
            let blocked = *maparp.get(&idx1).unwrap_or(&0) != 0;
            preds.push(PredPacket {
                pc: cfg.maparp_branch_pcs[k],
                taken: blocked,
            });
            if !blocked {
                visited.insert(idx1, fillnum as u32);
            }
        }
    }
    preds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With a sufficiently generous window, the component's full
    /// prediction stream is *exactly* the oracle's: the index1_CAM
    /// store inference perfectly stands in for the unretired stores.
    #[test]
    fn astar_predictions_match_software_oracle(
        worklist in prop::collection::vec(100u64..160, 1..12),
        blocked in prop::collection::vec(80u64..180, 0..20),
        visited in prop::collection::vec(80u64..180, 0..10),
        fillnum in 1u64..5,
    ) {
        let maparp: HashMap<u64, u8> = blocked.iter().map(|&i| (i, 1u8)).collect();
        let waymap: HashMap<u64, u32> = visited.iter().map(|&i| (i, fillnum as u32)).collect();
        let got = drive_astar(&worklist, &waymap, &maparp, fillnum);
        let want = astar_oracle(&worklist, &waymap, &maparp, fillnum);
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// bfs
// ---------------------------------------------------------------------

fn bfs_cfg() -> BfsConfig {
    BfsConfig {
        frontier_base_pc: 0x100,
        frontier_len_pc: 0x104,
        induction_pc: 0x108,
        offsets_base: 0x100_0000,
        neighbors_base: 0x200_0000,
        properties_base: 0x300_0000,
        loop_branch_pc: 0x400,
        visited_branch_pc: 0x410,
        window_size: 64,
        dup_inference: true,
        predict_loop: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bfs component's interleaved (loop, visited) stream matches a
    /// reference walk of the CSR level, including visited-store
    /// inference for duplicate neighbors within the level.
    #[test]
    fn bfs_predictions_match_reference_walk(
        adjacency in prop::collection::vec(prop::collection::vec(0u32..24, 0..5), 1..8),
        pre_visited in prop::collection::vec(0u32..24, 0..6),
    ) {
        let cfg = bfs_cfg();
        // Build CSR over nodes 0..frontier_len with the given adjacency.
        let mut offsets = vec![0u64];
        let mut neighbors: Vec<u32> = Vec::new();
        for l in &adjacency {
            neighbors.extend(l);
            offsets.push(neighbors.len() as u64);
        }
        let props: HashMap<u32, i64> = pre_visited.iter().map(|&v| (v, 7i64)).collect();

        // Reference walk.
        let mut want = Vec::new();
        let mut seen: HashMap<u32, bool> = HashMap::new();
        for l in &adjacency {
            for &v in l {
                want.push(PredPacket { pc: cfg.loop_branch_pc, taken: false });
                let visited = seen.contains_key(&v) || props.contains_key(&v);
                want.push(PredPacket { pc: cfg.visited_branch_pc, taken: visited });
                seen.insert(v, true);
            }
            want.push(PredPacket { pc: cfg.loop_branch_pc, taken: true });
        }

        // Drive the component.
        let mut c = BfsComponent::new(cfg.clone());
        let mut obs: VecDeque<ObsPacket> = VecDeque::new();
        obs.push_back(ObsPacket::DestValue { pc: cfg.frontier_base_pc, value: 0x500_0000 });
        obs.push_back(ObsPacket::DestValue { pc: cfg.frontier_len_pc, value: adjacency.len() as u64 });
        let mut resp: VecDeque<LoadResponse> = VecDeque::new();
        let mut got = Vec::new();
        let mut pending: Vec<pfm_fabric::FabricLoad> = Vec::new();
        for tick in 0..4000 {
            let mut out_p = Vec::new();
            let mut out_l = Vec::new();
            {
                let mut io =
                    FabricIo::new(8, tick, &mut obs, &mut resp, &mut out_p, &mut out_l, 4096, 4096);
                c.tick(&mut io);
            }
            got.extend(out_p);
            pending.extend(out_l);
            for l in pending.drain(..) {
                let value = if l.addr >= 0x500_0000 {
                    (l.addr - 0x500_0000) / 4 // frontier[i] = node i
                } else if l.addr >= cfg.properties_base {
                    let v = ((l.addr - cfg.properties_base) / 8) as u32;
                    (*props.get(&v).unwrap_or(&-1)) as u64
                } else if l.addr >= cfg.neighbors_base {
                    neighbors[((l.addr - cfg.neighbors_base) / 4) as usize] as u64
                } else {
                    offsets[((l.addr - cfg.offsets_base) / 8) as usize]
                };
                resp.push_back(LoadResponse { id: l.id, value });
            }
            if got.len() >= want.len() {
                break;
            }
        }
        prop_assert_eq!(got, want);
    }
}

// ---------------------------------------------------------------------
// prefetch engine
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The affine walk enumerates exactly the program's address
    /// sequence (base + sum of level strides), in order, for arbitrary
    /// extents and strides.
    #[test]
    fn affine_walk_matches_nested_loops(
        extents in prop::collection::vec(1u64..5, 1..4),
        strides in prop::collection::vec(8i64..2048, 3),
        base in 0x1000u64..0x10_0000,
    ) {
        let strides = strides[..extents.len()].to_vec();
        let total: u64 = extents.iter().product();
        let cfg = EngineConfig {
            base_pcs: vec![0x100],
            count_pc: 0x104,
            load_pc: 0x108,
            extents: extents.clone(),
            strides: strides.clone(),
            stream_offsets: vec![0],
            as_set: false,
            adaptive: false,
            init_distance: total + 4,
        };
        let mut c = CustomPrefetcher::new("t", vec![cfg]);
        let mut obs: VecDeque<ObsPacket> = VecDeque::new();
        obs.push_back(ObsPacket::DestValue { pc: 0x100, value: base });
        obs.push_back(ObsPacket::DestValue { pc: 0x104, value: total });
        let mut resp = VecDeque::new();
        let mut got: Vec<u64> = Vec::new();
        for tick in 0..(total as usize * 2 + 8) {
            let mut out_p = Vec::new();
            let mut out_l = Vec::new();
            {
                let mut io = FabricIo::new(
                    8,
                    tick as u64,
                    &mut obs,
                    &mut resp,
                    &mut out_p,
                    &mut out_l,
                    1 << 20,
                    1 << 20,
                );
                c.tick(&mut io);
            }
            got.extend(out_l.iter().map(|l| l.addr));
        }
        // Reference: explicit nested loops.
        let mut want = Vec::new();
        let mut idx = vec![0u64; extents.len()];
        'outer: loop {
            let off: i64 = idx.iter().zip(&strides).map(|(&i, &s)| i as i64 * s).sum();
            want.push((base as i64 + off) as u64);
            // increment odometer, innermost last.
            for lvl in (0..extents.len()).rev() {
                idx[lvl] += 1;
                if idx[lvl] < extents[lvl] {
                    continue 'outer;
                }
                idx[lvl] = 0;
                if lvl == 0 {
                    break 'outer;
                }
            }
        }
        prop_assert_eq!(got, want);
    }
}
