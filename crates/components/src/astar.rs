//! The custom *astar* branch predictor of §4.1 (Figure 7).
//!
//! Three decoupled engines ("threads" in fixed hardware):
//!
//! * **T0** walks the input worklist: whenever the index_queue has a
//!   free slot it pre-allocates the tail entry and issues a load for
//!   the next `index`, tagged with the entry number so out-of-order
//!   returns land in the right slot.
//! * **T1** consumes valid `index` entries in order, computes the
//!   eight neighbor `index1` values, and issues the `waymap` and
//!   `maparp` loads for each (two `index1`s / four loads per RF cycle
//!   in the paper's synthesized design).
//! * **T2** converts raw predicates into final predictions: a hit in
//!   the **index1_CAM** means an older, not-yet-retired visit logically
//!   stored `fillnum` to the same `index1`, so the `waymap` branch is
//!   overridden to taken ("already visited") and the `maparp`
//!   prediction is discarded. A final [NT, NT] pair implies a store,
//!   which inserts `index1` into the CAM.
//!
//! The speculative scope is the index_queue size: entries (and their
//! CAM contributions) are freed as the Retire Agent observes the
//! loop-induction variable retire.

use pfm_fabric::{CustomComponent, FabricIo, FabricLoad, ObsPacket, PredPacket, WatchKind};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Neighbors per worklist index (the 2D grid's 8-neighborhood).
pub const NEIGHBORS: usize = 8;

/// Static configuration of the astar component — the "bitstream"
/// shipped with the executable.
#[derive(Clone, Debug)]
pub struct AstarConfig {
    /// PC whose destination value is the current `fillnum` (ROI begin).
    pub fillnum_pc: u64,
    /// PC whose destination value is the input worklist base (per
    /// `makebound2` call).
    pub wl_base_pc: u64,
    /// PC whose destination value is the input worklist length.
    pub wl_len_pc: u64,
    /// PC of the loop-induction increment (advances the commit head).
    pub induction_pc: u64,
    /// Base address of the `waymap` array (8 bytes per cell; `fillnum`
    /// in the low 4 bytes).
    pub waymap_base: u64,
    /// Base address of the `maparp` array (1 byte per cell).
    pub maparp_base: u64,
    /// The eight neighbor offsets (`index1 = index + offset`).
    pub offsets: [i64; NEIGHBORS],
    /// PCs of the eight `waymap` branches (taken = already visited =
    /// skip).
    pub waymap_branch_pcs: [u64; NEIGHBORS],
    /// PCs of the eight `maparp` branches (taken = blocked = skip).
    pub maparp_branch_pcs: [u64; NEIGHBORS],
    /// index_queue entries: the component's speculative scope.
    pub index_queue_size: usize,
    /// Enable the index1_CAM store inference (disabling it reproduces
    /// the slipstream-style limitation of §1.1).
    pub store_inference: bool,
    /// Predict the `maparp` branches too (disabling leaves them to the
    /// core predictor, as automated pre-execution must).
    pub predict_maparp: bool,
    /// `index1`s processed by T1 per RF cycle (2 in the paper's
    /// synthesized design, i.e. four loads per cycle).
    pub t1_width: usize,
}

const ID_KIND_SHIFT: u64 = 62;
const ID_GEN_SHIFT: u64 = 40;
const KIND_T0: u64 = 0;
const KIND_T1: u64 = 1;

#[derive(Clone, Debug)]
struct IterEntry {
    /// Worklist value, once T0's load returns.
    index: Option<u64>,
    /// Neighbor cell ids (valid once `index` is known).
    idx1: [u64; NEIGHBORS],
    /// waymap values per neighbor.
    wval: [Option<u32>; NEIGHBORS],
    /// maparp values per neighbor.
    mval: [Option<u8>; NEIGHBORS],
    /// waymap load issued per neighbor.
    w_issued: [bool; NEIGHBORS],
    /// maparp load issued per neighbor.
    m_issued: [bool; NEIGHBORS],
}

impl IterEntry {
    fn new() -> IterEntry {
        IterEntry {
            index: None,
            idx1: [0; NEIGHBORS],
            wval: [None; NEIGHBORS],
            mval: [None; NEIGHBORS],
            w_issued: [false; NEIGHBORS],
            m_issued: [false; NEIGHBORS],
        }
    }
}

/// Per-component statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AstarComponentStats {
    /// `makebound2` calls observed.
    pub calls: u64,
    /// Worklist iterations processed.
    pub iterations: u64,
    /// Final predictions emitted.
    pub predictions: u64,
    /// Predictions overridden by an index1_CAM hit (inferred store).
    pub cam_overrides: u64,
}

/// The custom astar branch predictor (Figure 7).
pub struct AstarPredictor {
    cfg: AstarConfig,
    fillnum: u64,
    call_gen: u64,
    wl_base: u64,
    wl_len: u64,
    have_call: bool,

    /// Absolute iteration numbers: `commit` ≤ `emit` ≤ `t1` ≤ `alloc`.
    commit_iter: u64,
    alloc_iter: u64,
    t1_iter: u64,
    t1_k: usize,
    emit_iter: u64,
    emit_k: usize,
    /// Whether the waymap half of (emit_iter, emit_k) was pushed.
    emit_w_done: bool,

    /// Window of iterations [base_iter, base_iter + len).
    base_iter: u64,
    iters: VecDeque<IterEntry>,

    /// index1 -> inserting iteration (hardware: an 8*scope-entry CAM).
    cam: BTreeMap<u64, u64>,

    stats: AstarComponentStats,
}

impl std::fmt::Debug for AstarPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AstarPredictor")
            .field("fillnum", &self.fillnum)
            .field("stats", &self.stats)
            .finish()
    }
}

impl AstarPredictor {
    /// Creates the component from its configuration.
    pub fn new(cfg: AstarConfig) -> AstarPredictor {
        AstarPredictor {
            cfg,
            fillnum: 0,
            call_gen: 0,
            wl_base: 0,
            wl_len: 0,
            have_call: false,
            commit_iter: 0,
            alloc_iter: 0,
            t1_iter: 0,
            t1_k: 0,
            emit_iter: 0,
            emit_k: 0,
            emit_w_done: false,
            base_iter: 0,
            iters: VecDeque::new(),
            cam: BTreeMap::new(),
            stats: AstarComponentStats::default(),
        }
    }

    /// Component statistics.
    pub fn stats(&self) -> &AstarComponentStats {
        &self.stats
    }

    fn reset_call(&mut self) {
        self.call_gen = (self.call_gen + 1) & 0xFFFF;
        self.have_call = false;
        self.commit_iter = 0;
        self.alloc_iter = 0;
        self.t1_iter = 0;
        self.t1_k = 0;
        self.emit_iter = 0;
        self.emit_k = 0;
        self.emit_w_done = false;
        self.base_iter = 0;
        self.iters.clear();
        self.cam.clear();
    }

    fn entry(&self, iter: u64) -> Option<&IterEntry> {
        if iter < self.base_iter {
            return None;
        }
        self.iters.get((iter - self.base_iter) as usize)
    }

    fn entry_mut(&mut self, iter: u64) -> Option<&mut IterEntry> {
        if iter < self.base_iter {
            return None;
        }
        let base = self.base_iter;
        self.iters.get_mut((iter - base) as usize)
    }

    fn make_id(&self, kind: u64, payload: u64) -> u64 {
        (kind << ID_KIND_SHIFT)
            | (self.call_gen << ID_GEN_SHIFT)
            | (payload & ((1 << ID_GEN_SHIFT) - 1))
    }

    fn consume_observations(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            match obs {
                ObsPacket::BeginRoi => {}
                ObsPacket::DestValue { pc, value } => {
                    if pc == self.cfg.fillnum_pc {
                        self.fillnum = value;
                    } else if pc == self.cfg.wl_base_pc {
                        self.reset_call();
                        self.wl_base = value;
                    } else if pc == self.cfg.wl_len_pc {
                        self.wl_len = value;
                        self.have_call = true;
                        self.stats.calls += 1;
                    } else if pc == self.cfg.induction_pc {
                        self.retire_iteration();
                    }
                }
                ObsPacket::StoreValue { .. } | ObsPacket::BranchOutcome { .. } => {
                    // Observed for snoop-rate fidelity; this design
                    // derives everything it needs from values above.
                }
                ObsPacket::Squash => {}
            }
        }
    }

    fn retire_iteration(&mut self) {
        self.commit_iter += 1;
        // Free window entries.
        while self.base_iter < self.commit_iter {
            self.iters.pop_front();
            self.base_iter += 1;
        }
        // CAM entries live one extra scope beyond retirement: a T1 load
        // issued before the store committed may only be converted by T2
        // after the store retires, and "visited" is sticky within a
        // call, so the longer lifetime is always safe (bounded CAM:
        // 8 x 2*scope entries).
        let scope = self.cfg.index_queue_size as u64;
        let commit = self.commit_iter;
        self.cam.retain(|_, &mut it| it + scope >= commit);
        // If the core ran ahead of the component (fallback-predicted
        // iterations retiring before we processed them), skip them.
        if self.alloc_iter < self.base_iter {
            self.alloc_iter = self.base_iter;
        }
        if self.t1_iter < self.base_iter {
            self.t1_iter = self.base_iter;
            self.t1_k = 0;
        }
        if self.emit_iter < self.base_iter {
            self.emit_iter = self.base_iter;
            self.emit_k = 0;
            self.emit_w_done = false;
        }
    }

    fn consume_load_responses(&mut self, io: &mut FabricIo<'_>) {
        while let Some(resp) = io.pop_load_resp() {
            let kind = resp.id >> ID_KIND_SHIFT;
            let gen = (resp.id >> ID_GEN_SHIFT) & 0xFFFF;
            if gen != self.call_gen {
                continue; // stale response from a previous call
            }
            let payload = resp.id & ((1 << ID_GEN_SHIFT) - 1);
            if kind == KIND_T0 {
                let iter = payload;
                if let Some(e) = self.entry_mut(iter) {
                    e.index = Some(resp.value);
                }
            } else {
                let is_maparp = payload & 1 == 1;
                let g = payload >> 1;
                let iter = g / NEIGHBORS as u64;
                let k = (g % NEIGHBORS as u64) as usize;
                if let Some(e) = self.entry_mut(iter) {
                    if is_maparp {
                        e.mval[k] = Some(resp.value as u8);
                    } else {
                        e.wval[k] = Some(resp.value as u32);
                    }
                }
            }
        }
    }

    /// T0: pre-allocate index_queue tail entries and load the next
    /// worklist indices (one per RF cycle, as synthesized).
    fn t0(&mut self, io: &mut FabricIo<'_>) {
        if !self.have_call {
            return;
        }
        if self.alloc_iter >= self.wl_len {
            return;
        }
        if (self.alloc_iter - self.base_iter) as usize >= self.cfg.index_queue_size {
            return; // scope full
        }
        let addr = self.wl_base + 4 * self.alloc_iter;
        let id = self.make_id(KIND_T0, self.alloc_iter);
        if io.push_load(FabricLoad {
            id,
            addr,
            size: 4,
            is_prefetch: false,
        }) {
            self.iters.push_back(IterEntry::new());
            self.alloc_iter += 1;
        }
    }

    /// T1: compute index1s and issue waymap/maparp load pairs. Each
    /// half of the pair is tracked separately so an odd width budget
    /// never re-issues work.
    fn t1(&mut self, io: &mut FabricIo<'_>) {
        for _ in 0..self.cfg.t1_width {
            if self.t1_iter >= self.alloc_iter {
                return;
            }
            let Some(index) = self.entry(self.t1_iter).and_then(|e| e.index) else {
                return; // head index not returned yet (in-order consume)
            };
            let k = self.t1_k;
            // Wrapping address arithmetic throughout: `index` is a load
            // response, and a faulty fabric (the chaos harness) can
            // return garbage. Hardware adders wrap; the wild address
            // simply misses in the cache.
            let idx1 = (index as i64).wrapping_add(self.cfg.offsets[k]) as u64;
            let g = self.t1_iter * NEIGHBORS as u64 + k as u64;
            let (w_issued, m_issued) = {
                // pfm-lint: allow(hygiene): t1_iter is kept in-window by the T1 walk
                let e = self.entry(self.t1_iter).expect("in window");
                (e.w_issued[k], e.m_issued[k])
            };
            if !w_issued {
                let wid = self.make_id(KIND_T1, g << 1);
                let waddr = self.cfg.waymap_base.wrapping_add(idx1.wrapping_mul(8));
                if !io.push_load(FabricLoad {
                    id: wid,
                    addr: waddr,
                    size: 4,
                    is_prefetch: false,
                }) {
                    return;
                }
                let iter = self.t1_iter;
                if let Some(e) = self.entry_mut(iter) {
                    e.idx1[k] = idx1;
                    e.w_issued[k] = true;
                }
            }
            if !m_issued {
                let mid = self.make_id(KIND_T1, (g << 1) | 1);
                let maddr = self.cfg.maparp_base.wrapping_add(idx1);
                if !io.push_load(FabricLoad {
                    id: mid,
                    addr: maddr,
                    size: 1,
                    is_prefetch: false,
                }) {
                    return; // finish the pair next cycle
                }
                let iter = self.t1_iter;
                if let Some(e) = self.entry_mut(iter) {
                    e.idx1[k] = idx1;
                    e.m_issued[k] = true;
                }
            }
            self.t1_k += 1;
            if self.t1_k == NEIGHBORS {
                self.t1_k = 0;
                self.t1_iter += 1;
                self.stats.iterations += 1;
            }
        }
    }

    /// T2: convert raw predicates to final predictions with inferred
    /// stores, and push them toward IntQ-F.
    fn t2(&mut self, io: &mut FabricIo<'_>) {
        loop {
            if self.emit_iter >= self.wl_len || self.emit_iter >= self.alloc_iter {
                return;
            }
            // The emission pointer may only walk index1s T1 has issued.
            if self.emit_iter > self.t1_iter
                || (self.emit_iter == self.t1_iter && self.emit_k >= self.t1_k)
            {
                return;
            }
            let k = self.emit_k;
            let (idx1, wval, mval) = {
                let Some(e) = self.entry(self.emit_iter) else {
                    return;
                };
                (e.idx1[k], e.wval[k], e.mval[k])
            };
            let wpc = self.cfg.waymap_branch_pcs[k];
            let mpc = self.cfg.maparp_branch_pcs[k];

            if !self.emit_w_done {
                // Inferred store: an unretired older visit to the same
                // index1 means the waymap branch will see fillnum.
                let cam_hit = self.cfg.store_inference && self.cam.contains_key(&idx1);
                let wtaken = if cam_hit {
                    true
                } else {
                    let Some(w) = wval else { return };
                    w as u64 == self.fillnum
                };
                if !io.push_pred(PredPacket {
                    pc: wpc,
                    taken: wtaken,
                }) {
                    return;
                }
                self.stats.predictions += 1;
                if cam_hit {
                    self.stats.cam_overrides += 1;
                }
                if wtaken {
                    // Already visited: maparp branch never encountered.
                    self.advance_emit();
                    continue;
                }
                self.emit_w_done = true;
            }

            // waymap predicted not-taken: the maparp branch follows.
            let Some(m) = mval else { return };
            let mtaken = m != 0;
            if self.cfg.predict_maparp {
                if !io.push_pred(PredPacket {
                    pc: mpc,
                    taken: mtaken,
                }) {
                    return;
                }
                self.stats.predictions += 1;
            }
            if !mtaken && self.cfg.store_inference {
                // [NT, NT]: the control-dependent region stores fillnum.
                self.cam.insert(idx1, self.emit_iter);
            }
            self.advance_emit();
        }
    }

    fn advance_emit(&mut self) {
        self.emit_w_done = false;
        self.emit_k += 1;
        if self.emit_k == NEIGHBORS {
            self.emit_k = 0;
            self.emit_iter += 1;
        }
    }
}

impl CustomComponent for AstarPredictor {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        self.consume_observations(io);
        self.consume_load_responses(io);
        self.t2(io);
        self.t1(io);
        self.t0(io);
    }

    fn on_squash(&mut self) {
        // The Fetch Agent replays delivered predictions itself; the
        // component's speculative structures (CAM, queues) remain
        // consistent because they are keyed by retirement, which the
        // squash does not move.
    }

    fn name(&self) -> &'static str {
        "astar-custom-bp"
    }

    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        let mut w = vec![
            (self.cfg.fillnum_pc, WatchKind::DestValue),
            (self.cfg.wl_base_pc, WatchKind::DestValue),
            (self.cfg.wl_len_pc, WatchKind::DestValue),
            (self.cfg.induction_pc, WatchKind::DestValue),
        ];
        for &pc in &self.cfg.waymap_branch_pcs {
            w.push((pc, WatchKind::CondBranch));
        }
        for &pc in &self.cfg.maparp_branch_pcs {
            w.push((pc, WatchKind::CondBranch));
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::LoadResponse;
    use std::collections::VecDeque;

    fn cfg() -> AstarConfig {
        AstarConfig {
            fillnum_pc: 0x100,
            wl_base_pc: 0x104,
            wl_len_pc: 0x108,
            induction_pc: 0x10c,
            waymap_base: 0x10_0000,
            maparp_base: 0x20_0000,
            offsets: [-65, -64, -63, -1, 1, 63, 64, 65],
            waymap_branch_pcs: [0x200, 0x210, 0x220, 0x230, 0x240, 0x250, 0x260, 0x270],
            maparp_branch_pcs: [0x204, 0x214, 0x224, 0x234, 0x244, 0x254, 0x264, 0x274],
            index_queue_size: 8,
            store_inference: true,
            predict_maparp: true,
            t1_width: 2,
        }
    }

    struct Harness {
        obs: VecDeque<ObsPacket>,
        resp: VecDeque<LoadResponse>,
        preds: Vec<PredPacket>,
        loads: Vec<FabricLoad>,
    }

    impl Harness {
        fn new() -> Harness {
            Harness {
                obs: VecDeque::new(),
                resp: VecDeque::new(),
                preds: Vec::new(),
                loads: Vec::new(),
            }
        }

        fn tick(
            &mut self,
            c: &mut AstarPredictor,
            width: usize,
        ) -> (Vec<PredPacket>, Vec<FabricLoad>) {
            let mut preds = Vec::new();
            let mut loads = Vec::new();
            {
                let mut io = FabricIo::new(
                    width,
                    0,
                    &mut self.obs,
                    &mut self.resp,
                    &mut preds,
                    &mut loads,
                    64,
                    64,
                );
                c.tick(&mut io);
            }
            self.preds.extend(preds.iter().copied());
            self.loads.extend(loads.iter().copied());
            (preds, loads)
        }
    }

    fn setup_call(h: &mut Harness, c: &mut AstarPredictor, fillnum: u64, base: u64, len: u64) {
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: fillnum,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: base,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x108,
            value: len,
        });
        h.tick(c, 4);
    }

    #[test]
    fn t0_issues_worklist_loads_up_to_scope() {
        let mut c = AstarPredictor::new(cfg());
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 100);
        let mut t0_loads = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .count();
        for _ in 0..20 {
            h.tick(&mut c, 4);
            t0_loads = h
                .loads
                .iter()
                .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
                .count();
        }
        // Scope is 8: T0 must stop at 8 outstanding iterations.
        assert_eq!(t0_loads, 8);
        assert_eq!(h.loads[0].addr, 0x50_0000);
        assert_eq!(h.loads[0].size, 4);
    }

    #[test]
    fn t1_issues_neighbor_load_pairs_in_order() {
        let mut c = AstarPredictor::new(cfg());
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 4);
        h.tick(&mut c, 4);
        // Return the first worklist index (cell 1000).
        let t0 = h
            .loads
            .iter()
            .find(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .unwrap();
        h.resp.push_back(LoadResponse {
            id: t0.id,
            value: 1000,
        });
        h.tick(&mut c, 4);
        h.tick(&mut c, 4);
        let t1: Vec<_> = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T1)
            .collect();
        assert!(
            t1.len() >= 4,
            "expected waymap/maparp pairs, got {}",
            t1.len()
        );
        // First pair: neighbor 0 => idx1 = 1000 - 65 = 935.
        assert_eq!(t1[0].addr, 0x10_0000 + 8 * 935);
        assert_eq!(t1[0].size, 4);
        assert_eq!(t1[1].addr, 0x20_0000 + 935);
        assert_eq!(t1[1].size, 1);
    }

    /// Drives one full iteration and returns the emitted predictions.
    fn run_iteration(
        wvals: [u32; 8],
        mvals: [u8; 8],
        fillnum: u64,
        store_inf: bool,
    ) -> Vec<PredPacket> {
        let mut config = cfg();
        config.store_inference = store_inf;
        let mut c = AstarPredictor::new(config);
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, fillnum, 0x50_0000, 1);
        h.tick(&mut c, 8);
        let t0 = h
            .loads
            .iter()
            .find(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .unwrap();
        h.resp.push_back(LoadResponse {
            id: t0.id,
            value: 1000,
        });
        // Tick until all loads issued, answering as they appear.
        let mut answered = std::collections::BTreeSet::new();
        for _ in 0..40 {
            h.tick(&mut c, 8);
            let pending: Vec<_> = h
                .loads
                .iter()
                .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T1 && !answered.contains(&l.id))
                .copied()
                .collect();
            for l in pending {
                answered.insert(l.id);
                let payload = l.id & ((1 << ID_GEN_SHIFT) - 1);
                let is_m = payload & 1 == 1;
                let k = ((payload >> 1) % 8) as usize;
                let v = if is_m {
                    mvals[k] as u64
                } else {
                    wvals[k] as u64
                };
                h.resp.push_back(LoadResponse { id: l.id, value: v });
            }
        }
        h.preds.clone()
    }

    #[test]
    fn predictions_follow_loaded_predicates() {
        // Neighbor 0: visited (waymap == fillnum) => [T] only.
        // Neighbor 1: unvisited, passable => [NT, NT].
        // Neighbor 2: unvisited, blocked => [NT, T].
        let mut wvals = [5u32; 8];
        wvals[1] = 0;
        wvals[2] = 0;
        let mut mvals = [0u8; 8];
        mvals[2] = 1;
        let preds = run_iteration(wvals, mvals, 5, true);
        assert_eq!(
            preds[0],
            PredPacket {
                pc: 0x200,
                taken: true
            }
        );
        assert_eq!(
            preds[1],
            PredPacket {
                pc: 0x210,
                taken: false
            }
        );
        assert_eq!(
            preds[2],
            PredPacket {
                pc: 0x214,
                taken: false
            }
        );
        assert_eq!(
            preds[3],
            PredPacket {
                pc: 0x220,
                taken: false
            }
        );
        assert_eq!(
            preds[4],
            PredPacket {
                pc: 0x224,
                taken: true
            }
        );
        // Remaining 5 neighbors visited => single taken preds.
        assert_eq!(preds.len(), 5 + 5);
    }

    #[test]
    fn cam_infers_unretired_store_for_repeated_index1() {
        // Offsets -1 (k=3) and +1 (k=4) of indices 1000 and 1002 both
        // touch cell 1001. All cells unvisited & passable: the first
        // visit to 1001 stores fillnum, so the second visit's waymap
        // branch must be overridden to taken.
        let mut c = AstarPredictor::new(cfg());
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 2);
        h.tick(&mut c, 8);
        let t0s: Vec<_> = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .copied()
            .collect();
        h.resp.push_back(LoadResponse {
            id: t0s[0].id,
            value: 1000,
        });
        for _ in 0..3 {
            h.tick(&mut c, 8);
        }
        let t0s: Vec<_> = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .copied()
            .collect();
        assert_eq!(t0s.len(), 2);
        h.resp.push_back(LoadResponse {
            id: t0s[1].id,
            value: 1002,
        });
        let mut answered = std::collections::BTreeSet::new();
        for _ in 0..80 {
            h.tick(&mut c, 8);
            let pending: Vec<_> = h
                .loads
                .iter()
                .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T1 && !answered.contains(&l.id))
                .copied()
                .collect();
            for l in pending {
                answered.insert(l.id);
                // Everything unvisited (0 != fillnum 5) and passable.
                h.resp.push_back(LoadResponse { id: l.id, value: 0 });
            }
        }
        assert!(c.stats().cam_overrides >= 1, "expected a CAM override");
        // Find the two predictions for cell 1001: iteration 0 neighbor
        // k=4 (1000+1) => [NT,NT]; iteration 1 neighbor k=3 (1002-1)
        // => overridden [T].
        let it0_k4: Vec<_> = h
            .preds
            .iter()
            .filter(|p| p.pc == 0x240 || p.pc == 0x244)
            .collect();
        assert!(!it0_k4[0].taken);
        let it1_preds: Vec<_> = h
            .preds
            .iter()
            .skip_while(|p| p.pc != 0x200 || it0_k4.is_empty())
            .collect();
        let _ = it1_preds;
        // The second iteration's k=3 waymap branch (pc 0x230) appears
        // twice across the two iterations; its second instance must be
        // taken via the CAM.
        let k3: Vec<_> = h.preds.iter().filter(|p| p.pc == 0x230).collect();
        assert_eq!(k3.len(), 2);
        assert!(!k3[0].taken, "first visit to some cell at k=3 enters");
        assert!(
            k3[1].taken,
            "second visit to cell 1001 must be inferred visited"
        );
    }

    #[test]
    fn no_store_inference_misses_the_repeat() {
        let mut config = cfg();
        config.store_inference = false;
        let mut c = AstarPredictor::new(config);
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 2);
        h.tick(&mut c, 8);
        let t0s: Vec<_> = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .copied()
            .collect();
        h.resp.push_back(LoadResponse {
            id: t0s[0].id,
            value: 1000,
        });
        for _ in 0..3 {
            h.tick(&mut c, 8);
        }
        let t0s: Vec<_> = h
            .loads
            .iter()
            .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T0)
            .copied()
            .collect();
        h.resp.push_back(LoadResponse {
            id: t0s[1].id,
            value: 1002,
        });
        let mut answered = std::collections::BTreeSet::new();
        for _ in 0..80 {
            h.tick(&mut c, 8);
            let pending: Vec<_> = h
                .loads
                .iter()
                .filter(|l| l.id >> ID_KIND_SHIFT == KIND_T1 && !answered.contains(&l.id))
                .copied()
                .collect();
            for l in pending {
                answered.insert(l.id);
                h.resp.push_back(LoadResponse { id: l.id, value: 0 });
            }
        }
        let k3: Vec<_> = h.preds.iter().filter(|p| p.pc == 0x230).collect();
        assert_eq!(k3.len(), 2);
        assert!(
            !k3[1].taken,
            "without inference the stale load value wins (wrongly)"
        );
        assert_eq!(c.stats().cam_overrides, 0);
    }

    #[test]
    fn induction_retirement_frees_scope() {
        let mut c = AstarPredictor::new(cfg());
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 100);
        for _ in 0..20 {
            h.tick(&mut c, 4);
        }
        assert_eq!(c.alloc_iter, 8, "scope full");
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x10c,
            value: 1,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x10c,
            value: 2,
        });
        for _ in 0..10 {
            h.tick(&mut c, 4);
        }
        assert_eq!(
            c.alloc_iter, 10,
            "two slots freed, two new iterations allocated"
        );
    }

    #[test]
    fn new_call_resets_state() {
        let mut c = AstarPredictor::new(cfg());
        let mut h = Harness::new();
        setup_call(&mut h, &mut c, 5, 0x50_0000, 100);
        for _ in 0..10 {
            h.tick(&mut c, 4);
        }
        let gen_before = c.call_gen;
        setup_call(&mut h, &mut c, 5, 0x60_0000, 50);
        assert_eq!(c.call_gen, gen_before + 1);
        assert_eq!(c.wl_base, 0x60_0000);
        // T0 restarts from iteration 0 of the new worklist.
        let new_gen_t0: Vec<_> = h
            .loads
            .iter()
            .filter(|l| {
                l.id >> ID_KIND_SHIFT == KIND_T0 && (l.id >> ID_GEN_SHIFT) & 0xFFFF == c.call_gen
            })
            .collect();
        assert!(new_gen_t0.iter().all(|l| l.addr >= 0x60_0000));
        // Stale responses from the old generation are ignored.
        h.resp.push_back(LoadResponse {
            id: (gen_before << ID_GEN_SHIFT) | 3,
            value: 7,
        });
        h.tick(&mut c, 4);
        assert!(c
            .entry(0)
            .is_none_or(|e| e.index.is_none() || e.index != Some(7)));
    }
}
