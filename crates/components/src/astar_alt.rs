//! *astar-alt* (§5, Table 4): an alternative astar microarchitecture
//! inspired by the EXACT branch predictor. Instead of issuing loads to
//! the program's data structures, it **mimics** them: two large
//! prediction tables shadow `waymap` and `maparp`, and it maintains its
//! own copy of the worklists, populated from retire-stream store
//! observations, swapping roles at each `makebound2` call.
//!
//! Active updates (the EXACT idea): when the component predicts
//! [NT, NT] it immediately writes `fillnum` into its waymap mirror, so
//! the loop-carried store dependency is handled without a CAM. The
//! maparp mirror is *learned* from observed branch outcomes, so first
//! touches mispredict — one reason this design trails the load-based
//! one (125% vs 154% IPC improvement in the paper).

use crate::astar::NEIGHBORS;
use pfm_fabric::{CustomComponent, FabricIo, ObsPacket, PredPacket, WatchKind};
use std::collections::VecDeque;

const MIRROR_LOG2: usize = 16; // 64K entries per table (§5 scale: two 32KB-class tables)

/// Static configuration for astar-alt.
#[derive(Clone, Debug)]
pub struct AstarAltConfig {
    /// PC whose destination value is the current fillnum.
    pub fillnum_pc: u64,
    /// PC marking a `makebound2` call (worklists swap roles here).
    pub call_marker_pc: u64,
    /// PCs of stores that append to the output worklist (seed store in
    /// `fill()` plus the `bound2p` store in `makebound2`).
    pub worklist_store_pcs: Vec<u64>,
    /// The eight neighbor offsets.
    pub offsets: [i64; NEIGHBORS],
    /// waymap branch PCs.
    pub waymap_branch_pcs: [u64; NEIGHBORS],
    /// maparp branch PCs.
    pub maparp_branch_pcs: [u64; NEIGHBORS],
    /// Predictions emitted per RF cycle beyond the width budget is
    /// still capped by W; this caps the run-ahead in iterations.
    pub runahead_iters: u64,
    /// PC of the loop-induction increment (retirement tracking).
    pub induction_pc: u64,
}

/// Per-component statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AstarAltStats {
    /// Calls observed.
    pub calls: u64,
    /// Predictions emitted.
    pub predictions: u64,
    /// maparp predictions made before the mirror had learned the cell.
    pub cold_maparp: u64,
}

/// The table-mimicking astar predictor.
pub struct AstarAltPredictor {
    cfg: AstarAltConfig,
    fillnum: u64,
    /// waymap mirror: fillnum low bits per cell (no tags; aliasing is a
    /// modeled error source, as in a real 32KB table).
    waymap_mirror: Vec<u8>,
    /// maparp mirror: 0 = unknown, 1 = learned passable, 2 = learned
    /// blocked.
    maparp_mirror: Vec<u8>,
    /// Worklist being collected from observed stores (next call's
    /// input).
    cur_wl: Vec<u64>,
    /// Worklist being walked for predictions (this call's input).
    prev_wl: Vec<u64>,
    emit_iter: u64,
    emit_k: usize,
    emit_w_done: bool,
    commit_iter: u64,
    /// Emitted maparp (idx1, pc) awaiting retire outcomes, for mirror
    /// training.
    outcome_fifo: VecDeque<(u64, u64)>,
    /// Emitted waymap idx1s awaiting retire outcomes, for mirror
    /// repair (EXACT-style active update with retirement ground truth).
    w_outcome_fifo: VecDeque<u64>,
    stats: AstarAltStats,
}

impl std::fmt::Debug for AstarAltPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AstarAltPredictor")
            .field("stats", &self.stats)
            .finish()
    }
}

impl AstarAltPredictor {
    /// Creates the component.
    pub fn new(cfg: AstarAltConfig) -> AstarAltPredictor {
        AstarAltPredictor {
            cfg,
            fillnum: 0,
            waymap_mirror: vec![0xFF; 1 << MIRROR_LOG2],
            maparp_mirror: vec![0; 1 << MIRROR_LOG2],
            cur_wl: Vec::new(),
            prev_wl: Vec::new(),
            emit_iter: 0,
            emit_k: 0,
            emit_w_done: false,
            commit_iter: 0,
            outcome_fifo: VecDeque::new(),
            w_outcome_fifo: VecDeque::new(),
            stats: AstarAltStats::default(),
        }
    }

    /// Component statistics.
    pub fn stats(&self) -> &AstarAltStats {
        &self.stats
    }

    #[inline]
    fn slot(idx1: u64) -> usize {
        (idx1 as usize) & ((1 << MIRROR_LOG2) - 1)
    }

    fn consume_observations(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            match obs {
                ObsPacket::DestValue { pc, value } => {
                    if pc == self.cfg.fillnum_pc {
                        self.fillnum = value;
                    } else if pc == self.cfg.call_marker_pc {
                        // Swap worklists: the collected output becomes
                        // the new input.
                        self.prev_wl = std::mem::take(&mut self.cur_wl);
                        self.emit_iter = 0;
                        self.emit_k = 0;
                        self.emit_w_done = false;
                        self.commit_iter = 0;
                        self.outcome_fifo.clear();
                        self.w_outcome_fifo.clear();
                        self.stats.calls += 1;
                    } else if pc == self.cfg.induction_pc {
                        self.commit_iter += 1;
                    }
                }
                ObsPacket::StoreValue { pc, value, .. }
                    if self.cfg.worklist_store_pcs.contains(&pc) =>
                {
                    self.cur_wl.push(value);
                }
                ObsPacket::BranchOutcome { pc, taken } => {
                    // Repair the mirrors with retirement ground truth.
                    if self.cfg.waymap_branch_pcs.contains(&pc) {
                        if let Some(idx1) = self.w_outcome_fifo.pop_front() {
                            let f = (self.fillnum & 0xFF) as u8;
                            self.waymap_mirror[Self::slot(idx1)] =
                                if taken { f } else { f.wrapping_sub(1) };
                        }
                    } else if self.cfg.maparp_branch_pcs.contains(&pc) {
                        if let Some((idx1, _)) = self.outcome_fifo.pop_front() {
                            self.maparp_mirror[Self::slot(idx1)] = if taken { 2 } else { 1 };
                        }
                    }
                }
                _ => {}
            }
        }
    }

    fn emit(&mut self, io: &mut FabricIo<'_>) {
        loop {
            if self.emit_iter as usize >= self.prev_wl.len() {
                return;
            }
            if self.emit_iter >= self.commit_iter + self.cfg.runahead_iters {
                return;
            }
            let index = self.prev_wl[self.emit_iter as usize];
            let k = self.emit_k;
            let idx1 = (index as i64 + self.cfg.offsets[k]) as u64;
            let wslot = Self::slot(idx1);

            if !self.emit_w_done {
                let visited = self.waymap_mirror[wslot] == (self.fillnum & 0xFF) as u8;
                if !io.push_pred(PredPacket {
                    pc: self.cfg.waymap_branch_pcs[k],
                    taken: visited,
                }) {
                    return;
                }
                self.stats.predictions += 1;
                self.w_outcome_fifo.push_back(idx1);
                if visited {
                    self.advance();
                    continue;
                }
                self.emit_w_done = true;
            }

            let state = self.maparp_mirror[wslot];
            let blocked = state == 2;
            if state == 0 {
                self.stats.cold_maparp += 1;
            }
            if !io.push_pred(PredPacket {
                pc: self.cfg.maparp_branch_pcs[k],
                taken: blocked,
            }) {
                return;
            }
            self.stats.predictions += 1;
            self.outcome_fifo
                .push_back((idx1, self.cfg.maparp_branch_pcs[k]));
            if !blocked {
                // Active update: the program will store fillnum here.
                self.waymap_mirror[wslot] = (self.fillnum & 0xFF) as u8;
            }
            self.advance();
        }
    }

    fn advance(&mut self) {
        self.emit_w_done = false;
        self.emit_k += 1;
        if self.emit_k == NEIGHBORS {
            self.emit_k = 0;
            self.emit_iter += 1;
        }
    }
}

impl CustomComponent for AstarAltPredictor {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        self.consume_observations(io);
        self.emit(io);
    }

    fn name(&self) -> &'static str {
        "astar-alt"
    }

    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        let mut w = vec![
            (self.cfg.fillnum_pc, WatchKind::DestValue),
            (self.cfg.call_marker_pc, WatchKind::DestValue),
            (self.cfg.induction_pc, WatchKind::DestValue),
        ];
        for &pc in &self.cfg.worklist_store_pcs {
            w.push((pc, WatchKind::Store));
        }
        for &pc in &self.cfg.waymap_branch_pcs {
            w.push((pc, WatchKind::CondBranch));
        }
        for &pc in &self.cfg.maparp_branch_pcs {
            w.push((pc, WatchKind::CondBranch));
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn cfg() -> AstarAltConfig {
        AstarAltConfig {
            fillnum_pc: 0x100,
            call_marker_pc: 0x104,
            worklist_store_pcs: vec![0x108, 0x10c],
            offsets: [-65, -64, -63, -1, 1, 63, 64, 65],
            waymap_branch_pcs: [0x200, 0x210, 0x220, 0x230, 0x240, 0x250, 0x260, 0x270],
            maparp_branch_pcs: [0x204, 0x214, 0x224, 0x234, 0x244, 0x254, 0x264, 0x274],
            runahead_iters: 8,
            induction_pc: 0x110,
        }
    }

    fn tick(
        c: &mut AstarAltPredictor,
        obs: &mut VecDeque<ObsPacket>,
        width: usize,
    ) -> Vec<PredPacket> {
        let mut resp = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        {
            let mut io = FabricIo::new(width, 0, obs, &mut resp, &mut preds, &mut loads, 256, 256);
            c.tick(&mut io);
        }
        preds
    }

    #[test]
    fn mimics_worklist_from_observed_stores() {
        let mut c = AstarAltPredictor::new(cfg());
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 1,
        });
        obs.push_back(ObsPacket::StoreValue {
            pc: 0x108,
            addr: 0,
            value: 1000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0,
        }); // call: swap
        let preds = tick(&mut c, &mut obs, 16);
        // One worklist index -> 8 waymap preds (everything unvisited in
        // the mirror) each followed by a cold maparp pred (not blocked).
        assert_eq!(preds.len(), 16);
        assert_eq!(
            preds[0],
            PredPacket {
                pc: 0x200,
                taken: false
            }
        );
        assert_eq!(
            preds[1],
            PredPacket {
                pc: 0x204,
                taken: false
            }
        );
        assert!(c.stats().cold_maparp > 0);
    }

    #[test]
    fn active_update_handles_loop_carried_store() {
        // Worklist [1000, 1002]: both reach cell 1001 (offsets +1/-1).
        let mut c = AstarAltPredictor::new(cfg());
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 1,
        });
        obs.push_back(ObsPacket::StoreValue {
            pc: 0x108,
            addr: 0,
            value: 1000,
        });
        obs.push_back(ObsPacket::StoreValue {
            pc: 0x108,
            addr: 0,
            value: 1002,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0,
        });
        let preds = tick(&mut c, &mut obs, 64);
        // Find the two predictions for the k=3 (-1) and k=4 (+1)
        // waymap branches; iteration 0's +1 marks 1001 visited, so
        // iteration 1's -1 must predict taken.
        let k3: Vec<_> = preds.iter().filter(|p| p.pc == 0x230).collect();
        let k4: Vec<_> = preds.iter().filter(|p| p.pc == 0x240).collect();
        assert!(!k4[0].taken, "first visit to 1001 (from 1000, +1) enters");
        assert!(
            k3[1].taken,
            "second visit to 1001 (from 1002, -1) sees the active update"
        );
    }

    #[test]
    fn maparp_mirror_learns_from_outcomes() {
        let mut c = AstarAltPredictor::new(cfg());
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 1,
        });
        obs.push_back(ObsPacket::StoreValue {
            pc: 0x108,
            addr: 0,
            value: 1000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0,
        });
        let preds = tick(&mut c, &mut obs, 64);
        assert!(
            preds.iter().any(|p| p.pc == 0x204 && !p.taken),
            "cold maparp predicts passable"
        );
        // Outcome arrives: cell 935 (1000-65) is actually blocked.
        obs.push_back(ObsPacket::BranchOutcome {
            pc: 0x204,
            taken: true,
        });
        tick(&mut c, &mut obs, 64);
        // Next fill pass over the same cell must predict blocked.
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 2,
        });
        obs.push_back(ObsPacket::StoreValue {
            pc: 0x108,
            addr: 0,
            value: 1000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0,
        });
        let preds = tick(&mut c, &mut obs, 64);
        let m: Vec<_> = preds.iter().filter(|p| p.pc == 0x204).collect();
        assert!(m[0].taken, "learned blocked cell predicts taken");
    }

    #[test]
    fn runahead_is_bounded_by_retirement() {
        let mut c = AstarAltPredictor::new(cfg());
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 1,
        });
        for i in 0..100 {
            obs.push_back(ObsPacket::StoreValue {
                pc: 0x108,
                addr: 0,
                value: 1000 + i * 3,
            });
        }
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0,
        });
        for _ in 0..100 {
            tick(&mut c, &mut obs, 64);
        }
        // No retirement observed: at most runahead_iters iterations
        // worth of predictions.
        assert!(c.emit_iter <= 8, "emit ran ahead to {}", c.emit_iter);
        obs.push_back(ObsPacket::DestValue {
            pc: 0x110,
            value: 1,
        });
        for _ in 0..10 {
            tick(&mut c, &mut obs, 64);
        }
        assert!(c.emit_iter <= 9);
    }
}
