//! Custom prefetch engines (§4.3, Figure 16): a Prefetch Generation
//! Engine driven by values snooped from the retire stream, plus the
//! sampling-based performance-feedback mechanism that adapts the
//! prefetch distance.
//!
//! One component type covers all five SPEC use-cases by composing
//! engines:
//!
//! * *libquantum*: one engine, one stream, simple stride, adaptive
//!   distance.
//! * *bwaves*: one engine with a nested-loop iteration space whose FSM
//!   "surgically follows" the multi-induction-variable pattern.
//! * *lbm*: one engine with a cluster of streams pushed **as a set**
//!   (MLP-aware: skip the whole set if IntQ-IS lacks room).
//! * *milc*: several libquantum-like streams, each with adaptive
//!   distance.
//! * *leslie*: multiple engines, one per ROI.

use pfm_fabric::{CustomComponent, FabricIo, FabricLoad, ObsPacket, WatchKind};
use pfm_isa::snap::{Dec, Enc, SnapError};

/// The paper's epoch-based adaptive prefetch-distance controller: the
/// number of retired delinquent-load instances per epoch is a proxy for
/// IPC; keep increasing the distance while the proxy improves, settle
/// when flat, back off when it degrades.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveDistance {
    distance: u64,
    step: i64,
    last_proxy: u64,
    epoch_start_count: u64,
    epoch_start_rf: u64,
    epoch_len: u64,
    min: u64,
    max: u64,
}

impl AdaptiveDistance {
    /// Creates a controller starting at `init` lines of distance.
    pub fn new(init: u64, epoch_len: u64) -> AdaptiveDistance {
        AdaptiveDistance {
            distance: init,
            step: 4,
            last_proxy: 0,
            epoch_start_count: 0,
            epoch_start_rf: 0,
            epoch_len,
            min: 4,
            max: 512,
        }
    }

    /// Current prefetch distance (iterations ahead of retirement).
    pub fn distance(&self) -> u64 {
        self.distance
    }

    /// Called every RF cycle with the cumulative retired-instance
    /// count; adapts at epoch boundaries.
    pub fn observe(&mut self, rf_cycle: u64, retired_count: u64) {
        if rf_cycle < self.epoch_start_rf + self.epoch_len {
            return;
        }
        let proxy = retired_count - self.epoch_start_count;
        self.epoch_start_rf = rf_cycle;
        self.epoch_start_count = retired_count;
        if self.last_proxy == 0 {
            self.last_proxy = proxy;
            return;
        }
        // Hill climb: keep increasing while the proxy improves, settle
        // when flat, back off when it degrades.
        if proxy * 100 > self.last_proxy * 105 {
            self.distance =
                (self.distance as i64 + self.step).clamp(self.min as i64, self.max as i64) as u64;
        } else if proxy * 100 < self.last_proxy * 90 {
            self.distance =
                (self.distance as i64 - self.step).clamp(self.min as i64, self.max as i64) as u64;
        }
        self.last_proxy = proxy;
    }
}

/// One Prefetch Generation Engine: a (possibly nested) affine iteration
/// space over one or more delinquent-load streams.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// PCs whose retired destination values are the stream base
    /// addresses (one per stream; observing the first one resets the
    /// engine for a new ROI invocation).
    pub base_pcs: Vec<u64>,
    /// PC whose retired destination value is the total inner-iteration
    /// count for this invocation.
    pub count_pc: u64,
    /// PC of the delinquent load; each retired instance advances the
    /// engine's notion of where the core is.
    pub load_pc: u64,
    /// Nested loop extents, outermost first (a single entry is a plain
    /// 1-D stream). The product bounds the walk when `count_pc` gives
    /// no tighter bound.
    pub extents: Vec<u64>,
    /// Byte stride contributed by each loop level.
    pub strides: Vec<i64>,
    /// Static byte offsets of additional streams sharing the snooped
    /// base (e.g., lbm's cluster of delinquent loads at fixed plane
    /// offsets). The effective streams are the cross product of
    /// `base_pcs` and `stream_offsets`; leave as `[0]` for one stream
    /// per base.
    pub stream_offsets: Vec<i64>,
    /// Push the cluster's prefetches only as a complete set (lbm).
    pub as_set: bool,
    /// Enable the adaptive-distance feedback.
    pub adaptive: bool,
    /// Initial prefetch distance in iterations.
    pub init_distance: u64,
}

#[derive(Clone, Debug)]
struct Engine {
    cfg: EngineConfig,
    bases: Vec<Option<u64>>,
    count: u64,
    have_count: bool,
    /// Flat iteration index of the next prefetch.
    next: u64,
    /// Retired delinquent-load instances this invocation.
    retired: u64,
    total_retired: u64,
    adaptive: AdaptiveDistance,
    issued: u64,
    /// Streams already pushed for the in-progress set (multi-cycle
    /// cluster pushes).
    set_pos: usize,
    /// Sets skipped because IntQ-IS lacked room (lbm's MLP-aware skip).
    sets_skipped: u64,
}

impl Engine {
    fn new(cfg: EngineConfig) -> Engine {
        let n = cfg.base_pcs.len();
        let adaptive = AdaptiveDistance::new(cfg.init_distance, 256);
        Engine {
            cfg,
            bases: vec![None; n],
            count: 0,
            have_count: false,
            next: 0,
            retired: 0,
            total_retired: 0,
            adaptive,
            issued: 0,
            set_pos: 0,
            sets_skipped: 0,
        }
    }

    fn reset_invocation(&mut self) {
        self.next = 0;
        self.retired = 0;
        self.have_count = false;
        for b in &mut self.bases {
            *b = None;
        }
    }

    /// Serializes the engine's dynamic state (the configuration is not
    /// serialized; it ships with the run key).
    fn snapshot_state(&self, e: &mut Enc) {
        e.usize(self.bases.len());
        for b in &self.bases {
            match b {
                Some(v) => {
                    e.u8(1);
                    e.u64(*v);
                }
                None => e.u8(0),
            }
        }
        e.u64(self.count);
        e.bool(self.have_count);
        e.u64(self.next);
        e.u64(self.retired);
        e.u64(self.total_retired);
        e.u64(self.adaptive.distance);
        e.i64(self.adaptive.step);
        e.u64(self.adaptive.last_proxy);
        e.u64(self.adaptive.epoch_start_count);
        e.u64(self.adaptive.epoch_start_rf);
        e.u64(self.issued);
        e.usize(self.set_pos);
        e.u64(self.sets_skipped);
    }

    /// Restores state captured by [`Engine::snapshot_state`] into a
    /// freshly configured engine.
    fn restore_state(&mut self, d: &mut Dec<'_>) -> Result<(), SnapError> {
        if d.seq_len()? != self.bases.len() {
            return Err(SnapError::Corrupt("engine base count"));
        }
        for b in &mut self.bases {
            *b = match d.u8()? {
                0 => None,
                1 => Some(d.u64()?),
                _ => return Err(SnapError::Corrupt("engine base tag")),
            };
        }
        self.count = d.u64()?;
        self.have_count = d.bool()?;
        self.next = d.u64()?;
        self.retired = d.u64()?;
        self.total_retired = d.u64()?;
        self.adaptive.distance = d.u64()?;
        self.adaptive.step = d.i64()?;
        self.adaptive.last_proxy = d.u64()?;
        self.adaptive.epoch_start_count = d.u64()?;
        self.adaptive.epoch_start_rf = d.u64()?;
        self.issued = d.u64()?;
        self.set_pos = d.usize()?;
        self.sets_skipped = d.u64()?;
        Ok(())
    }

    fn observe(&mut self, pc: u64, value: u64) {
        if let Some(i) = self.cfg.base_pcs.iter().position(|&p| p == pc) {
            if i == 0 {
                self.reset_invocation();
            }
            self.bases[i] = Some(value);
            return;
        }
        if pc == self.cfg.count_pc {
            self.count = value.min(self.cfg.extents.iter().product());
            self.have_count = true;
            return;
        }
        if pc == self.cfg.load_pc {
            self.retired += 1;
            self.total_retired += 1;
        }
    }

    /// Byte offset of flat iteration `f` in the affine space.
    fn offset_of(&self, f: u64) -> i64 {
        let mut rem = f;
        let mut off = 0i64;
        for lvl in (0..self.cfg.extents.len()).rev() {
            let e = self.cfg.extents[lvl].max(1);
            let i = rem % e;
            rem /= e;
            off += i as i64 * self.cfg.strides[lvl];
        }
        off
    }

    fn ready(&self) -> bool {
        self.have_count && self.bases.iter().all(|b| b.is_some())
    }

    fn tick(&mut self, io: &mut FabricIo<'_>) {
        if !self.ready() {
            return;
        }
        if self.cfg.adaptive {
            self.adaptive.observe(io.rf_cycle(), self.total_retired);
        }
        let dist = self.adaptive.distance();
        // A starved engine must not prefetch behind the core: jump the
        // walk forward to the retirement point (stay "just ahead").
        if self.next < self.retired && self.set_pos == 0 {
            self.next = self.retired;
        }
        let horizon = (self.retired + dist).min(self.count);
        let n_streams = self.bases.len() * self.cfg.stream_offsets.len().max(1);
        while self.next < horizon {
            // MLP-aware set push: when starting a set, either the whole
            // cluster fits IntQ-IS or the set is skipped (never split
            // by space; a partial cluster just moves the bottleneck).
            if self.cfg.as_set && self.set_pos == 0 && io.load_queue_space() < n_streams {
                if io.load_queue_space() == 0 {
                    return;
                }
                self.sets_skipped += 1;
                self.next += 1;
                continue;
            }
            let off = self.offset_of(self.next);
            let offsets: &[i64] = if self.cfg.stream_offsets.is_empty() {
                &[0]
            } else {
                &self.cfg.stream_offsets
            };
            let mut flat: Vec<u64> = Vec::with_capacity(n_streams);
            for b in 0..self.bases.len() {
                // pfm-lint: allow(hygiene): set emission starts only once every base is ready
                let base = self.bases[b].expect("ready") as i64;
                for &soff in offsets {
                    // Wrapping: `base` is an observed value, and a
                    // faulty fabric (the chaos harness) can garble it.
                    flat.push(base.wrapping_add(soff).wrapping_add(off) as u64);
                }
            }
            while self.set_pos < flat.len() {
                let addr = flat[self.set_pos];
                if !io.push_load(FabricLoad {
                    id: 0,
                    addr,
                    size: 8,
                    is_prefetch: true,
                }) {
                    return; // width budget: resume the set next cycle
                }
                self.issued += 1;
                self.set_pos += 1;
            }
            self.set_pos = 0;
            self.next += 1;
        }
    }
}

/// Per-component statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetcherStats {
    /// Prefetch OPs pushed into IntQ-IS.
    pub prefetches: u64,
    /// Current distance of the first engine (post-adaptation).
    pub distance: u64,
}

/// A custom prefetcher: one or more Prefetch Generation Engines
/// (Figure 16).
pub struct CustomPrefetcher {
    engines: Vec<Engine>,
    name: &'static str,
}

impl std::fmt::Debug for CustomPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomPrefetcher")
            .field("name", &self.name)
            .finish()
    }
}

impl CustomPrefetcher {
    /// Creates a prefetcher from its engine configurations.
    pub fn new(name: &'static str, engines: Vec<EngineConfig>) -> CustomPrefetcher {
        CustomPrefetcher {
            engines: engines.into_iter().map(Engine::new).collect(),
            name,
        }
    }

    /// Component statistics.
    pub fn stats(&self) -> PrefetcherStats {
        PrefetcherStats {
            prefetches: self.engines.iter().map(|e| e.issued).sum(),
            distance: self
                .engines
                .first()
                .map(|e| e.adaptive.distance())
                .unwrap_or(0),
        }
    }
}

impl CustomComponent for CustomPrefetcher {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            if let ObsPacket::DestValue { pc, value } = obs {
                for e in &mut self.engines {
                    e.observe(pc, value);
                }
            }
        }
        for e in &mut self.engines {
            e.tick(io);
        }
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        let mut w = Vec::new();
        for e in &self.engines {
            for &pc in &e.cfg.base_pcs {
                w.push((pc, WatchKind::DestValue));
            }
            w.push((e.cfg.count_pc, WatchKind::DestValue));
            w.push((e.cfg.load_pc, WatchKind::Load));
        }
        w
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut e = Enc::new();
        e.usize(self.engines.len());
        for en in &self.engines {
            en.snapshot_state(&mut e);
        }
        Some(e.finish())
    }

    fn restore_state(&mut self, bytes: &[u8]) -> bool {
        let mut d = Dec::new(bytes);
        let restore = |d: &mut Dec<'_>, engines: &mut [Engine]| -> Result<(), SnapError> {
            if d.seq_len()? != engines.len() {
                return Err(SnapError::Corrupt("engine count"));
            }
            for en in engines {
                en.restore_state(d)?;
            }
            d.finish()
        };
        restore(&mut d, &mut self.engines).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn stride_cfg() -> EngineConfig {
        EngineConfig {
            base_pcs: vec![0x100],
            count_pc: 0x104,
            load_pc: 0x108,
            extents: vec![1 << 30],
            strides: vec![16],
            stream_offsets: vec![0],
            as_set: false,
            adaptive: false,
            init_distance: 8,
        }
    }

    fn tick(
        c: &mut CustomPrefetcher,
        obs: &mut VecDeque<ObsPacket>,
        width: usize,
        rf: u64,
    ) -> Vec<FabricLoad> {
        let mut resp = VecDeque::new();
        let mut preds = Vec::new();
        let mut loads = Vec::new();
        {
            let mut io = FabricIo::new(width, rf, obs, &mut resp, &mut preds, &mut loads, 64, 64);
            c.tick(&mut io);
        }
        loads
    }

    #[test]
    fn strided_prefetches_run_distance_ahead() {
        let mut c = CustomPrefetcher::new("libq", vec![stride_cfg()]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x10_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1000,
        });
        let loads = tick(&mut c, &mut obs, 8, 1);
        // Distance 8, nothing retired: exactly 8 prefetches, stride 16.
        assert_eq!(loads.len(), 8);
        assert!(loads.iter().all(|l| l.is_prefetch));
        assert_eq!(loads[0].addr, 0x10_0000);
        assert_eq!(loads[1].addr, 0x10_0010);
        // Retire 3 instances: 3 more prefetches.
        for _ in 0..3 {
            obs.push_back(ObsPacket::DestValue {
                pc: 0x108,
                value: 0,
            });
        }
        let loads = tick(&mut c, &mut obs, 8, 2);
        assert_eq!(loads.len(), 3);
        assert_eq!(loads[0].addr, 0x10_0000 + 8 * 16);
    }

    #[test]
    fn walk_stops_at_count() {
        let mut cfg = stride_cfg();
        cfg.init_distance = 100;
        let mut c = CustomPrefetcher::new("libq", vec![cfg]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x10_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 5,
        });
        let mut total = 0;
        for rf in 1..10 {
            total += tick(&mut c, &mut obs, 16, rf).len();
        }
        assert_eq!(total, 5);
    }

    #[test]
    fn nested_loop_addresses_follow_the_affine_space() {
        // Two-level nest: outer extent 3 stride 1000, inner extent 2
        // stride 8 (like a bwaves plane walk).
        let cfg = EngineConfig {
            base_pcs: vec![0x100],
            count_pc: 0x104,
            load_pc: 0x108,
            extents: vec![3, 2],
            strides: vec![1000, 8],
            stream_offsets: vec![0],
            as_set: false,
            adaptive: false,
            init_distance: 6,
        };
        let mut c = CustomPrefetcher::new("bwaves", vec![cfg]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 6,
        });
        let loads = tick(&mut c, &mut obs, 8, 1);
        let addrs: Vec<u64> = loads.iter().map(|l| l.addr).collect();
        assert_eq!(addrs, vec![0, 8, 1000, 1008, 2000, 2008]);
    }

    #[test]
    fn cluster_pushes_as_complete_sets() {
        let cfg = EngineConfig {
            base_pcs: vec![0x100, 0x110, 0x120],
            count_pc: 0x104,
            load_pc: 0x108,
            extents: vec![100],
            strides: vec![64],
            stream_offsets: vec![0],
            as_set: true,
            adaptive: false,
            init_distance: 10,
        };
        let mut c = CustomPrefetcher::new("lbm", vec![cfg]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x1000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x110,
            value: 0x2000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x120,
            value: 0x3000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 100,
        });
        // Width 4 allows one full set (3) plus the start of the next.
        let loads = tick(&mut c, &mut obs, 4, 1);
        assert_eq!(loads[0].addr, 0x1000);
        assert_eq!(loads[1].addr, 0x2000);
        assert_eq!(loads[2].addr, 0x3000);
        // A narrow width spreads a set across cycles but never
        // interleaves sets: the next ticks finish set 1 then walk set 2
        // in stream order.
        let mut all = loads;
        for rf in 2..12 {
            all.extend(tick(&mut c, &mut obs, 2, rf));
        }
        for (i, l) in all.iter().enumerate() {
            let set = i / 3;
            let stream = i % 3;
            assert_eq!(
                l.addr,
                0x1000 + stream as u64 * 0x1000 + set as u64 * 64,
                "load {i}"
            );
        }
    }

    #[test]
    fn adaptive_distance_hill_climbs() {
        let mut a = AdaptiveDistance::new(8, 10);
        let mut count = 0u64;
        // Improving epochs: distance should grow.
        for epoch in 1..6 {
            count += 100 + epoch * 10;
            a.observe(epoch * 10, count);
        }
        assert!(
            a.distance() > 8,
            "distance should grow, got {}",
            a.distance()
        );
        let peak = a.distance();
        // Degrading epochs: it should back off.
        for epoch in 6..12 {
            count += 500 - epoch * 40;
            a.observe(epoch * 10, count);
        }
        assert!(
            a.distance() < peak,
            "distance should back off from {peak}, got {}",
            a.distance()
        );
        assert!(a.distance() >= 1);
    }

    #[test]
    fn snapshot_state_roundtrips_and_continues_identically() {
        let mut cfg = stride_cfg();
        cfg.adaptive = true;
        let mut c = CustomPrefetcher::new("libq", vec![cfg.clone()]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x10_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1000,
        });
        tick(&mut c, &mut obs, 8, 1);
        for _ in 0..5 {
            obs.push_back(ObsPacket::DestValue {
                pc: 0x108,
                value: 0,
            });
        }
        tick(&mut c, &mut obs, 4, 300);

        let bytes = c.snapshot_state().expect("prefetcher snapshots");
        let mut r = CustomPrefetcher::new("libq", vec![cfg]);
        assert!(r.restore_state(&bytes));
        assert_eq!(
            r.snapshot_state().unwrap(),
            bytes,
            "re-encode must be canonical"
        );

        // Both continue identically from the restored state.
        let mut obs_c = VecDeque::new();
        let mut obs_r = VecDeque::new();
        for i in 0..4u64 {
            obs_c.push_back(ObsPacket::DestValue {
                pc: 0x108,
                value: i,
            });
            obs_r.push_back(ObsPacket::DestValue {
                pc: 0x108,
                value: i,
            });
        }
        for rf in 301..320 {
            let lc: Vec<u64> = tick(&mut c, &mut obs_c, 4, rf)
                .iter()
                .map(|l| l.addr)
                .collect();
            let lr: Vec<u64> = tick(&mut r, &mut obs_r, 4, rf)
                .iter()
                .map(|l| l.addr)
                .collect();
            assert_eq!(lc, lr, "rf {rf}");
        }
        assert_eq!(c.stats().prefetches, r.stats().prefetches);
        assert_eq!(c.stats().distance, r.stats().distance);
    }

    #[test]
    fn restore_state_rejects_mismatched_geometry() {
        let c = CustomPrefetcher::new("libq", vec![stride_cfg()]);
        let bytes = c.snapshot_state().unwrap();
        // Two engines where the snapshot has one.
        let mut r = CustomPrefetcher::new("libq", vec![stride_cfg(), stride_cfg()]);
        assert!(!r.restore_state(&bytes));
        // Truncated stream.
        let mut r = CustomPrefetcher::new("libq", vec![stride_cfg()]);
        assert!(!r.restore_state(&bytes[..bytes.len() - 1]));
    }

    #[test]
    fn new_invocation_resets_the_walk() {
        let mut c = CustomPrefetcher::new("libq", vec![stride_cfg()]);
        let mut obs = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x10_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1000,
        });
        tick(&mut c, &mut obs, 8, 1);
        // New call with a different base.
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x40_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1000,
        });
        let loads = tick(&mut c, &mut obs, 8, 2);
        assert_eq!(loads[0].addr, 0x40_0000);
    }
}
