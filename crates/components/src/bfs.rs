//! The custom *bfs* component of §4.2 (Figure 11): four decoupled
//! engines achieving high memory-level parallelism on load-dependent
//! loads, plus custom predictions for the two hard branches.
//!
//! * **T0** maintains a sliding window over the program's global
//!   frontier ("frontier queue").
//! * **T1** pops a node id `u` and loads `offsets[u]` and
//!   `offsets[u+1]`, producing the first-neighbor address and the
//!   trip count `b - a`.
//! * **T2** loads all of `u`'s neighbors and supplies trip-count
//!   predictions for the neighbor-loop branch.
//! * **T3** loads each neighbor's visited-ness property and predicts
//!   the visited branch, inferring unretired visited-stores by
//!   searching the neighbor window for prior instances of the same
//!   neighbor (the paper's presence rule).

use pfm_fabric::{CustomComponent, FabricIo, FabricLoad, ObsPacket, PredPacket, WatchKind};
use std::collections::{BTreeMap, VecDeque};

/// Static configuration for the bfs component.
#[derive(Clone, Debug)]
pub struct BfsConfig {
    /// PC whose destination value is the frontier base (per level).
    pub frontier_base_pc: u64,
    /// PC whose destination value is the frontier length.
    pub frontier_len_pc: u64,
    /// PC of the outer-loop induction increment (commit head advance).
    pub induction_pc: u64,
    /// CSR offsets array base (8 bytes per node, `n + 1` entries).
    pub offsets_base: u64,
    /// CSR neighbors array base (4 bytes per edge).
    pub neighbors_base: u64,
    /// Properties / parent array base (8 bytes per node; negative =
    /// unvisited).
    pub properties_base: u64,
    /// PC of the neighbor-loop branch (taken = exit loop).
    pub loop_branch_pc: u64,
    /// PC of the visited branch (taken = already visited, skip).
    pub visited_branch_pc: u64,
    /// Frontier-window entries (the paper sweeps 16..128; default 64).
    pub window_size: usize,
    /// Infer unretired visited-stores via the neighbor-window search.
    pub dup_inference: bool,
    /// Predict the neighbor-loop branch from trip counts.
    pub predict_loop: bool,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LoadTag {
    Frontier { slot: u64 },
    OffsetA { slot: u64 },
    OffsetB { slot: u64 },
    Neighbor { slot: u64, j: u64 },
    Property { slot: u64, j: u64 },
}

#[derive(Clone, Debug)]
struct NodeEntry {
    u: Option<u64>,
    off_a: Option<u64>,
    off_b: Option<u64>,
    off_a_issued: bool,
    off_b_issued: bool,
    trip: Option<u64>,
    neighbors: Vec<Option<u32>>,
    props: Vec<Option<i64>>,
    nbr_issued: u64,
    prop_issued: u64,
}

impl NodeEntry {
    fn new() -> NodeEntry {
        NodeEntry {
            u: None,
            off_a: None,
            off_b: None,
            off_a_issued: false,
            off_b_issued: false,
            trip: None,
            neighbors: Vec::new(),
            props: Vec::new(),
            nbr_issued: 0,
            prop_issued: 0,
        }
    }
}

/// Per-component statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BfsComponentStats {
    /// Frontier levels observed.
    pub levels: u64,
    /// Frontier nodes processed.
    pub nodes: u64,
    /// Predictions emitted.
    pub predictions: u64,
    /// Visited predictions overridden by the duplicate-neighbor rule.
    pub dup_overrides: u64,
}

/// The custom bfs component (Figure 11).
pub struct BfsComponent {
    cfg: BfsConfig,
    frontier_base: u64,
    frontier_len: u64,
    have_level: bool,

    commit_u: u64,
    alloc_u: u64,
    t1_u: u64,
    t2_u: u64,
    t3_u: u64,
    emit_u: u64,
    emit_j: u64,
    /// Emission sub-state: loop-branch prediction for (emit_u, emit_j)
    /// already pushed, visited pending.
    emit_loop_done: bool,

    base_u: u64,
    window: VecDeque<NodeEntry>,

    /// Emitted-but-recently-unretired neighbor multiset (the paper's
    /// neighbor queue search).
    seen: BTreeMap<u32, u32>,
    /// Per-node emitted neighbors, decremented `window` nodes after
    /// retirement.
    seen_log: VecDeque<(u64, Vec<u32>)>,

    next_id: u64,
    tags: BTreeMap<u64, LoadTag>,
    gen: u64,

    stats: BfsComponentStats,
}

impl std::fmt::Debug for BfsComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BfsComponent{{have={} len={} commit={} alloc={} t1={} t2={} t3={} emit=({},{}) base={} window={} tags={} seen={} stats={:?}}}",
            self.have_level,
            self.frontier_len,
            self.commit_u,
            self.alloc_u,
            self.t1_u,
            self.t2_u,
            self.t3_u,
            self.emit_u,
            self.emit_j,
            self.base_u,
            self.window.len(),
            self.tags.len(),
            self.seen.len(),
            self.stats
        )
    }
}

impl BfsComponent {
    /// Creates the component from its configuration.
    pub fn new(cfg: BfsConfig) -> BfsComponent {
        BfsComponent {
            cfg,
            frontier_base: 0,
            frontier_len: 0,
            have_level: false,
            commit_u: 0,
            alloc_u: 0,
            t1_u: 0,
            t2_u: 0,
            t3_u: 0,
            emit_u: 0,
            emit_j: 0,
            emit_loop_done: false,
            base_u: 0,
            window: VecDeque::new(),
            seen: BTreeMap::new(),
            seen_log: VecDeque::new(),
            next_id: 0,
            tags: BTreeMap::new(),
            gen: 0,
            stats: BfsComponentStats::default(),
        }
    }

    /// Component statistics.
    pub fn stats(&self) -> &BfsComponentStats {
        &self.stats
    }

    fn reset_level(&mut self) {
        self.gen += 1;
        self.have_level = false;
        self.commit_u = 0;
        self.alloc_u = 0;
        self.t1_u = 0;
        self.t2_u = 0;
        self.t3_u = 0;
        self.emit_u = 0;
        self.emit_j = 0;
        self.emit_loop_done = false;
        self.base_u = 0;
        self.window.clear();
        self.seen.clear();
        self.seen_log.clear();
        self.tags.clear();
    }

    fn alloc_id(&mut self, tag: LoadTag) -> u64 {
        self.next_id += 1;
        let id = (self.gen << 40) | self.next_id;
        self.tags.insert(id, tag);
        id
    }

    fn slot(&self, u: u64) -> Option<&NodeEntry> {
        if u < self.base_u {
            return None;
        }
        self.window.get((u - self.base_u) as usize)
    }

    fn slot_mut(&mut self, u: u64) -> Option<&mut NodeEntry> {
        if u < self.base_u {
            return None;
        }
        let base = self.base_u;
        self.window.get_mut((u - base) as usize)
    }

    fn retire_node(&mut self) {
        self.commit_u += 1;
        while self.base_u < self.commit_u && !self.window.is_empty() {
            self.window.pop_front();
            self.base_u += 1;
        }
        // Engine pointers must never dangle below the window base: the
        // duplicate-inference rule lets emission (and hence retirement)
        // pass nodes whose property loads were never needed.
        if self.t1_u < self.base_u {
            self.t1_u = self.base_u;
        }
        if self.t2_u < self.base_u {
            self.t2_u = self.base_u;
        }
        if self.t3_u < self.base_u {
            self.t3_u = self.base_u;
        }
        if self.alloc_u < self.base_u {
            self.alloc_u = self.base_u;
        }
        if self.emit_u < self.base_u {
            self.emit_u = self.base_u;
            self.emit_j = 0;
            self.emit_loop_done = false;
        }
        // The duplicate-neighbor search set keeps entries one extra
        // window beyond retirement: property loads issued before the
        // visited-store committed may be converted into predictions
        // after it retires, and visited-ness is sticky, so the longer
        // lifetime is always safe.
        let margin = self.cfg.window_size as u64;
        while let Some(&(u, _)) = self.seen_log.front() {
            if u + margin >= self.commit_u {
                break;
            }
            // pfm-lint: allow(hygiene): front() just returned Some
            let (_, nbrs) = self.seen_log.pop_front().expect("non-empty");
            for v in nbrs {
                if let Some(c) = self.seen.get_mut(&v) {
                    *c -= 1;
                    if *c == 0 {
                        self.seen.remove(&v);
                    }
                }
            }
        }
    }

    fn consume_observations(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            if let ObsPacket::DestValue { pc, value } = obs {
                if pc == self.cfg.frontier_base_pc {
                    self.reset_level();
                    self.frontier_base = value;
                } else if pc == self.cfg.frontier_len_pc {
                    self.frontier_len = value;
                    self.have_level = true;
                    self.stats.levels += 1;
                } else if pc == self.cfg.induction_pc {
                    self.retire_node();
                }
            }
        }
    }

    fn consume_load_responses(&mut self, io: &mut FabricIo<'_>) {
        while let Some(resp) = io.pop_load_resp() {
            let Some(tag) = self.tags.remove(&resp.id) else {
                continue;
            };
            match tag {
                LoadTag::Frontier { slot } => {
                    if let Some(e) = self.slot_mut(slot) {
                        e.u = Some(resp.value);
                    }
                }
                LoadTag::OffsetA { slot } => {
                    if let Some(e) = self.slot_mut(slot) {
                        e.off_a = Some(resp.value);
                    }
                    self.try_trip(slot);
                }
                LoadTag::OffsetB { slot } => {
                    if let Some(e) = self.slot_mut(slot) {
                        e.off_b = Some(resp.value);
                    }
                    self.try_trip(slot);
                }
                LoadTag::Neighbor { slot, j } => {
                    if let Some(e) = self.slot_mut(slot) {
                        if let Some(n) = e.neighbors.get_mut(j as usize) {
                            *n = Some(resp.value as u32);
                        }
                    }
                }
                LoadTag::Property { slot, j } => {
                    if let Some(e) = self.slot_mut(slot) {
                        if let Some(p) = e.props.get_mut(j as usize) {
                            *p = Some(resp.value as i64);
                        }
                    }
                }
            }
        }
    }

    fn try_trip(&mut self, slot: u64) {
        if let Some(e) = self.slot_mut(slot) {
            if let (Some(a), Some(b)) = (e.off_a, e.off_b) {
                if e.trip.is_none() {
                    let trip = b.saturating_sub(a);
                    e.trip = Some(trip);
                    e.neighbors = vec![None; trip as usize];
                    e.props = vec![None; trip as usize];
                }
            }
        }
    }

    /// T0: slide the frontier window forward.
    fn t0(&mut self, io: &mut FabricIo<'_>) {
        if !self.have_level {
            return;
        }
        while self.alloc_u < self.frontier_len
            && ((self.alloc_u - self.base_u) as usize) < self.cfg.window_size
        {
            let addr = self.frontier_base + 4 * self.alloc_u;
            let id = self.alloc_id(LoadTag::Frontier { slot: self.alloc_u });
            if !io.push_load(FabricLoad {
                id,
                addr,
                size: 4,
                is_prefetch: false,
            }) {
                self.tags.remove(&id);
                return;
            }
            self.window.push_back(NodeEntry::new());
            self.alloc_u += 1;
        }
    }

    /// T1: offsets loads for the next node in order. Each half of the
    /// pair is tracked separately so a tight width budget never
    /// re-issues (or live-locks on) the first half.
    fn t1(&mut self, io: &mut FabricIo<'_>) {
        while self.t1_u < self.alloc_u {
            let Some(e) = self.slot(self.t1_u) else {
                return;
            };
            if e.off_a_issued && e.off_b_issued {
                self.t1_u += 1;
                continue;
            }
            let Some(u) = e.u else { return };
            let base = self.cfg.offsets_base;
            if !e.off_a_issued {
                let a_id = self.alloc_id(LoadTag::OffsetA { slot: self.t1_u });
                if !io.push_load(FabricLoad {
                    id: a_id,
                    // Wrapping address math here and below: `u`, `a`
                    // and `v` come from load responses, and a faulty
                    // fabric (the chaos harness) can return garbage.
                    // Hardware adders wrap; wild addresses just miss.
                    addr: base.wrapping_add(u.wrapping_mul(8)),
                    size: 8,
                    is_prefetch: false,
                }) {
                    self.tags.remove(&a_id);
                    return;
                }
                let slot = self.t1_u;
                if let Some(e) = self.slot_mut(slot) {
                    e.off_a_issued = true;
                }
            }
            let b_pending = self.slot(self.t1_u).is_some_and(|e| !e.off_b_issued);
            if b_pending {
                let b_id = self.alloc_id(LoadTag::OffsetB { slot: self.t1_u });
                if !io.push_load(FabricLoad {
                    id: b_id,
                    addr: base.wrapping_add(u.wrapping_add(1).wrapping_mul(8)),
                    size: 8,
                    is_prefetch: false,
                }) {
                    self.tags.remove(&b_id);
                    return; // finish the pair next cycle
                }
                let slot = self.t1_u;
                if let Some(e) = self.slot_mut(slot) {
                    e.off_b_issued = true;
                }
            }
            self.t1_u += 1;
        }
    }

    /// T2: neighbor loads.
    fn t2(&mut self, io: &mut FabricIo<'_>) {
        while self.t2_u < self.alloc_u {
            let Some(e) = self.slot(self.t2_u) else {
                return;
            };
            let (Some(trip), Some(a)) = (e.trip, e.off_a) else {
                return;
            };
            if e.nbr_issued >= trip {
                self.t2_u += 1;
                continue;
            }
            let j = e.nbr_issued;
            let addr = self
                .cfg
                .neighbors_base
                .wrapping_add(a.wrapping_add(j).wrapping_mul(4));
            let id = self.alloc_id(LoadTag::Neighbor { slot: self.t2_u, j });
            if !io.push_load(FabricLoad {
                id,
                addr,
                size: 4,
                is_prefetch: false,
            }) {
                self.tags.remove(&id);
                return;
            }
            if let Some(e) = self.slot_mut(self.t2_u) {
                e.nbr_issued += 1;
            }
        }
    }

    /// T3: visited-ness property loads.
    fn t3(&mut self, io: &mut FabricIo<'_>) {
        while self.t3_u < self.alloc_u {
            let Some(e) = self.slot(self.t3_u) else {
                return;
            };
            let Some(trip) = e.trip else { return };
            if e.prop_issued >= trip {
                self.t3_u += 1;
                continue;
            }
            let j = e.prop_issued;
            let Some(Some(v)) = e.neighbors.get(j as usize).copied() else {
                return;
            };
            let addr = self
                .cfg
                .properties_base
                .wrapping_add((v as u64).wrapping_mul(8));
            let id = self.alloc_id(LoadTag::Property { slot: self.t3_u, j });
            if !io.push_load(FabricLoad {
                id,
                addr,
                size: 8,
                is_prefetch: false,
            }) {
                self.tags.remove(&id);
                return;
            }
            if let Some(e) = self.slot_mut(self.t3_u) {
                e.prop_issued += 1;
            }
        }
    }

    /// Interleaved emission of loop-branch and visited-branch
    /// predictions in program order.
    fn emit(&mut self, io: &mut FabricIo<'_>) {
        loop {
            if self.emit_u >= self.frontier_len || self.emit_u >= self.alloc_u {
                return;
            }
            let (trip, v, prop) = {
                let Some(e) = self.slot(self.emit_u) else {
                    return;
                };
                let Some(trip) = e.trip else { return };
                let v = e.neighbors.get(self.emit_j as usize).copied().flatten();
                let prop = e.props.get(self.emit_j as usize).copied().flatten();
                (trip, v, prop)
            };

            if self.emit_j >= trip {
                // Loop-exit prediction, then next node.
                if self.cfg.predict_loop {
                    if !io.push_pred(PredPacket {
                        pc: self.cfg.loop_branch_pc,
                        taken: true,
                    }) {
                        return;
                    }
                    self.stats.predictions += 1;
                }
                self.emit_u += 1;
                self.emit_j = 0;
                self.emit_loop_done = false;
                self.stats.nodes += 1;
                continue;
            }

            if !self.emit_loop_done {
                if self.cfg.predict_loop {
                    if !io.push_pred(PredPacket {
                        pc: self.cfg.loop_branch_pc,
                        taken: false,
                    }) {
                        return;
                    }
                    self.stats.predictions += 1;
                }
                self.emit_loop_done = true;
            }

            // Visited prediction needs the neighbor id; the property
            // value is needed only when the duplicate rule doesn't fire.
            let Some(v) = v else { return };
            let dup = self.cfg.dup_inference && self.seen.contains_key(&v);
            let taken = if dup {
                self.stats.dup_overrides += 1;
                true
            } else {
                let Some(p) = prop else { return };
                p >= 0
            };
            if !io.push_pred(PredPacket {
                pc: self.cfg.visited_branch_pc,
                taken,
            }) {
                return;
            }
            self.stats.predictions += 1;
            *self.seen.entry(v).or_insert(0) += 1;
            match self.seen_log.back_mut() {
                Some((u, nbrs)) if *u == self.emit_u => nbrs.push(v),
                _ => self.seen_log.push_back((self.emit_u, vec![v])),
            }
            self.emit_j += 1;
            self.emit_loop_done = false;
        }
    }
}

impl CustomComponent for BfsComponent {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        self.consume_observations(io);
        self.consume_load_responses(io);
        self.emit(io);
        self.t3(io);
        self.t2(io);
        self.t1(io);
        self.t0(io);
    }

    fn name(&self) -> &'static str {
        "bfs-custom"
    }

    fn debug_state(&self) -> String {
        format!("{self:?}")
    }

    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        vec![
            (self.cfg.frontier_base_pc, WatchKind::DestValue),
            (self.cfg.frontier_len_pc, WatchKind::DestValue),
            (self.cfg.induction_pc, WatchKind::DestValue),
            // The trip-count predictor's target controls the neighbor
            // loop; the dominator analysis must agree it is loop
            // control, not just any branch.
            (self.cfg.loop_branch_pc, WatchKind::LoopBranch),
            (self.cfg.visited_branch_pc, WatchKind::CondBranch),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::LoadResponse;

    fn cfg() -> BfsConfig {
        BfsConfig {
            frontier_base_pc: 0x100,
            frontier_len_pc: 0x104,
            induction_pc: 0x108,
            offsets_base: 0x100_0000,
            neighbors_base: 0x200_0000,
            properties_base: 0x300_0000,
            loop_branch_pc: 0x400,
            visited_branch_pc: 0x410,
            window_size: 64,
            dup_inference: true,
            predict_loop: true,
        }
    }

    struct Harness {
        obs: std::collections::VecDeque<ObsPacket>,
        resp: std::collections::VecDeque<LoadResponse>,
        preds: Vec<PredPacket>,
        loads: Vec<FabricLoad>,
    }

    impl Harness {
        fn new() -> Harness {
            Harness {
                obs: Default::default(),
                resp: Default::default(),
                preds: Vec::new(),
                loads: Vec::new(),
            }
        }

        fn tick(&mut self, c: &mut BfsComponent, width: usize) {
            let mut preds = Vec::new();
            let mut loads = Vec::new();
            {
                let mut io = FabricIo::new(
                    width,
                    0,
                    &mut self.obs,
                    &mut self.resp,
                    &mut preds,
                    &mut loads,
                    256,
                    256,
                );
                c.tick(&mut io);
            }
            self.preds.extend(preds);
            self.loads.extend(loads);
        }
    }

    /// A tiny in-memory graph the harness answers loads from.
    struct MiniGraph {
        offsets: Vec<u64>,
        neighbors: Vec<u32>,
        props: Vec<i64>,
    }

    impl MiniGraph {
        fn answer(&self, c: &mut BfsComponent, h: &mut Harness, frontier: &[u32]) {
            let pending: Vec<(u64, LoadTag)> = h
                .loads
                .iter()
                .filter_map(|l| c.tags.get(&l.id).map(|t| (l.id, *t)))
                .collect();
            for (id, tag) in pending {
                let cfgv = &c.cfg;
                let value = match tag {
                    LoadTag::Frontier { slot } => frontier[slot as usize] as u64,
                    LoadTag::OffsetA { .. } | LoadTag::OffsetB { .. } => {
                        // Recover u from the original address.
                        let l = h.loads.iter().find(|l| l.id == id).unwrap();
                        let u = (l.addr - cfgv.offsets_base) / 8;
                        self.offsets[u as usize]
                    }
                    LoadTag::Neighbor { .. } => {
                        let l = h.loads.iter().find(|l| l.id == id).unwrap();
                        let e = (l.addr - cfgv.neighbors_base) / 4;
                        self.neighbors[e as usize] as u64
                    }
                    LoadTag::Property { .. } => {
                        let l = h.loads.iter().find(|l| l.id == id).unwrap();
                        let v = (l.addr - cfgv.properties_base) / 8;
                        self.props[v as usize] as u64
                    }
                };
                h.resp.push_back(LoadResponse { id, value });
            }
        }
    }

    #[test]
    fn emits_trip_count_and_visited_predictions_in_program_order() {
        // Frontier = [node 0]; node 0 has neighbors [5, 6]; 5 is
        // visited (prop >= 0), 6 is not.
        let g = MiniGraph {
            offsets: vec![0, 2],
            neighbors: vec![5, 6],
            props: vec![-1; 10]
                .into_iter()
                .enumerate()
                .map(|(i, p)| if i == 5 { 0 } else { p })
                .collect(),
        };
        let mut c = BfsComponent::new(cfg());
        let mut h = Harness::new();
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x500_0000,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1,
        });
        for _ in 0..30 {
            h.tick(&mut c, 8);
            g.answer(&mut c, &mut h, &[0]);
        }
        let expect = vec![
            PredPacket {
                pc: 0x400,
                taken: false,
            }, // j=0 continue
            PredPacket {
                pc: 0x410,
                taken: true,
            }, // v=5 visited
            PredPacket {
                pc: 0x400,
                taken: false,
            }, // j=1 continue
            PredPacket {
                pc: 0x410,
                taken: false,
            }, // v=6 unvisited
            PredPacket {
                pc: 0x400,
                taken: true,
            }, // exit
        ];
        assert_eq!(h.preds, expect);
        assert_eq!(c.stats().nodes, 1);
    }

    #[test]
    fn duplicate_neighbor_inferred_visited() {
        // Two frontier nodes both pointing at neighbor 7 (unvisited in
        // memory): the second visit must be predicted taken via the
        // window search.
        let g = MiniGraph {
            offsets: vec![0, 1, 2],
            neighbors: vec![7, 7],
            props: vec![-1; 10],
        };
        let mut c = BfsComponent::new(cfg());
        let mut h = Harness::new();
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x500_0000,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 2,
        });
        for _ in 0..40 {
            h.tick(&mut c, 8);
            g.answer(&mut c, &mut h, &[0, 1]);
        }
        let visited: Vec<_> = h.preds.iter().filter(|p| p.pc == 0x410).collect();
        assert_eq!(visited.len(), 2);
        assert!(!visited[0].taken, "first visit enters");
        assert!(visited[1].taken, "second visit inferred visited");
        assert_eq!(c.stats().dup_overrides, 1);
    }

    #[test]
    fn no_dup_inference_repeats_the_mistake() {
        let g = MiniGraph {
            offsets: vec![0, 1, 2],
            neighbors: vec![7, 7],
            props: vec![-1; 10],
        };
        let mut config = cfg();
        config.dup_inference = false;
        let mut c = BfsComponent::new(config);
        let mut h = Harness::new();
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x500_0000,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 2,
        });
        for _ in 0..40 {
            h.tick(&mut c, 8);
            g.answer(&mut c, &mut h, &[0, 1]);
        }
        let visited: Vec<_> = h.preds.iter().filter(|p| p.pc == 0x410).collect();
        assert!(
            !visited[1].taken,
            "without inference the stale property wins"
        );
    }

    #[test]
    fn zero_degree_node_emits_single_exit_prediction() {
        let g = MiniGraph {
            offsets: vec![0, 0],
            neighbors: vec![],
            props: vec![-1; 4],
        };
        let mut c = BfsComponent::new(cfg());
        let mut h = Harness::new();
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x500_0000,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 1,
        });
        for _ in 0..20 {
            h.tick(&mut c, 8);
            g.answer(&mut c, &mut h, &[0]);
        }
        assert_eq!(
            h.preds,
            vec![PredPacket {
                pc: 0x400,
                taken: true
            }]
        );
    }

    #[test]
    fn retirement_frees_window_and_seen_set() {
        let g = MiniGraph {
            offsets: vec![0, 1, 2],
            neighbors: vec![7, 7],
            props: vec![-1; 10],
        };
        let mut c = BfsComponent::new(cfg());
        let mut h = Harness::new();
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: 0x500_0000,
        });
        h.obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 2,
        });
        for _ in 0..40 {
            h.tick(&mut c, 8);
            g.answer(&mut c, &mut h, &[0, 1]);
        }
        assert!(c.seen.contains_key(&7));
        // The set persists for `window` extra retirements (sticky
        // visited-ness), so retire window+2 nodes.
        for i in 0..(c.cfg.window_size as u64 + 2) {
            h.obs.push_back(ObsPacket::DestValue {
                pc: 0x108,
                value: i,
            });
        }
        for _ in 0..20 {
            h.tick(&mut c, 8);
        }
        assert!(
            !c.seen.contains_key(&7),
            "old entries leave the search window"
        );
        assert!(c.base_u >= 2);
    }
}
