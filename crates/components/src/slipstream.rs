//! A single-core model of **Slipstream 2.0** (Srinivasan et al., ISCA
//! 2020) pre-execution, used as the comparison point in Figure 2.
//!
//! Slipstream's automated branch pre-execution prunes a hard branch's
//! control-dependent region from a leading thread. As §1.1 of the PFM
//! paper explains, for astar this means: (1) the *maparp* branch cannot
//! also be pre-executed because it is skipped over, and (2) the
//! loop-carried memory dependency through the `waymap` store is
//! omitted, so a fraction of pre-executed outcomes are wrong.
//!
//! Both limitations are exactly what you get by running the PFM astar
//! component with its index1_CAM store inference disabled and maparp
//! predictions left to the core predictor — so this module models
//! slipstream as that restricted configuration (with the paper's two
//! tailored optimizations: a hardwired pruning decision and local
//! squashes instead of leading-thread restarts). The bfs analogue
//! disables the duplicate-neighbor inference and the trip-count
//! stream.

use crate::astar::AstarConfig;
use crate::bfs::BfsConfig;

/// Restricts an astar component configuration to what slipstream-style
/// automated pre-execution can deliver.
pub fn slipstream_astar(mut cfg: AstarConfig) -> AstarConfig {
    cfg.store_inference = false;
    cfg.predict_maparp = false;
    cfg
}

/// Restricts a bfs component configuration to slipstream-style
/// pre-execution of the visited branch only.
pub fn slipstream_bfs(mut cfg: BfsConfig) -> BfsConfig {
    cfg.dup_inference = false;
    cfg.predict_loop = false;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::NEIGHBORS;

    #[test]
    fn slipstream_astar_strips_inference_and_maparp() {
        let base = AstarConfig {
            fillnum_pc: 0,
            wl_base_pc: 0,
            wl_len_pc: 0,
            induction_pc: 0,
            waymap_base: 0,
            maparp_base: 0,
            offsets: [0; NEIGHBORS],
            waymap_branch_pcs: [0; NEIGHBORS],
            maparp_branch_pcs: [0; NEIGHBORS],
            index_queue_size: 8,
            store_inference: true,
            predict_maparp: true,
            t1_width: 2,
        };
        let ss = slipstream_astar(base);
        assert!(!ss.store_inference);
        assert!(!ss.predict_maparp);
    }

    #[test]
    fn slipstream_bfs_strips_inference_and_loop_preds() {
        let base = BfsConfig {
            frontier_base_pc: 0,
            frontier_len_pc: 0,
            induction_pc: 0,
            offsets_base: 0,
            neighbors_base: 0,
            properties_base: 0,
            loop_branch_pc: 0,
            visited_branch_pc: 0,
            window_size: 64,
            dup_inference: true,
            predict_loop: true,
        };
        let ss = slipstream_bfs(base);
        assert!(!ss.dup_inference);
        assert!(!ss.predict_loop);
    }
}
