//! A *templated* run-ahead predictor — the paper's §7 future work.
//!
//! §7: "the astar and bfs designs presented in this paper follow a
//! similar strategy. If this could be templated, it suggests a path
//! toward automation." This module is that first step: a declarative
//! template for the family of designs that
//!
//! 1. walk an input worklist ahead of the core (T0),
//! 2. fan each element out into a fixed set of derived loads (T1),
//! 3. convert loaded values into branch predicates (T2), and
//! 4. infer not-yet-retired stores via a sticky "recently predicted
//!    entered" search, exactly like astar's index1_CAM and bfs's
//!    neighbor-window search.
//!
//! A compiler (or a tool reading profiles) could emit a
//! [`TemplateSpec`] instead of hand-writing a component; instantiating
//! the template for astar's ROI reproduces the hand-built
//! [`crate::astar::AstarPredictor`]'s prediction stream exactly (see
//! the tests). Patterns with data-dependent trip counts (bfs's
//! neighbor loop) need the nested-walk extension, which is why the
//! dedicated [`crate::bfs::BfsComponent`] still exists.

use pfm_fabric::{CustomComponent, FabricIo, FabricLoad, ObsPacket, PredPacket, WatchKind};
use std::collections::{BTreeMap, VecDeque};

/// How a derived lane turns its loaded value into a branch predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// Taken iff the loaded value equals the snooped tag (astar's
    /// `waymap[index1].fillnum != fillnum` visited test).
    EqualsTag,
    /// Taken iff the loaded value is non-zero (astar's
    /// `maparp[index1] == 0` obstacle test).
    NonZero,
    /// Taken iff the loaded value, sign-extended, is non-negative
    /// (bfs-style `parent[v] >= 0` visited test).
    NonNegative,
}

impl Predicate {
    fn eval(self, value: u64, size: u64, tag: u64) -> bool {
        match self {
            Predicate::EqualsTag => value == tag,
            Predicate::NonZero => value != 0,
            Predicate::NonNegative => {
                let shift = 64 - 8 * size;
                (((value << shift) as i64) >> shift) >= 0
            }
        }
    }
}

/// One derived load + prediction lane: for worklist element `x`, load
/// `table_base + (x + offset) * elem_scale + elem_offset` and emit a
/// prediction for `branch_pc`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneSpec {
    /// Added to the worklist element before scaling (astar's neighbor
    /// offsets).
    pub offset: i64,
    /// Table base address.
    pub table_base: u64,
    /// Bytes per table element.
    pub elem_scale: u64,
    /// Byte offset within the element.
    pub elem_offset: i64,
    /// Load size in bytes.
    pub size: u64,
    /// Branch this lane predicts.
    pub branch_pc: u64,
    /// Predicate mapping the value to a direction.
    pub predicate: Predicate,
    /// A taken prediction from this lane skips the rest of the
    /// element's lane group (astar: visited ⇒ the maparp branch is
    /// never fetched).
    pub taken_skips_group: bool,
    /// Group id: lanes with the same group form a short-circuit chain
    /// in order.
    pub group: u32,
    /// When the whole group predicts not-taken, record the derived
    /// index as "entered" (sticky-visited inference) and override
    /// future first-lane predictions for it to taken.
    pub infer_store_on_all_not_taken: bool,
}

/// The declarative component description (the artifact a generator
/// would emit).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateSpec {
    /// PC whose destination value is the sticky tag (astar's fillnum).
    pub tag_pc: u64,
    /// PC whose destination value is the worklist base.
    pub wl_base_pc: u64,
    /// PC whose destination value is the worklist length.
    pub wl_len_pc: u64,
    /// PC of the induction increment (commit-head advance).
    pub induction_pc: u64,
    /// Worklist element size in bytes.
    pub wl_elem_size: u64,
    /// The derived lanes, in program order.
    pub lanes: Vec<LaneSpec>,
    /// Speculative scope (worklist elements in flight).
    pub scope: usize,
}

#[derive(Clone, Debug)]
struct IterState {
    index: Option<u64>,
    values: Vec<Option<u64>>,
    issued: Vec<bool>,
}

/// The instantiated template component.
pub struct TemplateComponent {
    spec: TemplateSpec,
    tag: u64,
    wl_base: u64,
    wl_len: u64,
    have_call: bool,
    call_gen: u64,

    base_iter: u64,
    commit_iter: u64,
    alloc_iter: u64,
    issue_iter: u64,
    issue_lane: usize,
    emit_iter: u64,
    emit_lane: usize,
    window: VecDeque<IterState>,

    /// Sticky entered-set (the generalized index1_CAM).
    entered: BTreeMap<u64, u64>,

    next_id: u64,
    tags: BTreeMap<u64, (u64, usize)>, // id -> (iter, lane or usize::MAX for T0)
}

impl std::fmt::Debug for TemplateComponent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateComponent")
            .field("lanes", &self.spec.lanes.len())
            .field("scope", &self.spec.scope)
            .finish()
    }
}

impl TemplateComponent {
    /// Instantiates the template.
    pub fn new(spec: TemplateSpec) -> TemplateComponent {
        TemplateComponent {
            spec,
            tag: 0,
            wl_base: 0,
            wl_len: 0,
            have_call: false,
            call_gen: 0,
            base_iter: 0,
            commit_iter: 0,
            alloc_iter: 0,
            issue_iter: 0,
            issue_lane: 0,
            emit_iter: 0,
            emit_lane: 0,
            window: VecDeque::new(),
            entered: BTreeMap::new(),
            next_id: 0,
            tags: BTreeMap::new(),
        }
    }

    fn reset_call(&mut self) {
        self.call_gen += 1;
        self.have_call = false;
        self.base_iter = 0;
        self.commit_iter = 0;
        self.alloc_iter = 0;
        self.issue_iter = 0;
        self.issue_lane = 0;
        self.emit_iter = 0;
        self.emit_lane = 0;
        self.window.clear();
        self.entered.clear();
        self.tags.clear();
    }

    fn slot(&self, iter: u64) -> Option<&IterState> {
        if iter < self.base_iter {
            return None;
        }
        self.window.get((iter - self.base_iter) as usize)
    }

    fn slot_mut(&mut self, iter: u64) -> Option<&mut IterState> {
        if iter < self.base_iter {
            return None;
        }
        let b = self.base_iter;
        self.window.get_mut((iter - b) as usize)
    }

    fn derived_key(&self, index: u64, lane: &LaneSpec) -> u64 {
        // Wrapping: `index` is a load response, and a faulty fabric
        // (the chaos harness) can return garbage. Hardware adders wrap.
        (index as i64).wrapping_add(lane.offset) as u64
    }

    fn retire(&mut self) {
        self.commit_iter += 1;
        while self.base_iter < self.commit_iter && !self.window.is_empty() {
            self.window.pop_front();
            self.base_iter += 1;
        }
        for p in [
            &mut self.alloc_iter,
            &mut self.issue_iter,
            &mut self.emit_iter,
        ] {
            if *p < self.base_iter {
                *p = self.base_iter;
            }
        }
        // Sticky lifetime: one extra scope beyond retirement (see the
        // astar component's CAM discussion).
        let scope = self.spec.scope as u64;
        let commit = self.commit_iter;
        self.entered.retain(|_, &mut it| it + scope >= commit);
    }

    fn observations(&mut self, io: &mut FabricIo<'_>) {
        while let Some(obs) = io.pop_obs() {
            if let ObsPacket::DestValue { pc, value } = obs {
                if pc == self.spec.tag_pc {
                    self.tag = value;
                } else if pc == self.spec.wl_base_pc {
                    self.reset_call();
                    self.wl_base = value;
                } else if pc == self.spec.wl_len_pc {
                    self.wl_len = value;
                    self.have_call = true;
                } else if pc == self.spec.induction_pc {
                    self.retire();
                }
            }
        }
    }

    fn responses(&mut self, io: &mut FabricIo<'_>) {
        while let Some(r) = io.pop_load_resp() {
            let Some(&(iter, lane)) = self.tags.get(&r.id) else {
                continue;
            };
            self.tags.remove(&r.id);
            if let Some(s) = self.slot_mut(iter) {
                if lane == usize::MAX {
                    s.index = Some(r.value);
                } else {
                    s.values[lane] = Some(r.value);
                }
            }
        }
    }

    fn t0(&mut self, io: &mut FabricIo<'_>) {
        if !self.have_call {
            return;
        }
        while self.alloc_iter < self.wl_len
            && ((self.alloc_iter - self.base_iter) as usize) < self.spec.scope
        {
            self.next_id += 1;
            let id = (self.call_gen << 40) | self.next_id;
            let addr = self.wl_base + self.spec.wl_elem_size * self.alloc_iter;
            if !io.push_load(FabricLoad {
                id,
                addr,
                size: self.spec.wl_elem_size,
                is_prefetch: false,
            }) {
                return;
            }
            self.tags.insert(id, (self.alloc_iter, usize::MAX));
            self.window.push_back(IterState {
                index: None,
                values: vec![None; self.spec.lanes.len()],
                issued: vec![false; self.spec.lanes.len()],
            });
            self.alloc_iter += 1;
        }
    }

    fn t1(&mut self, io: &mut FabricIo<'_>) {
        while self.issue_iter < self.alloc_iter {
            let Some(index) = self.slot(self.issue_iter).and_then(|s| s.index) else {
                return;
            };
            while self.issue_lane < self.spec.lanes.len() {
                let lane_idx = self.issue_lane;
                let lane = self.spec.lanes[lane_idx].clone();
                let already = self
                    .slot(self.issue_iter)
                    .is_some_and(|s| s.issued[lane_idx]);
                if !already {
                    let key = self.derived_key(index, &lane);
                    let addr = (lane.table_base as i64)
                        .wrapping_add((key as i64).wrapping_mul(lane.elem_scale as i64))
                        .wrapping_add(lane.elem_offset) as u64;
                    self.next_id += 1;
                    let id = (self.call_gen << 40) | self.next_id;
                    if !io.push_load(FabricLoad {
                        id,
                        addr,
                        size: lane.size,
                        is_prefetch: false,
                    }) {
                        return;
                    }
                    self.tags.insert(id, (self.issue_iter, lane_idx));
                    if let Some(s) = self.slot_mut(self.issue_iter) {
                        s.issued[lane_idx] = true;
                    }
                }
                self.issue_lane += 1;
            }
            self.issue_lane = 0;
            self.issue_iter += 1;
        }
    }

    fn t2(&mut self, io: &mut FabricIo<'_>) {
        'outer: loop {
            if self.emit_iter >= self.alloc_iter || self.emit_iter >= self.wl_len {
                return;
            }
            let Some(index) = self.slot(self.emit_iter).and_then(|s| s.index) else {
                return;
            };
            while self.emit_lane < self.spec.lanes.len() {
                let lane_idx = self.emit_lane;
                let lane = self.spec.lanes[lane_idx].clone();
                let key = self.derived_key(index, &lane);
                // First lane of a group may be overridden by the
                // sticky entered-set.
                let group_start =
                    lane_idx == 0 || self.spec.lanes[lane_idx - 1].group != lane.group;
                let inferred =
                    group_start && lane.taken_skips_group && self.entered.contains_key(&key);
                let taken = if inferred {
                    true
                } else {
                    let Some(v) = self.slot(self.emit_iter).and_then(|s| s.values[lane_idx]) else {
                        return;
                    };
                    lane.predicate.eval(v, lane.size, self.tag)
                };
                if !io.push_pred(PredPacket {
                    pc: lane.branch_pc,
                    taken,
                }) {
                    return;
                }
                if taken && lane.taken_skips_group {
                    // Skip the remaining lanes of this group.
                    let g = lane.group;
                    let mut next = lane_idx + 1;
                    while next < self.spec.lanes.len() && self.spec.lanes[next].group == g {
                        next += 1;
                    }
                    self.emit_lane = next;
                    continue;
                }
                // Group completed with this lane not-taken: store
                // inference when it was the group's last lane.
                let last_of_group = lane_idx + 1 == self.spec.lanes.len()
                    || self.spec.lanes[lane_idx + 1].group != lane.group;
                if !taken && last_of_group && lane.infer_store_on_all_not_taken {
                    self.entered.insert(key, self.emit_iter);
                }
                self.emit_lane += 1;
                continue 'outer;
            }
            self.emit_lane = 0;
            self.emit_iter += 1;
        }
    }
}

impl CustomComponent for TemplateComponent {
    fn tick(&mut self, io: &mut FabricIo<'_>) {
        self.observations(io);
        self.responses(io);
        self.t2(io);
        self.t1(io);
        self.t0(io);
    }

    fn name(&self) -> &'static str {
        "templated-runahead"
    }

    fn watchlist(&self) -> Vec<(u64, WatchKind)> {
        let mut w = vec![
            (self.spec.tag_pc, WatchKind::DestValue),
            (self.spec.wl_base_pc, WatchKind::DestValue),
            (self.spec.wl_len_pc, WatchKind::DestValue),
            (self.spec.induction_pc, WatchKind::DestValue),
        ];
        for lane in &self.spec.lanes {
            w.push((lane.branch_pc, WatchKind::CondBranch));
        }
        w
    }
}

/// Generates the astar instantiation of the template from the same
/// configuration the hand-built component uses — what §7's imagined
/// generator would produce for this ROI.
pub fn astar_template(cfg: &crate::astar::AstarConfig) -> TemplateSpec {
    let mut lanes = Vec::new();
    for k in 0..crate::astar::NEIGHBORS {
        lanes.push(LaneSpec {
            offset: cfg.offsets[k],
            table_base: cfg.waymap_base,
            elem_scale: 8,
            elem_offset: 0,
            size: 4,
            branch_pc: cfg.waymap_branch_pcs[k],
            predicate: Predicate::EqualsTag,
            taken_skips_group: true,
            group: k as u32,
            infer_store_on_all_not_taken: false,
        });
        lanes.push(LaneSpec {
            offset: cfg.offsets[k],
            table_base: cfg.maparp_base,
            elem_scale: 1,
            elem_offset: 0,
            size: 1,
            branch_pc: cfg.maparp_branch_pcs[k],
            predicate: Predicate::NonZero,
            taken_skips_group: true,
            group: k as u32,
            infer_store_on_all_not_taken: true,
        });
    }
    TemplateSpec {
        tag_pc: cfg.fillnum_pc,
        wl_base_pc: cfg.wl_base_pc,
        wl_len_pc: cfg.wl_len_pc,
        induction_pc: cfg.induction_pc,
        wl_elem_size: 4,
        lanes,
        scope: cfg.index_queue_size,
    }
}

/// One branch the profile shows observing a derived load fed by the
/// worklist walk: the raw material of a [`LaneSpec`].
struct LaneCand {
    branch_pc: u64,
    taken: u64,
    /// PC of the worklist load feeding this lane's derived load.
    wl_load: u64,
    elem_scale: i64,
    /// `table_base + elem_scale * offset` (the gauge splits it).
    addend: u64,
    size: u64,
    predicate: Predicate,
    /// Defining PC of the tag comparand, `EqualsTag` lanes only.
    tag_def: Option<u64>,
}

/// Maps a profiled branch to the lane predicate it would become: which
/// load it observes directly (scale 1, addend 0) and how the *taken*
/// direction reads the value.
fn lane_predicate(
    br: &pfm_analyze::profile::BranchProfile,
) -> Option<(u64, Predicate, Option<u64>)> {
    use pfm_analyze::profile::ValueDesc;
    let direct = |v: &ValueDesc| match v {
        ValueDesc::Loaded {
            feeder,
            scale: 1,
            addend: Some(0),
        } => Some(*feeder),
        _ => None,
    };
    match br.cond {
        "eq" | "ne" => {
            let (load, other) = if let Some(f) = direct(&br.operands[0]) {
                (f, &br.operands[1])
            } else if let Some(f) = direct(&br.operands[1]) {
                (f, &br.operands[0])
            } else {
                return None;
            };
            match (br.cond, other) {
                (
                    "eq",
                    ValueDesc::Invariant {
                        def_pc: Some(d), ..
                    },
                ) => Some((load, Predicate::EqualsTag, Some(*d))),
                ("ne", ValueDesc::Const(0)) => Some((load, Predicate::NonZero, None)),
                _ => None,
            }
        }
        // `bge loaded, x0`: taken iff the value is non-negative. The
        // mirrored form reads `0 >= loaded`, which is not this lane.
        "ge" => {
            let f = direct(&br.operands[0])?;
            (br.operands[1] == ValueDesc::Const(0)).then_some((f, Predicate::NonNegative, None))
        }
        _ => None,
    }
}

/// Derives a [`TemplateSpec`] from an interface-inference profile —
/// §7's generator, fed by static analysis instead of a hand-read of
/// the kernel. Returns `None` when the program does not match the
/// template's shape (one strided worklist walk fanning out into
/// indirect loads that feed in-loop predicate branches).
///
/// The recovered lane offsets use the sum-zero gauge: each lane
/// position's addends across groups split as
/// `table_base + elem_scale * offset` with the offsets summing to
/// zero, which is exact for symmetric neighborhoods (astar's ±1 row /
/// ±1 column ring) and rejects inconsistent splits.
pub fn spec_from_profile(
    profile: &pfm_analyze::profile::ProgramProfile,
    scope: usize,
) -> Option<TemplateSpec> {
    use pfm_analyze::profile::{BoundKind, StreamClass, ValueDesc};

    let mut cands: Vec<LaneCand> = Vec::new();
    for br in &profile.branches {
        if br.is_exit || br.is_latch || !br.data_dependent {
            continue;
        }
        let Some((lane_load, predicate, tag_def)) = lane_predicate(br) else {
            continue;
        };
        let Some(lane) = profile.stream_at(lane_load) else {
            continue;
        };
        let StreamClass::Indirect {
            feeder,
            scale,
            addend: Some(addend),
            ..
        } = &lane.class
        else {
            continue;
        };
        if lane.is_store || *scale <= 0 || lane.loop_header_pc != br.loop_header_pc {
            continue;
        }
        let Some(wl) = profile.stream_at(*feeder) else {
            continue;
        };
        let StreamClass::Strided { stride, .. } = &wl.class else {
            continue;
        };
        // The feeder must walk the worklist in whole elements.
        if wl.is_store
            || *stride <= 0
            || *stride as u64 != wl.width
            || wl.loop_header_pc != br.loop_header_pc
        {
            continue;
        }
        cands.push(LaneCand {
            branch_pc: br.pc,
            taken: br.taken_target,
            wl_load: *feeder,
            elem_scale: *scale,
            addend: *addend,
            size: lane.width,
            predicate,
            tag_def,
        });
    }

    // One worklist walk feeds every lane.
    let wl_load = cands.first()?.wl_load;
    if cands.iter().any(|c| c.wl_load != wl_load) {
        return None;
    }
    cands.sort_by_key(|c| c.branch_pc);

    // Lanes sharing a taken target form one short-circuit group;
    // groups keep first-branch program order.
    let mut groups: Vec<(u64, Vec<&LaneCand>)> = Vec::new();
    for c in &cands {
        match groups.iter_mut().find(|(t, _)| *t == c.taken) {
            Some((_, g)) => g.push(c),
            None => groups.push((c.taken, vec![c])),
        }
    }
    let lanes_per_group = groups.first()?.1.len();
    if groups.iter().any(|(_, g)| g.len() != lanes_per_group) {
        return None;
    }
    for (target, g) in &groups {
        // Taken must skip the whole group (the template's semantics).
        if g.last().is_none_or(|last| *target <= last.branch_pc) {
            return None;
        }
    }
    // Per-position shape must agree across groups.
    for i in 0..lanes_per_group {
        let p0 = groups[0].1[i];
        if groups.iter().any(|(_, g)| {
            g[i].elem_scale != p0.elem_scale
                || g[i].size != p0.size
                || g[i].predicate != p0.predicate
                || g[i].tag_def != p0.tag_def
        }) {
            return None;
        }
    }
    // All EqualsTag positions must snoop the same tag def.
    let mut tag_pc: Option<u64> = None;
    for i in 0..lanes_per_group {
        if let Some(d) = groups[0].1[i].tag_def {
            if *tag_pc.get_or_insert(d) != d {
                return None;
            }
        }
    }
    let tag_pc = tag_pc?;

    // Split each position's addends into table base + scaled offset.
    let group_count = groups.len() as i128;
    let mut offsets: Vec<i64> = Vec::new();
    let mut bases: Vec<u64> = Vec::new();
    for i in 0..lanes_per_group {
        let sum: i128 = groups.iter().map(|(_, g)| g[i].addend as i64 as i128).sum();
        if sum % group_count != 0 {
            return None;
        }
        let base = sum / group_count;
        let scale = groups[0].1[i].elem_scale as i128;
        for (gi, (_, g)) in groups.iter().enumerate() {
            let diff = g[i].addend as i64 as i128 - base;
            if diff % scale != 0 {
                return None;
            }
            let off = i64::try_from(diff / scale).ok()?;
            if i == 0 {
                offsets.push(off);
            } else if offsets[gi] != off {
                return None;
            }
        }
        bases.push(i64::try_from(base).ok()? as u64);
    }

    // Worklist base, length and commit head from the walk's loop.
    let wl = profile.stream_at(wl_load)?;
    let StreamClass::Strided { base_defs, .. } = &wl.class else {
        return None;
    };
    let [wl_base_pc] = base_defs.as_slice() else {
        return None;
    };
    let lp = profile
        .loops
        .iter()
        .find(|l| l.header_pc == wl.loop_header_pc)?;
    let [iv] = lp.ivs.as_slice() else {
        return None;
    };
    let [induction_pc] = iv.step_pcs.as_slice() else {
        return None;
    };
    let mut inv_bounds = lp.bounds.iter().filter(|b| b.kind == BoundKind::Invariant);
    let bound = inv_bounds.next()?;
    if inv_bounds.next().is_some() {
        return None;
    }
    let wl_len_pc = bound.def_pc?;

    // Store inference: every group writes the tag back through the
    // same chain as its first lane (astar's visited-mark store).
    let infer = groups.iter().all(|(_, g)| {
        let lead = g[0];
        profile.streams.iter().any(|s| {
            s.is_store
                && matches!(&s.class, StreamClass::Indirect { feeder, scale, addend: Some(a), .. }
                    if *feeder == wl_load && *scale == lead.elem_scale && *a == lead.addend)
                && matches!(&s.value,
                    Some(ValueDesc::Invariant { def_pc: Some(d), .. }) if *d == tag_pc)
        })
    });

    let mut lanes = Vec::new();
    for (gi, (_, g)) in groups.iter().enumerate() {
        for (i, c) in g.iter().enumerate() {
            lanes.push(LaneSpec {
                offset: offsets[gi],
                table_base: bases[i],
                elem_scale: c.elem_scale as u64,
                elem_offset: 0,
                size: c.size,
                branch_pc: c.branch_pc,
                predicate: c.predicate,
                taken_skips_group: true,
                group: gi as u32,
                infer_store_on_all_not_taken: infer && i + 1 == g.len(),
            });
        }
    }
    Some(TemplateSpec {
        tag_pc,
        wl_base_pc: *wl_base_pc,
        wl_len_pc,
        induction_pc: *induction_pc,
        wl_elem_size: wl.width,
        lanes,
        scope,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfm_fabric::LoadResponse;

    fn spec_two_lane() -> TemplateSpec {
        TemplateSpec {
            tag_pc: 0x100,
            wl_base_pc: 0x104,
            wl_len_pc: 0x108,
            induction_pc: 0x10c,
            wl_elem_size: 4,
            lanes: vec![
                LaneSpec {
                    offset: 1,
                    table_base: 0x10_0000,
                    elem_scale: 8,
                    elem_offset: 0,
                    size: 4,
                    branch_pc: 0x200,
                    predicate: Predicate::EqualsTag,
                    taken_skips_group: true,
                    group: 0,
                    infer_store_on_all_not_taken: false,
                },
                LaneSpec {
                    offset: 1,
                    table_base: 0x20_0000,
                    elem_scale: 1,
                    elem_offset: 0,
                    size: 1,
                    branch_pc: 0x204,
                    predicate: Predicate::NonZero,
                    taken_skips_group: true,
                    group: 0,
                    infer_store_on_all_not_taken: true,
                },
            ],
            scope: 8,
        }
    }

    /// Drives a component over the scripted worklist; iterations
    /// retire only after all their group-leader predictions were
    /// emitted, as the core would (it cannot retire unfetched code).
    fn drive_component(
        c: &mut dyn CustomComponent,
        worklist: &[u64],
        answer: &dyn Fn(u64) -> u64,
        tag: u64,
        leader_pcs: &[u64],
        groups_per_iter: u64,
    ) -> Vec<PredPacket> {
        let mut obs: VecDeque<ObsPacket> = VecDeque::new();
        obs.push_back(ObsPacket::DestValue {
            pc: 0x100,
            value: tag,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x104,
            value: 0x50_0000,
        });
        obs.push_back(ObsPacket::DestValue {
            pc: 0x108,
            value: worklist.len() as u64,
        });
        let mut resp: VecDeque<LoadResponse> = VecDeque::new();
        let mut preds: Vec<PredPacket> = Vec::new();
        let mut retired = 0u64;
        for tick in 0..800 {
            let mut out_p = Vec::new();
            let mut out_l = Vec::new();
            {
                let mut io = FabricIo::new(
                    8, tick, &mut obs, &mut resp, &mut out_p, &mut out_l, 512, 512,
                );
                c.tick(&mut io);
            }
            for l in out_l {
                let value = if l.addr >= 0x50_0000 {
                    worklist[((l.addr - 0x50_0000) / 4) as usize]
                } else {
                    answer(l.addr)
                };
                resp.push_back(LoadResponse { id: l.id, value });
            }
            preds.extend(out_p);
            let leaders = preds.iter().filter(|p| leader_pcs.contains(&p.pc)).count() as u64;
            if leaders >= (retired + 1) * groups_per_iter && (retired as usize) < worklist.len() {
                retired += 1;
                obs.push_back(ObsPacket::DestValue {
                    pc: 0x10c,
                    value: retired,
                });
            }
        }
        preds
    }

    fn drive(
        spec: TemplateSpec,
        worklist: &[u64],
        answer: impl Fn(u64) -> u64,
        tag: u64,
    ) -> Vec<PredPacket> {
        let leaders: Vec<u64> = {
            let mut v = Vec::new();
            let mut last_group = u32::MAX;
            for l in &spec.lanes {
                if l.group != last_group {
                    v.push(l.branch_pc);
                    last_group = l.group;
                }
            }
            v
        };
        let groups = leaders.len() as u64;
        let mut c = TemplateComponent::new(spec);
        drive_component(&mut c, worklist, &answer, tag, &leaders, groups)
    }

    #[test]
    fn two_lane_group_short_circuits() {
        // Element 10 -> key 11: visited (waymap == tag) -> single taken
        // pred, no second-lane pred.
        let preds = drive(
            spec_two_lane(),
            &[10],
            |addr| if addr == 0x10_0000 + 8 * 11 { 5 } else { 0 },
            5,
        );
        assert_eq!(
            preds,
            vec![PredPacket {
                pc: 0x200,
                taken: true
            }]
        );
    }

    #[test]
    fn entered_set_infers_stores() {
        // Elements 10 and 10 again: both map to key 11, unvisited and
        // passable. First: [NT, NT] + entered; second: inferred taken.
        let preds = drive(spec_two_lane(), &[10, 10], |_| 0, 5);
        assert_eq!(
            preds,
            vec![
                PredPacket {
                    pc: 0x200,
                    taken: false
                },
                PredPacket {
                    pc: 0x204,
                    taken: false
                },
                PredPacket {
                    pc: 0x200,
                    taken: true
                },
            ]
        );
    }

    #[test]
    fn template_reproduces_handbuilt_astar_stream() {
        // Instantiate the template for astar's ROI and compare its
        // full prediction stream against the dedicated component on a
        // scripted input.
        let acfg = crate::astar::AstarConfig {
            fillnum_pc: 0x100,
            wl_base_pc: 0x104,
            wl_len_pc: 0x108,
            induction_pc: 0x10c,
            waymap_base: 0x10_0000,
            maparp_base: 0x20_0000,
            offsets: [-17, -16, -15, -1, 1, 15, 16, 17],
            waymap_branch_pcs: [0x200, 0x210, 0x220, 0x230, 0x240, 0x250, 0x260, 0x270],
            maparp_branch_pcs: [0x204, 0x214, 0x224, 0x234, 0x244, 0x254, 0x264, 0x274],
            index_queue_size: 8,
            store_inference: true,
            predict_maparp: true,
            t1_width: 2,
        };
        let worklist: Vec<u64> = vec![100, 101, 130, 100];
        let blocked = [99u64, 116, 131];
        let answer = |addr: u64| -> u64 {
            if addr >= 0x20_0000 {
                blocked.contains(&(addr - 0x20_0000)) as u64
            } else {
                0 // waymap: all unvisited
            }
        };

        let template_preds = drive(astar_template(&acfg), &worklist, answer, 7);

        // Drive the hand-built component under the same pacing.
        let leaders: Vec<u64> = acfg.waymap_branch_pcs.to_vec();
        let mut c = crate::astar::AstarPredictor::new(acfg);
        let hand = drive_component(&mut c, &worklist, &answer, 7, &leaders, 8);
        assert_eq!(
            template_preds, hand,
            "the template must reproduce the hand-built design"
        );
    }

    #[test]
    fn spec_from_profile_reads_an_astar_shaped_kernel() {
        // A two-neighbor astar-shaped kernel: walk a worklist, probe
        // waymap (tag test) and maparp (non-zero test) at offsets ±1,
        // mark visited entries with the tag.
        use pfm_isa::reg::names::*;
        let mut a = pfm_isa::Asm::new(0x1000);
        let top = a.label();
        let done = a.label();
        a.li(S1, 0x10_0000); // waymap
        a.li(S2, 0x20_0000); // maparp
        let tag_pc = a.here();
        a.li(S0, 7); // tag
        let wl_base_pc = a.here();
        a.li(A0, 0x50_0000); // worklist base
        let wl_len_pc = a.here();
        a.li(A1, 4); // worklist length
        a.li(T0, 0);
        a.place(top);
        a.bge(T0, A1, done);
        a.slli(T3, T0, 2);
        a.add(T3, A0, T3);
        a.lwu(T1, T3, 0); // worklist element
        let mut way_pcs = Vec::new();
        let mut map_pcs = Vec::new();
        for off in [1i64, -1] {
            let skip = a.label();
            a.addi(T2, T1, off);
            a.slli(T3, T2, 3);
            a.add(T3, S1, T3);
            a.lwu(T4, T3, 0);
            way_pcs.push(a.here());
            a.beq(T4, S0, skip);
            a.add(T5, S2, T2);
            a.lbu(T5, T5, 0);
            map_pcs.push(a.here());
            a.bne(T5, X0, skip);
            a.slli(T3, T2, 3);
            a.add(T3, S1, T3);
            a.sw(S0, T3, 0); // mark visited with the tag
            a.place(skip);
        }
        let induction_pc = a.here();
        a.addi(T0, T0, 1);
        a.j(top);
        a.place(done);
        a.halt();
        let prog = a.finish().expect("assembles");

        let profile = pfm_analyze::analyze(&prog, &[], &[]).profile;
        let spec = spec_from_profile(&profile, 8).expect("kernel matches the template");
        let lane = |gi: usize, off: i64, way: bool| LaneSpec {
            offset: off,
            table_base: if way { 0x10_0000 } else { 0x20_0000 },
            elem_scale: if way { 8 } else { 1 },
            elem_offset: 0,
            size: if way { 4 } else { 1 },
            branch_pc: if way { way_pcs[gi] } else { map_pcs[gi] },
            predicate: if way {
                Predicate::EqualsTag
            } else {
                Predicate::NonZero
            },
            taken_skips_group: true,
            group: gi as u32,
            infer_store_on_all_not_taken: !way,
        };
        assert_eq!(
            spec,
            TemplateSpec {
                tag_pc,
                wl_base_pc,
                wl_len_pc,
                induction_pc,
                wl_elem_size: 4,
                lanes: vec![
                    lane(0, 1, true),
                    lane(0, 1, false),
                    lane(1, -1, true),
                    lane(1, -1, false),
                ],
                scope: 8,
            }
        );
    }

    #[test]
    fn predicates_evaluate_correctly() {
        assert!(Predicate::EqualsTag.eval(5, 4, 5));
        assert!(!Predicate::EqualsTag.eval(4, 4, 5));
        assert!(Predicate::NonZero.eval(1, 1, 0));
        assert!(!Predicate::NonZero.eval(0, 1, 0));
        assert!(Predicate::NonNegative.eval(3, 8, 0));
        assert!(!Predicate::NonNegative.eval((-1i64) as u64, 8, 0));
        // Sign extension respects the load size.
        assert!(!Predicate::NonNegative.eval(0x80, 1, 0));
        assert!(Predicate::NonNegative.eval(0x80, 2, 0));
    }
}
