//! # pfm-components — the paper's custom microarchitectural components
//!
//! Application-specific components synthesized into the reconfigurable
//! fabric, as evaluated in §4/§5 of the paper:
//!
//! * [`astar::AstarPredictor`] — the three-engine custom branch
//!   predictor for astar's `makebound2` wave expansion (Figure 7),
//!   with the index1_CAM store-inference machinery. Disabling the
//!   inference and the maparp predictions reproduces the slipstream
//!   2.0 limitation discussed in §1.1 (see [`slipstream`]).
//! * [`bfs::BfsComponent`] — the four-engine bfs component (Figure 11)
//!   combining high-MLP load running-ahead with trip-count and
//!   visited-branch predictions.
//! * [`prefetch::CustomPrefetcher`] — Prefetch Generation Engines with
//!   the epoch-based adaptive-distance feedback (Figure 16), composing
//!   into the libquantum/bwaves/lbm/milc/leslie use-cases.
//! * [`astar_alt::AstarAltPredictor`] — the EXACT-inspired
//!   table-mimicking variant of §5 (Table 4's `astar-alt` row).
//! * [`template::TemplateComponent`] — the §7 future-work direction: a
//!   declarative template for the run-ahead strategy astar and bfs
//!   share, whose astar instantiation reproduces the hand-built
//!   design's prediction stream exactly.

#![warn(missing_docs)]

pub mod astar;
pub mod astar_alt;
pub mod bfs;
pub mod prefetch;
pub mod slipstream;
pub mod template;

pub use astar::{AstarConfig, AstarPredictor};
pub use astar_alt::{AstarAltConfig, AstarAltPredictor};
pub use bfs::{BfsComponent, BfsConfig};
pub use prefetch::{AdaptiveDistance, CustomPrefetcher, EngineConfig};
pub use template::{astar_template, LaneSpec, Predicate, TemplateComponent, TemplateSpec};
