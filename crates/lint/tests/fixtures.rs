//! Fixture-corpus tests: each rule family against known-bad,
//! known-allowed and known-clean sources, plus the workspace
//! self-check (the tree `pfm-lint` ships in must itself be clean).

use pfm_lint::{lint_source, FileContext, Finding};
use std::path::Path;

/// A source inside a simulation crate (determinism + hygiene apply).
fn sim_ctx() -> FileContext {
    FileContext {
        display: "crates/core/src/fixture.rs".to_string(),
        crate_name: Some("core".to_string()),
        exempt: false,
    }
}

/// A source inside an Agent crate (all three families apply).
fn agent_ctx() -> FileContext {
    FileContext {
        display: "crates/fabric/src/fixture.rs".to_string(),
        crate_name: Some("fabric".to_string()),
        exempt: false,
    }
}

/// A source outside the sim crates (only hygiene applies).
fn tool_ctx() -> FileContext {
    FileContext {
        display: "crates/bench/src/fixture.rs".to_string(),
        crate_name: Some("bench".to_string()),
        exempt: false,
    }
}

fn rules(findings: &[Finding]) -> Vec<(&'static str, &'static str)> {
    findings.iter().map(|f| (f.family, f.rule)).collect()
}

#[test]
fn hash_iter_patterns_are_flagged() {
    let src = include_str!("fixtures/hash_iter_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    let hash_iter = findings
        .iter()
        .filter(|f| f.rule == "hash-iter")
        .collect::<Vec<_>>();
    // .iter(), for-in &map, for-in &set, .keys(), .values(), .drain()
    assert_eq!(
        hash_iter.len(),
        6,
        "expected all six hazards flagged, got: {findings:#?}"
    );
    assert!(findings.iter().all(|f| f.family == "determinism"));
}

#[test]
fn hash_iter_is_crate_scoped() {
    // The same hazards outside the sim crates are not determinism
    // findings (the dedup-executor argument only covers sim results).
    let src = include_str!("fixtures/hash_iter_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    assert!(
        findings.iter().all(|f| f.family != "determinism"),
        "tool crates are out of determinism scope: {findings:#?}"
    );
}

#[test]
fn allow_annotations_suppress_hash_iter() {
    let src = include_str!("fixtures/hash_iter_allowed.rs");
    let findings = lint_source(src, &sim_ctx());
    assert!(
        findings.is_empty(),
        "allow(<rule>) on the same or previous line must suppress: {findings:#?}"
    );
}

#[test]
fn wall_clock_reads_are_flagged() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    let r = rules(&findings);
    assert!(
        r.contains(&("determinism", "wall-clock")),
        "expected wall-clock findings: {findings:#?}"
    );
    assert!(findings.iter().any(|f| f.message.contains("Instant::now")));
}

#[test]
fn entropy_rng_is_flagged() {
    let src = include_str!("fixtures/rng_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    assert!(
        rules(&findings).contains(&("determinism", "rng")),
        "expected rng findings: {findings:#?}"
    );
}

#[test]
fn arch_mutators_are_flagged_in_agent_crates() {
    let src = include_str!("fixtures/arch_mutation_bad.rs");
    let findings = lint_source(src, &agent_ctx());
    let arch = findings
        .iter()
        .filter(|f| f.rule == "arch-mutation")
        .collect::<Vec<_>>();
    // set_reg, set_pc, mem_mut, commit_store, set_freg_bits.
    assert_eq!(
        arch.len(),
        5,
        "expected all five mutator calls flagged: {findings:#?}"
    );
    assert!(arch.iter().all(|f| f.family == "noninterference"));
}

#[test]
fn arch_mutators_are_fine_outside_agent_crates() {
    // The core itself retires stores and writes registers; only the
    // Agent crates are barred from the mutator surface.
    let src = include_str!("fixtures/arch_mutation_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    assert!(
        findings.iter().all(|f| f.rule != "arch-mutation"),
        "non-agent crates may mutate architectural state: {findings:#?}"
    );
}

#[test]
fn unwrap_and_expect_are_flagged() {
    let src = include_str!("fixtures/hygiene_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    let r = rules(&findings);
    assert!(r.contains(&("hygiene", "unwrap")), "{findings:#?}");
    assert!(r.contains(&("hygiene", "expect")), "{findings:#?}");
    assert_eq!(findings.len(), 2);
}

#[test]
fn catch_unwind_is_flagged_outside_the_executor() {
    let src = include_str!("fixtures/catch_unwind_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    let hits = findings
        .iter()
        .filter(|f| f.rule == "catch-unwind")
        .collect::<Vec<_>>();
    // The `use` plus both call sites.
    assert_eq!(hits.len(), 3, "expected all three sites: {findings:#?}");
    assert!(hits.iter().all(|f| f.family == "robustness"));
}

#[test]
fn catch_unwind_is_sanctioned_at_the_executor_boundary() {
    let src = include_str!("fixtures/catch_unwind_bad.rs");
    let ctx = FileContext {
        display: "crates/sim/src/exec.rs".to_string(),
        crate_name: Some("sim".to_string()),
        exempt: false,
    };
    let findings = lint_source(src, &ctx);
    assert!(
        findings.iter().all(|f| f.rule != "catch-unwind"),
        "the executor owns panic isolation: {findings:#?}"
    );
}

#[test]
fn panic_macros_are_flagged_in_agent_crates() {
    let src = include_str!("fixtures/panic_bad.rs");
    let findings = lint_source(src, &agent_ctx());
    let hits = findings
        .iter()
        .filter(|f| f.rule == "panic")
        .collect::<Vec<_>>();
    // panic!, todo!, unimplemented!, unreachable! — the annotated
    // fifth site is suppressed by its allow(robustness).
    assert_eq!(hits.len(), 4, "expected four macro sites: {findings:#?}");
    assert!(hits.iter().all(|f| f.family == "robustness"));
}

#[test]
fn panic_macros_are_fine_outside_agent_crates() {
    // The core and the tools may panic on internal invariants; only
    // fabric components are held to the graceful-degradation bar.
    let src = include_str!("fixtures/panic_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    assert!(
        findings.iter().all(|f| f.rule != "panic"),
        "tool crates are out of robustness/panic scope: {findings:#?}"
    );
}

/// A source inside a PC-config crate (provenance applies).
fn config_ctx() -> FileContext {
    FileContext {
        display: "crates/components/src/fixture.rs".to_string(),
        crate_name: Some("components".to_string()),
        exempt: false,
    }
}

#[test]
fn raw_hex_pcs_are_flagged() {
    let src = include_str!("fixtures/raw_hex_pc_bad.rs");
    let findings = lint_source(src, &config_ctx());
    let hits = findings
        .iter()
        .filter(|f| f.rule == "raw-hex-pc")
        .collect::<Vec<_>>();
    // struct-literal field, vec! element, let binding, reassignment;
    // the allow-annotated boot vector and the symbol-derived/compare
    // sites stay silent.
    assert_eq!(
        hits.len(),
        4,
        "expected the four seeded sites: {findings:#?}"
    );
    assert!(hits.iter().all(|f| f.family == "provenance"));
    assert!(hits.iter().any(|f| f.message.contains("`load_pc`")));
    assert!(hits.iter().any(|f| f.message.contains("require_symbol")));
}

#[test]
fn raw_hex_pcs_are_out_of_scope_for_tool_crates() {
    // bench/lint tooling may name PCs numerically (e.g. CLI parsing
    // or fixture tables); only configuration-bearing crates are held
    // to symbol provenance.
    let src = include_str!("fixtures/raw_hex_pc_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    assert!(
        findings.iter().all(|f| f.rule != "raw-hex-pc"),
        "tool crates are out of provenance scope: {findings:#?}"
    );
}

#[test]
fn snapshot_hash_iter_is_workspace_wide_and_sees_fx_containers() {
    // Unlike the crate-scoped basic rule, the snapshot rules fire even
    // in tool crates, and FxHashMap is in scope: canonical snapshot
    // bytes must not depend on any hasher's bucket order.
    let src = include_str!("fixtures/snapshot_hash_iter_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    let r = rules(&findings);
    assert_eq!(
        r,
        vec![
            ("determinism", "snapshot-hash-iter"),
            ("determinism", "snapshot-hash-iter"),
        ],
        "expected exactly the two unsorted walks in snapshot_encode: {findings:#?}"
    );
    // The for-in over the Fx map, then the .keys() walk of the std map.
    assert_eq!(findings[0].line, 16);
    assert_eq!(findings[1].line, 20);
}

#[test]
fn snapshot_hash_iter_allow_and_non_snapshot_paths_stay_silent() {
    // The annotated sorted-encode site is suppressed, and tick() is
    // outside every snapshot path, so a sim crate adds only the basic
    // hash-iter finding for the std-hash walk in tick() — the Fx walk
    // there stays invisible to the basic rule by design.
    let src = include_str!("fixtures/snapshot_hash_iter_bad.rs");
    let findings = lint_source(src, &sim_ctx());
    let r = rules(&findings);
    assert_eq!(
        r.iter()
            .filter(|(_, rule)| *rule == "snapshot-hash-iter")
            .count(),
        2,
        "snapshot findings must not change under a sim ctx: {findings:#?}"
    );
    assert!(
        !r.contains(&("determinism", "snapshot-wall-clock")),
        "no wall-clock reads in this fixture: {findings:#?}"
    );
}

#[test]
fn snapshot_wall_clock_is_flagged_only_inside_snapshot_paths() {
    let src = include_str!("fixtures/snapshot_wall_clock_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    let r = rules(&findings);
    assert_eq!(
        r,
        vec![
            ("determinism", "snapshot-wall-clock"),
            ("determinism", "snapshot-wall-clock"),
        ],
        "expected the Instant and SystemTime reads in encode(): {findings:#?}"
    );
    assert_eq!(findings[0].line, 14);
    assert_eq!(findings[1].line, 16);
}

#[test]
fn store_key_impurities_are_flagged_workspace_wide() {
    // Like the snapshot rules, store-key purity applies even in tool
    // crates: any code that builds cache keys or code fingerprints is
    // held to the pure-function bar, wherever it lives.
    let src = include_str!("fixtures/store_key_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    let hits = findings
        .iter()
        .filter(|f| f.rule == "store-key-purity")
        .collect::<Vec<_>>();
    // Instant::now, SystemTime, env::var, env!, and the hash-order
    // fold — the allow-annotated sorted fold and the sites outside
    // key construction stay silent.
    assert_eq!(hits.len(), 5, "expected five seeded sites: {findings:#?}");
    assert!(hits.iter().all(|f| f.family == "determinism"));
    assert!(hits.iter().any(|f| f.message.contains("embeds time")));
    assert!(hits.iter().any(|f| f.message.contains("`env::var`")));
    assert!(hits.iter().any(|f| f.message.contains("`env!`")));
    assert!(hits
        .iter()
        .any(|f| f.message.contains("hash-ordered container `files`")));
}

#[test]
fn store_key_purity_findings_are_context_independent() {
    // A sim crate adds its own basic wall-clock/rng findings on top,
    // but the store-key findings themselves must not change.
    let src = include_str!("fixtures/store_key_bad.rs");
    for ctx in [sim_ctx(), agent_ctx(), tool_ctx()] {
        let findings = lint_source(src, &ctx);
        assert_eq!(
            findings
                .iter()
                .filter(|f| f.rule == "store-key-purity")
                .count(),
            5,
            "store-key findings drifted under {}: {findings:#?}",
            ctx.display
        );
    }
}

#[test]
fn clean_fixture_is_clean_everywhere() {
    let src = include_str!("fixtures/clean.rs");
    for ctx in [sim_ctx(), agent_ctx(), tool_ctx()] {
        let findings = lint_source(src, &ctx);
        assert!(
            findings.is_empty(),
            "clean fixture flagged under {}: {findings:#?}",
            ctx.display
        );
    }
}

#[test]
fn exempt_sources_are_never_flagged() {
    let src = include_str!("fixtures/hash_iter_bad.rs");
    let ctx = FileContext {
        exempt: true,
        ..sim_ctx()
    };
    assert!(lint_source(src, &ctx).is_empty());
}

#[test]
fn seeded_fabric_violation_is_caught() {
    // The acceptance probe: a freshly seeded `for k in &hash_map` in
    // crates/fabric must produce a finding (the CLI then exits 1).
    let src = "use std::collections::HashMap;\n\
               fn f(hash_map: &HashMap<u64, u64>) -> u64 {\n\
                   let mut acc = 0;\n\
                   for k in hash_map { acc += k.1; }\n\
                   acc\n\
               }\n";
    let findings = lint_source(src, &agent_ctx());
    assert_eq!(rules(&findings), vec![("determinism", "hash-iter")]);
    assert_eq!(findings[0].line, 4);
}

#[test]
fn swap_purity_flags_mutators_and_wall_clocks_in_reconfig_paths() {
    let src = include_str!("fixtures/swap_purity_bad.rs");
    // sim crate: the scheduler/runner side of the rule.
    let findings = lint_source(src, &sched_ctx());
    let swap = findings
        .iter()
        .filter(|f| f.rule == "swap-purity")
        .collect::<Vec<_>>();
    // set_pc, Instant::now, mem_mut, write_u8, SystemTime — and
    // nothing from `unrelated_helper`, whose name carries no marker.
    assert_eq!(
        swap.len(),
        5,
        "expected all five hazards flagged, got: {findings:#?}"
    );
    assert!(swap.iter().all(|f| f.family == "robustness"));

    // fabric crate: the rule applies there too (alongside
    // noninterference, which also sees the mutators).
    let findings = lint_source(src, &agent_ctx());
    assert_eq!(
        findings.iter().filter(|f| f.rule == "swap-purity").count(),
        5
    );
}

#[test]
fn swap_purity_is_crate_scoped_and_allowable() {
    // Outside fabric/sim the rule does not run at all.
    let src = include_str!("fixtures/swap_purity_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    assert!(findings.iter().all(|f| f.rule != "swap-purity"));

    // A justified allow suppresses it.
    let allowed = "fn drain_window(&self) -> u64 {\n\
                   \x20 // pfm-lint: allow(swap-purity)\n\
                   \x20 let t = Instant::now();\n\
                   \x20 0\n\
                   }\n";
    let findings = lint_source(allowed, &sched_ctx());
    assert!(
        findings.iter().all(|f| f.rule != "swap-purity"),
        "allow annotation must suppress: {findings:#?}"
    );
}

/// A source inside the sim crate proper (where the scheduler and the
/// context-switch runner live; `swap-purity` applies).
fn sched_ctx() -> FileContext {
    FileContext {
        display: "crates/sim/src/fixture.rs".to_string(),
        crate_name: Some("sim".to_string()),
        exempt: false,
    }
}

#[test]
fn diagnostic_format_is_stable() {
    let src = include_str!("fixtures/hygiene_bad.rs");
    let findings = lint_source(src, &tool_ctx());
    let line = findings[0].to_string();
    assert!(
        line.starts_with("crates/bench/src/fixture.rs:4: hygiene/unwrap: "),
        "unexpected diagnostic shape: {line}"
    );
}

#[test]
fn workspace_self_check_is_clean() {
    // pfm-lint must hold its own workspace to its own standard.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf();
    let findings = pfm_lint::lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        findings.is_empty(),
        "workspace is not lint-clean:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
