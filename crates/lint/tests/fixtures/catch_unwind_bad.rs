//! Robustness fixture: `catch_unwind` anywhere but the executor's
//! isolation boundary hides failures from the run report.

use std::panic::{catch_unwind, AssertUnwindSafe};

pub fn swallow(f: impl FnOnce() -> u64 + std::panic::UnwindSafe) -> u64 {
    catch_unwind(f).unwrap_or(0)
}

pub fn swallow_ref(f: &mut dyn FnMut() -> u64) -> u64 {
    catch_unwind(AssertUnwindSafe(|| f())).unwrap_or(0)
}
