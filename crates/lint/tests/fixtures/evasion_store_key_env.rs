//! Seeded evasion: an environment read hidden below a store-key
//! function. Store keys must depend on content only — a host-specific
//! salt silently forks the result store across machines.

pub fn fingerprint(parts: &[String]) -> u64 {
    let salt = host_salt();
    let mut h = 0xcbf29ce484222325u64;
    for p in parts {
        for b in p.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^ salt
}

fn host_salt() -> u64 {
    match std::env::var("PFM_SALT") {
        Ok(v) => v.len() as u64,
        Err(_) => 0,
    }
}
