//! Robustness fixture: panic-family macros in Agent library code. A
//! buggy component must degrade gracefully, not kill the simulator.

pub fn lookup(x: u64) -> u64 {
    if x == 0 {
        panic!("zero is not a vertex");
    }
    match x {
        1 => todo!(),
        2 => unimplemented!(),
        3 => unreachable!(),
        _ => {
            // pfm-lint: allow(robustness): fixture-sanctioned invariant
            panic!("justified and annotated");
        }
    }
}
