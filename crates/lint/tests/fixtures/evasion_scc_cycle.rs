//! Seeded evasion: the impurity sits below a mutually recursive pair.
//! Summary propagation must converge on the cycle and still surface
//! the clock read from the snapshot-marked entry point.

use std::time::SystemTime;

pub fn snapshot_tree(depth: u32) -> u64 {
    walk_even(depth)
}

fn walk_even(d: u32) -> u64 {
    if d == 0 {
        stamp()
    } else {
        walk_odd(d - 1)
    }
}

fn walk_odd(d: u32) -> u64 {
    if d == 0 {
        1
    } else {
        walk_even(d - 1)
    }
}

fn stamp() -> u64 {
    match SystemTime::now().duration_since(SystemTime::UNIX_EPOCH) {
        Ok(d) => d.as_secs(),
        Err(_) => 0,
    }
}
