// Fixture: entropy-seeded randomness inside a sim crate.

fn roll() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

fn reseed() -> SmallRng {
    SmallRng::from_entropy()
}
