// Fixture: every hash-iteration pattern the determinism family flags.
use std::collections::{HashMap, HashSet};

fn sum_values(m: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

fn walk(map: HashMap<u64, u64>, set: HashSet<u64>) -> u64 {
    let mut acc = 0;
    for k in &map {
        acc += k.0;
    }
    for s in &set {
        acc += s;
    }
    for k in map.keys() {
        acc += k;
    }
    for v in map.values() {
        acc += v;
    }
    acc
}

fn drain_all(mut pending: HashMap<u64, u64>) -> u64 {
    let mut acc = 0;
    for (_, v) in pending.drain() {
        acc += v;
    }
    acc
}
