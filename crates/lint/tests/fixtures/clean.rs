// Fixture: code every rule family accepts — ordered collections,
// point lookups into hash maps, and panics confined to cfg(test).
use std::collections::{BTreeMap, HashMap};

fn ordered_walk(m: &BTreeMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

fn point_lookup(h: &HashMap<u64, u64>, k: u64) -> Option<u64> {
    h.get(&k).copied()
}

fn string_iter(s: &str) -> usize {
    // `.iter()`-adjacent names on non-hash receivers are fine.
    s.chars().count()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Vec<u64> = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
