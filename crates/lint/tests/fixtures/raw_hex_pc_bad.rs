//! Fixture: raw hex PC literals assigned to `*_pc`/`*_pcs` names.
//! Each violation site is a watch PC spelled positionally instead of
//! derived from the assembled program's symbol table.

pub struct EngineConfig {
    pub load_pc: u64,
    pub base_pcs: Vec<u64>,
}

pub fn bad_struct_literal() -> EngineConfig {
    EngineConfig {
        load_pc: 0x1040,              // violation 1
        base_pcs: vec![sym(), 0x2000], // violation 2 (inside vec!)
    }
}

pub fn bad_let_and_assignment() -> u64 {
    let induction_pc = 0x1014; // violation 3
    let mut branch_pcs = Vec::new();
    branch_pcs = vec![0x1100]; // violation 4
    induction_pc + branch_pcs[0]
}

pub fn allowed_boot_vector() -> u64 {
    // pfm-lint: allow(raw-hex-pc): the reset vector is an ISA constant.
    let boot_pc = 0x1000;
    boot_pc
}

pub fn clean_symbol_derived(program: &Program) -> u64 {
    let load_pc = program.require_symbol("load_pc");
    if load_pc == 0x1040 {
        // comparisons are not assignments
    }
    load_pc
}

fn sym() -> u64 {
    0
}
