//! Known-bad: wall-clock capture inside snapshot/serialization
//! functions. Snapshot bytes must be a function of machine state, never
//! of when they were taken — a timestamp in the stream breaks the
//! canonical-bytes contract (and with it content-keyed deduplication).

use std::time::{Instant, SystemTime};

pub struct Header {
    pub version: u32,
}

impl Header {
    pub fn encode(&self, out: &mut Vec<u8>) {
        let stamp = Instant::now(); // bad: nondeterministic bytes
        let _ = stamp;
        let epoch = SystemTime::now(); // bad: flagged via the type name
        let _ = epoch;
        out.extend_from_slice(&self.version.to_le_bytes());
    }

    pub fn observe(&self) -> u64 {
        // Outside a snapshot path the snapshot rules stay silent; in a
        // sim crate the basic determinism/wall-clock rule would own
        // this site instead.
        let t = Instant::now();
        let _ = t;
        0
    }
}
