//! Seeded evasion: a runtime-reconfiguration path reaching an
//! architectural-state mutator (and, separately, the wall clock)
//! through helpers. Swap paths must stay quiescence-pure.

impl FabricSlot {
    pub fn begin_swap(&mut self, epoch: u64) {
        self.quiesce(epoch);
    }

    fn quiesce(&mut self, epoch: u64) {
        self.machine.set_reg(0, epoch);
    }

    pub fn drain_queues(&mut self) -> u64 {
        self.settle()
    }

    fn settle(&mut self) -> u64 {
        std::time::Instant::now().elapsed().as_nanos() as u64
    }
}
