//! Seeded evasion: values returned from Agent hooks flowing into
//! architectural-state mutators — once directly, once laundered
//! through a helper's parameter. Hook values may steer
//! microarchitecture only; both flows must be findings with the call
//! chain printed.

impl Core {
    pub fn consume_direct(&mut self) {
        let dir = self.hooks.fetch_inst(self.seq, self.pc, false);
        self.machine.set_pc(dir.target);
    }

    pub fn consume_via_helper(&mut self) {
        let v = self.hooks.pop_load();
        self.apply_value(v);
    }

    fn apply_value(&mut self, v: u64) {
        self.machine.set_reg(3, v);
    }

    /// Sanctioned shape: comparing the hook value and then mutating
    /// with untainted arguments is steering, not data flow.
    pub fn consume_steering_only(&mut self, seq: u64) {
        let d = self.hooks.on_retire(&self.info);
        if d == Directive::SquashYounger {
            self.machine.commit_store(seq);
        }
    }
}
