// Fixture: wall-clock reads inside a sim crate.
use std::time::{Instant, SystemTime};

fn stamp() -> u64 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos() as u64
}
