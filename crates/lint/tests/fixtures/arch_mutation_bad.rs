// Fixture: an Agent-crate source calling architectural-state mutators.

fn misbehave(machine: &mut Machine) {
    machine.set_reg(Reg::A0, 42);
    machine.set_pc(0x1000);
    machine.mem_mut().commit_store(7);
    Machine::set_freg_bits(machine, Reg::F0, 1);
}
