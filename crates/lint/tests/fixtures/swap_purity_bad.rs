//! Known-bad reconfiguration paths: architectural-state mutation and
//! wall-clock reads inside swap/drain/phase-signature functions.

pub fn begin_swap(core: &mut Core) {
    // BAD: a swap is microarchitectural; it must not redirect the PC.
    core.set_pc(0x1000);
}

pub fn drain_window(&self) -> u64 {
    // BAD: drain length from host time.
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn reconfigure(machine: &mut Machine) {
    // BAD: committed-memory store from a reconfiguration path.
    machine.mem_mut().write_u8(0x2000, 1);
}

pub fn phase_signature(&mut self) -> u64 {
    // BAD: wall-clock in the scheduler's signature.
    let _stamp = SystemTime::now();
    0
}

pub fn unrelated_helper(core: &mut Core) {
    // Not in a marked function name: the *swap-purity* rule does not
    // fire here (other families may).
    core.set_pc(0x3000);
}
