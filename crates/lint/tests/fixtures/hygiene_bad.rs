// Fixture: panicking shortcuts in non-test library code.

fn first(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

fn second(v: &[u64]) -> u64 {
    *v.get(1).expect("has two elements")
}
