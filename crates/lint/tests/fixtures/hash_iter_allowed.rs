// Fixture: the same hazards, each deliberately acknowledged with an
// allow annotation (same line or the line above).
use std::collections::HashMap;

fn sum_values(m: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    // pfm-lint: allow(hash-iter): order-independent fold
    for (_k, v) in m.iter() {
        total += v;
    }
    total
}

fn count(map: &HashMap<u64, u64>) -> usize {
    let mut n = 0;
    for _k in map.keys() // pfm-lint: allow(determinism/hash-iter): counting only
    {
        n += 1;
    }
    n
}
