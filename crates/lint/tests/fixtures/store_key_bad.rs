//! Known-bad: impure store-key / code-fingerprint construction. A
//! content-addressed result store is only sound if its keys are pure
//! functions of the run spec and the code: a key that embeds time
//! never hits twice, a key that embeds the environment is
//! unreproducible on another machine, and a key folded in hash-bucket
//! order differs between runs even over identical content.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub struct Workspace {
    files: HashMap<String, u64>,
}

impl Workspace {
    pub fn source_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let stamp = Instant::now(); // bad: key embeds time
        let _ = stamp;
        let built = SystemTime::now(); // bad: flagged via the type name
        let _ = built;
        let host = std::env::var("HOSTNAME"); // bad: env-dependent key
        let _ = host;
        let tool = env!("CARGO_PKG_VERSION"); // bad: build-env in key
        let _ = tool;
        for kv in self.files.iter() {
            // bad: bucket order folds into the digest
            h ^= *kv.1;
        }
        h
    }

    pub fn store_key_hash(&self, spec_key: &str) -> u64 {
        // good: names are sorted before folding, justified at the site
        // pfm-lint: allow(store-key-purity)
        let mut names: Vec<&String> = self.files.keys().collect();
        names.sort_unstable();
        let mut h = names.len() as u64;
        for b in spec_key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    pub fn report(&self) {
        // Outside key construction this rule stays silent (other
        // rules may still own these sites in sim crates).
        let _ = std::env::var("HOME");
    }
}
