//! Known-bad: hash-ordered iteration inside snapshot/serialization
//! functions. The snapshot rules apply workspace-wide and also match
//! the Fx hash containers (their per-process bucket order is still not
//! canonical), unlike the crate-scoped basic determinism rule.

use crate::fxhash::FxHashMap;
use std::collections::HashMap;

pub struct State {
    pages: FxHashMap<u64, u64>,
    tags: HashMap<u64, u8>,
}

impl State {
    pub fn snapshot_encode(&self, out: &mut Vec<u8>) {
        for kv in &self.pages {
            // bad: Fx bucket order leaks into the bytes
            out.push(*kv.1 as u8);
        }
        for k in self.tags.keys() {
            // bad: std hash order leaks into the bytes
            out.push(*k as u8);
        }
    }

    pub fn snapshot_encode_sorted(&self, out: &mut Vec<u8>) {
        // good: sorted before encoding, justified at the site
        // pfm-lint: allow(snapshot-hash-iter)
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        out.extend(keys.iter().map(|k| *k as u8));
    }

    pub fn tick(&mut self) {
        // Outside a snapshot path the snapshot rules stay silent (the
        // basic determinism rule owns non-snapshot code, and only in
        // the sim crates).
        for kv in &self.pages {
            let _ = kv;
        }
    }
}
