//! Seeded evasion: wall-clock reads hidden one and two calls below
//! snapshot functions. The local token rule only sees `Instant::now()`
//! at its own line; the transitive effect summaries must surface the
//! marked entry points too, with the offending call path.

use std::time::Instant;

pub struct Window {
    last: u64,
}

impl Window {
    /// Snapshot-marked: must be replay-pure, but its helper reads the
    /// clock one call down.
    pub fn snapshot_encode(&self) -> Vec<u8> {
        let stamp = self.one_deep();
        stamp.to_le_bytes().to_vec()
    }

    /// Snapshot-marked: the clock sits two calls down.
    pub fn snapshot_state(&self) -> u64 {
        self.two_deep_entry()
    }

    fn one_deep(&self) -> u64 {
        Instant::now().elapsed().as_nanos() as u64
    }

    fn two_deep_entry(&self) -> u64 {
        self.two_deep_leaf()
    }

    fn two_deep_leaf(&self) -> u64 {
        let t = Instant::now();
        let _ = t;
        self.last
    }
}
