//! Interprocedural integration tests: the seeded evasion corpus (each
//! fixture MUST produce its finding, with the offending call path
//! printed), convergence over the recursive fixture, the `pfm-lint/1`
//! JSON byte-pin, and the `--graph` dump.

use pfm_lint::{analyze, json, lint_analysis, lint_source, render_graph, FileContext, Finding};

/// A source inside the core crate (determinism + taint scope).
fn core_ctx() -> FileContext {
    FileContext {
        display: "crates/core/src/fixture.rs".to_string(),
        crate_name: Some("core".to_string()),
        exempt: false,
    }
}

/// A source inside an Agent crate (swap purity + non-interference).
fn fabric_ctx() -> FileContext {
    FileContext {
        display: "crates/fabric/src/fixture.rs".to_string(),
        crate_name: Some("fabric".to_string()),
        exempt: false,
    }
}

/// A source outside the sim crates (only hygiene applies).
fn tool_ctx() -> FileContext {
    FileContext {
        display: "crates/bench/src/fixture.rs".to_string(),
        crate_name: Some("bench".to_string()),
        exempt: false,
    }
}

fn with_rule<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn snapshot_clock_evasion_is_found_one_and_two_deep() {
    let src = include_str!("fixtures/evasion_snapshot_clock.rs");
    let findings = lint_source(src, &core_ctx());
    let hits = with_rule(&findings, "snapshot-wall-clock");
    assert!(
        hits.len() >= 2,
        "both entry points must fire: {findings:#?}"
    );
    assert!(hits.iter().all(|f| !f.path.is_empty()), "{hits:#?}");
    let joined: Vec<String> = hits.iter().map(|f| f.path.join(" -> ")).collect();
    assert!(
        joined.iter().any(|p| p.contains("one_deep")),
        "one-deep path missing: {joined:?}"
    );
    assert!(
        joined
            .iter()
            .any(|p| p.contains("two_deep_entry") && p.contains("two_deep_leaf")),
        "two-deep chain must print both hops: {joined:?}"
    );
}

#[test]
fn store_key_env_evasion_is_found() {
    let src = include_str!("fixtures/evasion_store_key_env.rs");
    let findings = lint_source(src, &core_ctx());
    let hits = with_rule(&findings, "store-key-purity");
    assert_eq!(hits.len(), 1, "{findings:#?}");
    assert!(
        hits[0].path.join(" -> ").contains("host_salt"),
        "path must name the env-reading helper: {:?}",
        hits[0].path
    );
}

#[test]
fn agent_taint_evasion_is_found_direct_and_via_helper() {
    let src = include_str!("fixtures/evasion_agent_taint.rs");
    let findings = lint_source(src, &core_ctx());
    let hits = with_rule(&findings, "agent-taint");
    assert_eq!(
        hits.len(),
        2,
        "direct + via-helper flows, steering-only stays clean: {findings:#?}"
    );
    assert!(hits.iter().all(|f| f.family == "noninterference"));
    let joined: Vec<String> = hits.iter().map(|f| f.path.join(" -> ")).collect();
    assert!(joined.iter().any(|p| p.contains("set_pc")), "{joined:?}");
    assert!(
        joined
            .iter()
            .any(|p| p.contains("apply_value") && p.contains("set_reg")),
        "laundered flow must print the helper hop: {joined:?}"
    );
}

#[test]
fn scc_cycle_evasion_converges_and_is_found() {
    let src = include_str!("fixtures/evasion_scc_cycle.rs");
    let findings = lint_source(src, &core_ctx());
    let hits = with_rule(&findings, "snapshot-wall-clock");
    assert_eq!(hits.len(), 1, "{findings:#?}");
    let p = hits[0].path.join(" -> ");
    assert!(
        p.contains("walk_even") && p.contains("stamp"),
        "path must thread the cycle to the clock: {p}"
    );

    // The cycle members share the summary at fixpoint (monotone union
    // converged over the SCC).
    let a = analyze(vec![(core_ctx(), src.to_string())]);
    let idx = |n: &str| {
        a.fns
            .iter()
            .position(|f| f.item.name == n)
            .unwrap_or_else(|| panic!("no fn {n}"))
    };
    let even = a.effects.summary[idx("walk_even")];
    let odd = a.effects.summary[idx("walk_odd")];
    assert!(even.names().contains(&"wall-clock"), "{:?}", even.names());
    assert_eq!(even.names(), odd.names(), "SCC members agree at fixpoint");
}

#[test]
fn swap_mutator_evasion_is_found() {
    let src = include_str!("fixtures/evasion_swap_mutator.rs");
    let findings = lint_source(src, &fabric_ctx());
    let hits = with_rule(&findings, "swap-purity");
    assert!(
        hits.len() >= 2,
        "mutator and clock variants must both fire: {findings:#?}"
    );
    let joined: Vec<String> = hits.iter().map(|f| f.path.join(" -> ")).collect();
    assert!(joined.iter().any(|p| p.contains("quiesce")), "{joined:?}");
    assert!(joined.iter().any(|p| p.contains("settle")), "{joined:?}");
}

#[test]
fn analysis_is_deterministic() {
    let src = include_str!("fixtures/evasion_snapshot_clock.rs");
    let a = lint_source(src, &core_ctx());
    let b = lint_source(src, &core_ctx());
    assert_eq!(a, b);
}

#[test]
fn json_report_is_byte_pinned() {
    let findings = lint_source("fn f() { x.unwrap(); }", &tool_ctx());
    assert_eq!(findings.len(), 1);
    let doc = json::render(&findings);
    assert_eq!(
        doc,
        "{\"schema\":\"pfm-lint/1\",\"count\":1,\"findings\":[{\"file\":\
         \"crates/bench/src/fixture.rs\",\"line\":1,\"family\":\"hygiene\",\
         \"rule\":\"unwrap\",\"message\":\"`.unwrap()` in non-test code; \
         plumb the error with context or justify with `// pfm-lint: \
         allow(hygiene)`\",\"path\":[]}]}\n"
    );
}

#[test]
fn json_paths_round_trip_through_rendering() {
    let src = include_str!("fixtures/evasion_scc_cycle.rs");
    let findings = lint_source(src, &core_ctx());
    let doc = json::render(&findings);
    assert!(doc.starts_with("{\"schema\":\"pfm-lint/1\",\"count\":"));
    assert!(doc.contains("\"rule\":\"snapshot-wall-clock\""));
    assert!(doc.contains("walk_even"), "paths must survive rendering");
    assert!(doc.ends_with("]}\n"));
}

#[test]
fn graph_dump_lists_fns_edges_and_effects() {
    let src = include_str!("fixtures/evasion_snapshot_clock.rs");
    let a = analyze(vec![(core_ctx(), src.to_string())]);
    let text = render_graph(&a, false);
    assert!(text.contains("fn snapshot_encode"), "{text}");
    assert!(text.contains("-> one_deep"), "{text}");
    assert!(
        text.contains("fn one_deep [effects: wall-clock]"),
        "summaries must be printed: {text}"
    );
    let dot = render_graph(&a, true);
    assert!(dot.starts_with("digraph"), "{dot}");
    assert!(dot.contains("n0"), "{dot}");
    assert!(dot.ends_with("}\n"), "{dot}");
}

#[test]
fn lint_analysis_spans_files() {
    // The helper lives in a different file of the same crate; the
    // joint analysis must still thread the chain.
    let entry = "pub fn snapshot_all(w: &W) -> u64 { helper_stamp(w) }";
    let helper = "pub fn helper_stamp(_w: &W) -> u64 {\n\
                  std::time::SystemTime::now().elapsed().unwrap().as_secs()\n\
                  }";
    let mk = |name: &str| FileContext {
        display: format!("crates/core/src/{name}.rs"),
        crate_name: Some("core".to_string()),
        exempt: false,
    };
    let a = analyze(vec![
        (mk("entry"), entry.to_string()),
        (mk("helper"), helper.to_string()),
    ]);
    let findings = lint_analysis(&a);
    let hits = with_rule(&findings, "snapshot-wall-clock");
    assert_eq!(hits.len(), 1, "{findings:#?}");
    assert_eq!(hits[0].file, "crates/core/src/entry.rs");
    assert!(
        hits[0].path.join(" -> ").contains("helper_stamp"),
        "{:?}",
        hits[0].path
    );
}
